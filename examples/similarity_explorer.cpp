/**
 * @file
 * Exploring frame similarity structure (the Sec. III-D analysis).
 *
 * Builds a benchmark, computes the similarity matrix, exports the
 * Fig. 5-style plot and prints a coarse ASCII rendering plus the most/
 * least similar frame pairs — handy when tuning workloads or deciding
 * whether a capture has enough phase structure to sample.
 *
 * Usage: similarity_explorer [benchmark] [frames]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/megsim.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace msim;

    const std::string alias = argc > 1 ? argv[1] : "bbr1";
    const std::size_t frames =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 300;

    const gfx::SceneTrace scene =
        workloads::buildBenchmark(alias, 1.0, frames);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();
    megsim::BenchmarkData data(scene, config, "");
    megsim::MegsimPipeline pipeline(data);

    const megsim::SimilarityMatrix sim(pipeline.features());
    const std::string path = "similarity_" + alias + ".pgm";
    sim.writePgm(path);
    std::printf("similarity matrix for %s (%zu frames)\n", alias.c_str(),
                frames);
    std::printf("  plot written to %s\n", path.c_str());
    std::printf("  mean distance %.4f, max %.4f\n\n",
                sim.meanDistance(), sim.maxDistance());

    // Coarse ASCII rendering (56 columns), darker char = more similar.
    const int side = 28;
    const char *shades = "@%#*+=-:. ";
    std::printf("  upper triangle, '@' = identical, ' ' = far apart:\n");
    for (int y = 0; y < side; ++y) {
        std::printf("  ");
        for (int x = 0; x < side; ++x) {
            if (x < y) {
                std::printf("  ");
                continue;
            }
            const auto fa = static_cast<std::size_t>(
                y * static_cast<double>(frames) / side);
            const auto fb = static_cast<std::size_t>(
                x * static_cast<double>(frames) / side);
            const double d = sim.at(fa, fb) / sim.maxDistance();
            const int shade = std::min(
                9, static_cast<int>(d * 10.0));
            std::printf("%c%c", shades[shade], shades[shade]);
        }
        std::printf("\n");
    }

    // Most similar non-adjacent pair and most dissimilar pair.
    std::size_t best_a = 0, best_b = 0, worst_a = 0, worst_b = 0;
    double best = 1e300, worst = -1.0;
    for (std::size_t a = 0; a < frames; ++a) {
        for (std::size_t b = a + 30; b < frames; ++b) {
            const double d = sim.at(a, b);
            if (d < best) {
                best = d;
                best_a = a;
                best_b = b;
            }
            if (d > worst) {
                worst = d;
                worst_a = a;
                worst_b = b;
            }
        }
    }
    std::printf("\n  most similar distant pair:    frames %zu and %zu "
                "(distance %.5f)\n",
                best_a, best_b, best);
    std::printf("  most dissimilar pair:         frames %zu and %zu "
                "(distance %.5f)\n",
                worst_a, worst_b, worst);
    std::printf("\nRecurring dark blocks far from the diagonal are what "
                "MEGsim exploits:\nonly one representative per recurring "
                "phase needs cycle-level simulation.\n");
    return 0;
}
