/**
 * @file
 * Defining a custom workload from scratch and running the full MEGsim
 * flow on it — the API walkthrough for adopting the library on your
 * own traces.
 *
 * The example builds a small "space shooter": a scrolling starfield, a
 * player ship, enemy waves that alternate between calm and assault
 * phases, and an explosion-heavy boss fight. It then characterizes the
 * frames, clusters them and reports which frames MEGsim would
 * cycle-simulate.
 */

#include <cmath>
#include <cstdio>

#include "core/megsim.hh"
#include "sim/random.hh"
#include "workloads/composer.hh"

int
main()
{
    using namespace msim;
    using namespace msim::workloads;

    // --- 1. Describe the game ------------------------------------------
    GameSpec spec;
    spec.name = "shooter";
    spec.title = "Nebula Strike (custom example)";
    spec.is3d = false;
    spec.frames = 900;
    spec.seed = 0xCAFE;
    spec.numVertexShaders = 3;
    spec.numFragmentShaders = 6;
    spec.numTextures = 4;
    spec.numWorlds = 2;
    spec.instancesPerWorld = 8;

    spec.groups = {
        // name, placement, detail, vs, fs, tex, transparent,
        // minCount, maxCount, sizeMin, sizeMax
        {"starfield", Placement::Backdrop, 2, 0, 0, 0, false, 1, 1, 1,
         1},
        {"asteroids", Placement::Sprite, 2, 1, 1, 1, false, 4, 14,
         0.15f, 0.4f},
        {"enemies", Placement::Sprite, 2, 2, 2, 2, true, 2, 18, 0.12f,
         0.3f},
        {"lasers", Placement::Sprite, 2, 0, 3, 3, true, 2, 24, 0.04f,
         0.1f},
        {"explosions", Placement::Sprite, 2, 1, 4, 1, true, 1, 16,
         0.15f, 0.45f},
        {"hud", Placement::Overlay, 2, 2, 5, 0, true, 3, 5, 0.08f,
         0.15f},
    };
    spec.segments = {
        {"calm", {0, 1, 5}, 50, 90, 0.8f, 0.3f},
        {"wave", {0, 1, 2, 3, 5}, 40, 80, 1.2f, 0.4f},
        {"assault", {0, 1, 2, 3, 4, 5}, 30, 60, 2.0f, 0.5f},
        {"boss", {0, 2, 3, 4, 5}, 40, 70, 2.5f, 0.2f},
    };
    spec.script = {0, 1, 1, 2, 0, 1, 2, 3, 0, 1, 2, 1};

    // --- 2. Expand to a trace and validate ------------------------------
    SceneComposer composer(spec);
    const gfx::SceneTrace scene = composer.compose();
    const std::string err = scene.validate();
    if (!err.empty()) {
        std::fprintf(stderr, "invalid scene: %s\n", err.c_str());
        return 1;
    }
    std::printf("built '%s': %zu frames, %zu shaders, %zu meshes\n",
                scene.name.c_str(), scene.numFrames(),
                scene.shaders.size(), scene.meshes.size());

    // --- 3. Run the methodology ------------------------------------------
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();
    megsim::BenchmarkData data(scene, config, ""); // no disk cache
    megsim::MegsimPipeline pipeline(data);
    const megsim::MegsimRun run = pipeline.run();

    std::printf("\nMEGsim selected %zu representatives (%.0fx "
                "reduction):\n",
                run.numRepresentatives(), run.reductionFactor());
    std::printf("%10s %10s %10s\n", "cluster", "frame", "weight");
    for (std::size_t c = 0; c < run.numRepresentatives(); ++c)
        std::printf("%10zu %10zu %10.0f\n", c,
                    run.representatives.frames[c],
                    run.representatives.weights[c]);

    // --- 4. Check the estimate against the full simulation ---------------
    std::printf("\nAccuracy vs full cycle-level simulation:\n");
    for (const auto metric :
         {gpusim::Metric::Cycles, gpusim::Metric::DramAccesses,
          gpusim::Metric::L2Accesses,
          gpusim::Metric::TileCacheAccesses}) {
        std::printf("  %-22s %6.2f%% relative error\n",
                    gpusim::metricName(metric),
                    pipeline.errorPercent(run, metric));
    }
    return 0;
}
