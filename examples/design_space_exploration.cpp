/**
 * @file
 * Design-space exploration with MEGsim — the use case the paper's
 * introduction motivates.
 *
 * Sweeping a GPU design space (here: L2 size and fragment-processor
 * count) with full cycle-accurate simulation would require simulating
 * every frame of the sequence for every configuration. With MEGsim the
 * representative frames are selected ONCE from architecture-
 * independent functional data, and only those frames are simulated per
 * configuration.
 *
 * Usage: design_space_exploration [benchmark] [frames]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gpusim/functional_simulator.hh"
#include "gpusim/timing_simulator.hh"
#include "core/megsim.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace msim;

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Simulate only the given frames and scale by the cluster weights. */
std::uint64_t
estimateCycles(const gfx::SceneTrace &scene,
               const gpusim::GpuConfig &config,
               const megsim::RepresentativeSet &reps)
{
    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding);
    double total = 0.0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        const auto stats =
            timing.simulate(scene.frames[reps.frames[i]]);
        total += static_cast<double>(stats.cycles) * reps.weights[i];
    }
    return static_cast<std::uint64_t>(total);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string alias = argc > 1 ? argv[1] : "hwh";
    const std::size_t frames =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 600;

    std::printf("MEGsim design-space exploration on '%s' (%zu frames)\n",
                alias.c_str(), frames);
    const gfx::SceneTrace scene =
        workloads::buildBenchmark(alias, 1.0, frames);

    // Step 1: select representatives once, from functional data only.
    const gpusim::GpuConfig base = gpusim::GpuConfig::evaluationScaled();
    megsim::BenchmarkData data(scene, base, "");
    // A pure functional pass is all MEGsim needs (we deliberately do
    // not touch data.frameStats() here).
    gpusim::SceneBinding fbind(scene);
    gpusim::FunctionalSimulator functional(base, fbind);
    const double t0 = now_seconds();
    std::vector<gpusim::FrameActivity> acts;
    acts.reserve(scene.frames.size());
    for (const auto &frame : scene.frames)
        acts.push_back(functional.simulate(frame));
    megsim::FeatureMatrix features =
        megsim::buildFeatureMatrix(acts, scene);
    megsim::normalize(features);
    const megsim::FeatureMatrix clustered =
        megsim::randomProject(features, 24);
    const megsim::SelectionResult sel =
        megsim::selectClustering(clustered);
    const megsim::RepresentativeSet reps =
        megsim::representativeSet(clustered, sel.chosen());
    const double t_select = now_seconds() - t0;

    std::printf("  selected %zu representatives out of %zu frames "
                "(%.0fx reduction) in %.2fs\n\n",
                reps.size(), scene.frames.size(),
                static_cast<double>(scene.frames.size()) /
                    static_cast<double>(reps.size()),
                t_select);

    // Step 2: sweep the design space, simulating only representatives.
    struct DesignPoint
    {
        const char *name;
        std::uint64_t l2KiB;
        std::uint32_t fps;
    };
    const DesignPoint points[] = {
        {"base (256K L2, 4 FP)", 256, 4},
        {"small L2 (64K)", 64, 4},
        {"big L2 (1M)", 1024, 4},
        {"2 FPs", 256, 2},
        {"8 FPs", 256, 8},
    };

    std::printf("%-24s %16s %14s\n", "Design point", "est. cycles",
                "vs base");
    std::uint64_t base_cycles = 0;
    for (const DesignPoint &p : points) {
        gpusim::GpuConfig config = base;
        config.memory.l2.sizeBytes = p.l2KiB * 1024;
        config.numFragmentProcessors = p.fps;
        config.numTextureCaches = p.fps;
        const std::uint64_t cycles =
            estimateCycles(scene, config, reps);
        if (base_cycles == 0)
            base_cycles = cycles;
        std::printf("%-24s %16llu %13.2fx\n", p.name,
                    static_cast<unsigned long long>(cycles),
                    static_cast<double>(base_cycles) /
                        static_cast<double>(cycles));
    }
    std::printf("\nEach design point simulated %zu frames instead of "
                "%zu.\n",
                reps.size(), scene.frames.size());
    return 0;
}
