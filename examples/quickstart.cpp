/**
 * @file
 * Quickstart: build a benchmark scene, run the functional and the
 * cycle-level simulator on a few frames, and print the per-frame
 * metrics MEGsim works with.
 *
 * Usage: quickstart [benchmark] [frames]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gpusim/functional_simulator.hh"
#include "gpusim/timing_simulator.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace msim;

    const std::string alias = argc > 1 ? argv[1] : "bbr1";
    const std::size_t frames =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 20;

    std::printf("Building workload '%s' (%zu frames)...\n", alias.c_str(),
                frames);
    const gfx::SceneTrace scene =
        workloads::buildBenchmark(alias, 1.0, frames);
    const std::string err = scene.validate();
    if (!err.empty()) {
        std::fprintf(stderr, "invalid scene: %s\n", err.c_str());
        return 1;
    }
    std::printf("  %zu vertex shaders, %zu fragment shaders, "
                "%zu meshes, %zu textures\n",
                scene.numVertexShaders(), scene.numFragmentShaders(),
                scene.meshes.size(), scene.textures.size());

    const gpusim::GpuConfig config = gpusim::GpuConfig::evaluationScaled();
    gpusim::SceneBinding binding(scene);
    gpusim::FunctionalSimulator functional(config, binding);
    gpusim::TimingSimulator timing(config, binding);

    std::printf("\n%6s %10s %8s %8s %9s %9s %9s %7s\n", "frame", "cycles",
                "prims", "frags", "tile$", "l2", "dram", "ipc");
    gpusim::FrameStats total;
    for (const auto &frame : scene.frames) {
        gpusim::FrameActivity act;
        const gpusim::FrameStats stats = timing.simulate(frame, &act);
        total += stats;
        std::printf("%6llu %10llu %8llu %8llu %9llu %9llu %9llu %7.2f\n",
                    static_cast<unsigned long long>(stats.frameIndex),
                    static_cast<unsigned long long>(stats.cycles),
                    static_cast<unsigned long long>(act.primitives),
                    static_cast<unsigned long long>(act.fragmentsShaded),
                    static_cast<unsigned long long>(
                        stats.tileCacheAccesses),
                    static_cast<unsigned long long>(stats.l2Accesses),
                    static_cast<unsigned long long>(stats.dramAccesses),
                    stats.ipc());
    }

    std::printf("\nTotals over %zu frames:\n", scene.frames.size());
    std::printf("  cycles            %llu\n",
                static_cast<unsigned long long>(total.cycles));
    std::printf("  instructions      %llu (ipc %.2f)\n",
                static_cast<unsigned long long>(total.instructions()),
                total.ipc());
    std::printf("  dram accesses     %llu\n",
                static_cast<unsigned long long>(total.dramAccesses));
    std::printf("  l2 accesses       %llu\n",
                static_cast<unsigned long long>(total.l2Accesses));
    std::printf("  tile$ accesses    %llu\n",
                static_cast<unsigned long long>(total.tileCacheAccesses));
    std::printf("  energy (geom/tiling/raster) %.1f / %.1f / %.1f uJ\n",
                total.energy.geometryNj / 1000.0,
                total.energy.tilingNj / 1000.0,
                total.energy.rasterNj / 1000.0);
    return 0;
}
