/**
 * @file
 * Regenerates Fig. 5: the Similarity Matrix of the first 900 analyzed
 * frames of Beach Buggy Racing (bbr). Exports a PGM plot (darker =
 * more similar) and prints summary statistics of the distance
 * distribution plus the block structure along the diagonal.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace msim;

    const std::size_t frames = 900;
    workloads::GameSpec spec = workloads::benchmarkSpec("bbr1");
    spec.frames = frames;
    workloads::SceneComposer composer(spec, 1.0);
    const gfx::SceneTrace scene = composer.compose();

    megsim::BenchmarkData data(scene, bench::evalConfig(),
                               bench::cacheDir());
    megsim::MegsimPipeline pipeline(data, bench::defaultMegsimConfig());
    const megsim::SimilarityMatrix sim(pipeline.features());

    const std::string path =
        bench::outDir() + "/fig5_similarity_bbr.pgm";
    sim.writePgm(path, 900);

    std::printf("Fig. 5: Similarity matrix for bbr (%zu frames)\n",
                frames);
    std::printf("  exported plot: %s\n", path.c_str());
    std::printf("  max distance:  %.4f\n", sim.maxDistance());
    std::printf("  mean distance: %.4f\n", sim.meanDistance());

    // Characterize the diagonal-block structure: the mean distance of
    // near-diagonal pairs (within 15 frames) vs far pairs. Strong
    // phase behaviour shows as near << far.
    double near_sum = 0.0, far_sum = 0.0;
    std::size_t near_n = 0, far_n = 0;
    for (std::size_t a = 0; a < frames; ++a) {
        for (std::size_t b = a + 1; b < frames; ++b) {
            if (b - a <= 15) {
                near_sum += sim.at(a, b);
                ++near_n;
            } else if (b - a >= 100) {
                far_sum += sim.at(a, b);
                ++far_n;
            }
        }
    }
    std::printf("  near-diagonal mean (|i-j|<=15):  %.4f\n",
                near_sum / static_cast<double>(near_n));
    std::printf("  far-pair mean (|i-j|>=100):      %.4f\n",
                far_sum / static_cast<double>(far_n));
    std::printf("  (phase structure => near << far)\n");
    return 0;
}
