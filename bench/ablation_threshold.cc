/**
 * @file
 * Ablation: the BIC spread threshold T (Sec. III-F).
 *
 * Sweeps T from 0.5 to 1.0 and reports the accuracy/representative
 * trade-off the paper describes: higher T means more clusters and
 * better accuracy, lower T means fewer clusters and lower accuracy.
 */

#include <cstdio>

#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace msim;

    const double thresholds[] = {0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95,
                                 1.0};

    std::printf("Ablation: BIC threshold T vs accuracy and cluster "
                "count\n");
    util::CsvTable csv;
    csv.header = {"threshold", "reps", "cycles_err"};

    for (const auto &alias :
         {std::string("bbr2"), std::string("pvz")}) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        std::printf("\n%s:\n", alias.c_str());
        std::printf("  %10s %8s %12s\n", "T", "reps", "cycles err%");
        bench::printRule(36);
        for (double t : thresholds) {
            megsim::MegsimConfig config = bench::defaultMegsimConfig();
            config.selector.threshold = t;
            megsim::MegsimPipeline pipeline(*b.data, config);
            const megsim::MegsimRun run = pipeline.run();
            const double err =
                pipeline.errorPercent(run, gpusim::Metric::Cycles);
            std::printf("  %10.2f %8zu %11.2f%%\n", t,
                        run.numRepresentatives(), err);
            csv.rows.push_back(
                {t, static_cast<double>(run.numRepresentatives()),
                 err});
        }
    }
    util::writeCsv(bench::outDir() + "/ablation_threshold.csv", csv);
    std::printf("\n(T = 0.85 is the paper's operating point.)\n");
    return 0;
}
