/**
 * @file
 * Background claim of Sec. II-A: Tile-Based Rendering drastically
 * reduces off-chip framebuffer traffic versus Immediate-Mode
 * Rendering, because tiles render entirely in on-chip memory and each
 * pixel's color is written to DRAM exactly once.
 *
 * Compares, per benchmark (on a gameplay-frame window): the TBR
 * pipeline's framebuffer DRAM bytes (tile flushes) against the IMR
 * model's post-cache depth+color traffic for the identical frames.
 */

#include <cstdio>

#include "bench_common.hh"
#include "gpusim/geometry.hh"
#include "gpusim/imr_model.hh"
#include "gpusim/scene_binding.hh"
#include "gpusim/timing_simulator.hh"

int
main()
{
    using namespace msim;

    const std::size_t window_begin = 150;
    const std::size_t window_end = 180;

    std::printf("Sec. II-A: off-chip framebuffer traffic, IMR vs TBR\n");
    std::printf("(%zu gameplay frames per benchmark)\n",
                window_end - window_begin);
    std::printf("%-8s %14s %14s %10s %12s\n", "bench", "IMR KB/frame",
                "TBR KB/frame", "ratio", "overdraw");
    bench::printRule(64);

    for (const auto &alias : workloads::benchmarkNames()) {
        const auto scene = workloads::buildBenchmark(
            alias, 1.0, window_end);
        const auto config = bench::evalConfig();

        gpusim::SceneBinding binding(scene);
        gpusim::GeometryProcessor geometry(config, binding);
        gpusim::TimingSimulator timing(config, binding);
        gpusim::ImrMemoryModel imr(config, binding.framebufferBase());

        double imr_bytes = 0.0, tbr_bytes = 0.0;
        double shaded = 0.0;
        const double pixels =
            static_cast<double>(config.screenWidth) *
            config.screenHeight;
        for (std::size_t f = window_begin; f < window_end; ++f) {
            const auto ir = geometry.process(scene.frames[f]);
            const auto traffic = imr.frameTraffic(ir);
            imr_bytes += static_cast<double>(traffic.dramBytes);
            shaded += static_cast<double>(traffic.fragmentsShaded);
            const auto stats = timing.simulate(ir);
            tbr_bytes += static_cast<double>(stats.framebufferBytes);
        }
        const double n =
            static_cast<double>(window_end - window_begin);
        std::printf("%-8s %14.1f %14.1f %9.1fx %11.2fx\n",
                    alias.c_str(), imr_bytes / n / 1024.0,
                    tbr_bytes / n / 1024.0, imr_bytes / tbr_bytes,
                    shaded / n / pixels);
    }
    std::printf("\nTBR writes each pixel once at tile flush; IMR pays "
                "off-chip depth\ntraffic plus one color write per "
                "surviving fragment (overdraw).\n");
    return 0;
}
