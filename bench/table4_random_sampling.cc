/**
 * @file
 * Regenerates Table IV: frames needed by MEGsim versus random
 * sub-sampling to reach the same accuracy.
 *
 * MEGsim is repeated with different k-means initializations and its
 * maximum relative error for total cycles is taken at 95 %
 * confidence; random sub-sampling (1000 trials per sample count) is
 * then grown until it matches that error. The paper uses 100 MEGsim
 * repetitions and 1000 random trials; MEGSIM_REPS/MEGSIM_TRIALS
 * override for quick runs.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "util/csv.hh"
#include "util/summary.hh"

int
main()
{
    using namespace msim;

    // The paper repeats MEGsim 100 times; 15 keeps the default run of
    // this binary to minutes on one core with a similar 95th
    // percentile. Set MEGSIM_REPS=100 to match the paper exactly.
    std::size_t megsim_reps = 15;
    if (const char *env = std::getenv("MEGSIM_REPS"))
        megsim_reps = static_cast<std::size_t>(std::atoll(env));
    megsim::RandomSamplingConfig rs_config;
    if (const char *env = std::getenv("MEGSIM_TRIALS"))
        rs_config.trials = static_cast<std::size_t>(std::atoll(env));

    std::printf("Table IV: Frames for equal accuracy, MEGsim vs random "
                "sub-sampling\n");
    std::printf("(%zu MEGsim repetitions, %zu random trials, 95%% "
                "confidence)\n",
                megsim_reps, rs_config.trials);
    std::printf("%-10s %12s %10s %14s %12s\n", "Benchmark", "Max err %",
                "MEGsim", "Random frames", "Reduction");
    bench::printRule(64);

    util::CsvTable csv;
    csv.header = {"max_err", "megsim_frames", "random_frames",
                  "reduction"};

    double sum_err = 0.0, sum_megsim = 0.0, sum_random = 0.0;
    for (const auto &alias : workloads::benchmarkNames()) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        megsim::MegsimPipeline pipeline(*b.data,
                                        bench::defaultMegsimConfig());
        const std::vector<double> cycles =
            b.data->metric(gpusim::Metric::Cycles);

        // MEGsim error distribution over k-means initializations.
        std::vector<double> errors;
        std::vector<double> rep_counts;
        for (std::size_t r = 0; r < megsim_reps; ++r) {
            const megsim::MegsimRun run =
                pipeline.run(0xC0FFEE + r * 7919);
            errors.push_back(
                pipeline.errorPercent(run, gpusim::Metric::Cycles));
            rep_counts.push_back(
                static_cast<double>(run.numRepresentatives()));
        }
        const double max_err = util::percentile(
            errors, rs_config.confidencePercent);
        const double megsim_frames = util::mean(rep_counts);

        const std::size_t random_frames =
            megsim::findMatchingSampleCount(cycles, max_err,
                                            rs_config);
        const double reduction =
            static_cast<double>(random_frames) / megsim_frames;

        std::printf("%-10s %12.2f %10.1f %14zu %11.1fx\n",
                    alias.c_str(), max_err, megsim_frames,
                    random_frames, reduction);
        csv.rows.push_back({max_err, megsim_frames,
                            static_cast<double>(random_frames),
                            reduction});
        sum_err += max_err;
        sum_megsim += megsim_frames;
        sum_random += static_cast<double>(random_frames);
    }
    bench::printRule(64);
    std::printf("%-10s %12.2f %10.1f %14.1f %11.1fx\n", "Average",
                sum_err / 8, sum_megsim / 8, sum_random / 8,
                sum_random / sum_megsim);
    std::printf("(Paper average: 1.43%% err, 32.8 vs 1686.3 frames, "
                "58.5x)\n");

    util::writeCsv(bench::outDir() + "/table4_random_sampling.csv",
                   csv);
    return 0;
}
