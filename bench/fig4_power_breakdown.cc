/**
 * @file
 * Regenerates Fig. 4: the fraction of dissipated power in the three
 * main phases of the graphics pipeline (Geometry, Tiling, Raster).
 * These fractions motivate the characteristic-group weights MEGsim
 * uses for normalization (0.108 / 0.147 / 0.745 in the paper).
 */

#include <cstdio>

#include "bench_common.hh"
#include "gpusim/power.hh"
#include "util/csv.hh"

int
main()
{
    using namespace msim;

    std::printf("Fig. 4: Fraction of dissipated power per pipeline "
                "phase\n");
    std::printf("%-10s %10s %10s %10s\n", "Benchmark", "Geometry",
                "Tiling", "Raster");
    bench::printRule(44);

    util::CsvTable csv;
    csv.header = {"geometry", "tiling", "raster"};

    double sums[3] = {};
    for (const auto &alias : workloads::benchmarkNames()) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        const gpusim::PowerBreakdown pb =
            gpusim::powerBreakdown(b.data->frameStats());
        std::printf("%-10s %9.1f%% %9.1f%% %9.1f%%\n", alias.c_str(),
                    pb.geometryFraction * 100.0,
                    pb.tilingFraction * 100.0,
                    pb.rasterFraction * 100.0);
        csv.rows.push_back({pb.geometryFraction, pb.tilingFraction,
                            pb.rasterFraction});
        sums[0] += pb.geometryFraction;
        sums[1] += pb.tilingFraction;
        sums[2] += pb.rasterFraction;
    }
    bench::printRule(44);
    std::printf("%-10s %9.1f%% %9.1f%% %9.1f%%\n", "Average",
                sums[0] / 8 * 100, sums[1] / 8 * 100,
                sums[2] / 8 * 100);
    std::printf("(Paper averages: Geometry 10.8%%, Tiling 14.7%%, "
                "Raster 74.5%%)\n");

    util::writeCsv(bench::outDir() + "/fig4_power.csv", csv);
    return 0;
}
