/**
 * @file
 * Concurrent-load serving throughput — BENCH_serve.json. Drives a
 * real forked serve::Fleet plus the sched::Scheduler through a
 * (workers × concurrent requests) matrix of heterogeneous campaign
 * requests (each request regenerates one suite benchmark from a cold
 * cache), then A/Bs strict FIFO against weighted fair-share at the
 * contended 4-worker × 4-request point. Emits the megsim-serve-v1
 * report and an optional megsim-run-v1 ledger, and compares against a
 * committed baseline like the perf trajectory: warn-only by default,
 * or as an enforced gate with --strict (a regression beyond the band
 * exits 10; an improvement beyond it prints the cp command that
 * refreshes the baseline; missing baseline points stay informational).
 *
 *   MEGSIM_FRAME_LIMIT=48 build/bench/serve \
 *       --compare ci/BENCH_serve.json --band 25 --strict
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exec/pool.hh"
#include "obs/ledger.hh"
#include "obs/profile.hh"
#include "sched/report.hh"
#include "sched/scheduler.hh"
#include "serve/fleet.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace msim;

struct Round
{
    sched::ServeLoadPoint point;
    bool ok = true;
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/**
 * One load point: @p requests heterogeneous single-bench campaigns
 * (suite benches round-robin, one tenant each) admitted together onto
 * a fresh @p workers-process fleet over a cold cache, timed to drain.
 */
Round
runRound(std::size_t workers, std::size_t requests,
         sched::Policy policy, std::size_t frames,
         std::size_t shardFrames, const std::string &cacheDir)
{
    std::error_code ec;
    std::filesystem::remove_all(cacheDir, ec);

    batch::CampaignConfig base = batch::CampaignConfig::fromEnv();
    base.frameLimit = frames;
    base.cacheDir = cacheDir;

    serve::SupervisorConfig sup = serve::SupervisorConfig::fromEnv();
    sup.workers = workers;
    sup.shardFrames = shardFrames;

    serve::Fleet fleet(base, workers);
    sched::SchedulerConfig config;
    config.policy = policy;
    config.maxInflight = std::max<std::size_t>(requests, 8);
    config.shard = sup;
    sched::Scheduler scheduler(base, config, fleet);

    const std::vector<std::string> suite =
        workloads::benchmarkNames();

    Round round;
    round.point.workers = workers;
    round.point.requests = requests;
    round.point.policy = sched::policyName(policy);

    const double t0 = obs::wallSeconds();
    for (std::size_t i = 0; i < requests; ++i) {
        sched::RequestSpec spec;
        spec.benches = {suite[i % suite.size()]};
        spec.tenant = "tenant-" + std::to_string(i);
        auto admitted = scheduler.admit(spec);
        if (!admitted.ok()) {
            std::fprintf(stderr, "serve-bench: admit failed: %s\n",
                         admitted.error().message.c_str());
            round.ok = false;
            return round;
        }
    }
    std::vector<sched::RequestResult> results =
        scheduler.runToCompletion();
    const double makespan = obs::wallSeconds() - t0;
    fleet.shutdown();

    if (results.size() != requests) {
        std::fprintf(stderr,
                     "serve-bench: %zu of %zu requests finished\n",
                     results.size(), requests);
        round.ok = false;
        return round;
    }
    std::vector<double> latencies;
    for (const sched::RequestResult &r : results)
        latencies.push_back(r.queueWaitSeconds + r.serviceSeconds);
    std::sort(latencies.begin(), latencies.end());

    round.point.makespanSeconds = makespan;
    round.point.requestsPerSec =
        makespan > 0.0 ? static_cast<double>(requests) / makespan
                       : 0.0;
    round.point.p50LatencySeconds = percentile(latencies, 0.50);
    round.point.p95LatencySeconds = percentile(latencies, 0.95);
    return round;
}

void
printPoint(const sched::ServeLoadPoint &p)
{
    std::printf("%-8zu %-9zu %-6s %12.3f %12.2f %10.3f %10.3f\n",
                p.workers, p.requests, p.policy.c_str(),
                p.makespanSeconds, p.requestsPerSec,
                p.p50LatencySeconds, p.p95LatencySeconds);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = bench::outDir() + "/BENCH_serve.json";
    std::string ledgerPath;
    std::string compare;
    bool strict = false;
    double band = 25.0;
    std::size_t frames = 48;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        frames = static_cast<std::size_t>(std::atoll(env));
    // Real workloads replay API traces from disk, so shard wall time
    // is wait-dominated; the think time reproduces that I/O-bound
    // profile deterministically so the scheduling comparison measures
    // wait-overlap, not this machine's core count.
    std::size_t thinkMs = 200;
    if (const char *env = std::getenv("MEGSIM_SHARD_THINK_MS"))
        thinkMs = static_cast<std::size_t>(std::atoll(env));

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--out") {
            if (const char *v = next())
                out = v;
        } else if (arg == "--ledger") {
            if (const char *v = next())
                ledgerPath = v;
        } else if (arg == "--compare") {
            if (const char *v = next())
                compare = v;
        } else if (arg == "--band") {
            if (const char *v = next())
                band = std::atof(v);
        } else if (arg == "--frames") {
            if (const char *v = next())
                frames = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--think-ms") {
            if (const char *v = next())
                thinkMs = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--strict") {
            strict = true;
        } else {
            std::fprintf(stderr,
                         "usage: serve [--out PATH] [--ledger PATH]"
                         " [--compare BASELINE.json] [--band PCT]"
                         " [--strict] [--frames N] [--think-ms MS]\n");
            return 2;
        }
    }
    if (frames == 0)
        frames = 48;
    ::setenv("MEGSIM_SHARD_THINK_MS",
             std::to_string(thinkMs).c_str(), 1);
    // Two shards per single-bench request: FIFO's exclusive waves
    // leave workers idle, which is exactly the contention fair-share
    // reclaims.
    const std::size_t shardFrames = (frames + 1) / 2;
    const std::string cacheDir =
        bench::outDir() + "/serve-bench-cache";

    obs::RunLedger ledger;
    {
        util::Json fields = util::Json::object();
        fields.set("tool", "serve-bench");
        fields.set("threads", exec::Pool::global().workers());
        fields.set("frame_limit", frames);
        ledger.event("run_start", std::move(fields));
    }
    const double runStart = obs::wallSeconds();

    sched::ServeReport report;
    report.frameLimit = frames;
    report.shardFrames = shardFrames;
    report.thinkMs = thinkMs;

    std::printf("# serve: %zu frames/request, %zu frames/shard, "
                "%zu ms think/shard\n",
                frames, shardFrames, thinkMs);
    std::printf("%-8s %-9s %-6s %12s %12s %10s %10s\n", "workers",
                "requests", "policy", "makespan_s", "req/s",
                "p50_s", "p95_s");
    bench::printRule(74);

    const std::size_t workerGrid[] = {1, 2, 4};
    const std::size_t requestGrid[] = {1, 4, 8};
    for (std::size_t workers : workerGrid)
        for (std::size_t requests : requestGrid) {
            Round round =
                runRound(workers, requests,
                         sched::Policy::FairShare, frames,
                         shardFrames, cacheDir);
            if (!round.ok)
                return 1;
            printPoint(round.point);
            if (workers == 4 && requests == 4)
                report.fairRequestsPerSec =
                    round.point.requestsPerSec;
            report.points.push_back(std::move(round.point));
        }

    // The A/B the acceptance criterion cares about: same four
    // heterogeneous requests, same 4-worker fleet, strict FIFO.
    Round fifo = runRound(4, 4, sched::Policy::Fifo, frames,
                          shardFrames, cacheDir);
    if (!fifo.ok)
        return 1;
    printPoint(fifo.point);
    report.fifoRequestsPerSec = fifo.point.requestsPerSec;
    report.points.push_back(std::move(fifo.point));
    report.fairSpeedup =
        report.fifoRequestsPerSec > 0.0
            ? report.fairRequestsPerSec / report.fifoRequestsPerSec
            : 0.0;
    bench::printRule(74);
    std::printf("fair-share vs fifo @ 4x4: %.2fx (%.2f vs %.2f"
                " req/s)\n",
                report.fairSpeedup, report.fairRequestsPerSec,
                report.fifoRequestsPerSec);

    {
        util::Json values = util::Json::object();
        values.set("serve_fair_speedup", report.fairSpeedup);
        values.set("serve_fair_rps", report.fairRequestsPerSec);
        values.set("serve_fifo_rps", report.fifoRequestsPerSec);
        util::Json fields = util::Json::object();
        fields.set("values", std::move(values));
        ledger.event("metrics", std::move(fields));
    }
    {
        util::Json fields = util::Json::object();
        fields.set("wall_seconds", obs::wallSeconds() - runStart);
        fields.set("status", "ok");
        ledger.event("run_end", std::move(fields));
    }

    if (auto saved = report.save(out); !saved.ok()) {
        std::fprintf(stderr, "serve-bench: cannot write %s: %s\n",
                     out.c_str(), saved.error().message.c_str());
        return 1;
    }
    std::printf("report: %s\n", out.c_str());
    if (!ledgerPath.empty()) {
        if (auto saved = ledger.save(ledgerPath); !saved.ok()) {
            std::fprintf(stderr,
                         "serve-bench: cannot write %s: %s\n",
                         ledgerPath.c_str(),
                         saved.error().message.c_str());
            return 1;
        }
        std::printf("ledger: %s\n", ledgerPath.c_str());
    }

    int rc = 0;
    if (!compare.empty()) {
        auto baseline = sched::ServeReport::load(compare);
        if (!baseline.ok()) {
            // A missing baseline never gates — strict or not — so a
            // brand-new matrix point can land before its baseline.
            std::fprintf(stderr,
                         "serve-bench: no baseline %s: %s\n",
                         compare.c_str(),
                         baseline.error().message.c_str());
        } else {
            const std::vector<sched::ServeDelta> deltas =
                sched::compareServeDeltas(report, *baseline, band);
            bool regression = false;
            bool improvement = false;
            for (const sched::ServeDelta &d : deltas) {
                if (d.missingBaseline) {
                    std::printf("NOTE %s: no baseline point\n",
                                d.what.c_str());
                    continue;
                }
                std::printf("%s %s: %.3f vs baseline %.3f (%+.1f%%,"
                            " band ±%.0f%%)\n",
                            strict ? "DELTA" : "WARN",
                            d.what.c_str(), d.current, d.baseline,
                            d.deltaPercent, band);
                (d.deltaPercent < 0.0 ? regression : improvement) =
                    true;
            }
            if (!regression && !improvement)
                std::printf("within ±%.0f%% of %s\n", band,
                            compare.c_str());
            if (strict && regression) {
                std::fprintf(stderr,
                             "serve-bench: regression beyond the "
                             "±%.0f%% band vs %s\n",
                             band, compare.c_str());
                rc = 10;
            } else if (strict && improvement) {
                std::printf("serve-bench improved beyond the band; "
                            "refresh the committed baseline:\n"
                            "  cp %s %s\n",
                            out.c_str(), compare.c_str());
            }
        }
    }
    std::error_code ec;
    std::filesystem::remove_all(cacheDir, ec);
    return rc;
}
