/**
 * @file
 * Ablation: sensitivity of MEGsim to the characteristic-group
 * normalization (DESIGN.md §6).
 *
 * Compares the paper's power-derived group weights against uniform
 * weights, per-column-max normalization, raw features, and a
 * shaders-only variant (PRIM weight zero), on representative 3D and 2D
 * benchmarks.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

struct Variant
{
    const char *name;
    msim::megsim::NormalizationScheme scheme;
    msim::megsim::GroupWeights weights;
};

} // namespace

int
main()
{
    using namespace msim;
    using megsim::GroupWeights;
    using megsim::NormalizationScheme;

    const Variant variants[] = {
        {"paper weights (.108/.745/.147)",
         NormalizationScheme::GroupSumWeights, GroupWeights{}},
        {"uniform groups",
         NormalizationScheme::GroupSumWeights, GroupWeights::uniform()},
        {"shaders only (no PRIM)",
         NormalizationScheme::GroupSumWeights,
         GroupWeights{0.127, 0.873, 0.0}},
        {"column-max", NormalizationScheme::ColumnMaxWeights,
         GroupWeights{}},
        {"raw (no normalization)", NormalizationScheme::None,
         GroupWeights{}},
    };

    std::printf("Ablation: normalization scheme and group weights\n");
    for (const auto &alias : {std::string("bbr1"), std::string("jjo")}) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        std::printf("\n%s:\n", alias.c_str());
        std::printf("  %-34s %6s %10s %10s\n", "variant", "reps",
                    "cyc err%", "dram err%");
        bench::printRule(66);
        for (const Variant &v : variants) {
            megsim::MegsimConfig config = bench::defaultMegsimConfig();
            config.normalization = v.scheme;
            config.weights = v.weights;
            megsim::MegsimPipeline pipeline(*b.data, config);
            const megsim::MegsimRun run = pipeline.run();
            std::printf("  %-34s %6zu %9.2f%% %9.2f%%\n", v.name,
                        run.numRepresentatives(),
                        pipeline.errorPercent(run,
                                              gpusim::Metric::Cycles),
                        pipeline.errorPercent(
                            run, gpusim::Metric::DramAccesses));
        }
    }
    return 0;
}
