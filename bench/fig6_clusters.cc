/**
 * @file
 * Regenerates Fig. 6: the k-means clusters found for the bbr
 * benchmark, drawn along the similarity-matrix diagonal. Exports a
 * color PPM (one categorical color per cluster painted over the
 * diagonal band) and prints the cluster inventory with
 * representatives.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace msim;

    const std::size_t frames = 900;
    workloads::GameSpec spec = workloads::benchmarkSpec("bbr1");
    spec.frames = frames;
    workloads::SceneComposer composer(spec, 1.0);
    const gfx::SceneTrace scene = composer.compose();

    megsim::BenchmarkData data(scene, bench::evalConfig(),
                               bench::cacheDir());
    megsim::MegsimPipeline pipeline(data, bench::defaultMegsimConfig());
    const megsim::MegsimRun run = pipeline.run();
    const megsim::KMeansResult &clustering = run.selection.chosen();

    // Paint the similarity matrix with the cluster bands on the
    // diagonal.
    const megsim::SimilarityMatrix sim(pipeline.features());
    util::GrayImage gray = sim.toImage(static_cast<int>(frames));
    util::RgbImage img(gray.width(), gray.height());
    const double step =
        static_cast<double>(frames) / gray.width();
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const std::uint8_t g = gray.at(x, y);
            img.at(x, y) = {g, g, g};
        }
    }
    const int band = std::max(2, img.width() / 100);
    for (int i = 0; i < img.width(); ++i) {
        const auto frame = static_cast<std::size_t>(i * step);
        const auto color =
            util::RgbImage::categorical(clustering.labels[frame]);
        for (int off = -band; off <= band; ++off) {
            const int x = i + off;
            if (x >= 0 && x < img.width())
                img.at(x, i) = color;
        }
    }
    const std::string path = bench::outDir() + "/fig6_clusters_bbr.ppm";
    img.writePpm(path);

    std::printf("Fig. 6: k-means clusters for bbr (%zu frames)\n",
                frames);
    std::printf("  exported plot: %s\n", path.c_str());
    std::printf("  clusters found: %zu (BIC %.1f, threshold T=%.2f)\n",
                clustering.k, run.selection.chosenBic(),
                bench::defaultMegsimConfig().selector.threshold);
    std::printf("%8s %8s %14s %10s\n", "cluster", "frames",
                "representative", "weight");
    for (std::size_t c = 0; c < clustering.k; ++c)
        std::printf("%8zu %8zu %14zu %10.0f\n", c, clustering.sizes[c],
                    run.representatives.frames[c],
                    run.representatives.weights[c]);

    // BIC trace of the search (the Sec. III-F stopping rule).
    std::printf("\nBIC search trace:\n%6s %14s\n", "k", "BIC");
    for (std::size_t i = 0; i < run.selection.trace.size(); ++i)
        std::printf("%6zu %14.1f%s\n", i + 1,
                    run.selection.trace[i].bic,
                    i == run.selection.chosenIndex ? "  <= chosen" : "");
    return 0;
}
