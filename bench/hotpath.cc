/**
 * @file
 * Hot-path microbench: timing-simulator throughput over the Table II
 * suite, emitting the versioned BENCH_gpusim.json perf report (the
 * repo's measured perf trajectory). Honors MEGSIM_FRAME_LIMIT /
 * MEGSIM_SCALE / MEGSIM_OUT_DIR like every other bench driver.
 *
 *   build/bench/hotpath            # full sequences
 *   MEGSIM_FRAME_LIMIT=48 build/bench/hotpath   # smoke run
 */

#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "mem/fastmem.hh"
#include "perf/perf.hh"

int
main()
{
    using namespace msim;

    perf::PerfOptions options;
    if (const char *env = std::getenv("MEGSIM_SCALE"))
        options.scale = std::atof(env);
    // MEGSIM_FAST_MEM=1 measures the calibrated-model operating
    // point; the report's mem_mode keeps the trajectories apart.
    options.fastMem = mem::FastMemConfig::fromEnv();

    auto report = perf::runHotpath(options);
    if (!report.ok()) {
        std::fprintf(stderr, "hotpath: %s\n",
                     report.error().message.c_str());
        return 1;
    }

    std::printf("# hotpath: %zu benchmarks, frame limit %zu, "
                "mem %s\n",
                report->benches.size(), report->frameLimit,
                report->memMode.c_str());
    std::printf("%-10s %8s %14s %10s %12s %14s\n", "benchmark",
                "frames", "cycles", "wall_s", "frames/s", "Mcycles/s");
    bench::printRule(74);
    for (const perf::BenchPerf &b : report->benches)
        std::printf("%-10s %8zu %14llu %10.3f %12.1f %14.1f\n",
                    b.alias.c_str(), b.frames,
                    static_cast<unsigned long long>(b.cycles),
                    b.wallSeconds, b.framesPerSec, b.mcyclesPerSec);
    bench::printRule(74);
    std::printf("%-10s %8zu %14llu %10.3f %12.1f %14.1f\n", "suite",
                report->totalFrames,
                static_cast<unsigned long long>(report->totalCycles),
                report->totalWallSeconds, report->framesPerSec,
                report->mcyclesPerSec);
    for (const perf::PhaseSplit &p : report->phases)
        std::printf("  phase %-10s %10.3f s\n", p.name.c_str(),
                    p.seconds);

    const std::string out = bench::outDir() + "/BENCH_gpusim.json";
    if (auto saved = report->save(out); !saved.ok()) {
        std::fprintf(stderr, "hotpath: cannot write %s: %s\n",
                     out.c_str(), saved.error().message.c_str());
        return 1;
    }
    std::printf("report: %s\n", out.c_str());
    return 0;
}
