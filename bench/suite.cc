/**
 * @file
 * Suite-level clustering reduction — BENCH_suite.json. Runs the
 * campaign twice over one warm ground-truth cache: once per-bench
 * (every benchmark clusters and elects representatives on its own)
 * and once with --suite-cluster (one pooled feature space, shared
 * representatives, simulate-once timing reuse). The headline numbers
 * are the simulated-timing-frame counts of the two trajectories and
 * their ratio, the suite_reduction_factor — the deliverable the CI
 * gate tracks. Analysis wall times ride along as informational
 * context (cache regeneration is excluded from both).
 *
 * Baseline comparison works like the perf/serve trajectories: warn
 * by default, enforced with --strict (a regression beyond the band
 * exits 10, an improvement beyond it prints the cp command that
 * refreshes the committed baseline, a missing baseline never gates).
 *
 *   MEGSIM_FRAME_LIMIT=48 build/bench/suite \
 *       --compare ci/BENCH_suite.json --band 40 --strict
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "batch/campaign.hh"
#include "batch/report.hh"
#include "bench_common.hh"
#include "exec/pool.hh"
#include "obs/ledger.hh"
#include "obs/profile.hh"
#include "resilience/artifact.hh"
#include "resilience/expected.hh"
#include "util/json.hh"

namespace
{

using namespace msim;

constexpr const char *kSchema = "megsim-suite-bench-v1";

struct SuiteBenchReport
{
    std::size_t frames = 0;
    std::size_t benches = 0;
    /** Timing frames the per-bench trajectory must simulate. */
    std::size_t perBenchTimingFrames = 0;
    /** Timing frames the shared-representative trajectory needs. */
    std::size_t suiteTimingFrames = 0;
    double suiteReductionFactor = 0.0;
    double perBenchAnalyzeSeconds = 0.0;
    double suiteAnalyzeSeconds = 0.0;
};

util::Json
toJson(const SuiteBenchReport &r)
{
    util::Json root = util::Json::object();
    root.set("schema", kSchema);
    root.set("frames", r.frames);
    root.set("benches", r.benches);
    root.set("per_bench_timing_frames", r.perBenchTimingFrames);
    root.set("suite_timing_frames", r.suiteTimingFrames);
    root.set("suite_reduction_factor", r.suiteReductionFactor);
    root.set("per_bench_analyze_seconds", r.perBenchAnalyzeSeconds);
    root.set("suite_analyze_seconds", r.suiteAnalyzeSeconds);
    return root;
}

/** One baseline-vs-current delta on a deterministic headline value. */
void
compareValue(const char *what, double current, double baseline,
             double band, bool strict, bool &regression,
             bool &improvement)
{
    if (baseline <= 0.0)
        return;
    const double delta = (current - baseline) / baseline * 100.0;
    if (delta > -band && delta < band)
        return;
    std::printf("%s %s: %.3f vs baseline %.3f (%+.1f%%, band "
                "±%.0f%%)\n",
                strict ? "DELTA" : "WARN", what, current, baseline,
                delta, band);
    (delta < 0.0 ? regression : improvement) = true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = bench::outDir() + "/BENCH_suite.json";
    std::string ledgerPath;
    std::string compare;
    std::string benchesArg;
    bool strict = false;
    double band = 40.0;
    std::size_t frames = 48;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        frames = static_cast<std::size_t>(std::atoll(env));

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--out") {
            if (const char *v = next())
                out = v;
        } else if (arg == "--ledger") {
            if (const char *v = next())
                ledgerPath = v;
        } else if (arg == "--compare") {
            if (const char *v = next())
                compare = v;
        } else if (arg == "--band") {
            if (const char *v = next())
                band = std::atof(v);
        } else if (arg == "--frames") {
            if (const char *v = next())
                frames = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--benches") {
            if (const char *v = next())
                benchesArg = v;
        } else if (arg == "--strict") {
            strict = true;
        } else {
            std::fprintf(stderr,
                         "usage: suite [--out PATH] [--ledger PATH]"
                         " [--compare BASELINE.json] [--band PCT]"
                         " [--strict] [--frames N] [--benches A,B,C]"
                         "\n");
            return 2;
        }
    }
    if (frames == 0)
        frames = 48;

    batch::CampaignConfig base = batch::CampaignConfig::fromEnv();
    base.frameLimit = frames;
    base.cacheDir = bench::outDir() + "/suite-bench-cache";
    if (!benchesArg.empty()) {
        base.benches.clear();
        for (std::size_t pos = 0; pos < benchesArg.size();) {
            const std::size_t comma = benchesArg.find(',', pos);
            const std::size_t end =
                comma == std::string::npos ? benchesArg.size() : comma;
            if (end > pos)
                base.benches.push_back(
                    benchesArg.substr(pos, end - pos));
            pos = end + 1;
        }
    }

    obs::RunLedger ledger;
    {
        util::Json fields = util::Json::object();
        fields.set("tool", "suite-bench");
        fields.set("mode", "suite-cluster");
        fields.set("threads", exec::Pool::global().workers());
        fields.set("frame_limit", frames);
        ledger.event("run_start", std::move(fields));
    }
    const double runStart = obs::wallSeconds();

    // Warm-up pass: regenerate the ground-truth caches so both timed
    // passes below measure analysis only, never simulation.
    {
        batch::Campaign warm(base);
        if (auto warmed = warm.run(); !warmed.ok()) {
            std::fprintf(stderr, "suite-bench: warm-up failed: %s\n",
                         warmed.error().message.c_str());
            return 1;
        }
    }

    const double perBenchStart = obs::wallSeconds();
    batch::Campaign perBench(base);
    auto perBenchReport = perBench.run();
    const double perBenchSeconds =
        obs::wallSeconds() - perBenchStart;
    if (!perBenchReport.ok()) {
        std::fprintf(stderr, "suite-bench: per-bench run failed: %s\n",
                     perBenchReport.error().message.c_str());
        return 1;
    }

    batch::CampaignConfig suiteConfig = base;
    suiteConfig.suiteCluster = true;
    const double suiteStart = obs::wallSeconds();
    batch::Campaign suite(suiteConfig);
    auto suiteReport = suite.run();
    const double suiteSeconds = obs::wallSeconds() - suiteStart;
    if (!suiteReport.ok()) {
        std::fprintf(stderr, "suite-bench: suite run failed: %s\n",
                     suiteReport.error().message.c_str());
        return 1;
    }

    SuiteBenchReport report;
    report.frames = frames;
    report.benches = perBenchReport->benchmarks.size();
    report.perBenchTimingFrames =
        suiteReport->perBenchRepresentatives;
    report.suiteTimingFrames = suiteReport->sharedRepresentatives;
    report.suiteReductionFactor = suiteReport->suiteReductionFactor;
    report.perBenchAnalyzeSeconds = perBenchSeconds;
    report.suiteAnalyzeSeconds = suiteSeconds;

    // Cross-check: the suite report's per-bench baseline is computed
    // by the same pipelines the per-bench campaign runs, so the two
    // trajectories must agree on the per-bench timing-frame count.
    const auto perBenchTotal = static_cast<std::size_t>(
        perBenchReport->totalRepresentatives);
    if (perBenchTotal != report.perBenchTimingFrames) {
        std::fprintf(stderr,
                     "suite-bench: per-bench rep count diverged: "
                     "campaign %zu vs suite baseline %zu\n",
                     perBenchTotal, report.perBenchTimingFrames);
        return 1;
    }

    std::printf("# suite: %zu benches, %zu frames each\n",
                report.benches, frames);
    std::printf("%-10s %7s %12s %13s %9s\n", "bench", "frames",
                "per-bench_k", "suite_serving", "borrowed");
    bench::printRule(56);
    for (std::size_t i = 0; i < suiteReport->benchmarks.size(); ++i) {
        const batch::BenchmarkReport &row =
            suiteReport->benchmarks[i];
        std::printf("%-10s %7zu %12zu %13zu %9zu\n",
                    row.alias.c_str(), row.frames,
                    perBenchReport->benchmarks[i].representatives,
                    row.representatives, row.borrowedReps);
    }
    bench::printRule(56);
    std::printf("timing frames: %zu per-bench -> %zu shared "
                "(%.2fx fewer)\n",
                report.perBenchTimingFrames,
                report.suiteTimingFrames,
                report.suiteReductionFactor);
    std::printf("analysis wall: %.3fs per-bench, %.3fs suite\n",
                report.perBenchAnalyzeSeconds,
                report.suiteAnalyzeSeconds);

    {
        util::Json values = util::Json::object();
        values.set("suite_reduction_factor",
                   report.suiteReductionFactor);
        values.set("per_bench_timing_frames",
                   report.perBenchTimingFrames);
        values.set("suite_timing_frames", report.suiteTimingFrames);
        util::Json fields = util::Json::object();
        fields.set("values", std::move(values));
        ledger.event("metrics", std::move(fields));
    }
    {
        util::Json fields = util::Json::object();
        fields.set("wall_seconds", obs::wallSeconds() - runStart);
        fields.set("status", "ok");
        ledger.event("run_end", std::move(fields));
    }

    if (auto saved = resilience::atomicWriteFile(
            out, toJson(report).dump() + "\n");
        !saved.ok()) {
        std::fprintf(stderr, "suite-bench: cannot write %s: %s\n",
                     out.c_str(), saved.error().message.c_str());
        return 1;
    }
    std::printf("report: %s\n", out.c_str());
    if (!ledgerPath.empty()) {
        if (auto saved = ledger.save(ledgerPath); !saved.ok()) {
            std::fprintf(stderr,
                         "suite-bench: cannot write %s: %s\n",
                         ledgerPath.c_str(),
                         saved.error().message.c_str());
            return 1;
        }
        std::printf("ledger: %s\n", ledgerPath.c_str());
    }

    int rc = 0;
    if (!compare.empty()) {
        auto text = resilience::readFileToString(compare);
        auto loaded = text.ok()
                          ? util::Json::parse(*text)
                          : resilience::Expected<util::Json>(
                                text.error());
        if (!loaded.ok()) {
            // A missing baseline never gates — strict or not — so
            // the first measured point can land before its baseline.
            std::fprintf(stderr, "suite-bench: no baseline %s: %s\n",
                         compare.c_str(),
                         loaded.error().message.c_str());
        } else {
            bool regression = false;
            bool improvement = false;
            auto field = [&](const char *key) {
                const util::Json *v = loaded->find(key);
                return v ? v->asNumber() : 0.0;
            };
            // Deterministic headline values only: wall times are
            // host noise and stay informational.
            compareValue("suite_reduction_factor",
                         report.suiteReductionFactor,
                         field("suite_reduction_factor"), band,
                         strict, regression, improvement);
            // Fewer timing frames is better, so compare the
            // reduction both ways round: a frame-count increase
            // shows up as a factor regression above.
            compareValue(
                "per_bench_timing_frames",
                static_cast<double>(report.perBenchTimingFrames),
                field("per_bench_timing_frames"), band, strict,
                regression, improvement);
            if (!regression && !improvement)
                std::printf("within ±%.0f%% of %s\n", band,
                            compare.c_str());
            if (strict && regression) {
                std::fprintf(stderr,
                             "suite-bench: regression beyond the "
                             "±%.0f%% band vs %s\n",
                             band, compare.c_str());
                rc = 10;
            } else if (strict && improvement) {
                std::printf("suite-bench improved beyond the band; "
                            "refresh the committed baseline:\n"
                            "  cp %s %s\n",
                            out.c_str(), compare.c_str());
            }
        }
    }
    std::error_code ec;
    std::filesystem::remove_all(base.cacheDir, ec);
    return rc;
}
