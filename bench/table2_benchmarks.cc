/**
 * @file
 * Regenerates Table II: the evaluated benchmark set with its
 * characteristics (frames, shader populations, total cycles, IPC).
 * Cycle counts are from this repository's scaled simulator profile,
 * so absolute magnitudes differ from the paper; the orderings (3D
 * games cost more than 2D; IPC between ~3 and ~6) are the reproduced
 * shape.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace msim;

    std::printf("Table II: Evaluated benchmark set\n");
    std::printf("%-6s %-32s %-5s %-10s %7s %6s %6s %12s %6s\n", "Alias",
                "Benchmark", "Type", "Downloads", "Frames", "VS", "FS",
                "Cycles(M)", "IPC");
    bench::printRule(100);

    for (const auto &alias : workloads::benchmarkNames()) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        gpusim::FrameStats total;
        for (const auto &s : b.data->frameStats())
            total += s;
        std::printf("%-6s %-32s %-5s %-10s %7zu %6zu %6zu %12.1f %6.2f\n",
                    alias.c_str(), b.spec.title.c_str(),
                    b.spec.is3d ? "3D" : "2D",
                    b.spec.downloadsMillions.c_str(),
                    b.scene.numFrames(), b.scene.numVertexShaders(),
                    b.scene.numFragmentShaders(),
                    static_cast<double>(total.cycles) / 1e6,
                    total.ipc());
    }
    return 0;
}
