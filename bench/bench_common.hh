/**
 * @file
 * Shared helpers for the table/figure regeneration binaries: the
 * evaluation GPU profile, benchmark loading with the shared on-disk
 * frame cache, and fixed-width table printing.
 */

#ifndef MSIM_BENCH_BENCH_COMMON_HH
#define MSIM_BENCH_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "gfx/trace.hh"
#include "gpusim/gpu_config.hh"
#include "core/megsim.hh"
#include "workloads/workloads.hh"

namespace msim::bench
{

/** A loaded benchmark: scene + cached per-frame data. */
struct LoadedBenchmark
{
    std::string alias;
    workloads::GameSpec spec;
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
};

/** The GPU profile every evaluation bench uses. */
gpusim::GpuConfig evalConfig();

/** Directory of the shared frame cache (MEGSIM_CACHE_DIR overrides). */
std::string cacheDir();

/** Output directory for CSV/PGM artifacts (MEGSIM_OUT_DIR overrides). */
std::string outDir();

/**
 * Load one benchmark. Honors MEGSIM_FRAME_LIMIT (truncates sequences,
 * for quick smoke runs) and MEGSIM_SCALE (workload complexity).
 */
LoadedBenchmark loadBenchmark(const std::string &alias);

/** Load all eight benchmarks in Table II order. */
std::vector<LoadedBenchmark> loadAllBenchmarks();

/** The default MEGsim methodology configuration of the evaluation. */
megsim::MegsimConfig defaultMegsimConfig();

/** Print a horizontal rule sized for @p width columns. */
void printRule(int width);

} // namespace msim::bench

#endif // MSIM_BENCH_BENCH_COMMON_HH
