/**
 * @file
 * google-benchmark microbenchmarks for the performance-critical
 * components: cache lookups, DRAM transactions, rasterization,
 * frame simulation, k-means and the similarity matrix.
 */

#include <benchmark/benchmark.h>

#include "gpusim/functional_simulator.hh"
#include "gpusim/rasterizer.hh"
#include "gpusim/timing_simulator.hh"
#include "core/megsim.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/random.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace msim;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheConfig config;
    config.sizeBytes = static_cast<std::uint64_t>(state.range(0));
    mem::Cache cache(config);
    sim::Rng rng(1);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        const sim::Addr addr = rng.below(4u << 20);
        sum += cache.access(addr, false).hit;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(4 << 10)->Arg(32 << 10)->Arg(256 << 10);

void
BM_DramAccess(benchmark::State &state)
{
    mem::Dram dram((mem::DramConfig()));
    sim::Rng rng(2);
    sim::Tick now = 0;
    for (auto _ : state) {
        now = dram.access(now, rng.below(1u << 26), false);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_RasterizeTriangle(benchmark::State &state)
{
    gpusim::ScreenTriangle tri;
    tri.v[0] = {0.0f, 0.0f};
    tri.v[1] = {static_cast<float>(state.range(0)), 0.0f};
    tri.v[2] = {0.0f, static_cast<float>(state.range(0))};
    tri.z[0] = tri.z[1] = tri.z[2] = 0.5f;
    tri.uv[1] = {1, 0};
    tri.uv[2] = {0, 1};
    const util::BBox2i bounds{0, 0, 192, 96};
    std::uint64_t quads = 0;
    for (auto _ : state) {
        quads += gpusim::rasterizeTriangleInTile(
            tri, bounds, [](const gpusim::QuadFragment &) {});
    }
    benchmark::DoNotOptimize(quads);
    state.SetItemsProcessed(quads);
}
BENCHMARK(BM_RasterizeTriangle)->Arg(16)->Arg(64)->Arg(96);

void
BM_FunctionalFrame(benchmark::State &state)
{
    const auto scene = workloads::buildBenchmark("hwh", 1.0, 40);
    gpusim::SceneBinding binding(scene);
    gpusim::FunctionalSimulator sim(
        gpusim::GpuConfig::evaluationScaled(), binding);
    std::size_t f = 20; // a gameplay frame
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.simulate(scene.frames[f]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalFrame)->Unit(benchmark::kMillisecond);

void
BM_TimingFrame(benchmark::State &state)
{
    const auto scene = workloads::buildBenchmark("hwh", 1.0, 40);
    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator sim(gpusim::GpuConfig::evaluationScaled(),
                                binding);
    std::size_t f = 20;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.simulate(scene.frames[f]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingFrame)->Unit(benchmark::kMillisecond);

megsim::FeatureMatrix
syntheticFeatures(std::size_t n, std::size_t dim)
{
    megsim::FeatureMatrix m(n, dim - 1, 0);
    sim::Rng rng(7);
    for (std::size_t f = 0; f < n; ++f)
        for (std::size_t d = 0; d < dim; ++d)
            m.at(f, d) = rng.uniform() + (f % 8 == d % 8 ? 3.0 : 0.0);
    return m;
}

void
BM_KMeans(benchmark::State &state)
{
    const auto m = syntheticFeatures(
        static_cast<std::size_t>(state.range(0)), 24);
    for (auto _ : state) {
        benchmark::DoNotOptimize(megsim::kmeans(m, 16));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void
BM_SimilarityMatrix(benchmark::State &state)
{
    const auto m = syntheticFeatures(
        static_cast<std::size_t>(state.range(0)), 32);
    for (auto _ : state) {
        megsim::SimilarityMatrix sim(m);
        benchmark::DoNotOptimize(sim.maxDistance());
    }
}
BENCHMARK(BM_SimilarityMatrix)
    ->Arg(300)
    ->Arg(900)
    ->Unit(benchmark::kMillisecond);

void
BM_BicSearch(benchmark::State &state)
{
    const auto m = syntheticFeatures(800, 24);
    for (auto _ : state) {
        benchmark::DoNotOptimize(megsim::selectClustering(m));
    }
}
BENCHMARK(BM_BicSearch)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
