/**
 * @file
 * Runs the full Table II suite through the batch campaign runner
 * (one shared pool) and writes the machine-readable accuracy report
 * CI gates on. The per-benchmark rows reproduce Table III (reduction
 * factors) and Fig. 7 (relative error per metric) in one pass.
 *
 * Usage: campaign [--check thresholds.json]
 * Honors MEGSIM_FRAME_LIMIT / MEGSIM_SCALE / MEGSIM_CACHE_DIR /
 * MEGSIM_OUT_DIR / MEGSIM_THREADS like every other bench driver.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "batch/campaign.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace msim;

    std::string thresholdsPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            thresholdsPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--check thresholds.json]\n",
                         argv[0]);
            return 2;
        }
    }

    batch::CampaignConfig config = batch::CampaignConfig::fromEnv();
    config.cacheDir = bench::cacheDir();
    batch::Campaign campaign(std::move(config));
    auto report = campaign.run();
    if (!report.ok()) {
        std::fprintf(stderr, "campaign failed: %s\n",
                     report.error().message.c_str());
        return 1;
    }

    std::printf("Campaign: Table III + Fig. 7 in one shared-pool "
                "pass (%zu threads)\n",
                report->threads);
    std::printf("%-10s %8s %5s %6s %10s %8s %8s %8s %8s\n",
                "Benchmark", "Frames", "k", "Reps", "Reduction",
                "Cycles%", "DRAM%", "L2%", "Tile%");
    bench::printRule(80);
    for (const batch::BenchmarkReport &b : report->benchmarks)
        std::printf(
            "%-10s %8zu %5zu %6zu %9.1fx %8.3f %8.3f %8.3f %8.3f\n",
            b.alias.c_str(), b.frames, b.chosenK, b.representatives,
            b.reduction, b.errorPercent[0], b.errorPercent[1],
            b.errorPercent[2], b.errorPercent[3]);
    bench::printRule(80);
    std::printf("%-10s mean reduction %.1fx, suite reduction %.1fx, "
                "pool utilization %.0f%%\n",
                "Suite", report->meanReduction,
                report->suiteReduction,
                report->poolUtilization * 100.0);

    const std::string out = bench::outDir() + "/campaign.json";
    if (auto saved = report->save(out); !saved.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                     saved.error().message.c_str());
        return 1;
    }
    std::printf("report: %s\n", out.c_str());

    if (!thresholdsPath.empty()) {
        auto limits = batch::Thresholds::load(thresholdsPath);
        if (!limits.ok()) {
            std::fprintf(stderr, "cannot load thresholds %s: %s\n",
                         thresholdsPath.c_str(),
                         limits.error().message.c_str());
            return 1;
        }
        const auto violations = batch::checkThresholds(*report, *limits);
        for (const std::string &line : violations)
            std::fprintf(stderr, "threshold breach: %s\n",
                         line.c_str());
        if (!violations.empty())
            return 1;
        std::printf("threshold check passed\n");
    }
    return 0;
}
