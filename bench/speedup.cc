/**
 * @file
 * Wall-clock speedup study (Sec. V-A): time the full cycle-level
 * simulation of a sequence against the MEGsim flow (functional pass +
 * clustering + cycle-level simulation of the representatives only).
 *
 * Uses a configurable prefix of two benchmarks so the full simulation
 * stays affordable inside this bench; the frame-count reduction factors
 * of the complete sequences are in Table III. MEGSIM_SPEEDUP_FRAMES
 * overrides the prefix length.
 *
 * A second table runs the same MEGsim flow through exec::Pool at 1, 2
 * and the configured number of worker threads and reports the
 * wall-clock of each — the representative set must be identical on
 * every row (the pool's determinism contract).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_common.hh"
#include "exec/pool.hh"
#include "gpusim/functional_simulator.hh"
#include "gpusim/timing_simulator.hh"

namespace
{

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main()
{
    using namespace msim;

    std::size_t frames = 500;
    if (const char *env = std::getenv("MEGSIM_SPEEDUP_FRAMES"))
        frames = static_cast<std::size_t>(std::atoll(env));

    std::printf("Simulation-time reduction (Sec. V-A), %zu-frame "
                "prefixes\n",
                frames);
    std::printf("%-8s %10s %10s %10s %8s %10s\n", "bench", "full (s)",
                "megsim (s)", "speedup", "reps", "frame red.");
    bench::printRule(62);

    for (const auto &alias :
         {std::string("hwh"), std::string("pvz")}) {
        const auto scene =
            workloads::buildBenchmark(alias, 1.0, frames);
        const auto config = bench::evalConfig();

        // Full cycle-level simulation of every frame.
        const double t0 = now_s();
        gpusim::SceneBinding fb(scene);
        gpusim::TimingSimulator full(config, fb);
        for (const auto &frame : scene.frames)
            full.simulate(frame);
        const double t_full = now_s() - t0;

        // MEGsim: functional pass + clustering + representatives only.
        const double t1 = now_s();
        gpusim::SceneBinding mb(scene);
        gpusim::FunctionalSimulator functional(config, mb);
        std::vector<gpusim::FrameActivity> acts;
        acts.reserve(frames);
        for (const auto &frame : scene.frames)
            acts.push_back(functional.simulate(frame));
        megsim::FeatureMatrix features =
            megsim::buildFeatureMatrix(acts, scene);
        megsim::normalize(features);
        const auto clustered = megsim::randomProject(features, 24);
        const auto sel = megsim::selectClustering(clustered);
        const auto reps =
            megsim::representativeSet(clustered, sel.chosen());
        gpusim::SceneBinding rb(scene);
        gpusim::TimingSimulator timing(config, rb);
        for (std::size_t frame : reps.frames)
            timing.simulate(scene.frames[frame]);
        const double t_megsim = now_s() - t1;

        std::printf("%-8s %10.2f %10.2f %9.1fx %8zu %9.1fx\n",
                    alias.c_str(), t_full, t_megsim,
                    t_full / t_megsim, reps.size(),
                    static_cast<double>(frames) /
                        static_cast<double>(reps.size()));
    }
    std::printf("\nNote: the wall-clock speedup is bounded by the "
                "functional pass\n(which MEGsim always needs); the "
                "paper's 126x refers to the reduction\nin cycle-level "
                "frames, reproduced in Table III on the full "
                "sequences.\n");

    // Thread scaling: the identical flow (parallel functional pass +
    // clustering) at 1, 2 and the configured thread count. Every row
    // must compute the same representative frames — only the
    // wall-clock is allowed to change.
    const std::size_t configured = exec::Pool::configuredThreads();
    std::vector<std::size_t> counts;
    for (std::size_t t :
         {std::size_t(1), std::size_t(2), configured})
        if (std::find(counts.begin(), counts.end(), t) ==
            counts.end())
            counts.push_back(t);

    std::printf("\nThread scaling (megsim flow, bench hwh, %zu "
                "frames)\n",
                frames);
    std::printf("%-8s %10s %8s %10s\n", "threads", "wall (s)", "reps",
                "identical");
    bench::printRule(40);

    const auto scene = workloads::buildBenchmark("hwh", 1.0, frames);
    const auto config = bench::evalConfig();
    std::vector<std::size_t> reference;
    for (std::size_t t : counts) {
        exec::Pool::setConfiguredThreads(t);
        exec::Pool &pool = exec::Pool::global();
        const double t0 = now_s();
        gpusim::SceneBinding binding(scene);
        std::vector<std::unique_ptr<gpusim::FunctionalSimulator>>
            sims(pool.workers());
        std::vector<gpusim::FrameActivity> acts(scene.numFrames());
        (void)pool.parallelMapOrdered<gpusim::FrameActivity>(
            scene.numFrames(),
            [&](std::size_t f, std::size_t w)
                -> resilience::Expected<gpusim::FrameActivity> {
                if (!sims[w])
                    sims[w] = std::make_unique<
                        gpusim::FunctionalSimulator>(config, binding);
                return sims[w]->simulate(scene.frames[f]);
            },
            [&](std::size_t f, gpusim::FrameActivity &&act) {
                acts[f] = std::move(act);
            });
        megsim::FeatureMatrix features =
            megsim::buildFeatureMatrix(acts, scene);
        megsim::normalize(features);
        const auto clustered = megsim::randomProject(features, 24);
        const auto sel = megsim::selectClustering(clustered);
        const auto reps =
            megsim::representativeSet(clustered, sel.chosen());
        const double wall = now_s() - t0;
        if (reference.empty())
            reference = reps.frames;
        std::printf("%-8zu %10.2f %8zu %10s\n", pool.workers(), wall,
                    reps.frames.size(),
                    reps.frames == reference ? "yes" : "NO");
    }
    exec::Pool::setConfiguredThreads(configured);
    return 0;
}
