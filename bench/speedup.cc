/**
 * @file
 * Wall-clock speedup study (Sec. V-A): time the full cycle-level
 * simulation of a sequence against the MEGsim flow (functional pass +
 * clustering + cycle-level simulation of the representatives only).
 *
 * Uses a configurable prefix of two benchmarks so the full simulation
 * stays affordable inside this bench; the frame-count reduction factors
 * of the complete sequences are in Table III. MEGSIM_SPEEDUP_FRAMES
 * overrides the prefix length.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "gpusim/functional_simulator.hh"
#include "gpusim/timing_simulator.hh"

namespace
{

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main()
{
    using namespace msim;

    std::size_t frames = 500;
    if (const char *env = std::getenv("MEGSIM_SPEEDUP_FRAMES"))
        frames = static_cast<std::size_t>(std::atoll(env));

    std::printf("Simulation-time reduction (Sec. V-A), %zu-frame "
                "prefixes\n",
                frames);
    std::printf("%-8s %10s %10s %10s %8s %10s\n", "bench", "full (s)",
                "megsim (s)", "speedup", "reps", "frame red.");
    bench::printRule(62);

    for (const auto &alias :
         {std::string("hwh"), std::string("pvz")}) {
        const auto scene =
            workloads::buildBenchmark(alias, 1.0, frames);
        const auto config = bench::evalConfig();

        // Full cycle-level simulation of every frame.
        const double t0 = now_s();
        gpusim::SceneBinding fb(scene);
        gpusim::TimingSimulator full(config, fb);
        for (const auto &frame : scene.frames)
            full.simulate(frame);
        const double t_full = now_s() - t0;

        // MEGsim: functional pass + clustering + representatives only.
        const double t1 = now_s();
        gpusim::SceneBinding mb(scene);
        gpusim::FunctionalSimulator functional(config, mb);
        std::vector<gpusim::FrameActivity> acts;
        acts.reserve(frames);
        for (const auto &frame : scene.frames)
            acts.push_back(functional.simulate(frame));
        megsim::FeatureMatrix features =
            megsim::buildFeatureMatrix(acts, scene);
        megsim::normalize(features);
        const auto clustered = megsim::randomProject(features, 24);
        const auto sel = megsim::selectClustering(clustered);
        const auto reps =
            megsim::representativeSet(clustered, sel.chosen());
        gpusim::SceneBinding rb(scene);
        gpusim::TimingSimulator timing(config, rb);
        for (std::size_t frame : reps.frames)
            timing.simulate(scene.frames[frame]);
        const double t_megsim = now_s() - t1;

        std::printf("%-8s %10.2f %10.2f %9.1fx %8zu %9.1fx\n",
                    alias.c_str(), t_full, t_megsim,
                    t_full / t_megsim, reps.size(),
                    static_cast<double>(frames) /
                        static_cast<double>(reps.size()));
    }
    std::printf("\nNote: the wall-clock speedup is bounded by the "
                "functional pass\n(which MEGsim always needs); the "
                "paper's 126x refers to the reduction\nin cycle-level "
                "frames, reproduced in Table III on the full "
                "sequences.\n");
    return 0;
}
