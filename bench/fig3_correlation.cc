/**
 * @file
 * Regenerates Fig. 3: correlation between the characterizing input
 * parameters (VSCV, FSCV, PRIM) and the total number of cycles, per
 * benchmark. Shader-count groups use the coefficient of multiple
 * correlation (Eqs. 2-3); PRIM uses Pearson's coefficient (Eq. 1).
 */

#include <cstdio>

#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace msim;

    std::printf("Fig. 3: Correlation of input parameters with total "
                "cycles\n");
    std::printf("%-10s %10s %10s %10s\n", "Benchmark", "VSCV", "FSCV",
                "PRIM");
    bench::printRule(44);

    util::CsvTable csv;
    csv.header = {"vscv", "fscv", "prim"};

    double sums[3] = {};
    for (const auto &alias : workloads::benchmarkNames()) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        megsim::MegsimPipeline pipeline(*b.data,
                                        bench::defaultMegsimConfig());
        const megsim::CorrelationStudy study = megsim::correlationStudy(
            pipeline.rawFeatures(),
            b.data->metric(gpusim::Metric::Cycles));
        std::printf("%-10s %10.3f %10.3f %10.3f\n", alias.c_str(),
                    study.vscv, study.fscv, study.prim);
        csv.rows.push_back({study.vscv, study.fscv, study.prim});
        sums[0] += study.vscv;
        sums[1] += study.fscv;
        sums[2] += study.prim;
    }
    bench::printRule(44);
    std::printf("%-10s %10.3f %10.3f %10.3f\n", "Average", sums[0] / 8,
                sums[1] / 8, sums[2] / 8);

    util::writeCsv(bench::outDir() + "/fig3_correlation.csv", csv);
    return 0;
}
