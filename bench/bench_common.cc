#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>

namespace msim::bench
{

gpusim::GpuConfig
evalConfig()
{
    return gpusim::GpuConfig::evaluationScaled();
}

std::string
cacheDir()
{
    if (const char *env = std::getenv("MEGSIM_CACHE_DIR"))
        return env;
    return "out/cache";
}

std::string
outDir()
{
    if (const char *env = std::getenv("MEGSIM_OUT_DIR"))
        return env;
    return "out";
}

LoadedBenchmark
loadBenchmark(const std::string &alias)
{
    std::size_t frame_limit = 0;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        frame_limit = static_cast<std::size_t>(std::atoll(env));
    double scale = 1.0;
    if (const char *env = std::getenv("MEGSIM_SCALE"))
        scale = std::atof(env);

    LoadedBenchmark b;
    b.alias = alias;
    b.spec = workloads::benchmarkSpec(alias);
    b.scene = workloads::buildBenchmark(alias, scale, frame_limit);
    b.data = std::make_unique<megsim::BenchmarkData>(
        b.scene, evalConfig(), cacheDir());
    return b;
}

std::vector<LoadedBenchmark>
loadAllBenchmarks()
{
    std::vector<LoadedBenchmark> all;
    for (const auto &alias : workloads::benchmarkNames())
        all.push_back(loadBenchmark(alias));
    return all;
}

megsim::MegsimConfig
defaultMegsimConfig()
{
    megsim::MegsimConfig config;
    config.selector.threshold = 0.85;
    config.selector.kmeans.seed = 0x4d4547; // "MEG"
    return config;
}

void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace msim::bench
