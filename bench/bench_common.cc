#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "exec/pool.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"

namespace msim::bench
{

namespace
{

/**
 * Resolve a directory from @p env (fallback @p fallback), create it
 * if missing, and log the resolved path once — bench runs always say
 * where their artifacts went.
 */
std::string
resolveDir(const char *env, const char *fallback)
{
    std::string dir = fallback;
    if (const char *value = std::getenv(env))
        dir = value;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        sim::warn("cannot create %s '%s': %s", env, dir.c_str(),
                  ec.message().c_str());
    sim::informOnce(env, "%s = %s", env, dir.c_str());
    return dir;
}

/**
 * Prints the per-phase wall-clock summary when the bench exits. The
 * process-wide profiler this reads already aggregates every worker's
 * shard: exec::Pool redirects in-job phases to per-worker profilers
 * and merges them back on job completion, so phase seconds here are
 * the SUM across workers (total CPU time per phase), not whichever
 * worker happened to write last.
 */
struct PhaseReportAtExit
{
    PhaseReportAtExit()
    {
        // Construct the global profiler before registering the exit
        // hook so it is destroyed after the hook has run.
        obs::PhaseProfiler::global();
        std::atexit([] {
            obs::PhaseProfiler &profiler = obs::PhaseProfiler::global();
            if (!profiler.empty())
                profiler.report(std::cerr);
        });
    }
};

} // namespace

gpusim::GpuConfig
evalConfig()
{
    return gpusim::GpuConfig::evaluationScaled();
}

std::string
cacheDir()
{
    static const std::string dir =
        resolveDir("MEGSIM_CACHE_DIR", "out/cache");
    return dir;
}

std::string
outDir()
{
    static const std::string dir = resolveDir("MEGSIM_OUT_DIR", "out");
    return dir;
}

LoadedBenchmark
loadBenchmark(const std::string &alias)
{
    static PhaseReportAtExit reportAtExit;
    sim::informOnce("exec.pool.workers", "worker pool: %zu threads",
                    exec::Pool::global().workers());

    std::size_t frame_limit = 0;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        frame_limit = static_cast<std::size_t>(std::atoll(env));
    double scale = 1.0;
    if (const char *env = std::getenv("MEGSIM_SCALE"))
        scale = std::atof(env);

    auto spec = workloads::findBenchmarkSpec(alias);
    if (!spec.ok()) {
        // A typoed alias is an operator mistake, not a simulator bug:
        // print the did-you-mean message and exit cleanly.
        std::fprintf(stderr, "%s\n", spec.error().message.c_str());
        std::exit(2);
    }

    LoadedBenchmark b;
    b.alias = alias;
    b.spec = *spec;
    b.scene = workloads::buildBenchmark(alias, scale, frame_limit);
    b.data = std::make_unique<megsim::BenchmarkData>(
        b.scene, evalConfig(), cacheDir());
    return b;
}

std::vector<LoadedBenchmark>
loadAllBenchmarks()
{
    std::vector<LoadedBenchmark> all;
    for (const auto &alias : workloads::benchmarkNames())
        all.push_back(loadBenchmark(alias));
    return all;
}

megsim::MegsimConfig
defaultMegsimConfig()
{
    megsim::MegsimConfig config;
    config.selector.threshold = 0.85;
    config.selector.kmeans.seed = 0x4d4547; // "MEG"
    return config;
}

void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace msim::bench
