/**
 * @file
 * Regenerates Table III: the reduction factor in the number of frames
 * MEGsim has to simulate for each benchmark.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace msim;

    std::printf("Table III: Reduction factor in the number of frames\n");
    std::printf("%-10s %14s %14s %18s\n", "Benchmark", "Actual frames",
                "MEGsim frames", "Reduction factor");
    bench::printRule(60);

    double total_frames = 0.0;
    double total_reps = 0.0;
    for (const auto &alias : workloads::benchmarkNames()) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        megsim::MegsimPipeline pipeline(*b.data,
                                        bench::defaultMegsimConfig());
        const megsim::MegsimRun run = pipeline.run();
        total_frames += static_cast<double>(run.numFrames);
        total_reps += static_cast<double>(run.numRepresentatives());
        std::printf("%-10s %14zu %14zu %17.0fx\n", alias.c_str(),
                    run.numFrames, run.numRepresentatives(),
                    run.reductionFactor());
    }
    bench::printRule(60);
    std::printf("%-10s %14.0f %14.1f %17.0fx\n", "Average",
                total_frames / 8.0, total_reps / 8.0,
                total_frames / total_reps);
    return 0;
}
