/**
 * @file
 * Ablation: MEGsim on a TBDR (Hidden Surface Removal) GPU.
 *
 * Sec. IV-A argues the methodology is architecture-independent and can
 * be extended to deferred-rendering GPUs. This bench flips the
 * simulator to the PowerVR-style HSR visibility policy, reruns the
 * full flow on two benchmarks and reports (a) the overdraw reduction
 * HSR delivers and (b) that MEGsim's accuracy is preserved — the
 * selected representatives come from the same architecture-independent
 * functional data.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace msim;

    std::printf("Ablation: TBR (early-Z) vs TBDR (deferred HSR)\n");
    for (const auto &alias :
         {std::string("hwh"), std::string("jjo")}) {
        std::printf("\n%s:\n", alias.c_str());
        std::printf("  %-12s %14s %12s %8s %12s\n", "mode",
                    "frags shaded", "cycles(M)", "reps", "cyc err%");
        bench::printRule(64);
        for (const bool hsr : {false, true}) {
            bench::LoadedBenchmark b = bench::loadBenchmark(alias);
            gpusim::GpuConfig config = bench::evalConfig();
            config.hsrEnabled = hsr;
            megsim::BenchmarkData data(b.scene, config,
                                       bench::cacheDir());
            megsim::MegsimPipeline pipeline(
                data, bench::defaultMegsimConfig());
            const megsim::MegsimRun run = pipeline.run();

            gpusim::FrameStats total;
            for (const auto &s : data.frameStats())
                total += s;
            std::printf("  %-12s %14llu %12.1f %8zu %11.2f%%\n",
                        hsr ? "TBDR (HSR)" : "TBR",
                        static_cast<unsigned long long>(
                            total.fsInvocations),
                        static_cast<double>(total.cycles) / 1e6,
                        run.numRepresentatives(),
                        pipeline.errorPercent(run,
                                              gpusim::Metric::Cycles));
        }
    }
    std::printf("\nHSR shades fewer fragments (overdraw removed) and "
                "shortens frames;\nMEGsim's accuracy holds on both "
                "architectures.\n");
    return 0;
}
