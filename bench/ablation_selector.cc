/**
 * @file
 * Ablation: robustness of the Sec. III-F stopping rule.
 *
 * The paper stops the cluster search at the first BIC decrease. With a
 * single k-means attempt per k that rule is brittle: one unlucky
 * initialization ends the search at a handful of clusters and the
 * estimates degrade by an order of magnitude. This bench quantifies
 * the effect of the two robustness knobs this implementation adds
 * (per-k restarts and decrease patience), motivating the defaults
 * documented in DESIGN.md §5.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace msim;

    struct Variant
    {
        const char *name;
        std::size_t restarts;
        std::size_t patience;
    };
    const Variant variants[] = {
        {"paper-literal (1 attempt, stop at 1st drop)", 1, 0},
        {"restarts only (3 attempts)", 3, 0},
        {"patience only (tolerate 3 drops)", 1, 3},
        {"defaults (3 attempts + patience 3)", 3, 3},
    };

    std::printf("Ablation: BIC search robustness (Sec. III-F stopping "
                "rule)\n");
    for (const auto &alias :
         {std::string("bbr1"), std::string("pvz")}) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        std::printf("\n%s:\n", alias.c_str());
        std::printf("  %-46s %6s %12s\n", "variant", "reps",
                    "cycles err%");
        bench::printRule(70);
        for (const Variant &v : variants) {
            megsim::MegsimConfig config = bench::defaultMegsimConfig();
            config.selector.restarts = v.restarts;
            config.selector.patience = v.patience;
            megsim::MegsimPipeline pipeline(*b.data, config);
            const megsim::MegsimRun run = pipeline.run();
            std::printf("  %-46s %6zu %11.2f%%\n", v.name,
                        run.numRepresentatives(),
                        pipeline.errorPercent(run,
                                              gpusim::Metric::Cycles));
        }
    }
    return 0;
}
