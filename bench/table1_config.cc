/**
 * @file
 * Regenerates Table I: the GPU simulation parameters of the modelled
 * Arm Mali-450-like TBR architecture, and verifies that the library
 * defaults match the paper's values.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

int failures = 0;

void
check(const char *what, std::uint64_t have, std::uint64_t want)
{
    if (have != want) {
        std::printf("  MISMATCH %s: %llu != %llu\n", what,
                    static_cast<unsigned long long>(have),
                    static_cast<unsigned long long>(want));
        ++failures;
    }
}

} // namespace

int
main()
{
    using namespace msim;
    const gpusim::GpuConfig c = gpusim::GpuConfig::baseline();

    std::printf("Table I: GPU simulation parameters\n");
    std::printf("Baseline GPU\n");
    std::printf("  Frequency            %u MHz\n", c.frequencyMhz);
    std::printf("  Voltage              %.1f V\n", c.voltage);
    std::printf("  Technology node      %u nm\n", c.technologyNm);
    std::printf("  Screen resolution    %ux%u\n", c.screenWidth,
                c.screenHeight);
    std::printf("  Tile size            %ux%u pixels\n", c.tileWidth,
                c.tileHeight);
    std::printf("Main memory\n");
    std::printf("  Latency              %llu-%llu cycles\n",
                static_cast<unsigned long long>(
                    c.memory.dram.rowHitLatency),
                static_cast<unsigned long long>(
                    c.memory.dram.rowMissLatency));
    std::printf("  Bandwidth            %u B/cycle\n",
                c.memory.dram.bytesPerCycle);
    std::printf("  Line size            %u bytes, %u banks\n",
                c.memory.dram.lineBytes, c.memory.dram.banks);
    std::printf("Queues\n");
    std::printf("  Vertex (in & out)    %u entries, %u B/entry\n",
                c.vertexInQueueEntries, c.vertexQueueEntryBytes);
    std::printf("  Triangle & tile      %u entries, %u B/entry\n",
                c.triangleQueueEntries, c.triangleQueueEntryBytes);
    std::printf("  Fragment             %u entries, %u B/entry\n",
                c.fragmentQueueEntries, c.fragmentQueueEntryBytes);
    std::printf("  Color                %u entries, %u B/entry\n",
                c.colorQueueEntries, c.colorQueueEntryBytes);
    std::printf("Caches (64 B lines, 2-way)\n");
    std::printf("  Vertex cache         %llu KiB, %llu cycle(s)\n",
                static_cast<unsigned long long>(
                    c.vertexCache.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    c.vertexCache.hitLatency));
    std::printf("  Texture caches (x%u) %llu KiB, %llu cycles\n",
                c.numTextureCaches,
                static_cast<unsigned long long>(
                    c.textureCache.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    c.textureCache.hitLatency));
    std::printf("  Tile cache           %llu KiB, %llu cycles\n",
                static_cast<unsigned long long>(
                    c.tileCache.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    c.tileCache.hitLatency));
    std::printf("  L2 cache             %llu KiB, %u banks, "
                "%llu cycles\n",
                static_cast<unsigned long long>(
                    c.memory.l2.sizeBytes / 1024),
                c.memory.l2.banks,
                static_cast<unsigned long long>(
                    c.memory.l2.hitLatency));
    std::printf("Non-programmable stages\n");
    std::printf("  Primitive assembly   %u vertex/cycle\n",
                c.paVerticesPerCycle);
    std::printf("  Rasterizer           %u attribute/cycle\n",
                c.rastAttributesPerCycle);
    std::printf("  Early Z-test         %u in-flight quad-fragments\n",
                c.earlyZInflightQuads);
    std::printf("Programmable stages\n");
    std::printf("  Vertex processors    %u\n", c.numVertexProcessors);
    std::printf("  Fragment processors  %u\n", c.numFragmentProcessors);

    // Verify against the paper's Table I.
    check("frequency", c.frequencyMhz, 600);
    check("screen w", c.screenWidth, 1440);
    check("screen h", c.screenHeight, 720);
    check("tile w", c.tileWidth, 32);
    check("vertex q", c.vertexInQueueEntries, 16);
    check("triangle q", c.triangleQueueEntries, 16);
    check("fragment q", c.fragmentQueueEntries, 64);
    check("color q", c.colorQueueEntries, 64);
    check("vertex$", c.vertexCache.sizeBytes, 4 * 1024);
    check("texture$", c.textureCache.sizeBytes, 8 * 1024);
    check("tile$", c.tileCache.sizeBytes, 32 * 1024);
    check("l2", c.memory.l2.sizeBytes, 256 * 1024);
    check("l2 banks", c.memory.l2.banks, 8);
    check("l2 lat", c.memory.l2.hitLatency, 18);
    check("dram lo", c.memory.dram.rowHitLatency, 50);
    check("dram hi", c.memory.dram.rowMissLatency, 100);
    check("dram bw", c.memory.dram.bytesPerCycle, 4);
    check("dram banks", c.memory.dram.banks, 8);
    check("vps", c.numVertexProcessors, 4);
    check("fps", c.numFragmentProcessors, 4);
    check("earlyz", c.earlyZInflightQuads, 8);

    if (failures == 0)
        std::printf("\nAll parameters match the paper's Table I.\n");
    return failures == 0 ? 0 : 1;
}
