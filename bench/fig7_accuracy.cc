/**
 * @file
 * Regenerates Fig. 7: the relative error of MEGsim's estimates for the
 * four key performance metrics (total cycles, main-memory accesses,
 * L2 cache accesses, tile cache accesses), per benchmark and on
 * average.
 */

#include <cstdio>

#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace msim;
    using gpusim::Metric;

    std::printf("Fig. 7: Relative error (%%) of MEGsim estimates\n");
    std::printf("%-10s %6s %10s %10s %10s %10s\n", "Benchmark", "Reps",
                "Cycles", "DRAM", "L2", "Tile$");
    bench::printRule(62);

    util::CsvTable csv;
    csv.header = {"reps", "cycles_err", "dram_err", "l2_err",
                  "tile_err"};

    const Metric metrics[4] = {Metric::Cycles, Metric::DramAccesses,
                               Metric::L2Accesses,
                               Metric::TileCacheAccesses};
    double sums[4] = {};
    double max_err[4] = {};
    for (const auto &alias : workloads::benchmarkNames()) {
        bench::LoadedBenchmark b = bench::loadBenchmark(alias);
        megsim::MegsimPipeline pipeline(*b.data,
                                        bench::defaultMegsimConfig());
        const megsim::MegsimRun run = pipeline.run();
        double err[4];
        for (int i = 0; i < 4; ++i) {
            err[i] = pipeline.errorPercent(run, metrics[i]);
            sums[i] += err[i];
            max_err[i] = std::max(max_err[i], err[i]);
        }
        std::printf("%-10s %6zu %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
                    alias.c_str(), run.numRepresentatives(), err[0],
                    err[1], err[2], err[3]);
        csv.rows.push_back({static_cast<double>(
                                run.numRepresentatives()),
                            err[0], err[1], err[2], err[3]});
    }
    bench::printRule(62);
    std::printf("%-10s %6s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
                "Average", "", sums[0] / 8, sums[1] / 8, sums[2] / 8,
                sums[3] / 8);
    std::printf("%-10s %6s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", "Max",
                "", max_err[0], max_err[1], max_err[2], max_err[3]);
    std::printf("(Paper averages: cycles 0.84%%, DRAM 0.99%%, "
                "L2 1.2%%, Tile$ 0.86%%)\n");

    util::writeCsv(bench::outDir() + "/fig7_accuracy.csv", csv);
    return 0;
}
