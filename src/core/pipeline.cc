#include "core/megsim.hh"

#include <cmath>

#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "util/summary.hh"

namespace msim::megsim
{

MegsimPipeline::MegsimPipeline(BenchmarkData &data,
                               const MegsimConfig &config)
    : data_(&data), config_(config)
{}

const FeatureMatrix &
MegsimPipeline::rawFeatures()
{
    if (!haveRaw_) {
        raw_ = buildFeatureMatrix(data_->activities(), data_->scene());
        haveRaw_ = true;
    }
    return raw_;
}

const FeatureMatrix &
MegsimPipeline::features()
{
    if (!haveNormalized_) {
        normalized_ = rawFeatures();
        normalize(normalized_, config_.normalization,
                  config_.weights);
        haveNormalized_ = true;
    }
    return normalized_;
}

const FeatureMatrix &
MegsimPipeline::projectedFeatures()
{
    if (!haveProjected_) {
        projected_ = randomProject(features(), config_.projectedDims);
        haveProjected_ = true;
    }
    return projected_;
}

MegsimRun
MegsimPipeline::run(std::uint64_t seed)
{
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "clustering");
    obs::AttribScope analyzeScope(obs::HostDomain::Analyze);
    projectedFeatures();

    SelectorConfig selector = config_.selector;
    if (seed != 0)
        selector.kmeans.seed = seed;

    MegsimRun run;
    run.numFrames = projected_.rows();
    run.selection = selectClustering(projected_, selector);
    run.representatives =
        representativeSet(projected_, run.selection.chosen());
    return run;
}

double
MegsimPipeline::errorPercent(const MegsimRun &run,
                             gpusim::Metric metric)
{
    const std::vector<double> truth = data_->metric(metric);

    double actual = 0.0;
    for (double v : truth)
        actual += v;

    double estimated = 0.0;
    for (std::size_t i = 0; i < run.representatives.size(); ++i) {
        const std::size_t frame = run.representatives.frames[i];
        if (frame >= truth.size())
            sim::fatal("representative frame %zu outside the %zu-frame "
                       "ground truth",
                       frame, truth.size());
        estimated +=
            truth[frame] * run.representatives.weights[i];
    }

    if (actual == 0.0)
        return 0.0;
    return std::fabs(estimated - actual) / actual * 100.0;
}

std::size_t
findMatchingSampleCount(const std::vector<double> &values,
                        double maxErrorPercent,
                        const RandomSamplingConfig &config)
{
    const std::size_t n = values.size();
    if (n == 0)
        return 0;

    double actual = 0.0;
    for (double v : values)
        actual += v;
    if (actual == 0.0)
        return 1;

    // Confidence-percentile error of systematic random sampling with
    // m frames: random start, stride n/m, total scaled back up.
    auto errorAt = [&](std::size_t m) {
        sim::Rng rng(sim::hashMix(config.seed, m));
        std::vector<double> errors;
        errors.reserve(config.trials);
        const double stride = static_cast<double>(n) /
                              static_cast<double>(m);
        for (std::size_t t = 0; t < config.trials; ++t) {
            const double start = rng.uniform() * stride;
            double sum = 0.0;
            for (std::size_t i = 0; i < m; ++i) {
                const auto idx = static_cast<std::size_t>(
                    start + stride * static_cast<double>(i));
                sum += values[idx < n ? idx : n - 1];
            }
            const double estimated =
                sum * static_cast<double>(n) /
                static_cast<double>(m);
            errors.push_back(std::fabs(estimated - actual) / actual *
                             100.0);
        }
        return util::percentile(std::move(errors),
                                config.confidencePercent);
    };

    if (errorAt(n) > maxErrorPercent)
        return n;

    // Exponential bracket, then binary search on the sample count.
    std::size_t lo = 1, hi = 1;
    while (hi < n && errorAt(hi) > maxErrorPercent) {
        lo = hi;
        hi = std::min(n, hi * 2);
    }
    while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (errorAt(mid) > maxErrorPercent)
            lo = mid;
        else
            hi = mid;
    }
    return errorAt(lo) <= maxErrorPercent ? lo : hi;
}

} // namespace msim::megsim
