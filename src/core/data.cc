#include "core/megsim.hh"

#include <cstdio>
#include <filesystem>

#include "gpusim/scene_binding.hh"
#include "gpusim/timing_simulator.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "util/csv.hh"

namespace msim::megsim
{

BenchmarkData::BenchmarkData(const gfx::SceneTrace &scene,
                             const gpusim::GpuConfig &config,
                             std::string cacheDirectory)
    : scene_(&scene), config_(config),
      cacheDir_(std::move(cacheDirectory)),
      key_(sim::hashMix(scene.contentHash(), config.fingerprint()))
{}

std::string
BenchmarkData::cachePath(const char *kind) const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "/%s_%zu_v3_%016llx_%s.csv",
                  scene_->name.empty() ? "scene"
                                       : scene_->name.c_str(),
                  scene_->numFrames(),
                  static_cast<unsigned long long>(key_), kind);
    return cacheDir_ + buf;
}

bool
BenchmarkData::loadActivityCache()
{
    util::CsvTable table;
    if (!util::readCsv(cachePath("activity"), table))
        return false;
    const std::size_t vs = scene_->numVertexShaders();
    const std::size_t fs = scene_->numFragmentShaders();
    if (table.header.size() != 4 + vs + fs ||
        table.rows.size() != scene_->numFrames())
        return false;

    activities_.clear();
    activities_.reserve(table.rows.size());
    for (const std::vector<double> &row : table.rows) {
        gpusim::FrameActivity act;
        act.frameIndex = static_cast<std::uint32_t>(row[0]);
        act.primitives = static_cast<std::uint64_t>(row[1]);
        act.verticesShaded = static_cast<std::uint64_t>(row[2]);
        act.fragmentsShaded = static_cast<std::uint64_t>(row[3]);
        for (std::size_t c = 0; c < vs; ++c)
            act.vsCounts.push_back(
                static_cast<std::uint64_t>(row[4 + c]));
        for (std::size_t c = 0; c < fs; ++c)
            act.fsCounts.push_back(
                static_cast<std::uint64_t>(row[4 + vs + c]));
        activities_.push_back(std::move(act));
    }
    return true;
}

void
BenchmarkData::storeActivityCache() const
{
    util::CsvTable table;
    table.header = {"frame", "primitives", "vertices", "fragments"};
    for (std::size_t c = 0; c < scene_->numVertexShaders(); ++c)
        table.header.push_back("vs" + std::to_string(c));
    for (std::size_t c = 0; c < scene_->numFragmentShaders(); ++c)
        table.header.push_back("fs" + std::to_string(c));
    for (const gpusim::FrameActivity &act : activities_) {
        std::vector<double> row = {
            static_cast<double>(act.frameIndex),
            static_cast<double>(act.primitives),
            static_cast<double>(act.verticesShaded),
            static_cast<double>(act.fragmentsShaded),
        };
        for (std::uint64_t v : act.vsCounts)
            row.push_back(static_cast<double>(v));
        for (std::uint64_t v : act.fsCounts)
            row.push_back(static_cast<double>(v));
        table.rows.push_back(std::move(row));
    }
    util::writeCsv(cachePath("activity"), table);
}

bool
BenchmarkData::loadStatsCache()
{
    util::CsvTable table;
    if (!util::readCsv(cachePath("stats"), table))
        return false;
    if (table.header != gpusim::FrameStats::csvHeader() ||
        table.rows.size() != scene_->numFrames())
        return false;
    stats_.clear();
    stats_.reserve(table.rows.size());
    for (const std::vector<double> &row : table.rows)
        stats_.push_back(gpusim::FrameStats::fromCsvRow(row));
    return true;
}

void
BenchmarkData::storeStatsCache() const
{
    util::CsvTable table;
    table.header = gpusim::FrameStats::csvHeader();
    for (const gpusim::FrameStats &s : stats_)
        table.rows.push_back(s.toCsvRow());
    util::writeCsv(cachePath("stats"), table);
}

const std::vector<gpusim::FrameActivity> &
BenchmarkData::activities()
{
    if (haveActivities_)
        return activities_;
    if (!cacheDir_.empty() && loadActivityCache()) {
        haveActivities_ = true;
        return activities_;
    }

    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "functional");
    gpusim::SceneBinding binding(*scene_);
    gpusim::FunctionalSimulator functional(config_, binding);
    activities_.clear();
    activities_.reserve(scene_->numFrames());
    obs::Heartbeat heartbeat(scene_->numFrames(),
                             "functional " + scene_->name);
    for (const gfx::FrameTrace &frame : scene_->frames) {
        activities_.push_back(functional.simulate(frame));
        heartbeat.tick(activities_.size());
    }
    heartbeat.finish();
    haveActivities_ = true;
    if (!cacheDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        storeActivityCache();
    }
    return activities_;
}

const std::vector<gpusim::FrameStats> &
BenchmarkData::frameStats()
{
    if (haveStats_)
        return stats_;
    if (!cacheDir_.empty() && loadStatsCache()) {
        haveStats_ = true;
        return stats_;
    }

    // The expensive pass: cycle-level simulation of every frame. The
    // functional activities fall out of the same pass for free.
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "ground-truth");
    gpusim::SceneBinding binding(*scene_);
    gpusim::TimingSimulator timing(config_, binding);
    stats_.clear();
    stats_.reserve(scene_->numFrames());
    std::vector<gpusim::FrameActivity> acts;
    acts.reserve(scene_->numFrames());
    obs::Heartbeat heartbeat(scene_->numFrames(),
                             "ground truth " + scene_->name);
    for (const gfx::FrameTrace &frame : scene_->frames) {
        gpusim::FrameActivity act;
        stats_.push_back(timing.simulate(frame, &act));
        acts.push_back(std::move(act));
        heartbeat.tick(stats_.size());
    }
    heartbeat.finish();
    haveStats_ = true;
    if (!haveActivities_) {
        activities_ = std::move(acts);
        haveActivities_ = true;
    }
    if (!cacheDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        storeStatsCache();
        storeActivityCache();
    }
    return stats_;
}

std::vector<double>
BenchmarkData::metric(gpusim::Metric metric)
{
    const std::vector<gpusim::FrameStats> &all = frameStats();
    std::vector<double> values;
    values.reserve(all.size());
    for (const gpusim::FrameStats &s : all)
        values.push_back(gpusim::metricValue(s, metric));
    return values;
}

} // namespace msim::megsim
