#include "core/megsim.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "exec/pool.hh"
#include "gpusim/scene_binding.hh"
#include "gpusim/timing_simulator.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "resilience/artifact.hh"
#include "resilience/checkpoint.hh"
#include "resilience/degrade.hh"
#include "resilience/fault.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "util/csv.hh"

namespace msim::megsim
{

namespace
{

/** Cache/checkpoint artifact format generation. */
constexpr const char *kCacheVersion = "v4";

/** MEGSIM_CHECKPOINT=0 disables ground-truth checkpointing. */
bool
checkpointingEnabled()
{
    const char *env = std::getenv("MEGSIM_CHECKPOINT");
    return !env || std::string(env) != "0";
}

void
createCacheDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        sim::warn("cannot create cache directory '%s': %s",
                  dir.c_str(), ec.message().c_str());
}

obs::Scalar &
regeneratedCounter()
{
    return obs::processRegistry().scalar(
        "resilience.cache.regenerated",
        "cache artifacts regenerated after corruption");
}

std::vector<std::string>
activityHeader(const gfx::SceneTrace &scene)
{
    std::vector<std::string> header = {"frame", "primitives",
                                       "vertices", "fragments"};
    for (std::size_t c = 0; c < scene.numVertexShaders(); ++c)
        header.push_back("vs" + std::to_string(c));
    for (std::size_t c = 0; c < scene.numFragmentShaders(); ++c)
        header.push_back("fs" + std::to_string(c));
    return header;
}

std::vector<double>
activityToRow(const gpusim::FrameActivity &act)
{
    std::vector<double> row = {
        static_cast<double>(act.frameIndex),
        static_cast<double>(act.primitives),
        static_cast<double>(act.verticesShaded),
        static_cast<double>(act.fragmentsShaded),
    };
    for (std::uint64_t v : act.vsCounts)
        row.push_back(static_cast<double>(v));
    for (std::uint64_t v : act.fsCounts)
        row.push_back(static_cast<double>(v));
    return row;
}

/** What one ground-truth worker hands back to the committer. */
struct GroundTruthFrame
{
    gpusim::FrameStats stats;
    gpusim::FrameActivity activity;
};

gpusim::FrameActivity
activityFromRow(const std::vector<double> &row, std::size_t vs,
                std::size_t fs)
{
    gpusim::FrameActivity act;
    act.frameIndex = static_cast<std::uint32_t>(row[0]);
    act.primitives = static_cast<std::uint64_t>(row[1]);
    act.verticesShaded = static_cast<std::uint64_t>(row[2]);
    act.fragmentsShaded = static_cast<std::uint64_t>(row[3]);
    for (std::size_t c = 0; c < vs; ++c)
        act.vsCounts.push_back(
            static_cast<std::uint64_t>(row[4 + c]));
    for (std::size_t c = 0; c < fs; ++c)
        act.fsCounts.push_back(
            static_cast<std::uint64_t>(row[4 + vs + c]));
    return act;
}

} // namespace

BenchmarkData::BenchmarkData(const gfx::SceneTrace &scene,
                             const gpusim::GpuConfig &config,
                             std::string cacheDirectory)
    : scene_(&scene), config_(config),
      cacheDir_(std::move(cacheDirectory)),
      key_(sim::hashMix(scene.contentHash(), config.fingerprint()))
{}

std::string
BenchmarkData::cachePath(const std::string &kind) const
{
    return checkpointStem() + "_" + kind + ".csv";
}

std::string
BenchmarkData::checkpointStem() const
{
    char keyHex[24];
    std::snprintf(keyHex, sizeof(keyHex), "%016llx",
                  static_cast<unsigned long long>(key_));
    const std::string name =
        scene_->name.empty() ? "scene" : scene_->name;
    return cacheDir_ + "/" + name + "_" +
           std::to_string(scene_->numFrames()) + "_" + kCacheVersion +
           "_" + keyHex;
}

bool
BenchmarkData::loadActivityCache()
{
    auto loaded = resilience::readCsvArtifact(cachePath("activity"),
                                              key_, "activity");
    if (!loaded.ok()) {
        if (loaded.error().code != resilience::Errc::NotFound)
            ++regeneratedCounter();
        return false;
    }
    const util::CsvTable &table = *loaded;
    const std::size_t vs = scene_->numVertexShaders();
    const std::size_t fs = scene_->numFragmentShaders();
    if (table.header.size() != 4 + vs + fs ||
        table.rows.size() != scene_->numFrames())
        return false;

    activities_.clear();
    activities_.reserve(table.rows.size());
    for (const std::vector<double> &row : table.rows)
        activities_.push_back(activityFromRow(row, vs, fs));
    return true;
}

void
BenchmarkData::storeActivityCache() const
{
    util::CsvTable table;
    table.header = activityHeader(*scene_);
    for (const gpusim::FrameActivity &act : activities_)
        table.rows.push_back(activityToRow(act));
    (void)resilience::writeCsvArtifact(cachePath("activity"), table,
                                       key_, "activity");
}

bool
BenchmarkData::loadStatsCache()
{
    auto loaded =
        resilience::readCsvArtifact(cachePath("stats"), key_, "stats");
    if (!loaded.ok()) {
        if (loaded.error().code != resilience::Errc::NotFound)
            ++regeneratedCounter();
        return false;
    }
    const util::CsvTable &table = *loaded;
    if (table.header != gpusim::FrameStats::csvHeader() ||
        table.rows.size() != scene_->numFrames())
        return false;
    stats_.clear();
    stats_.reserve(table.rows.size());
    for (const std::vector<double> &row : table.rows)
        stats_.push_back(gpusim::FrameStats::fromCsvRow(row));
    return true;
}

void
BenchmarkData::storeStatsCache() const
{
    util::CsvTable table;
    table.header = gpusim::FrameStats::csvHeader();
    for (const gpusim::FrameStats &s : stats_)
        table.rows.push_back(s.toCsvRow());
    (void)resilience::writeCsvArtifact(cachePath("stats"), table, key_,
                                       "stats");
}

const std::vector<gpusim::FrameActivity> &
BenchmarkData::activities()
{
    if (haveActivities_)
        return activities_;
    if (!cacheDir_.empty() && loadActivityCache()) {
        haveActivities_ = true;
        return activities_;
    }

    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "functional");
    exec::Pool &pool = exec::Pool::global();
    gpusim::SceneBinding binding(*scene_);
    const std::size_t total = scene_->numFrames();
    // One simulator per worker, built lazily on that worker's first
    // frame; every frame simulates cold, so which worker ran it does
    // not affect the result.
    std::vector<std::unique_ptr<gpusim::FunctionalSimulator>> sims(
        pool.workers());
    activities_.assign(total, gpusim::FrameActivity{});
    obs::Heartbeat heartbeat(total, "functional " + scene_->name);
    std::size_t done = 0;
    auto pass = pool.parallelMapOrdered<gpusim::FrameActivity>(
        total,
        [&](std::size_t f, std::size_t w)
            -> resilience::Expected<gpusim::FrameActivity> {
            if (!sims[w])
                sims[w] =
                    std::make_unique<gpusim::FunctionalSimulator>(
                        config_, binding);
            return sims[w]->simulate(scene_->frames[f]);
        },
        [&](std::size_t f, gpusim::FrameActivity &&act) {
            activities_[f] = std::move(act);
            heartbeat.tick(++done);
        });
    if (!pass.ok())
        sim::fatal("functional pass failed: %s",
                   pass.error().message.c_str());
    heartbeat.finish();
    haveActivities_ = true;
    if (!cacheDir_.empty()) {
        createCacheDir(cacheDir_);
        storeActivityCache();
    }
    return activities_;
}

const std::vector<gpusim::FrameStats> &
BenchmarkData::frameStats()
{
    if (haveStats_)
        return stats_;
    if (!cacheDir_.empty() && loadStatsCache()) {
        haveStats_ = true;
        return stats_;
    }

    // The expensive pass: cycle-level simulation of every frame. The
    // functional activities fall out of the same pass for free. The
    // pass checkpoints after every frame so a killed run resumes from
    // the last completed frame; frames simulate cold/independent, so
    // a resumed run is identical to an uninterrupted one.
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "ground-truth");
    const std::size_t total = scene_->numFrames();
    const std::size_t vs = scene_->numVertexShaders();
    const std::size_t fs = scene_->numFragmentShaders();

    std::unique_ptr<resilience::Checkpoint> ckpt;
    std::size_t start = 0;
    stats_.clear();
    std::vector<gpusim::FrameActivity> acts;
    if (!cacheDir_.empty() && checkpointingEnabled()) {
        createCacheDir(cacheDir_);
        ckpt = std::make_unique<resilience::Checkpoint>(
            checkpointStem(), key_, total,
            gpusim::FrameStats::csvHeader().size(), 4 + vs + fs);
        start = ckpt->resume();
        stats_.reserve(total);
        acts.reserve(total);
        for (std::size_t f = 0; f < start; ++f) {
            stats_.push_back(gpusim::FrameStats::fromCsvRow(
                ckpt->statsRows()[f]));
            acts.push_back(
                activityFromRow(ckpt->activityRows()[f], vs, fs));
        }
    } else {
        stats_.reserve(total);
        acts.reserve(total);
    }

    // Frames fan out across the pool (thread-local simulators, cold
    // per frame); the commit lambda runs on the calling thread in
    // frame order, which keeps checkpoint journal appends serialized
    // and the files bit-identical to a serial run.
    gpusim::SceneBinding binding(*scene_);
    exec::Pool &pool = exec::Pool::global();
    std::vector<std::unique_ptr<gpusim::TimingSimulator>> sims(
        pool.workers());
    const resilience::WatchdogConfig watchdog =
        resilience::WatchdogConfig::fromEnv();
    obs::Heartbeat heartbeat(total, "ground truth " + scene_->name);
    auto pass = pool.parallelMapOrdered<GroundTruthFrame>(
        total - start,
        [&](std::size_t i, std::size_t w)
            -> resilience::Expected<GroundTruthFrame> {
            const std::size_t f = start + i;
            if (resilience::FaultInjector::global().hangFrame(f))
                return resilience::errorf(
                    resilience::Errc::FrameTimeout,
                    "frame %zu hung (injected)", f);
            if (!sims[w])
                sims[w] = std::make_unique<gpusim::TimingSimulator>(
                    config_, binding);
            GroundTruthFrame out;
            out.stats =
                sims[w]->simulate(scene_->frames[f], &out.activity);
            if (watchdog.cycleBudget &&
                out.stats.cycles > watchdog.cycleBudget)
                return resilience::errorf(
                    resilience::Errc::FrameTimeout,
                    "frame %zu blew the cycle budget (%llu > %llu)",
                    f,
                    static_cast<unsigned long long>(out.stats.cycles),
                    static_cast<unsigned long long>(
                        watchdog.cycleBudget));
            if (watchdog.wallBudgetSeconds > 0.0 &&
                sims[w]->lastFrameWallSeconds() >
                    watchdog.wallBudgetSeconds)
                return resilience::errorf(
                    resilience::Errc::FrameTimeout,
                    "frame %zu blew the wall budget (%.3fs > %.3fs)",
                    f, sims[w]->lastFrameWallSeconds(),
                    watchdog.wallBudgetSeconds);
            return out;
        },
        [&](std::size_t i, GroundTruthFrame &&frame) {
            stats_.push_back(std::move(frame.stats));
            acts.push_back(std::move(frame.activity));
            if (ckpt)
                ckpt->append(stats_.back().toCsvRow(),
                             activityToRow(acts.back()));
            resilience::FaultInjector::global().maybeKillAfterFrame(
                start + i);
            heartbeat.tick(stats_.size());
        });
    heartbeat.finish();
    if (!pass.ok()) {
        // The journal already holds the frames committed before the
        // failure; a rerun resumes from there instead of starting
        // over.
        sim::fatal("ground-truth pass of '%s' failed: %s",
                   scene_->name.c_str(),
                   pass.error().message.c_str());
    }
    haveStats_ = true;
    if (!haveActivities_) {
        activities_ = std::move(acts);
        haveActivities_ = true;
    }
    if (!cacheDir_.empty()) {
        createCacheDir(cacheDir_);
        storeStatsCache();
        storeActivityCache();
    }
    if (ckpt)
        ckpt->discard();
    return stats_;
}

std::vector<double>
BenchmarkData::metric(gpusim::Metric metric)
{
    const std::vector<gpusim::FrameStats> &all = frameStats();
    std::vector<double> values;
    values.reserve(all.size());
    for (const gpusim::FrameStats &s : all)
        values.push_back(gpusim::metricValue(s, metric));
    return values;
}

} // namespace msim::megsim
