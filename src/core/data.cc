#include "core/megsim.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "exec/pool.hh"
#include "gpusim/scene_binding.hh"
#include "gpusim/timing_simulator.hh"
#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "resilience/artifact.hh"
#include "resilience/checkpoint.hh"
#include "resilience/degrade.hh"
#include "resilience/fault.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "util/csv.hh"

namespace msim::megsim
{

namespace
{

/** Cache/checkpoint artifact format generation. */
constexpr const char *kCacheVersion = "v4";

/** MEGSIM_CHECKPOINT=0 disables ground-truth checkpointing. */
bool
checkpointingEnabled()
{
    const char *env = std::getenv("MEGSIM_CHECKPOINT");
    return !env || std::string(env) != "0";
}

void
createCacheDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        sim::warn("cannot create cache directory '%s': %s",
                  dir.c_str(), ec.message().c_str());
}

obs::Scalar &
regeneratedCounter()
{
    return obs::processRegistry().scalar(
        "resilience.cache.regenerated",
        "cache artifacts regenerated after corruption");
}

} // namespace

std::vector<std::string>
activityHeader(const gfx::SceneTrace &scene)
{
    std::vector<std::string> header = {"frame", "primitives",
                                       "vertices", "fragments"};
    for (std::size_t c = 0; c < scene.numVertexShaders(); ++c)
        header.push_back("vs" + std::to_string(c));
    for (std::size_t c = 0; c < scene.numFragmentShaders(); ++c)
        header.push_back("fs" + std::to_string(c));
    return header;
}

std::vector<double>
activityToRow(const gpusim::FrameActivity &act)
{
    std::vector<double> row = {
        static_cast<double>(act.frameIndex),
        static_cast<double>(act.primitives),
        static_cast<double>(act.verticesShaded),
        static_cast<double>(act.fragmentsShaded),
    };
    for (std::uint64_t v : act.vsCounts)
        row.push_back(static_cast<double>(v));
    for (std::uint64_t v : act.fsCounts)
        row.push_back(static_cast<double>(v));
    return row;
}

gpusim::FrameActivity
activityFromRow(const std::vector<double> &row, std::size_t vsShaders,
                std::size_t fsShaders)
{
    gpusim::FrameActivity act;
    act.frameIndex = static_cast<std::uint32_t>(row[0]);
    act.primitives = static_cast<std::uint64_t>(row[1]);
    act.verticesShaded = static_cast<std::uint64_t>(row[2]);
    act.fragmentsShaded = static_cast<std::uint64_t>(row[3]);
    for (std::size_t c = 0; c < vsShaders; ++c)
        act.vsCounts.push_back(
            static_cast<std::uint64_t>(row[4 + c]));
    for (std::size_t c = 0; c < fsShaders; ++c)
        act.fsCounts.push_back(
            static_cast<std::uint64_t>(row[4 + vsShaders + c]));
    return act;
}

void
FastMemAudit::fold(const gpusim::FrameStats &fast,
                   const gpusim::FrameStats &exact)
{
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        const auto metric = static_cast<gpusim::Metric>(m);
        fastSum[m] += gpusim::metricValue(fast, metric);
        exactSum[m] += gpusim::metricValue(exact, metric);
    }
    ++auditedFrames;
}

double
FastMemAudit::errorPercent(std::size_t metric) const
{
    return mem::FastMemModel::exactVsFastPercent(exactSum[metric],
                                                 fastSum[metric]);
}

BenchmarkData::BenchmarkData(const gfx::SceneTrace &scene,
                             const gpusim::GpuConfig &config,
                             std::string cacheDirectory)
    : scene_(&scene), config_(config),
      cacheDir_(std::move(cacheDirectory)),
      key_(sim::hashMix(scene.contentHash(), config.fingerprint()))
{
    // Fast-mem results are approximate and carry audit sums that no
    // cached row can reconstruct, so they bypass the disk cache and
    // checkpoint journals entirely (both hang off cacheDir_). The
    // fingerprint also differs when the model is on, so even a shared
    // directory could never serve a fast result to an exact run.
    if (config_.fastMem.enabled)
        cacheDir_.clear();
}

std::string
BenchmarkData::cachePath(const std::string &kind) const
{
    return checkpointStem() + "_" + kind + ".csv";
}

std::string
BenchmarkData::checkpointStem() const
{
    char keyHex[24];
    std::snprintf(keyHex, sizeof(keyHex), "%016llx",
                  static_cast<unsigned long long>(key_));
    const std::string name =
        scene_->name.empty() ? "scene" : scene_->name;
    return cacheDir_ + "/" + name + "_" +
           std::to_string(scene_->numFrames()) + "_" + kCacheVersion +
           "_" + keyHex;
}

CacheProbe
BenchmarkData::loadActivityCache()
{
    obs::AttribScope loadScope(obs::HostDomain::Load);
    obs::TimelineRecorder::Span span("cache.load", 0,
                                     scene_->name + ":activity");
    auto loaded = resilience::readCsvArtifact(cachePath("activity"),
                                              key_, "activity");
    if (!loaded.ok()) {
        if (loaded.error().code == resilience::Errc::NotFound)
            return CacheProbe::Missing;
        ++regeneratedCounter();
        return CacheProbe::Invalid;
    }
    const util::CsvTable &table = *loaded;
    const std::size_t vs = scene_->numVertexShaders();
    const std::size_t fs = scene_->numFragmentShaders();
    if (table.header.size() != 4 + vs + fs ||
        table.rows.size() != scene_->numFrames())
        return CacheProbe::Invalid;

    activities_.clear();
    activities_.reserve(table.rows.size());
    for (const std::vector<double> &row : table.rows)
        activities_.push_back(activityFromRow(row, vs, fs));
    return CacheProbe::Loaded;
}

resilience::Expected<void>
BenchmarkData::storeActivityCache() const
{
    obs::AttribScope loadScope(obs::HostDomain::Load);
    obs::TimelineRecorder::Span span("cache.store", 0,
                                     scene_->name + ":activity");
    util::CsvTable table;
    table.header = activityHeader(*scene_);
    for (const gpusim::FrameActivity &act : activities_)
        table.rows.push_back(activityToRow(act));
    return resilience::writeCsvArtifact(cachePath("activity"), table,
                                        key_, "activity");
}

CacheProbe
BenchmarkData::loadStatsCache()
{
    obs::AttribScope loadScope(obs::HostDomain::Load);
    obs::TimelineRecorder::Span span("cache.load", 0,
                                     scene_->name + ":stats");
    auto loaded =
        resilience::readCsvArtifact(cachePath("stats"), key_, "stats");
    if (!loaded.ok()) {
        if (loaded.error().code == resilience::Errc::NotFound)
            return CacheProbe::Missing;
        ++regeneratedCounter();
        return CacheProbe::Invalid;
    }
    const util::CsvTable &table = *loaded;
    if (table.header != gpusim::FrameStats::csvHeader() ||
        table.rows.size() != scene_->numFrames())
        return CacheProbe::Invalid;
    stats_.clear();
    stats_.reserve(table.rows.size());
    for (const std::vector<double> &row : table.rows)
        stats_.push_back(gpusim::FrameStats::fromCsvRow(row));
    return CacheProbe::Loaded;
}

CacheProbe
BenchmarkData::probeCaches()
{
    if (complete())
        return CacheProbe::Loaded;
    if (cacheDir_.empty())
        return CacheProbe::Missing;
    const CacheProbe stats = loadStatsCache();
    const CacheProbe activity = loadActivityCache();
    if (stats == CacheProbe::Loaded &&
        activity == CacheProbe::Loaded) {
        haveStats_ = true;
        haveActivities_ = true;
        return CacheProbe::Loaded;
    }
    if (stats == CacheProbe::Invalid ||
        activity == CacheProbe::Invalid)
        return CacheProbe::Invalid;
    return CacheProbe::Missing;
}

resilience::Expected<void>
BenchmarkData::storeStatsCache() const
{
    obs::AttribScope loadScope(obs::HostDomain::Load);
    obs::TimelineRecorder::Span span("cache.store", 0,
                                     scene_->name + ":stats");
    util::CsvTable table;
    table.header = gpusim::FrameStats::csvHeader();
    for (const gpusim::FrameStats &s : stats_)
        table.rows.push_back(s.toCsvRow());
    return resilience::writeCsvArtifact(cachePath("stats"), table,
                                        key_, "stats");
}

resilience::Expected<void>
BenchmarkData::installGroundTruth(
    std::vector<gpusim::FrameStats> stats,
    std::vector<gpusim::FrameActivity> activities)
{
    if (stats.size() != scene_->numFrames() ||
        activities.size() != scene_->numFrames())
        return resilience::errorf(
            resilience::Errc::BadFormat,
            "'%s': installing %zu stats / %zu activity rows over "
            "%zu frames",
            scene_->name.c_str(), stats.size(), activities.size(),
            scene_->numFrames());
    stats_ = std::move(stats);
    activities_ = std::move(activities);
    haveStats_ = true;
    haveActivities_ = true;
    if (cacheDir_.empty())
        return {};
    createCacheDir(cacheDir_);
    auto storedStats = storeStatsCache();
    auto storedActs = storeActivityCache();
    if (!storedStats.ok())
        return storedStats;
    return storedActs;
}

const std::vector<gpusim::FrameActivity> &
BenchmarkData::activities()
{
    if (haveActivities_)
        return activities_;
    if (!cacheDir_.empty() &&
        loadActivityCache() == CacheProbe::Loaded) {
        haveActivities_ = true;
        return activities_;
    }

    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "functional");
    exec::Pool &pool = exec::Pool::global();
    gpusim::SceneBinding binding(*scene_);
    const std::size_t total = scene_->numFrames();
    // One simulator per worker, built lazily on that worker's first
    // frame; every frame simulates cold, so which worker ran it does
    // not affect the result.
    std::vector<std::unique_ptr<gpusim::FunctionalSimulator>> sims(
        pool.workers());
    activities_.assign(total, gpusim::FrameActivity{});
    obs::Heartbeat heartbeat(total, "functional " + scene_->name);
    std::size_t done = 0;
    auto pass = pool.parallelMapOrdered<gpusim::FrameActivity>(
        total,
        [&](std::size_t f, std::size_t w)
            -> resilience::Expected<gpusim::FrameActivity> {
            obs::TimelineRecorder::Span span("func.frame", f);
            if (!sims[w])
                sims[w] =
                    std::make_unique<gpusim::FunctionalSimulator>(
                        config_, binding);
            return sims[w]->simulate(scene_->frames[f]);
        },
        [&](std::size_t f, gpusim::FrameActivity &&act) {
            activities_[f] = std::move(act);
            heartbeat.tick(++done);
        });
    if (!pass.ok())
        sim::fatal("functional pass failed: %s",
                   pass.error().message.c_str());
    heartbeat.finish();
    haveActivities_ = true;
    if (!cacheDir_.empty()) {
        createCacheDir(cacheDir_);
        if (auto stored = storeActivityCache(); !stored.ok())
            sim::warn("activity cache store failed: %s",
                      stored.error().message.c_str());
    }
    return activities_;
}

const std::vector<gpusim::FrameStats> &
BenchmarkData::frameStats()
{
    if (haveStats_)
        return stats_;
    if (!cacheDir_.empty() && loadStatsCache() == CacheProbe::Loaded) {
        haveStats_ = true;
        return stats_;
    }

    // The expensive pass: cycle-level simulation of every frame,
    // factored into GroundTruthPass so batch campaigns can splice many
    // benchmarks' frames into one shared pool job. Frames fan out
    // across the pool (thread-local simulators, cold per frame); the
    // commit lambda runs on the calling thread in frame order, which
    // keeps checkpoint journal appends serialized and the files
    // bit-identical to a serial run.
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "ground-truth");
    exec::Pool &pool = exec::Pool::global();
    GroundTruthPass gt(*this, pool.workers());
    auto pass = pool.parallelMapOrdered<GroundTruthFrame>(
        gt.remaining(),
        [&](std::size_t i, std::size_t w) {
            return gt.produce(i, w);
        },
        [&](std::size_t i, GroundTruthFrame &&frame) {
            gt.commit(i, std::move(frame));
        });
    if (!pass.ok()) {
        // The journal already holds the frames committed before the
        // failure; a rerun resumes from there instead of starting
        // over.
        sim::fatal("ground-truth pass of '%s' failed: %s",
                   scene_->name.c_str(),
                   pass.error().message.c_str());
    }
    gt.finish();
    return stats_;
}

GroundTruthPass::GroundTruthPass(BenchmarkData &data,
                                 std::size_t workers)
    : data_(&data), total_(data.scene_->numFrames()),
      watchdog_(resilience::WatchdogConfig::fromEnv())
{
    const std::size_t vs = data.scene_->numVertexShaders();
    const std::size_t fs = data.scene_->numFragmentShaders();
    stats_.reserve(total_);
    acts_.reserve(total_);
    if (!data.cacheDir_.empty() && checkpointingEnabled()) {
        createCacheDir(data.cacheDir_);
        ckpt_ = std::make_unique<resilience::Checkpoint>(
            data.checkpointStem(), data.key_, total_,
            gpusim::FrameStats::csvHeader().size(), 4 + vs + fs);
        start_ = ckpt_->resume();
        for (std::size_t f = 0; f < start_; ++f) {
            stats_.push_back(gpusim::FrameStats::fromCsvRow(
                ckpt_->statsRows()[f]));
            acts_.push_back(
                activityFromRow(ckpt_->activityRows()[f], vs, fs));
        }
    }
    binding_ =
        std::make_unique<gpusim::SceneBinding>(*data.scene_);
    sims_.resize(workers ? workers : 1);
    heartbeat_ = std::make_unique<obs::Heartbeat>(
        total_, "ground truth " + data.scene_->name);
}

// Out of line so the unique_ptr members see complete types; an
// unfinished pass keeps its checkpoint for the next resume.
GroundTruthPass::~GroundTruthPass() = default;

resilience::Expected<GroundTruthFrame>
GroundTruthPass::produce(std::size_t i, std::size_t w)
{
    const std::size_t f = start_ + i;
    obs::TimelineRecorder::Span span("gt.frame", f,
                                     data_->scene_->name);
    if (resilience::FaultInjector::global().hangFrame(f))
        return resilience::errorf(resilience::Errc::FrameTimeout,
                                  "frame %zu hung (injected)", f);
    if (!sims_[w])
        sims_[w] = std::make_unique<gpusim::TimingSimulator>(
            data_->config_, *binding_);
    GroundTruthFrame out;
    out.stats =
        sims_[w]->simulate(data_->scene_->frames[f], &out.activity);
    // Fast-mem audit: every auditEvery-th frame also runs through an
    // exact twin simulator so the relative error of the model is
    // measured on the fly. Frames simulate cold, so the double-run
    // perturbs nothing, and keying the audit off the global frame
    // index keeps the audited set identical at any worker count.
    const mem::FastMemConfig &fm = data_->config_.fastMem;
    if (fm.enabled && fm.auditEvery != 0 && f % fm.auditEvery == 0) {
        if (exactSims_.size() < sims_.size())
            exactSims_.resize(sims_.size());
        if (!exactSims_[w]) {
            gpusim::GpuConfig exactConfig = data_->config_;
            exactConfig.fastMem.enabled = false;
            exactSims_[w] = std::make_unique<gpusim::TimingSimulator>(
                exactConfig, *binding_);
        }
        out.exact = exactSims_[w]->simulate(data_->scene_->frames[f]);
        out.audited = true;
    }
    if (watchdog_.cycleBudget &&
        out.stats.cycles > watchdog_.cycleBudget)
        return resilience::errorf(
            resilience::Errc::FrameTimeout,
            "frame %zu blew the cycle budget (%llu > %llu)", f,
            static_cast<unsigned long long>(out.stats.cycles),
            static_cast<unsigned long long>(watchdog_.cycleBudget));
    if (watchdog_.wallBudgetSeconds > 0.0 &&
        sims_[w]->lastFrameWallSeconds() >
            watchdog_.wallBudgetSeconds)
        return resilience::errorf(
            resilience::Errc::FrameTimeout,
            "frame %zu blew the wall budget (%.3fs > %.3fs)", f,
            sims_[w]->lastFrameWallSeconds(),
            watchdog_.wallBudgetSeconds);
    return out;
}

void
GroundTruthPass::commit(std::size_t i, GroundTruthFrame &&frame)
{
    if (frame.audited)
        data_->audit_.fold(frame.stats, frame.exact);
    stats_.push_back(std::move(frame.stats));
    acts_.push_back(std::move(frame.activity));
    if (ckpt_) {
        obs::AttribScope loadScope(obs::HostDomain::Load);
        obs::TimelineRecorder::Span span("ckpt.commit", start_ + i);
        ckpt_->append(stats_.back().toCsvRow(),
                      activityToRow(acts_.back()));
    }
    resilience::FaultInjector::global().maybeKillAfterFrame(start_ +
                                                            i);
    heartbeat_->tick(stats_.size());
    ++committed_;
}

void
GroundTruthPass::finish()
{
    heartbeat_->finish();
    if (start_ + committed_ != total_)
        sim::fatal("ground-truth pass of '%s' finished at %zu of %zu "
                   "frames",
                   data_->scene_->name.c_str(), start_ + committed_,
                   total_);
    data_->stats_ = std::move(stats_);
    data_->haveStats_ = true;
    if (!data_->haveActivities_) {
        data_->activities_ = std::move(acts_);
        data_->haveActivities_ = true;
    }
    // Store the caches FIRST and only discard the journal once both
    // stores verifiably landed: a run killed between the stores (the
    // `cache.store` kill site) or a failed store must leave the
    // journal behind, so the next run resumes every committed frame
    // instead of re-simulating the finished pass.
    bool stored = true;
    if (!data_->cacheDir_.empty()) {
        createCacheDir(data_->cacheDir_);
        auto stats = data_->storeStatsCache();
        resilience::FaultInjector::global().maybeKillAtSite(
            "cache.store");
        auto acts = data_->storeActivityCache();
        stored = stats.ok() && acts.ok();
        if (!stored)
            sim::warn("ground-truth cache store of '%s' failed (%s); "
                      "keeping the checkpoint journal",
                      data_->scene_->name.c_str(),
                      (!stats.ok() ? stats : acts)
                          .error()
                          .message.c_str());
    }
    if (ckpt_) {
        resilience::FaultInjector::global().maybeKillAtSite(
            "ckpt.discard");
        if (stored)
            ckpt_->discard();
    }
}

std::vector<double>
BenchmarkData::metric(gpusim::Metric metric)
{
    const std::vector<gpusim::FrameStats> &all = frameStats();
    std::vector<double> values;
    values.reserve(all.size());
    for (const gpusim::FrameStats &s : all)
        values.push_back(gpusim::metricValue(s, metric));
    return values;
}

} // namespace msim::megsim
