/**
 * @file
 * The MEGsim methodology (Sec. III): frame characterization via
 * shader-weighted characteristic vectors, group normalization, random
 * projection, BIC-guided k-means clustering, representative selection,
 * and the evaluation machinery around it (cached ground-truth data,
 * error measurement, the random sub-sampling baseline of Table IV).
 */

#ifndef MSIM_CORE_MEGSIM_HH
#define MSIM_CORE_MEGSIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gfx/trace.hh"
#include "gpusim/frame_stats.hh"
#include "gpusim/functional_simulator.hh"
#include "gpusim/gpu_config.hh"
#include "resilience/watchdog.hh"
#include "resilience/expected.hh"
#include "util/image.hh"

namespace msim::gpusim
{
class SceneBinding;
class TimingSimulator;
} // namespace msim::gpusim

namespace msim::obs
{
class Heartbeat;
} // namespace msim::obs

namespace msim::resilience
{
class Checkpoint;
} // namespace msim::resilience

namespace msim::megsim
{

/**
 * A frames x dims matrix of characterizing parameters. Columns are
 * grouped: [0, vsDims) per-vertex-shader work, [vsDims, vsDims+fsDims)
 * per-fragment-shader work, and one final PRIM column.
 */
class FeatureMatrix
{
  public:
    FeatureMatrix() = default;

    FeatureMatrix(std::size_t frames, std::size_t vsDims,
                  std::size_t fsDims)
        : rows_(frames), vs_(vsDims), fs_(fsDims),
          cols_(vsDims + fsDims + 1), data_(frames * cols_, 0.0)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t vsDims() const { return vs_; }
    std::size_t fsDims() const { return fs_; }

    double &
    at(std::size_t frame, std::size_t dim)
    {
        return data_[frame * cols_ + dim];
    }

    double
    at(std::size_t frame, std::size_t dim) const
    {
        return data_[frame * cols_ + dim];
    }

  private:
    std::size_t rows_ = 0;
    std::size_t vs_ = 0;
    std::size_t fs_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Raw characteristic vectors (Sec. III-B): each shader column is its
 * invocation count times the shader's characteristic cost (ALU ops
 * count 1, texture ops their filter weight), the last column is the
 * primitive count.
 */
FeatureMatrix
buildFeatureMatrix(const std::vector<gpusim::FrameActivity> &activities,
                   const gfx::SceneTrace &scene);

enum class NormalizationScheme {
    GroupSumWeights, // the paper's scheme (Sec. III-C)
    ColumnMaxWeights,
    None,
};

/**
 * Relative importance of the characteristic groups, derived from the
 * Fig. 4 power fractions (geometry / raster / tiling).
 */
struct GroupWeights
{
    double vs = 0.108;
    double fs = 0.745;
    double prim = 0.147;

    static GroupWeights
    uniform()
    {
        return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
    }
};

/** Normalize @p features in place. */
void normalize(FeatureMatrix &features,
               NormalizationScheme scheme =
                   NormalizationScheme::GroupSumWeights,
               const GroupWeights &weights = GroupWeights{});

/**
 * Gaussian random projection to @p dims dimensions (Sec. III-E), the
 * distance-preserving reduction that keeps clustering affordable.
 * Identity when the matrix is already narrower than @p dims.
 */
FeatureMatrix randomProject(const FeatureMatrix &features,
                            std::size_t dims,
                            std::uint64_t seed = 0x4a4c50);

struct KMeansConfig
{
    std::size_t maxIterations = 64;
    std::uint64_t seed = 1;
};

struct KMeansResult
{
    std::size_t k = 0;
    std::vector<std::size_t> labels;    // per frame
    std::vector<std::size_t> sizes;     // per cluster
    std::vector<double> centroids;      // k x dims, row-major
    std::size_t dims = 0;
    double inertia = 0.0; // sum of squared distances to centroids
};

/** Lloyd's k-means with k-means++ seeding. */
KMeansResult kmeans(const FeatureMatrix &features, std::size_t k,
                    const KMeansConfig &config = KMeansConfig{});

/** Bayesian Information Criterion of a clustering (Sec. III-F). */
double bicScore(const FeatureMatrix &features,
                const KMeansResult &clustering);

struct SelectorConfig
{
    /**
     * BIC spread threshold T: the chosen k is the smallest whose BIC
     * reaches min + T * (max - min) of the explored range.
     */
    double threshold = 0.85;
    /** k-means attempts per k (robustness against bad seeds). */
    std::size_t restarts = 3;
    /** Consecutive BIC decreases tolerated before the search stops. */
    std::size_t patience = 3;
    /** Hard cap on the explored k. */
    std::size_t maxClusters = 64;
    KMeansConfig kmeans;
};

struct SelectionStep
{
    double bic = 0.0;
    KMeansResult result;
};

struct SelectionResult
{
    std::vector<SelectionStep> trace; // index i holds k = i + 1
    std::size_t chosenIndex = 0;

    const KMeansResult &
    chosen() const
    {
        return trace[chosenIndex].result;
    }

    double chosenBic() const { return trace[chosenIndex].bic; }
};

/** Grow k until BIC saturates; pick via the spread threshold. */
SelectionResult selectClustering(const FeatureMatrix &features,
                                 const SelectorConfig &config =
                                     SelectorConfig{});

/**
 * The frames MEGsim cycle-simulates: per cluster, the member closest
 * to the centroid, weighted by the cluster population.
 */
struct RepresentativeSet
{
    std::vector<std::size_t> frames;
    std::vector<double> weights;

    std::size_t size() const { return frames.size(); }
};

RepresentativeSet representativeSet(const FeatureMatrix &features,
                                    const KMeansResult &clustering);

/**
 * Every cluster's members ordered closest-to-centroid first — the
 * fallback chain graceful degradation walks when a representative
 * frame fails or times out. members[c][0] is exactly the frame
 * representativeSet() picks.
 */
struct RankedClusters
{
    std::vector<std::vector<std::size_t>> members;
    std::vector<double> weights; // cluster populations
};

RankedClusters rankClusterMembers(const FeatureMatrix &features,
                                  const KMeansResult &clustering);

/**
 * Pairwise Euclidean frame distances (the Fig. 5 similarity matrix;
 * darker = more similar in the exported plots).
 */
class SimilarityMatrix
{
  public:
    explicit SimilarityMatrix(const FeatureMatrix &features);

    std::size_t frames() const { return n_; }

    double
    at(std::size_t a, std::size_t b) const
    {
        return dist_[a * n_ + b];
    }

    double maxDistance() const { return max_; }
    double meanDistance() const { return mean_; }

    /** Downsample to a @p size x @p size grayscale plot. */
    util::GrayImage toImage(int size) const;

    void writePgm(const std::string &path, int size = 512) const;

  private:
    std::size_t n_ = 0;
    std::vector<double> dist_;
    double max_ = 0.0;
    double mean_ = 0.0;
};

/**
 * Fig. 3: how well each characteristic group explains a target metric.
 * Shader groups use the coefficient of multiple correlation (Eqs.
 * 2-3), the single-column PRIM group Pearson's coefficient (Eq. 1).
 */
struct CorrelationStudy
{
    double vscv = 0.0;
    double fscv = 0.0;
    double prim = 0.0;
};

CorrelationStudy correlationStudy(const FeatureMatrix &rawFeatures,
                                  const std::vector<double> &metric);

struct MegsimConfig
{
    SelectorConfig selector;
    NormalizationScheme normalization =
        NormalizationScheme::GroupSumWeights;
    GroupWeights weights;
    /** Random-projection target dimensionality (Sec. III-E). */
    std::size_t projectedDims = 24;
};

/**
 * Pooled cross-benchmark feature space (suite clustering): every
 * benchmark's NORMALIZED feature rows stacked into one matrix, with
 * per-row provenance back to (benchmark, local frame). Benchmarks
 * disagree on shader counts, so rows are zero-padded to the widest
 * vs/fs group across the pool — a missing shader contributes no work,
 * which is exactly what a zero column says. Normalization happens
 * per benchmark BEFORE pooling (GroupSumWeights rescales each group
 * to a fixed budget), so a heavyweight title cannot dominate the
 * distance metric by sheer magnitude.
 */
struct PooledFeatures
{
    /** frames(total) x (maxVs + maxFs + 1), PRIM last. */
    FeatureMatrix features;
    /** Per pooled row: owning benchmark index (pool order). */
    std::vector<std::size_t> bench;
    /** Per pooled row: local frame index within that benchmark. */
    std::vector<std::size_t> frame;
    /** Per benchmark: its first pooled row (rows are bench-major). */
    std::vector<std::size_t> firstRow;
    /** Per benchmark: its frame count. */
    std::vector<std::size_t> frames;

    std::size_t numBenches() const { return firstRow.size(); }
};

/**
 * Stack per-benchmark normalized feature matrices (pool order) into
 * one padded matrix with provenance. Pure row copying — pooling never
 * re-normalizes, so each benchmark's rows are bit-identical to the
 * ones its own per-bench pipeline would cluster.
 */
PooledFeatures
poolFeatures(const std::vector<const FeatureMatrix *> &normalized);

/**
 * One shared representative: the pooled frame closest to its cluster
 * centroid, with provenance naming the benchmark that must simulate
 * it. Its timing metrics are simulated ONCE and reused by every
 * benchmark with members in the cluster.
 */
struct SuiteRepresentative
{
    std::size_t cluster = 0; // cluster index in the chosen k-means
    std::size_t bench = 0;   // provenance: owning benchmark
    std::size_t frame = 0;   // local frame within that benchmark
    double weight = 0.0;     // suite-wide cluster population
};

/** Cross-benchmark clustering plus the per-bench fold-back weights. */
struct SuiteClustering
{
    SelectionResult selection;
    /** One entry per non-empty cluster, in cluster order. */
    std::vector<SuiteRepresentative> representatives;
    /**
     * memberCounts[b][r]: how many of benchmark b's frames landed in
     * representatives[r]'s cluster — the per-benchmark fold-back
     * weights (columns sum to representatives[r].weight, rows to the
     * benchmark's frame count).
     */
    std::vector<std::vector<double>> memberCounts;
};

/**
 * Representative election + fold-back weights for an existing
 * clustering of @p pooled rows (the golden tests drive this directly
 * with a hand-built k-means result).
 */
SuiteClustering suiteFromClustering(const PooledFeatures &pooled,
                                    const FeatureMatrix &clustered,
                                    const KMeansResult &clustering);

/**
 * The full suite-level pipeline on pooled features: random projection
 * (same seed as the per-bench path), BIC-guided k-selection, and
 * suite-wide representative election. @p seed overrides the k-means
 * seed (0 keeps the configured one). Thread-count invariant like the
 * per-bench pipeline.
 */
SuiteClustering clusterSuite(const PooledFeatures &pooled,
                             const MegsimConfig &config,
                             std::uint64_t seed = 0);

/**
 * Relative error (%) of the fold-back estimate
 * sum_r counts[r] * repValues[r] against @p truthTotal — the suite
 * twin of MegsimPipeline::errorPercent, as a pure function so both
 * the campaign and the golden tests compute it identically.
 */
double foldBackErrorPercent(const std::vector<double> &counts,
                            const std::vector<double> &repValues,
                            double truthTotal);

/**
 * Column layout of the activity cache/journal rows (frame, primitives,
 * vertices, fragments, then one column per vertex and fragment
 * shader). Shared by the checkpoint journals, the cache artifacts and
 * the serve worker protocol, which all transport the same rows.
 */
std::vector<std::string> activityHeader(const gfx::SceneTrace &scene);
std::vector<double> activityToRow(const gpusim::FrameActivity &act);
gpusim::FrameActivity activityFromRow(const std::vector<double> &row,
                                      std::size_t vsShaders,
                                      std::size_t fsShaders);

/**
 * Running exact-vs-fast audit totals of one benchmark. When the GPU
 * config enables the fast-mem model, every auditEvery-th frame is
 * simulated twice — once with the model (the reported result) and once
 * exactly — and both sides' metric totals accumulate here. The
 * headline `exact_vs_fast` error is the relative deviation of the two
 * sums per metric, computed by the same machinery that scores MEGsim
 * itself against ground truth.
 */
struct FastMemAudit
{
    /** Per gpusim::Metric, in enum order (cycles, dram, l2, tile). */
    static constexpr std::size_t kNumMetrics = 4;

    double fastSum[kNumMetrics] = {0.0, 0.0, 0.0, 0.0};
    double exactSum[kNumMetrics] = {0.0, 0.0, 0.0, 0.0};
    std::uint64_t auditedFrames = 0;

    void fold(const gpusim::FrameStats &fast,
              const gpusim::FrameStats &exact);

    /** Relative error (%) of the fast sum vs the exact sum. */
    double errorPercent(std::size_t metric) const;
};

/** Outcome of probing a benchmark's on-disk ground-truth caches. */
enum class CacheProbe {
    Loaded,  // both artifacts verified and loaded into memory
    Missing, // at least one artifact absent, none corrupt
    Invalid, // at least one artifact stale/corrupt (regeneration due)
};

/**
 * A benchmark's per-frame ground truth, computed lazily and cached on
 * disk (keyed by scene content hash and GPU-config fingerprint, so
 * stale caches can never be reused). An empty @p cacheDirectory
 * disables the disk cache. Constructing BenchmarkData does no
 * simulation work at all — the functional pass runs on first use of
 * activities(), the cycle-level pass on first use of frameStats().
 */
class BenchmarkData
{
  public:
    BenchmarkData(const gfx::SceneTrace &scene,
                  const gpusim::GpuConfig &config,
                  std::string cacheDirectory);

    const gfx::SceneTrace &scene() const { return *scene_; }
    const gpusim::GpuConfig &config() const { return config_; }

    /** Functional activity of every frame (cheap pass). */
    const std::vector<gpusim::FrameActivity> &activities();

    /** Cycle-level stats of every frame (the expensive pass). */
    const std::vector<gpusim::FrameStats> &frameStats();

    /** One ground-truth metric value per frame. */
    std::vector<double> metric(gpusim::Metric metric);

    /**
     * On-disk path of the @p kind ("activity" / "stats") cache
     * artifact; also what `megsim-cli verify-cache` inspects.
     */
    std::string cachePath(const std::string &kind) const;

    /** Scene/config fingerprint keying caches and checkpoints. */
    std::uint64_t cacheKey() const { return key_; }

    /**
     * Attempt to satisfy both passes from the disk caches without
     * simulating anything: Loaded means activities() and frameStats()
     * are now in memory and free; Missing/Invalid mean a ground-truth
     * pass is due (Invalid additionally flags that a stale or corrupt
     * artifact was found and counted under resilience.cache.*).
     */
    CacheProbe probeCaches();

    /** Both passes already in memory (cache hit or pass complete). */
    bool complete() const { return haveStats_ && haveActivities_; }

    /**
     * Directory + artifact stem the cache and checkpoint files hang
     * off; serve shard journals derive their stems from it too.
     */
    std::string checkpointStem() const;

    /**
     * Install externally produced ground truth (frames assembled from
     * supervised worker shards) and store the cache artifacts. Both
     * vectors must cover every scene frame in order. The data stays
     * installed in memory even when a cache store fails; the first
     * store error is returned so the caller can decide whether the
     * on-disk state is trustworthy.
     */
    resilience::Expected<void>
    installGroundTruth(std::vector<gpusim::FrameStats> stats,
                       std::vector<gpusim::FrameActivity> activities);

    /** True when this data was produced by the fast-mem model. */
    bool fastMem() const { return config_.fastMem.enabled; }

    /** Exact-vs-fast audit totals (empty unless fastMem()). */
    const FastMemAudit &audit() const { return audit_; }

  private:
    friend class GroundTruthPass;

    CacheProbe loadActivityCache();
    resilience::Expected<void> storeActivityCache() const;
    CacheProbe loadStatsCache();
    resilience::Expected<void> storeStatsCache() const;

    const gfx::SceneTrace *scene_;
    gpusim::GpuConfig config_;
    std::string cacheDir_;
    std::uint64_t key_ = 0;
    std::vector<gpusim::FrameActivity> activities_;
    std::vector<gpusim::FrameStats> stats_;
    FastMemAudit audit_;
    bool haveActivities_ = false;
    bool haveStats_ = false;
};

/** What one ground-truth worker hands to the ordered committer. */
struct GroundTruthFrame
{
    gpusim::FrameStats stats;
    gpusim::FrameActivity activity;
    /** Set on audit frames of a fast-mem pass: the exact re-run. */
    bool audited = false;
    gpusim::FrameStats exact;
};

/**
 * The checkpointed cycle-level ground-truth pass of ONE benchmark,
 * exposed as produce/commit halves so a driver can run it through an
 * exec::Pool job of its own choosing — BenchmarkData::frameStats()
 * runs one pass as a private pool job, batch::Campaign splices the
 * frames of many passes into a single shared job. The split preserves
 * the frameStats() contract exactly: checkpoint resume on
 * construction, watchdog + fault hooks per frame, journal appends in
 * strict frame order from commit() (caller thread only), caches
 * stored and the checkpoint discarded by finish(). Frames simulate
 * cold, so any interleaving of produce() calls yields bit-identical
 * results.
 */
class GroundTruthPass
{
  public:
    /** Resumes the checkpoint (if any); @p workers sizes the
     *  thread-local simulator slots. */
    GroundTruthPass(BenchmarkData &data, std::size_t workers);
    ~GroundTruthPass();

    BenchmarkData &data() { return *data_; }

    /** Frames still to simulate; produce/commit indices are
     *  [0, remaining()). */
    std::size_t remaining() const { return total_ - start_; }

    /** Frames recovered from a previous run's checkpoint. */
    std::size_t resumedFrames() const { return start_; }

    /** Simulate local frame @p i on worker @p w (any thread). */
    resilience::Expected<GroundTruthFrame>
    produce(std::size_t i, std::size_t w);

    /** Journal local frame @p i; caller thread, in order. */
    void commit(std::size_t i, GroundTruthFrame &&frame);

    /**
     * All frames committed: publish stats/activities into the
     * BenchmarkData, store the cache artifacts, drop the checkpoint.
     */
    void finish();

  private:
    BenchmarkData *data_;
    std::size_t total_ = 0;
    std::size_t start_ = 0;
    std::size_t committed_ = 0;
    std::unique_ptr<resilience::Checkpoint> ckpt_;
    std::unique_ptr<gpusim::SceneBinding> binding_;
    std::vector<std::unique_ptr<gpusim::TimingSimulator>> sims_;
    // Exact (model-off) twins of sims_, built lazily on fast-mem
    // passes to double-run the audit frames.
    std::vector<std::unique_ptr<gpusim::TimingSimulator>> exactSims_;
    std::vector<gpusim::FrameStats> stats_;
    std::vector<gpusim::FrameActivity> acts_;
    std::unique_ptr<obs::Heartbeat> heartbeat_;
    resilience::WatchdogConfig watchdog_;
};

/** One end-to-end application of the methodology. */
struct MegsimRun
{
    std::size_t numFrames = 0;
    SelectionResult selection;
    RepresentativeSet representatives;

    std::size_t
    numRepresentatives() const
    {
        return representatives.size();
    }

    double
    reductionFactor() const
    {
        return representatives.size() == 0
                   ? 0.0
                   : static_cast<double>(numFrames) /
                         static_cast<double>(representatives.size());
    }
};

class MegsimPipeline
{
  public:
    explicit MegsimPipeline(BenchmarkData &data,
                            const MegsimConfig &config = MegsimConfig{});

    /** Unnormalized characteristic vectors (Fig. 3 inputs). */
    const FeatureMatrix &rawFeatures();

    /** Normalized characteristic vectors (Fig. 5 inputs). */
    const FeatureMatrix &features();

    /** Projected vectors clustering runs on (Sec. III-E). */
    const FeatureMatrix &projectedFeatures();

    /** The benchmark data this pipeline reduces. */
    BenchmarkData &data() { return *data_; }

    /**
     * Select representatives. @p seed overrides the k-means seed (0
     * keeps the configured one) — Table IV repeats runs this way.
     */
    MegsimRun run(std::uint64_t seed = 0);

    /**
     * Relative error (%) of the representative-weighted estimate of
     * @p metric against the full ground truth.
     */
    double errorPercent(const MegsimRun &run, gpusim::Metric metric);

  private:
    BenchmarkData *data_;
    MegsimConfig config_;
    FeatureMatrix raw_;
    FeatureMatrix normalized_;
    FeatureMatrix projected_;
    bool haveRaw_ = false;
    bool haveNormalized_ = false;
    bool haveProjected_ = false;
};

/** Table IV baseline: systematic random sub-sampling. */
struct RandomSamplingConfig
{
    std::size_t trials = 1000;
    double confidencePercent = 95.0;
    std::uint64_t seed = 0x5353;
};

/**
 * The smallest systematic random sample (in frames) whose
 * confidence-percentile relative error of the estimated total of
 * @p values is at or below @p maxErrorPercent.
 */
std::size_t findMatchingSampleCount(const std::vector<double> &values,
                                    double maxErrorPercent,
                                    const RandomSamplingConfig &config =
                                        RandomSamplingConfig{});

} // namespace msim::megsim

#endif // MSIM_CORE_MEGSIM_HH
