#include "core/megsim.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "exec/pool.hh"
#include "sim/random.hh"

namespace msim::megsim
{

namespace
{

double
sqDist(const FeatureMatrix &m, std::size_t frame,
       const std::vector<double> &centroids, std::size_t cluster,
       std::size_t dims)
{
    double d2 = 0.0;
    for (std::size_t c = 0; c < dims; ++c) {
        const double diff =
            m.at(frame, c) - centroids[cluster * dims + c];
        d2 += diff * diff;
    }
    return d2;
}

} // namespace

KMeansResult
kmeans(const FeatureMatrix &features, std::size_t k,
       const KMeansConfig &config)
{
    const std::size_t n = features.rows();
    const std::size_t dims = features.cols();
    k = std::max<std::size_t>(1, std::min(k, n));

    KMeansResult result;
    result.k = k;
    result.dims = dims;
    result.labels.assign(n, 0);
    result.sizes.assign(k, 0);
    result.centroids.assign(k * dims, 0.0);
    if (n == 0)
        return result;

    // k-means++ seeding. The per-frame distance updates fan out (each
    // frame owns its minD2 slot); the weighted draw below stays a
    // serial sum in frame order so the result is bit-identical to a
    // single-threaded run.
    exec::Pool &pool = exec::Pool::global();
    sim::Rng rng(config.seed);
    std::vector<double> minD2(n, std::numeric_limits<double>::max());
    std::size_t first = rng.below(n);
    for (std::size_t c = 0; c < dims; ++c)
        result.centroids[c] = features.at(first, c);
    for (std::size_t cl = 1; cl < k; ++cl) {
        (void)pool.parallelFor(
            n,
            [&](std::size_t f,
                std::size_t) -> resilience::Expected<void> {
                const double d2 = sqDist(features, f,
                                         result.centroids, cl - 1,
                                         dims);
                if (d2 < minD2[f])
                    minD2[f] = d2;
                return {};
            },
            exec::Chunking::Static);
        double total = 0.0;
        for (std::size_t f = 0; f < n; ++f)
            total += minD2[f];
        std::size_t pick = 0;
        if (total > 0.0) {
            double target = rng.uniform() * total;
            for (std::size_t f = 0; f < n; ++f) {
                target -= minD2[f];
                if (target <= 0.0) {
                    pick = f;
                    break;
                }
            }
        } else {
            pick = rng.below(n);
        }
        for (std::size_t c = 0; c < dims; ++c)
            result.centroids[cl * dims + c] = features.at(pick, c);
    }

    // Lloyd iterations. The O(n*k*d) assignment step fans out —
    // every frame writes only its own label, so labels are identical
    // at any thread count. The centroid update stays serial: its
    // floating-point sums are order-sensitive, and keeping them in
    // frame order is what makes centroids bit-identical.
    std::vector<unsigned char> workerChanged(pool.workers(), 0);
    for (std::size_t iter = 0; iter < config.maxIterations; ++iter) {
        bool changed = iter == 0;
        std::fill(workerChanged.begin(), workerChanged.end(), 0);
        (void)pool.parallelFor(
            n,
            [&](std::size_t f,
                std::size_t w) -> resilience::Expected<void> {
                std::size_t best = 0;
                double bestD2 = std::numeric_limits<double>::max();
                for (std::size_t cl = 0; cl < k; ++cl) {
                    const double d2 = sqDist(features, f,
                                             result.centroids, cl,
                                             dims);
                    if (d2 < bestD2) {
                        bestD2 = d2;
                        best = cl;
                    }
                }
                if (result.labels[f] != best) {
                    result.labels[f] = best;
                    workerChanged[w] = 1;
                }
                return {};
            },
            exec::Chunking::Static);
        for (unsigned char c : workerChanged)
            changed = changed || c != 0;
        if (!changed)
            break;

        std::fill(result.centroids.begin(), result.centroids.end(),
                  0.0);
        std::fill(result.sizes.begin(), result.sizes.end(), 0);
        for (std::size_t f = 0; f < n; ++f) {
            const std::size_t cl = result.labels[f];
            ++result.sizes[cl];
            for (std::size_t c = 0; c < dims; ++c)
                result.centroids[cl * dims + c] += features.at(f, c);
        }
        for (std::size_t cl = 0; cl < k; ++cl) {
            if (result.sizes[cl] == 0) {
                // Re-seed an emptied cluster on a random frame.
                const std::size_t f = rng.below(n);
                for (std::size_t c = 0; c < dims; ++c)
                    result.centroids[cl * dims + c] =
                        features.at(f, c);
                continue;
            }
            const double inv =
                1.0 / static_cast<double>(result.sizes[cl]);
            for (std::size_t c = 0; c < dims; ++c)
                result.centroids[cl * dims + c] *= inv;
        }
    }

    // Final bookkeeping: sizes and inertia for the final labels.
    std::fill(result.sizes.begin(), result.sizes.end(), 0);
    result.inertia = 0.0;
    for (std::size_t f = 0; f < n; ++f) {
        ++result.sizes[result.labels[f]];
        result.inertia +=
            sqDist(features, f, result.centroids, result.labels[f],
                   dims);
    }
    return result;
}

double
bicScore(const FeatureMatrix &features, const KMeansResult &clustering)
{
    // x-means style BIC under identical spherical Gaussians: data
    // log-likelihood minus (parameters / 2) * log n.
    const double n = static_cast<double>(features.rows());
    const double d = static_cast<double>(features.cols());
    const double k = static_cast<double>(clustering.k);
    if (features.rows() == 0)
        return 0.0;

    const double denom =
        d * std::max(1.0, n - k);
    double variance = clustering.inertia / denom;
    variance = std::max(variance, 1e-12);

    double ll = 0.0;
    for (std::size_t cl = 0; cl < clustering.k; ++cl) {
        const double ni =
            static_cast<double>(clustering.sizes[cl]);
        if (ni <= 0.0)
            continue;
        ll += ni * std::log(ni) - ni * std::log(n) -
              ni * d / 2.0 *
                  std::log(2.0 * 3.141592653589793 * variance) -
              (ni - 1.0) * d / 2.0;
    }
    const double params = k * (d + 1.0);
    return ll - params / 2.0 * std::log(n);
}

SelectionResult
selectClustering(const FeatureMatrix &features,
                 const SelectorConfig &config)
{
    SelectionResult sel;
    const std::size_t maxK = std::min(
        std::max<std::size_t>(1, config.maxClusters),
        std::max<std::size_t>(1, features.rows()));

    // Independent k values fan out in waves of one pool width; the
    // serial walk below replays the exact patience rule over each
    // wave, so the trace and the chosen k are bit-identical to a
    // serial sweep (wave work past the stopping point is discarded).
    // Each per-k job runs its own kmeans calls inline — nested pool
    // use degrades to serial — so the fan-out is over k only.
    exec::Pool &pool = exec::Pool::global();
    const std::size_t wave = pool.workers();
    double bestBic = -std::numeric_limits<double>::max();
    std::size_t decreases = 0;
    bool stopped = false;
    for (std::size_t base = 1; base <= maxK && !stopped;
         base += wave) {
        const std::size_t count = std::min(wave, maxK - base + 1);
        std::vector<SelectionStep> steps(count);
        (void)pool.parallelFor(
            count,
            [&](std::size_t i,
                std::size_t) -> resilience::Expected<void> {
                const std::size_t k = base + i;
                // Best-of-restarts guards the BIC curve against one
                // unlucky k-means++ draw ending the search
                // prematurely.
                SelectionStep step;
                step.bic = -std::numeric_limits<double>::max();
                const std::size_t restarts =
                    std::max<std::size_t>(1, config.restarts);
                for (std::size_t r = 0; r < restarts; ++r) {
                    KMeansConfig kc = config.kmeans;
                    kc.seed = sim::hashMix(config.kmeans.seed, k, r);
                    KMeansResult attempt = kmeans(features, k, kc);
                    const double bic = bicScore(features, attempt);
                    if (bic > step.bic) {
                        step.bic = bic;
                        step.result = std::move(attempt);
                    }
                }
                steps[i] = std::move(step);
                return {};
            },
            exec::Chunking::Dynamic, 1);

        for (SelectionStep &step : steps) {
            sel.trace.push_back(std::move(step));
            if (sel.trace.back().bic > bestBic) {
                bestBic = sel.trace.back().bic;
                decreases = 0;
            } else {
                ++decreases;
                if (decreases > config.patience) {
                    stopped = true;
                    break;
                }
            }
        }
    }

    // The spread threshold T picks the smallest k whose BIC clears
    // min + T * (max - min) of the explored range (Sec. III-F).
    double minBic = sel.trace.front().bic;
    double maxBic = sel.trace.front().bic;
    for (const SelectionStep &step : sel.trace) {
        minBic = std::min(minBic, step.bic);
        maxBic = std::max(maxBic, step.bic);
    }
    const double cut = minBic + config.threshold * (maxBic - minBic);
    sel.chosenIndex = sel.trace.size() - 1;
    for (std::size_t i = 0; i < sel.trace.size(); ++i) {
        if (sel.trace[i].bic >= cut) {
            sel.chosenIndex = i;
            break;
        }
    }
    return sel;
}

RepresentativeSet
representativeSet(const FeatureMatrix &features,
                  const KMeansResult &clustering)
{
    RepresentativeSet reps;
    const std::size_t dims = features.cols();
    for (std::size_t cl = 0; cl < clustering.k; ++cl) {
        std::size_t best = static_cast<std::size_t>(-1);
        double bestD2 = std::numeric_limits<double>::max();
        for (std::size_t f = 0; f < features.rows(); ++f) {
            if (clustering.labels[f] != cl)
                continue;
            const double d2 =
                sqDist(features, f, clustering.centroids, cl, dims);
            if (d2 < bestD2) {
                bestD2 = d2;
                best = f;
            }
        }
        if (best == static_cast<std::size_t>(-1))
            continue; // empty cluster
        reps.frames.push_back(best);
        reps.weights.push_back(
            static_cast<double>(clustering.sizes[cl]));
    }
    return reps;
}

RankedClusters
rankClusterMembers(const FeatureMatrix &features,
                   const KMeansResult &clustering)
{
    RankedClusters ranked;
    const std::size_t dims = features.cols();
    for (std::size_t cl = 0; cl < clustering.k; ++cl) {
        std::vector<std::pair<double, std::size_t>> members;
        for (std::size_t f = 0; f < features.rows(); ++f) {
            if (clustering.labels[f] != cl)
                continue;
            members.emplace_back(
                sqDist(features, f, clustering.centroids, cl, dims),
                f);
        }
        if (members.empty())
            continue; // empty cluster
        std::sort(members.begin(), members.end());
        std::vector<std::size_t> frames;
        frames.reserve(members.size());
        for (const auto &[d2, f] : members)
            frames.push_back(f);
        ranked.members.push_back(std::move(frames));
        ranked.weights.push_back(
            static_cast<double>(clustering.sizes[cl]));
    }
    return ranked;
}

} // namespace msim::megsim
