#include "core/megsim.hh"

#include <algorithm>
#include <cmath>

#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"

namespace msim::megsim
{

PooledFeatures
poolFeatures(const std::vector<const FeatureMatrix *> &normalized)
{
    std::size_t maxVs = 0;
    std::size_t maxFs = 0;
    std::size_t total = 0;
    for (const FeatureMatrix *m : normalized) {
        maxVs = std::max(maxVs, m->vsDims());
        maxFs = std::max(maxFs, m->fsDims());
        total += m->rows();
    }

    PooledFeatures pooled;
    pooled.features = FeatureMatrix(total, maxVs, maxFs);
    pooled.bench.reserve(total);
    pooled.frame.reserve(total);
    pooled.firstRow.reserve(normalized.size());
    pooled.frames.reserve(normalized.size());

    std::size_t row = 0;
    for (std::size_t b = 0; b < normalized.size(); ++b) {
        const FeatureMatrix &m = *normalized[b];
        pooled.firstRow.push_back(row);
        pooled.frames.push_back(m.rows());
        for (std::size_t f = 0; f < m.rows(); ++f, ++row) {
            for (std::size_t d = 0; d < m.vsDims(); ++d)
                pooled.features.at(row, d) = m.at(f, d);
            for (std::size_t d = 0; d < m.fsDims(); ++d)
                pooled.features.at(row, maxVs + d) =
                    m.at(f, m.vsDims() + d);
            pooled.features.at(row, maxVs + maxFs) =
                m.at(f, m.vsDims() + m.fsDims());
            pooled.bench.push_back(b);
            pooled.frame.push_back(f);
        }
    }
    return pooled;
}

SuiteClustering
suiteFromClustering(const PooledFeatures &pooled,
                    const FeatureMatrix &clustered,
                    const KMeansResult &clustering)
{
    if (clustering.labels.size() != pooled.features.rows())
        sim::fatal("suite clustering labels %zu frames but the pool "
                   "holds %zu",
                   clustering.labels.size(), pooled.features.rows());

    SuiteClustering suite;
    suite.selection.trace.push_back(SelectionStep{0.0, clustering});
    suite.selection.chosenIndex = 0;

    const RepresentativeSet reps =
        representativeSet(clustered, clustering);

    // representativeSet walks clusters in index order and skips the
    // empty ones, so representative r is the r-th non-empty cluster.
    std::vector<std::size_t> repOfCluster(clustering.k,
                                          clustering.k);
    suite.representatives.reserve(reps.size());
    std::size_t r = 0;
    for (std::size_t cl = 0; cl < clustering.k; ++cl) {
        if (clustering.sizes[cl] == 0)
            continue;
        repOfCluster[cl] = r;
        const std::size_t pooledRow = reps.frames[r];
        suite.representatives.push_back(
            SuiteRepresentative{cl, pooled.bench[pooledRow],
                                pooled.frame[pooledRow],
                                reps.weights[r]});
        ++r;
    }

    suite.memberCounts.assign(
        pooled.numBenches(),
        std::vector<double>(suite.representatives.size(), 0.0));
    for (std::size_t row = 0; row < clustering.labels.size(); ++row) {
        const std::size_t rep = repOfCluster[clustering.labels[row]];
        suite.memberCounts[pooled.bench[row]][rep] += 1.0;
    }
    return suite;
}

SuiteClustering
clusterSuite(const PooledFeatures &pooled, const MegsimConfig &config,
             std::uint64_t seed)
{
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "clustering");
    obs::AttribScope analyzeScope(obs::HostDomain::Analyze);

    const FeatureMatrix projected =
        randomProject(pooled.features, config.projectedDims);

    SelectorConfig selector = config.selector;
    if (seed != 0)
        selector.kmeans.seed = seed;

    SelectionResult selection = selectClustering(projected, selector);
    SuiteClustering suite =
        suiteFromClustering(pooled, projected, selection.chosen());
    suite.selection = std::move(selection);
    return suite;
}

double
foldBackErrorPercent(const std::vector<double> &counts,
                     const std::vector<double> &repValues,
                     double truthTotal)
{
    if (counts.size() != repValues.size())
        sim::fatal("fold-back sizes disagree: %zu counts vs %zu "
                   "representative values",
                   counts.size(), repValues.size());

    double estimated = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i)
        estimated += counts[i] * repValues[i];

    if (truthTotal == 0.0)
        return 0.0;
    return std::fabs(estimated - truthTotal) / truthTotal * 100.0;
}

} // namespace msim::megsim
