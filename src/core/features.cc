#include "core/megsim.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace msim::megsim
{

FeatureMatrix
buildFeatureMatrix(const std::vector<gpusim::FrameActivity> &activities,
                   const gfx::SceneTrace &scene)
{
    const std::vector<std::uint32_t> vsIds =
        scene.shaderIdsOf(gfx::ShaderKind::Vertex);
    const std::vector<std::uint32_t> fsIds =
        scene.shaderIdsOf(gfx::ShaderKind::Fragment);

    FeatureMatrix m(activities.size(), vsIds.size(), fsIds.size());
    for (std::size_t f = 0; f < activities.size(); ++f) {
        const gpusim::FrameActivity &act = activities[f];
        for (std::size_t c = 0; c < vsIds.size(); ++c) {
            const double count =
                c < act.vsCounts.size()
                    ? static_cast<double>(act.vsCounts[c])
                    : 0.0;
            m.at(f, c) =
                count * scene.shaders[vsIds[c]].characteristicCost();
        }
        for (std::size_t c = 0; c < fsIds.size(); ++c) {
            const double count =
                c < act.fsCounts.size()
                    ? static_cast<double>(act.fsCounts[c])
                    : 0.0;
            m.at(f, vsIds.size() + c) =
                count * scene.shaders[fsIds[c]].characteristicCost();
        }
        m.at(f, vsIds.size() + fsIds.size()) =
            static_cast<double>(act.primitives);
    }
    return m;
}

namespace
{

struct Group
{
    std::size_t begin;
    std::size_t end;
    double weight;
};

std::vector<Group>
groupsOf(const FeatureMatrix &m, const GroupWeights &w)
{
    const std::size_t vs = m.vsDims();
    const std::size_t fs = m.fsDims();
    return {
        {0, vs, w.vs},
        {vs, vs + fs, w.fs},
        {vs + fs, m.cols(), w.prim},
    };
}

} // namespace

void
normalize(FeatureMatrix &features, NormalizationScheme scheme,
          const GroupWeights &weights)
{
    if (scheme == NormalizationScheme::None || features.rows() == 0)
        return;

    if (scheme == NormalizationScheme::GroupSumWeights) {
        // Scale each group so its mean per-frame sum equals the group
        // weight: the relative frame-to-frame magnitudes survive, but
        // the groups contribute to distances in the power-derived
        // proportions.
        for (const Group &g : groupsOf(features, weights)) {
            double total = 0.0;
            for (std::size_t f = 0; f < features.rows(); ++f)
                for (std::size_t d = g.begin; d < g.end; ++d)
                    total += features.at(f, d);
            if (total <= 0.0)
                continue;
            const double scale =
                g.weight * static_cast<double>(features.rows()) /
                total;
            for (std::size_t f = 0; f < features.rows(); ++f)
                for (std::size_t d = g.begin; d < g.end; ++d)
                    features.at(f, d) *= scale;
        }
        return;
    }

    // ColumnMaxWeights: classic per-column max normalization, then the
    // group weight.
    for (const Group &g : groupsOf(features, weights)) {
        for (std::size_t d = g.begin; d < g.end; ++d) {
            double maxv = 0.0;
            for (std::size_t f = 0; f < features.rows(); ++f)
                maxv = std::max(maxv, features.at(f, d));
            if (maxv <= 0.0)
                continue;
            const double scale = g.weight / maxv;
            for (std::size_t f = 0; f < features.rows(); ++f)
                features.at(f, d) *= scale;
        }
    }
}

FeatureMatrix
randomProject(const FeatureMatrix &features, std::size_t dims,
              std::uint64_t seed)
{
    if (features.cols() <= dims)
        return features;

    // Fixed-seed Gaussian projection matrix, cols x dims.
    sim::Rng rng(seed);
    const std::size_t in = features.cols();
    std::vector<double> proj(in * dims);
    const double scale = 1.0 / std::sqrt(static_cast<double>(dims));
    for (double &v : proj)
        v = rng.gaussian() * scale;

    FeatureMatrix out(features.rows(),
                      dims > 0 ? dims - 1 : 0, 0);
    for (std::size_t f = 0; f < features.rows(); ++f) {
        for (std::size_t d = 0; d < dims; ++d) {
            double acc = 0.0;
            for (std::size_t c = 0; c < in; ++c)
                acc += features.at(f, c) * proj[c * dims + d];
            out.at(f, d) = acc;
        }
    }
    return out;
}

SimilarityMatrix::SimilarityMatrix(const FeatureMatrix &features)
    : n_(features.rows()), dist_(n_ * n_, 0.0)
{
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < n_; ++a) {
        for (std::size_t b = a + 1; b < n_; ++b) {
            double d2 = 0.0;
            for (std::size_t c = 0; c < features.cols(); ++c) {
                const double diff =
                    features.at(a, c) - features.at(b, c);
                d2 += diff * diff;
            }
            const double d = std::sqrt(d2);
            dist_[a * n_ + b] = d;
            dist_[b * n_ + a] = d;
            max_ = std::max(max_, d);
            sum += d;
            ++pairs;
        }
    }
    mean_ = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
}

util::GrayImage
SimilarityMatrix::toImage(int size) const
{
    if (n_ == 0)
        return util::GrayImage(1, 1);
    size = std::max(1, std::min(size, static_cast<int>(n_)));
    util::GrayImage img(size, size);
    const double step = static_cast<double>(n_) / size;
    const double norm = max_ > 0.0 ? 255.0 / max_ : 0.0;
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            const auto fa = static_cast<std::size_t>(y * step);
            const auto fb = static_cast<std::size_t>(x * step);
            // Darker = more similar.
            img.at(x, y) = static_cast<std::uint8_t>(
                at(fa, fb) * norm);
        }
    }
    return img;
}

void
SimilarityMatrix::writePgm(const std::string &path, int size) const
{
    toImage(size).writePgm(path);
}

namespace
{

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

/**
 * Coefficient of multiple correlation of @p metric on the feature
 * columns [begin, end): R = sqrt(1 - SSres/SStot) from a ridge-
 * regularized least-squares fit (the tiny Tikhonov term keeps the
 * normal equations solvable when shader columns are collinear, which
 * they routinely are for scripted workloads).
 */
double
multipleCorrelation(const FeatureMatrix &m, std::size_t begin,
                    std::size_t end, const std::vector<double> &y)
{
    const std::size_t n = m.rows();
    const std::size_t p = end - begin;
    if (n < 2 || p == 0)
        return 0.0;

    // Center everything; the intercept drops out.
    std::vector<double> ymean(1, 0.0);
    double my = 0.0;
    for (double v : y)
        my += v;
    my /= static_cast<double>(n);

    std::vector<double> xmean(p, 0.0);
    for (std::size_t j = 0; j < p; ++j) {
        for (std::size_t i = 0; i < n; ++i)
            xmean[j] += m.at(i, begin + j);
        xmean[j] /= static_cast<double>(n);
    }

    // Normal equations A beta = b with A = X'X + lambda I.
    std::vector<double> a(p * p, 0.0);
    std::vector<double> b(p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
            const double xj = m.at(i, begin + j) - xmean[j];
            b[j] += xj * (y[i] - my);
            for (std::size_t k = j; k < p; ++k)
                a[j * p + k] +=
                    xj * (m.at(i, begin + k) - xmean[k]);
        }
    }
    double trace = 0.0;
    for (std::size_t j = 0; j < p; ++j)
        trace += a[j * p + j];
    const double lambda =
        1e-8 * (trace > 0.0 ? trace / static_cast<double>(p) : 1.0);
    for (std::size_t j = 0; j < p; ++j) {
        a[j * p + j] += lambda;
        for (std::size_t k = 0; k < j; ++k)
            a[j * p + k] = a[k * p + j];
    }

    // Gaussian elimination with partial pivoting.
    std::vector<double> beta(b);
    for (std::size_t col = 0; col < p; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < p; ++r)
            if (std::fabs(a[r * p + col]) >
                std::fabs(a[pivot * p + col]))
                pivot = r;
        if (std::fabs(a[pivot * p + col]) < 1e-30)
            continue;
        if (pivot != col) {
            for (std::size_t c = 0; c < p; ++c)
                std::swap(a[col * p + c], a[pivot * p + c]);
            std::swap(beta[col], beta[pivot]);
        }
        for (std::size_t r = col + 1; r < p; ++r) {
            const double factor =
                a[r * p + col] / a[col * p + col];
            for (std::size_t c = col; c < p; ++c)
                a[r * p + c] -= factor * a[col * p + c];
            beta[r] -= factor * beta[col];
        }
    }
    for (std::size_t col = p; col-- > 0;) {
        if (std::fabs(a[col * p + col]) < 1e-30) {
            beta[col] = 0.0;
            continue;
        }
        for (std::size_t c = col + 1; c < p; ++c)
            beta[col] -= a[col * p + c] * beta[c];
        beta[col] /= a[col * p + col];
    }

    double ssres = 0.0, sstot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double pred = 0.0;
        for (std::size_t j = 0; j < p; ++j)
            pred += (m.at(i, begin + j) - xmean[j]) * beta[j];
        const double dy = y[i] - my;
        ssres += (dy - pred) * (dy - pred);
        sstot += dy * dy;
    }
    if (sstot <= 0.0)
        return 0.0;
    const double r2 =
        std::clamp(1.0 - ssres / sstot, 0.0, 1.0);
    return std::sqrt(r2);
}

} // namespace

CorrelationStudy
correlationStudy(const FeatureMatrix &rawFeatures,
                 const std::vector<double> &metric)
{
    if (metric.size() != rawFeatures.rows())
        sim::fatal("correlationStudy: %zu metric values for %zu frames",
                   metric.size(), rawFeatures.rows());

    const std::size_t vs = rawFeatures.vsDims();
    const std::size_t fs = rawFeatures.fsDims();

    CorrelationStudy study;
    study.vscv = multipleCorrelation(rawFeatures, 0, vs, metric);
    study.fscv = multipleCorrelation(rawFeatures, vs, vs + fs, metric);

    std::vector<double> prim(rawFeatures.rows());
    for (std::size_t f = 0; f < rawFeatures.rows(); ++f)
        prim[f] = rawFeatures.at(f, vs + fs);
    study.prim = std::fabs(pearson(prim, metric));
    return study;
}

} // namespace msim::megsim
