/**
 * @file
 * Procedural workload composer: expands a compact GameSpec (object
 * groups, gameplay segments, a segment script) into a deterministic
 * SceneTrace. Composition is prefix-stable — frame f of a spec is
 * identical no matter how many frames are requested — so truncated
 * smoke runs and cached full runs agree.
 */

#ifndef MSIM_WORKLOADS_COMPOSER_HH
#define MSIM_WORKLOADS_COMPOSER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gfx/trace.hh"

namespace msim::workloads
{

/** Where a group's instances live on screen. */
enum class Placement {
    Backdrop, // full-screen background layer, drawn first
    Sprite,   // world objects moving through the scene
    Overlay,  // HUD elements, drawn last, screen-fixed
};

/** A class of drawable objects sharing mesh/shader/texture setup. */
struct GroupSpec
{
    std::string name;
    Placement placement = Placement::Sprite;
    std::uint32_t detail = 2; // mesh tessellation level
    std::uint32_t vs = 0;     // vertex-shader slot (per game)
    std::uint32_t fs = 0;     // fragment-shader slot (per game)
    std::uint32_t tex = 0;    // texture slot (per game)
    bool transparent = false;
    std::uint32_t minCount = 1;
    std::uint32_t maxCount = 1;
    float sizeMin = 0.2f;
    float sizeMax = 0.4f;
};

/** A gameplay phase activating a subset of the groups. */
struct SegmentSpec
{
    std::string name;
    std::vector<std::size_t> groups; // indices into GameSpec::groups
    std::uint32_t minFrames = 40;
    std::uint32_t maxFrames = 80;
    float intensity = 1.0f; // scales instance counts
    float churn = 0.3f;     // 0..1: how fast instances respawn
};

struct GameSpec
{
    std::string name;
    std::string title;
    std::string downloadsMillions; // Table II column (informative)
    bool is3d = false;
    std::size_t frames = 1000;
    std::uint64_t seed = 1;
    std::uint32_t numVertexShaders = 2;
    std::uint32_t numFragmentShaders = 4;
    std::uint32_t numTextures = 4;
    std::uint32_t numWorlds = 1;       // mesh/texture variants
    std::uint32_t instancesPerWorld = 8;
    std::vector<GroupSpec> groups;
    std::vector<SegmentSpec> segments;
    std::vector<std::size_t> script; // segment index per phase
};

class SceneComposer
{
  public:
    explicit SceneComposer(const GameSpec &spec, double scale = 1.0);

    /** Expand spec.frames frames. */
    gfx::SceneTrace compose() const;

  private:
    struct Schedule
    {
        std::size_t segment;
        std::size_t begin;
        std::size_t end;
    };

    gfx::FrameTrace composeFrame(std::size_t f,
                                 const SegmentSpec &segment,
                                 std::size_t segmentOrdinal,
                                 std::size_t frameInSegment) const;

    GameSpec spec_;
    double scale_;
};

} // namespace msim::workloads

#endif // MSIM_WORKLOADS_COMPOSER_HH
