#include "workloads/workloads.hh"

#include "sim/logging.hh"

namespace msim::workloads
{

namespace
{

GameSpec
aspSpec()
{
    GameSpec s;
    s.name = "asp";
    s.title = "Angry Birds Space";
    s.downloadsMillions = "100+";
    s.is3d = false;
    s.frames = 4000;
    s.seed = 0xA5B0;
    s.numVertexShaders = 2;
    s.numFragmentShaders = 5;
    s.numTextures = 6;
    s.numWorlds = 3;
    s.instancesPerWorld = 10;
    s.groups = {
        {"space_bg", Placement::Backdrop, 3, 0, 0, 0, false, 1, 1, 1.1f,
         1.1f},
        {"planets", Placement::Sprite, 3, 1, 1, 1, false, 2, 5, 0.25f,
         0.55f},
        {"debris", Placement::Sprite, 2, 1, 2, 2, false, 4, 16, 0.05f,
         0.15f},
        {"birds", Placement::Sprite, 2, 0, 3, 3, true, 1, 6, 0.08f,
         0.16f},
        {"trails", Placement::Sprite, 1, 0, 4, 4, true, 2, 20, 0.03f,
         0.08f},
        {"hud", Placement::Overlay, 1, 1, 2, 5, true, 3, 4, 0.07f,
         0.12f},
    };
    s.segments = {
        {"aim", {0, 1, 2, 3, 5}, 60, 120, 0.7f, 0.2f},
        {"flight", {0, 1, 2, 3, 4, 5}, 40, 80, 1.4f, 0.6f},
        {"collapse", {0, 1, 2, 4, 5}, 30, 60, 2.0f, 0.8f},
        {"menu", {0, 1, 5}, 40, 70, 0.5f, 0.1f},
    };
    s.script = {3, 0, 1, 0, 1, 2, 0, 1, 1, 2, 3, 0, 1, 2};
    return s;
}

GameSpec
bbr1Spec()
{
    GameSpec s;
    s.name = "bbr1";
    s.title = "Beach Buggy Racing";
    s.downloadsMillions = "100+";
    s.is3d = true;
    s.frames = 2500;
    s.seed = 0xBB21;
    s.numVertexShaders = 4;
    s.numFragmentShaders = 6;
    s.numTextures = 8;
    s.numWorlds = 3;
    s.instancesPerWorld = 8;
    s.groups = {
        {"skybox", Placement::Backdrop, 2, 0, 0, 0, false, 1, 1, 1.1f,
         1.1f},
        {"track", Placement::Backdrop, 5, 1, 1, 1, false, 1, 2, 1.0f,
         1.1f},
        {"scenery", Placement::Sprite, 3, 2, 2, 2, false, 4, 14, 0.15f,
         0.45f},
        {"karts", Placement::Sprite, 4, 3, 3, 3, false, 3, 8, 0.12f,
         0.25f},
        {"particles", Placement::Sprite, 1, 2, 4, 4, true, 2, 22,
         0.03f, 0.1f},
        {"hud", Placement::Overlay, 1, 0, 5, 5, true, 3, 5, 0.06f,
         0.12f},
    };
    s.segments = {
        {"cruise", {0, 1, 2, 3, 5}, 50, 100, 1.0f, 0.3f},
        {"pack_race", {0, 1, 2, 3, 4, 5}, 40, 80, 1.6f, 0.5f},
        {"powerup", {0, 1, 2, 3, 4, 5}, 25, 50, 2.2f, 0.8f},
        {"results", {0, 1, 3, 5}, 30, 60, 0.6f, 0.1f},
    };
    s.script = {0, 1, 0, 2, 1, 1, 2, 0, 1, 3};
    return s;
}

GameSpec
bbr2Spec()
{
    GameSpec s = bbr1Spec();
    s.name = "bbr2";
    s.title = "Beach Buggy Racing 2";
    s.downloadsMillions = "50+";
    s.frames = 4000;
    s.seed = 0xBB22;
    // The sequel spends more shader programs on richer surfaces.
    s.numFragmentShaders = 8;
    s.numTextures = 10;
    s.groups[1].detail = 6; // denser track mesh
    s.groups[3].maxCount = 10;
    s.groups.push_back({"weather", Placement::Sprite, 1, 2, 6, 6, true,
                        2, 18, 0.05f, 0.14f});
    s.segments.push_back(
        {"storm", {0, 1, 2, 3, 4, 5, 6}, 30, 60, 2.0f, 0.7f});
    s.script = {0, 1, 0, 2, 4, 1, 2, 0, 4, 1, 3};
    return s;
}

GameSpec
hcrSpec()
{
    GameSpec s;
    s.name = "hcr";
    s.title = "Hill Climb Racing";
    s.downloadsMillions = "500+";
    s.is3d = false;
    s.frames = 2000;
    s.seed = 0x4C12;
    s.numVertexShaders = 2;
    s.numFragmentShaders = 4;
    s.numTextures = 5;
    s.numWorlds = 4;
    s.instancesPerWorld = 8;
    s.groups = {
        {"sky", Placement::Backdrop, 1, 0, 0, 0, false, 1, 1, 1.1f,
         1.1f},
        {"terrain", Placement::Backdrop, 6, 1, 1, 1, false, 1, 2, 1.0f,
         1.1f},
        {"vehicle", Placement::Sprite, 3, 1, 2, 2, false, 1, 2, 0.15f,
         0.2f},
        {"props", Placement::Sprite, 2, 0, 1, 3, false, 3, 10, 0.08f,
         0.2f},
        {"coins", Placement::Sprite, 1, 0, 3, 4, true, 2, 12, 0.03f,
         0.06f},
        {"hud", Placement::Overlay, 1, 1, 3, 0, true, 2, 4, 0.07f,
         0.12f},
    };
    s.segments = {
        {"drive", {0, 1, 2, 3, 4, 5}, 60, 120, 1.0f, 0.4f},
        {"airtime", {0, 1, 2, 4, 5}, 20, 40, 1.5f, 0.6f},
        {"garage", {0, 2, 5}, 40, 80, 0.5f, 0.1f},
    };
    s.script = {2, 0, 1, 0, 0, 1, 0, 2};
    return s;
}

GameSpec
hwhSpec()
{
    GameSpec s;
    s.name = "hwh";
    s.title = "Hot Wheels: Race Off";
    s.downloadsMillions = "100+";
    s.is3d = true;
    s.frames = 4500;
    s.seed = 0x4877;
    s.numVertexShaders = 3;
    s.numFragmentShaders = 7;
    s.numTextures = 8;
    s.numWorlds = 2;
    s.instancesPerWorld = 9;
    s.groups = {
        {"skybox", Placement::Backdrop, 2, 0, 0, 0, false, 1, 1, 1.1f,
         1.1f},
        {"track_loop", Placement::Backdrop, 5, 1, 1, 1, false, 1, 2,
         1.0f, 1.1f},
        {"cars", Placement::Sprite, 4, 2, 2, 2, false, 1, 4, 0.12f,
         0.22f},
        {"boost_fx", Placement::Sprite, 1, 2, 3, 3, true, 2, 20, 0.04f,
         0.12f},
        {"obstacles", Placement::Sprite, 3, 1, 4, 4, false, 3, 12,
         0.08f, 0.2f},
        {"sparks", Placement::Sprite, 1, 0, 5, 5, true, 2, 24, 0.02f,
         0.07f},
        {"hud", Placement::Overlay, 1, 0, 6, 6, true, 3, 5, 0.06f,
         0.12f},
    };
    s.segments = {
        {"run_up", {0, 1, 2, 4, 6}, 50, 90, 0.9f, 0.3f},
        {"stunt", {0, 1, 2, 3, 5, 6}, 30, 60, 1.8f, 0.7f},
        {"crash", {0, 1, 2, 4, 5, 6}, 20, 40, 2.4f, 0.9f},
        {"replay", {0, 1, 2, 6}, 30, 60, 0.6f, 0.1f},
    };
    s.script = {0, 1, 0, 1, 2, 3, 0, 1, 1, 2, 0, 3};
    return s;
}

GameSpec
jjoSpec()
{
    GameSpec s;
    s.name = "jjo";
    s.title = "Jetpack Joyride";
    s.downloadsMillions = "100+";
    s.is3d = false;
    s.frames = 3500;
    s.seed = 0x1130;
    s.numVertexShaders = 2;
    s.numFragmentShaders = 5;
    s.numTextures = 6;
    s.numWorlds = 3;
    s.instancesPerWorld = 10;
    s.groups = {
        {"lab_bg", Placement::Backdrop, 2, 0, 0, 0, false, 1, 2, 1.0f,
         1.1f},
        {"barry", Placement::Sprite, 2, 1, 1, 1, false, 1, 1, 0.12f,
         0.15f},
        {"zappers", Placement::Sprite, 1, 0, 2, 2, true, 2, 12, 0.06f,
         0.18f},
        {"missiles", Placement::Sprite, 1, 1, 3, 3, false, 1, 10,
         0.04f, 0.1f},
        {"coins", Placement::Sprite, 1, 0, 4, 4, true, 4, 24, 0.03f,
         0.05f},
        {"hud", Placement::Overlay, 1, 1, 2, 5, true, 2, 3, 0.07f,
         0.12f},
    };
    s.segments = {
        {"glide", {0, 1, 2, 4, 5}, 50, 100, 0.9f, 0.4f},
        {"barrage", {0, 1, 2, 3, 4, 5}, 30, 60, 1.8f, 0.7f},
        {"vehicle", {0, 1, 4, 5}, 40, 70, 1.1f, 0.3f},
        {"gameover", {0, 1, 5}, 20, 40, 0.4f, 0.1f},
    };
    s.script = {0, 1, 0, 2, 0, 1, 1, 2, 0, 1, 3};
    return s;
}

GameSpec
pvzSpec()
{
    GameSpec s;
    s.name = "pvz";
    s.title = "Plants vs. Zombies";
    s.downloadsMillions = "100+";
    s.is3d = false;
    s.frames = 5500;
    s.seed = 0x9052;
    s.numVertexShaders = 2;
    s.numFragmentShaders = 6;
    s.numTextures = 8;
    s.numWorlds = 2;
    s.instancesPerWorld = 12;
    s.groups = {
        {"lawn", Placement::Backdrop, 3, 0, 0, 0, false, 1, 1, 1.1f,
         1.1f},
        {"plants", Placement::Sprite, 2, 1, 1, 1, false, 4, 20, 0.06f,
         0.12f},
        {"zombies", Placement::Sprite, 2, 1, 2, 2, false, 1, 16, 0.08f,
         0.14f},
        {"projectiles", Placement::Sprite, 1, 0, 3, 3, true, 2, 24,
         0.02f, 0.05f},
        {"sun_tokens", Placement::Sprite, 1, 0, 4, 4, true, 1, 8,
         0.04f, 0.07f},
        {"hud", Placement::Overlay, 1, 1, 5, 5, true, 4, 6, 0.06f,
         0.11f},
    };
    s.segments = {
        {"build", {0, 1, 4, 5}, 60, 110, 0.8f, 0.2f},
        {"wave", {0, 1, 2, 3, 4, 5}, 40, 80, 1.5f, 0.4f},
        {"final_wave", {0, 1, 2, 3, 5}, 30, 60, 2.3f, 0.6f},
        {"victory", {0, 1, 5}, 20, 40, 0.5f, 0.1f},
    };
    s.script = {0, 1, 0, 1, 1, 2, 3, 0, 1, 2, 0, 1, 2, 3};
    return s;
}

GameSpec
spdSpec()
{
    GameSpec s;
    s.name = "spd";
    s.title = "Sonic Dash";
    s.downloadsMillions = "500+";
    s.is3d = true;
    s.frames = 5500;
    s.seed = 0x50D4;
    s.numVertexShaders = 3;
    s.numFragmentShaders = 6;
    s.numTextures = 7;
    s.numWorlds = 3;
    s.instancesPerWorld = 8;
    s.groups = {
        {"skyline", Placement::Backdrop, 2, 0, 0, 0, false, 1, 1, 1.1f,
         1.1f},
        {"runway", Placement::Backdrop, 5, 1, 1, 1, false, 1, 2, 1.0f,
         1.1f},
        {"sonic", Placement::Sprite, 3, 2, 2, 2, false, 1, 1, 0.12f,
         0.15f},
        {"rings", Placement::Sprite, 1, 0, 3, 3, true, 4, 20, 0.03f,
         0.05f},
        {"badniks", Placement::Sprite, 2, 2, 4, 4, false, 1, 10, 0.07f,
         0.15f},
        {"dash_fx", Placement::Sprite, 1, 1, 5, 5, true, 2, 16, 0.04f,
         0.1f},
        {"hud", Placement::Overlay, 1, 0, 3, 6, true, 2, 4, 0.06f,
         0.11f},
    };
    s.segments = {
        {"run", {0, 1, 2, 3, 4, 6}, 50, 100, 1.0f, 0.4f},
        {"dash", {0, 1, 2, 3, 5, 6}, 25, 50, 1.9f, 0.7f},
        {"boss", {0, 1, 2, 4, 5, 6}, 40, 70, 2.2f, 0.5f},
        {"springboard", {0, 1, 2, 3, 6}, 15, 30, 1.3f, 0.8f},
    };
    s.script = {0, 1, 0, 3, 0, 1, 2, 0, 3, 1, 0, 2};
    return s;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "asp", "bbr1", "bbr2", "hcr", "hwh", "jjo", "pvz", "spd",
    };
    return names;
}

namespace
{

/** Classic dynamic-programming edit distance, for did-you-mean. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

resilience::Expected<GameSpec>
findBenchmarkSpec(const std::string &alias)
{
    if (alias == "asp")
        return aspSpec();
    if (alias == "bbr1")
        return bbr1Spec();
    if (alias == "bbr2")
        return bbr2Spec();
    if (alias == "hcr")
        return hcrSpec();
    if (alias == "hwh")
        return hwhSpec();
    if (alias == "jjo")
        return jjoSpec();
    if (alias == "pvz")
        return pvzSpec();
    if (alias == "spd")
        return spdSpec();

    std::string closest;
    std::size_t closestDistance = 3; // suggest only near misses
    std::string valid;
    for (const std::string &name : benchmarkNames()) {
        const std::size_t d = editDistance(alias, name);
        if (d < closestDistance) {
            closestDistance = d;
            closest = name;
        }
        if (!valid.empty())
            valid += ' ';
        valid += name;
    }
    std::string message =
        "unknown benchmark alias '" + alias + "'";
    if (!closest.empty())
        message += " (did you mean '" + closest + "'?)";
    message += "; valid aliases: " + valid;
    return resilience::Error{resilience::Errc::UnknownAlias,
                             std::move(message)};
}

GameSpec
benchmarkSpec(const std::string &alias)
{
    auto spec = findBenchmarkSpec(alias);
    if (!spec.ok())
        sim::fatal("%s", spec.error().message.c_str());
    return *spec;
}

resilience::Expected<gfx::SceneTrace>
tryBuildBenchmark(const std::string &alias, double scale,
                  std::size_t frames)
{
    auto spec = findBenchmarkSpec(alias);
    if (!spec.ok())
        return spec.error();
    if (frames != 0 && frames < spec->frames)
        spec->frames = frames;
    return SceneComposer(*spec, scale).compose();
}

gfx::SceneTrace
buildBenchmark(const std::string &alias, double scale,
               std::size_t frames)
{
    GameSpec spec = benchmarkSpec(alias);
    if (frames != 0 && frames < spec.frames)
        spec.frames = frames;
    return SceneComposer(spec, scale).compose();
}

} // namespace msim::workloads
