/**
 * @file
 * The evaluated benchmark set (Table II): eight smartphone-class games
 * modeled as procedural GameSpecs, addressable by short alias. The
 * specs are calibrated for shape (2D/3D mix, shader populations, frame
 * counts), not for pixel-exact fidelity to the commercial titles.
 */

#ifndef MSIM_WORKLOADS_WORKLOADS_HH
#define MSIM_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "resilience/expected.hh"
#include "workloads/composer.hh"

namespace msim::workloads
{

/** Aliases of the evaluated benchmarks, in Table II order. */
const std::vector<std::string> &benchmarkNames();

/**
 * The GameSpec behind @p alias. An unknown alias yields an
 * UnknownAlias error whose message lists the valid aliases and the
 * closest match (did-you-mean), ready to print as-is.
 */
resilience::Expected<GameSpec>
findBenchmarkSpec(const std::string &alias);

/** The GameSpec behind @p alias; fatal on unknown alias. */
GameSpec benchmarkSpec(const std::string &alias);

/** buildBenchmark with structured alias errors instead of fatal. */
resilience::Expected<gfx::SceneTrace>
tryBuildBenchmark(const std::string &alias, double scale = 1.0,
                  std::size_t frames = 0);

/**
 * Compose @p alias into a SceneTrace. @p scale thins (<1) or thickens
 * (>1) sprite populations; @p frames truncates the sequence when
 * non-zero (0 keeps the spec's full length). Truncation is
 * prefix-stable: the first N frames match the full run.
 */
gfx::SceneTrace buildBenchmark(const std::string &alias,
                               double scale = 1.0,
                               std::size_t frames = 0);

} // namespace msim::workloads

#endif // MSIM_WORKLOADS_WORKLOADS_HH
