#include "workloads/composer.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace msim::workloads
{

namespace
{

/** Hash a handful of ids into a deterministic value. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0,
    std::uint64_t d = 0)
{
    return sim::hashMix(sim::hashMix(a, b, c), d);
}

double
u01(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

float
wrap01(float v)
{
    v = v - std::floor(v);
    return v;
}

/**
 * Regular grid mesh over [-0.5, 0.5]², n×n cells, two triangles per
 * cell. 3D worlds get a deterministic per-vertex height field so
 * rotated instances expose depth variation.
 */
gfx::Mesh
gridMesh(std::uint32_t id, std::uint32_t n, bool is3d,
         std::uint64_t variantSeed)
{
    gfx::Mesh mesh;
    mesh.id = id;
    n = std::max<std::uint32_t>(n, 1);
    for (std::uint32_t j = 0; j <= n; ++j) {
        for (std::uint32_t i = 0; i <= n; ++i) {
            const float u = static_cast<float>(i) / n;
            const float v = static_cast<float>(j) / n;
            float z = 0.0f;
            if (is3d)
                z = static_cast<float>(
                        u01(mix(variantSeed, i, j, 0x3d)) - 0.5) *
                    0.3f;
            mesh.positions.push_back({u - 0.5f, v - 0.5f, z});
            mesh.uvs.push_back({u, v});
        }
    }
    const std::uint32_t stride = n + 1;
    for (std::uint32_t j = 0; j < n; ++j) {
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t a = j * stride + i;
            const std::uint32_t b = a + 1;
            const std::uint32_t c = a + stride;
            const std::uint32_t d = c + 1;
            mesh.indices.insert(mesh.indices.end(), {a, b, c});
            mesh.indices.insert(mesh.indices.end(), {b, d, c});
        }
    }
    return mesh;
}

int
placementRank(Placement p)
{
    switch (p) {
      case Placement::Backdrop: return 0;
      case Placement::Sprite: return 1;
      case Placement::Overlay: return 2;
    }
    return 1;
}

} // namespace

SceneComposer::SceneComposer(const GameSpec &spec, double scale)
    : spec_(spec), scale_(scale)
{
    if (spec_.groups.empty())
        sim::fatal("GameSpec '%s' has no groups", spec_.name.c_str());
    if (spec_.segments.empty())
        sim::fatal("GameSpec '%s' has no segments",
                   spec_.name.c_str());
    if (spec_.script.empty())
        for (std::size_t i = 0; i < spec_.segments.size(); ++i)
            spec_.script.push_back(i);
    for (std::size_t seg : spec_.script)
        if (seg >= spec_.segments.size())
            sim::fatal("script references segment %zu of %zu", seg,
                       spec_.segments.size());
    for (const SegmentSpec &seg : spec_.segments)
        for (std::size_t g : seg.groups)
            if (g >= spec_.groups.size())
                sim::fatal("segment '%s' references group %zu of %zu",
                           seg.name.c_str(), g, spec_.groups.size());
}

gfx::SceneTrace
SceneComposer::compose() const
{
    gfx::SceneTrace scene;
    scene.name = spec_.name;

    const std::uint32_t nvs = std::max<std::uint32_t>(
        spec_.numVertexShaders, 1);
    const std::uint32_t nfs = std::max<std::uint32_t>(
        spec_.numFragmentShaders, 1);
    const std::uint32_t ntex = std::max<std::uint32_t>(
        spec_.numTextures, 1);
    const std::uint32_t nworlds = std::max<std::uint32_t>(
        spec_.numWorlds, 1);

    // Shader roster: vertex programs first (column order), then
    // fragment programs with hash-varied instruction mixes so the
    // characteristic vectors have per-column texture.
    for (std::uint32_t i = 0; i < nvs; ++i) {
        gfx::ShaderProgram s;
        s.id = static_cast<std::uint32_t>(scene.shaders.size());
        s.kind = gfx::ShaderKind::Vertex;
        const std::uint64_t h = mix(spec_.seed, 0x7653, i);
        s.aluInstructions = 6 + static_cast<std::uint32_t>(h % 10) +
                            (spec_.is3d ? 6 : 0);
        s.textureSamples = 0;
        scene.shaders.push_back(s);
    }
    for (std::uint32_t j = 0; j < nfs; ++j) {
        gfx::ShaderProgram s;
        s.id = static_cast<std::uint32_t>(scene.shaders.size());
        s.kind = gfx::ShaderKind::Fragment;
        const std::uint64_t h = mix(spec_.seed, 0x6673, j);
        s.aluInstructions = 4 + static_cast<std::uint32_t>(h % 12);
        // Roughly a third of the programs are untextured fills.
        s.textureSamples =
            (j % 3 == 1) ? 0 : 1 + static_cast<std::uint32_t>(h % 3);
        switch ((h >> 8) % 3) {
          case 0: s.filter = gfx::TextureFilter::Linear; break;
          case 1: s.filter = gfx::TextureFilter::Bilinear; break;
          default: s.filter = gfx::TextureFilter::Trilinear; break;
        }
        scene.shaders.push_back(s);
    }

    for (std::uint32_t t = 0; t < ntex; ++t) {
        gfx::Texture tex;
        tex.id = t;
        tex.width = 64u << (t % 3);
        tex.height = 64u << ((t + 1) % 3);
        scene.textures.push_back(tex);
    }

    // One mesh variant per (group, world).
    for (std::size_t g = 0; g < spec_.groups.size(); ++g) {
        const GroupSpec &group = spec_.groups[g];
        for (std::uint32_t w = 0; w < nworlds; ++w) {
            const std::uint32_t id = static_cast<std::uint32_t>(
                g * nworlds + w);
            scene.meshes.push_back(gridMesh(
                id, group.detail, spec_.is3d,
                mix(spec_.seed, 0x6d65, g, w)));
        }
    }

    // Segment schedule. Durations depend only on (seed, ordinal), so
    // the frame→segment mapping is identical for any requested frame
    // count — the prefix-stability guarantee.
    scene.frames.reserve(spec_.frames);
    std::size_t ordinal = 0;
    std::size_t begin = 0;
    while (scene.frames.size() < spec_.frames) {
        const std::size_t segIdx =
            spec_.script[ordinal % spec_.script.size()];
        const SegmentSpec &segment = spec_.segments[segIdx];
        const std::uint32_t lo =
            std::max<std::uint32_t>(segment.minFrames, 1);
        const std::uint32_t hi =
            std::max(segment.maxFrames, lo);
        const std::uint64_t h = mix(spec_.seed, 0x5e67, ordinal);
        const std::size_t duration = lo + h % (hi - lo + 1);
        for (std::size_t k = 0;
             k < duration && scene.frames.size() < spec_.frames; ++k)
            scene.frames.push_back(
                composeFrame(begin + k, segment, ordinal, k));
        begin += duration;
        ++ordinal;
    }
    return scene;
}

gfx::FrameTrace
SceneComposer::composeFrame(std::size_t f, const SegmentSpec &segment,
                            std::size_t segmentOrdinal,
                            std::size_t frameInSegment) const
{
    (void)segmentOrdinal;
    (void)frameInSegment;

    const std::uint32_t nvs = std::max<std::uint32_t>(
        spec_.numVertexShaders, 1);
    const std::uint32_t nfs = std::max<std::uint32_t>(
        spec_.numFragmentShaders, 1);
    const std::uint32_t ntex = std::max<std::uint32_t>(
        spec_.numTextures, 1);
    const std::uint32_t nworlds = std::max<std::uint32_t>(
        spec_.numWorlds, 1);

    gfx::FrameTrace frame;
    frame.index = static_cast<std::uint32_t>(f);

    // Draw groups back-to-front by placement layer, preserving the
    // spec's group order within a layer.
    std::vector<std::size_t> order(segment.groups);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return placementRank(
                                    spec_.groups[a].placement) <
                                placementRank(
                                    spec_.groups[b].placement);
                     });

    for (std::size_t g : order) {
        const GroupSpec &group = spec_.groups[g];

        // Instance count: intensity interpolates the spec's range,
        // the workload scale knob thins or thickens the population.
        double wanted =
            group.minCount +
            segment.intensity * (group.maxCount - group.minCount);
        if (group.placement == Placement::Sprite)
            wanted *= scale_;
        const std::uint32_t cap = nworlds * std::max<std::uint32_t>(
            spec_.instancesPerWorld, 1);
        const std::uint32_t count = std::clamp<std::uint32_t>(
            static_cast<std::uint32_t>(std::lround(wanted)), 1, cap);

        // Instances live for a churn-dependent number of frames and
        // respawn with fresh parameters; everything derives from the
        // absolute frame index, never from composition order.
        const std::uint32_t lifetime = static_cast<std::uint32_t>(
            30 + (1.0f - std::clamp(segment.churn, 0.0f, 1.0f)) * 150);

        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t ih = mix(spec_.seed, 0x11, g, i);
            const std::size_t phase = ih % lifetime;
            const std::size_t epoch = (f + phase) / lifetime;
            const std::size_t life = (f + phase) % lifetime;
            const float t =
                static_cast<float>(life) / static_cast<float>(lifetime);
            const std::uint64_t h = mix(ih, 0x22, epoch);

            gfx::DrawCall draw;
            draw.meshId = static_cast<std::uint32_t>(
                g * nworlds + h % nworlds);
            draw.vsId = group.vs % nvs;
            draw.fsId = nvs + group.fs % nfs;
            draw.textureId =
                static_cast<std::int32_t>(group.tex % ntex);
            draw.transparent = group.transparent;
            draw.scale = group.sizeMin +
                         static_cast<float>(u01(mix(h, 0x33))) *
                             (group.sizeMax - group.sizeMin);

            switch (group.placement) {
              case Placement::Backdrop:
                // Screen-filling layer with a slow per-epoch drift.
                draw.x = 0.5f +
                         0.1f * (static_cast<float>(u01(mix(h, 0x44))) -
                                 0.5f);
                draw.y = 0.5f +
                         0.1f * (static_cast<float>(u01(mix(h, 0x55))) -
                                 0.5f);
                draw.depth = 0.98f - 0.005f * static_cast<float>(i);
                draw.rotation = 0.0f;
                break;
              case Placement::Sprite: {
                const float x0 =
                    static_cast<float>(u01(mix(h, 0x66)));
                const float y0 =
                    static_cast<float>(u01(mix(h, 0x77)));
                const float vx =
                    (static_cast<float>(u01(mix(h, 0x88))) - 0.5f) *
                    0.8f;
                const float vy =
                    (static_cast<float>(u01(mix(h, 0x99))) - 0.5f) *
                    0.8f;
                draw.x = wrap01(x0 + vx * t);
                draw.y = wrap01(y0 + vy * t);
                draw.depth =
                    0.2f +
                    0.6f * static_cast<float>(u01(mix(h, 0xaa)));
                draw.rotation =
                    t * 6.2831853f *
                    (static_cast<float>(u01(mix(h, 0xbb))) - 0.5f);
                break;
              }
              case Placement::Overlay:
                // HUD slots pinned along the top edge.
                draw.x = (static_cast<float>(i) + 0.5f) /
                         static_cast<float>(count);
                draw.y = 0.08f;
                draw.depth = 0.02f + 0.005f * static_cast<float>(i);
                draw.rotation = 0.0f;
                break;
            }
            frame.draws.push_back(draw);
        }
    }
    return frame;
}

} // namespace msim::workloads
