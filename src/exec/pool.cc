#include "exec/pool.hh"

#include <cstdlib>

#include <unistd.h>

#include "obs/attrib.hh"
#include "sim/logging.hh"

namespace msim::exec
{

namespace
{

/**
 * Set while a thread executes a share of a pool job. A nested
 * parallelFor/parallelMapOrdered from inside a job (e.g. kmeans
 * called from the parallel k-selection sweep) runs inline serial
 * instead of deadlocking on the single job slot.
 */
thread_local bool tlsInsideJob = false;

std::size_t
readConfiguredThreads()
{
    if (const char *env = std::getenv("MEGSIM_THREADS")) {
        const long long n = std::atoll(env);
        if (n >= 1)
            return static_cast<std::size_t>(n);
        sim::warn("ignoring MEGSIM_THREADS='%s' (need an integer "
                  ">= 1)",
                  env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::size_t &
configuredSlot()
{
    static std::size_t value = readConfiguredThreads();
    return value;
}

obs::Scalar &
poolCounter(const char *name, const char *desc)
{
    return obs::processRegistry().scalar(
        std::string("exec.pool.") + name, desc);
}

} // namespace

Pool::Pool(std::size_t workers) : workers_(workers ? workers : 1)
{
    shards_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w)
        shards_.push_back(
            std::make_unique<WorkerObs>(static_cast<std::uint32_t>(w)));
    threads_.reserve(workers_ - 1);
    for (std::size_t w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
    poolCounter("workers", "effective worker-pool size")
        .set(static_cast<double>(workers_));
}

Pool::~Pool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

std::size_t
Pool::configuredThreads()
{
    return configuredSlot();
}

void
Pool::setConfiguredThreads(std::size_t n)
{
    configuredSlot() = n ? n : 1;
}

Pool &
Pool::global()
{
    // Raw pointer on purpose: after fork() the parent's worker
    // threads do not exist in the child, so joining them (the
    // destructor) would hang — the child abandons the stale pool and
    // builds its own. Single-threaded access only (the caller side of
    // jobs), like the rest of the driver layer.
    static Pool *pool = nullptr;
    static pid_t owner = -1;
    if (pool && owner == getpid() &&
        pool->workers() == configuredThreads())
        return *pool;
    if (pool && owner == getpid())
        delete pool; // size changed in-process: join and rebuild
    pool = new Pool(configuredThreads());
    owner = getpid();
    return *pool;
}

void
Pool::recordError(std::size_t item, const resilience::Error &err)
{
    std::lock_guard<std::mutex> lock(errMutex_);
    if (item < errIndex_.load(std::memory_order_relaxed)) {
        errIndex_.store(item, std::memory_order_relaxed);
        firstError_ = err;
    }
}

void
Pool::runShare(std::size_t worker,
               const std::function<void()> *progress)
{
    obs::ProcessRegistryOverride statsShard(
        shards_[worker]->registry);
    obs::PhaseProfilerOverride phaseShard(
        shards_[worker]->profiler);
    obs::TimelineOverride timelineShard(shards_[worker]->timeline);
    // Declared after the registry override so its destructor flushes
    // this thread's attribution buckets into the worker shard (merged
    // in worker-index order like every other stat). A no-op when the
    // caller thread already opened a root, or attribution is off.
    obs::AttribRoot attribRoot;
    tlsInsideJob = true;
    const bool timeline = obs::timelineEnabled();
    const double shareT0 = obs::wallSeconds();

    auto execute = [&](std::size_t item) {
        // Items above the first known error are cancelled; every item
        // below it still runs, so the surfaced error is always the
        // lowest failing index regardless of scheduling.
        if (item > errIndex_.load(std::memory_order_relaxed)) {
            jobSkipped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        auto result = (*fn_)(item, worker);
        jobItems_.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok())
            recordError(item, result.error());
    };

    if (chunking_ == Chunking::Static) {
        const std::size_t begin = worker * n_ / workers_;
        const std::size_t end = (worker + 1) * n_ / workers_;
        if (begin < end)
            jobChunks_.fetch_add(1, std::memory_order_relaxed);
        const double chunkT0 = timeline ? obs::wallSeconds() : 0.0;
        for (std::size_t item = begin; item < end; ++item) {
            execute(item);
            if (progress)
                (*progress)();
            else if (worker != 0)
                doneCv_.notify_all();
        }
        if (timeline && begin < end)
            shards_[worker]->timeline.record(
                "pool.chunk", chunkT0, obs::wallSeconds(),
                end - begin);
    } else {
        for (;;) {
            const std::size_t begin =
                cursor_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= n_)
                break;
            const std::size_t end =
                begin + chunk_ < n_ ? begin + chunk_ : n_;
            jobChunks_.fetch_add(1, std::memory_order_relaxed);
            const double chunkT0 =
                timeline ? obs::wallSeconds() : 0.0;
            for (std::size_t item = begin; item < end; ++item)
                execute(item);
            if (timeline)
                shards_[worker]->timeline.record(
                    "pool.chunk", chunkT0, obs::wallSeconds(),
                    end - begin);
            if (progress)
                (*progress)();
            else if (worker != 0)
                doneCv_.notify_all();
        }
    }

    busySeconds_[worker] += obs::wallSeconds() - shareT0;
    tlsInsideJob = false;
}

void
Pool::workerLoop(std::size_t worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
        }
        runShare(worker, nullptr);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeWorkers_;
        }
        doneCv_.notify_all();
    }
}

resilience::Expected<void>
Pool::runSerial(std::size_t n, const ItemFn &fn,
                const std::function<void()> &progress)
{
    // Exact serial fallback: no shards, no redirects, no threads —
    // items run in index order on the calling thread, and an error
    // cancels everything after it, exactly like the parallel path.
    for (std::size_t item = 0; item < n; ++item) {
        auto result = fn(item, 0);
        if (!result.ok())
            return result.error();
        if (progress)
            progress();
    }
    return {};
}

resilience::Expected<void>
Pool::run(std::size_t n, Chunking chunking, std::size_t chunkSize,
          const ItemFn &fn, const std::function<void()> &progress)
{
    if (n == 0)
        return {};
    if (workers_ == 1 || n == 1 || tlsInsideJob)
        return runSerial(n, fn, progress);

    const double jobT0 = obs::wallSeconds();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        n_ = n;
        chunking_ = chunking;
        busySeconds_.assign(workers_, 0.0);
        chunk_ = chunkSize
                     ? chunkSize
                     : (n + workers_ * 4 - 1) / (workers_ * 4);
        if (chunk_ == 0)
            chunk_ = 1;
        fn_ = &fn;
        cursor_.store(0, std::memory_order_relaxed);
        errIndex_.store(kNoError, std::memory_order_relaxed);
        jobChunks_.store(0, std::memory_order_relaxed);
        jobItems_.store(0, std::memory_order_relaxed);
        jobSkipped_.store(0, std::memory_order_relaxed);
        activeWorkers_ = workers_ - 1;
        ++generation_;
    }
    workCv_.notify_all();

    runShare(0, progress ? &progress : nullptr);

    // Wait for the other workers, draining ready commits every time
    // one of them signals progress.
    double waited = 0.0;
    const double waitT0 = obs::wallSeconds();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (activeWorkers_ > 0) {
            const double t0 = obs::wallSeconds();
            doneCv_.wait(lock);
            waited += obs::wallSeconds() - t0;
            if (progress) {
                lock.unlock();
                progress();
                lock.lock();
            }
        }
        fn_ = nullptr;
    }
    if (waited > 0.0)
        obs::TimelineRecorder::global().record(
            "pool.wait", waitT0, obs::wallSeconds());

    mergeShards();
    ++poolCounter("jobs", "parallel jobs executed");
    poolCounter("chunks", "work chunks claimed by workers") +=
        static_cast<double>(
            jobChunks_.load(std::memory_order_relaxed));
    poolCounter("items", "items executed across all jobs") +=
        static_cast<double>(
            jobItems_.load(std::memory_order_relaxed));
    poolCounter("cancelled_items",
                "items skipped after a failing item") +=
        static_cast<double>(
            jobSkipped_.load(std::memory_order_relaxed));
    poolCounter("wait_seconds",
                "caller time blocked waiting on workers") += waited;
    double busy = 0.0;
    for (double s : busySeconds_)
        busy += s;
    poolCounter("busy_seconds",
                "summed worker wall time inside job shares") += busy;
    poolCounter("job_seconds",
                "caller wall time spent inside pool jobs") +=
        obs::wallSeconds() - jobT0;

    if (errIndex_.load(std::memory_order_relaxed) != kNoError) {
        std::lock_guard<std::mutex> lock(errMutex_);
        return firstError_;
    }
    return {};
}

void
Pool::mergeShards()
{
    // Worker-index order makes the fold deterministic; shards are
    // reset so the next job starts from zero.
    for (std::size_t w = 0; w < workers_; ++w) {
        obs::processRegistry().mergeFrom(shards_[w]->registry);
        obs::PhaseProfiler::global().mergeFrom(shards_[w]->profiler);
        obs::TimelineRecorder::global().mergeFrom(
            shards_[w]->timeline);
        shards_[w]->registry.resetPerFrame();
        shards_[w]->profiler.clear();
    }
}

resilience::Expected<void>
Pool::parallelFor(std::size_t n, const ItemFn &fn, Chunking chunking,
                  std::size_t chunkSize)
{
    return run(n, chunking, chunkSize, fn, nullptr);
}

} // namespace msim::exec
