/**
 * @file
 * Deterministic parallel execution engine.
 *
 * exec::Pool is a fixed-size worker pool (MEGSIM_THREADS, default
 * hardware_concurrency, 1 = exact serial fallback) built for the
 * ground-truth pass, clustering and the benches. Its two primitives
 * guarantee results that are bit-identical across thread counts:
 *
 *  - parallelFor(n, fn): run fn(item, worker) over [0, n). Each item
 *    writes only its own output slots, so content is independent of
 *    which worker ran it. Static chunking gives every worker one
 *    contiguous range; dynamic chunking load-balances via an atomic
 *    cursor.
 *
 *  - parallelMapOrdered(n, produce, commit): workers produce values
 *    into per-item slots; commit(item, value) runs ONLY on the
 *    calling thread, in strictly increasing item order, as soon as
 *    the prefix is complete. This is how checkpoint journal appends
 *    stay serialized, ordered and SIGKILL-safe under parallel
 *    simulation.
 *
 * The caller participates as worker 0; a pool of size 1 therefore
 * runs everything inline on the calling thread with no concurrency at
 * all. Per-worker obs shards (StatsRegistry + PhaseProfiler) are
 * installed around each worker's share and merged into the process
 * globals in worker-index order when the job completes, so
 * integer-valued counters are identical across thread counts.
 *
 * Errors and cancellation go through resilience::Expected. When an
 * item fails, items with larger indices are cancelled (skipped), but
 * every smaller index still runs — so the surfaced error is
 * deterministically the FIRST failing item, and the committed prefix
 * of parallelMapOrdered is exactly [0, firstError). Nested use from
 * inside a job degrades to inline serial execution.
 *
 * Counters live under `exec.pool.*` in the process registry.
 */

#ifndef MSIM_EXEC_POOL_HH
#define MSIM_EXEC_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "resilience/expected.hh"

namespace msim::exec
{

enum class Chunking {
    Static,  // worker w owns the contiguous range [w*n/W, (w+1)*n/W)
    Dynamic, // workers grab chunkSize items at a time from a cursor
};

class Pool
{
  public:
    /** fn(item, worker): worker is in [0, workers()), 0 = caller. */
    using ItemFn = std::function<resilience::Expected<void>(
        std::size_t item, std::size_t worker)>;

    explicit Pool(std::size_t workers = configuredThreads());
    ~Pool();
    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    std::size_t workers() const { return workers_; }

    /**
     * Run @p fn over [0, n). Returns the error of the first failing
     * item (all items before it have run), or success. @p chunkSize 0
     * picks a balanced default.
     */
    resilience::Expected<void>
    parallelFor(std::size_t n, const ItemFn &fn,
                Chunking chunking = Chunking::Dynamic,
                std::size_t chunkSize = 0);

    /**
     * Produce one T per item on the workers, commit them on the
     * calling thread in strictly increasing item order. On error the
     * committed prefix is exactly [0, firstFailingItem).
     */
    template <typename T>
    resilience::Expected<void> parallelMapOrdered(
        std::size_t n,
        const std::function<resilience::Expected<T>(
            std::size_t item, std::size_t worker)> &produce,
        const std::function<void(std::size_t item, T &&value)> &commit,
        std::size_t chunkSize = 1)
    {
        std::vector<std::optional<T>> slots(n);
        std::unique_ptr<std::atomic<bool>[]> ready(
            new std::atomic<bool>[n]);
        for (std::size_t i = 0; i < n; ++i)
            ready[i].store(false, std::memory_order_relaxed);

        std::size_t committed = 0; // caller thread only
        auto drain = [&]() {
            while (committed < n &&
                   ready[committed].load(std::memory_order_acquire)) {
                commit(committed, std::move(*slots[committed]));
                slots[committed].reset();
                ++committed;
            }
        };
        auto item = [&](std::size_t i, std::size_t w)
            -> resilience::Expected<void> {
            auto value = produce(i, w);
            if (!value.ok())
                return value.error();
            slots[i] = std::move(*value);
            ready[i].store(true, std::memory_order_release);
            return {};
        };
        auto err = run(n, Chunking::Dynamic, chunkSize, item, drain);
        drain(); // the full prefix, or [0, firstError) on failure
        return err;
    }

    /**
     * The pool size selected by the environment: MEGSIM_THREADS if
     * set (clamped to >= 1), else std::thread::hardware_concurrency.
     */
    static std::size_t configuredThreads();

    /** Override the configured size (the CLI's --threads flag). */
    static void setConfiguredThreads(std::size_t n);

    /**
     * Process-wide pool, (re)built on the calling thread whenever the
     * configured size changed. Fork-safe: a pool inherited from a
     * parent process is abandoned (its threads do not exist in the
     * child) and a fresh one is built.
     */
    static Pool &global();

  private:
    void workerLoop(std::size_t worker);
    void runShare(std::size_t worker,
                  const std::function<void()> *progress);
    void recordError(std::size_t item, const resilience::Error &err);
    void mergeShards();

    resilience::Expected<void>
    run(std::size_t n, Chunking chunking, std::size_t chunkSize,
        const ItemFn &fn, const std::function<void()> &progress);

    resilience::Expected<void>
    runSerial(std::size_t n, const ItemFn &fn,
              const std::function<void()> &progress);

    /** Per-worker single-writer observability shards. */
    struct WorkerObs
    {
        explicit WorkerObs(std::uint32_t track) : timeline(track) {}
        obs::StatsRegistry registry;
        obs::PhaseProfiler profiler;
        obs::TimelineRecorder timeline; // track = worker index
    };

    static constexpr std::size_t kNoError =
        static_cast<std::size_t>(-1);

    std::size_t workers_;
    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<WorkerObs>> shards_;

    std::mutex mutex_;
    std::condition_variable workCv_; // workers wait for a job
    std::condition_variable doneCv_; // caller waits / drains commits
    std::uint64_t generation_ = 0;
    std::size_t activeWorkers_ = 0;
    bool shutdown_ = false;

    // State of the (single) in-flight job.
    std::size_t n_ = 0;
    std::size_t chunk_ = 1;
    Chunking chunking_ = Chunking::Dynamic;
    const ItemFn *fn_ = nullptr;
    std::atomic<std::size_t> cursor_{0};
    std::atomic<std::size_t> errIndex_{kNoError};
    std::mutex errMutex_;
    resilience::Error firstError_;
    std::atomic<std::uint64_t> jobChunks_{0};
    std::atomic<std::uint64_t> jobItems_{0};
    std::atomic<std::uint64_t> jobSkipped_{0};
    // Per-worker wall seconds spent inside the current job's share;
    // each worker writes only its own slot, the caller folds them into
    // exec.pool.busy_seconds after the job (utilization = busy /
    // (workers * job_seconds)).
    std::vector<double> busySeconds_;
};

} // namespace msim::exec

#endif // MSIM_EXEC_POOL_HH
