#include "perf/perf.hh"

#include <cstdlib>

#include "gpusim/geometry.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/scene_binding.hh"
#include "gpusim/timing_simulator.hh"
#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"
#include "resilience/artifact.hh"
#include "workloads/workloads.hh"

namespace msim::perf
{

namespace
{

resilience::Expected<double>
numberAt(const util::Json &obj, const char *key)
{
    const util::Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "perf report: missing number '%s'",
                                  key);
    return v->asNumber();
}

} // namespace

void
PerfReport::computeAggregates()
{
    totalFrames = 0;
    totalCycles = 0;
    totalWallSeconds = 0.0;
    for (const BenchPerf &b : benches) {
        totalFrames += b.frames;
        totalCycles += b.cycles;
        totalWallSeconds += b.wallSeconds;
    }
    framesPerSec = totalWallSeconds > 0.0
                       ? static_cast<double>(totalFrames) /
                             totalWallSeconds
                       : 0.0;
    mcyclesPerSec = totalWallSeconds > 0.0
                        ? static_cast<double>(totalCycles) / 1e6 /
                              totalWallSeconds
                        : 0.0;
}

util::Json
PerfReport::toJson() const
{
    util::Json root = util::Json::object();
    root.set("schema", kSchema);
    root.set("frame_limit", frameLimit);
    root.set("scale", scale);
    root.set("gpu_profile", baseline ? "baseline" : "evaluation");
    root.set("mem_mode", memMode);

    util::Json rows = util::Json::array();
    for (const BenchPerf &b : benches) {
        util::Json row = util::Json::object();
        row.set("alias", b.alias);
        row.set("frames", b.frames);
        row.set("cycles", static_cast<double>(b.cycles));
        row.set("wall_seconds", b.wallSeconds);
        row.set("frames_per_sec", b.framesPerSec);
        row.set("mcycles_per_sec", b.mcyclesPerSec);
        rows.push(std::move(row));
    }
    root.set("benchmarks", std::move(rows));

    util::Json suite = util::Json::object();
    suite.set("total_frames", totalFrames);
    suite.set("total_cycles", static_cast<double>(totalCycles));
    suite.set("wall_seconds", totalWallSeconds);
    suite.set("frames_per_sec", framesPerSec);
    suite.set("mcycles_per_sec", mcyclesPerSec);
    root.set("suite", std::move(suite));

    util::Json split = util::Json::array();
    for (const PhaseSplit &p : phases) {
        util::Json row = util::Json::object();
        row.set("phase", p.name);
        row.set("seconds", p.seconds);
        split.push(std::move(row));
    }
    root.set("phase_split", std::move(split));
    return root;
}

resilience::Expected<PerfReport>
PerfReport::fromJson(const util::Json &json)
{
    const util::Json *schema = json.find("schema");
    if (!schema || !schema->isString())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "perf report: missing 'schema'");
    if (schema->asString() != kSchema)
        return resilience::errorf(
            resilience::Errc::BadVersion,
            "perf report: schema '%s', expected '%s'",
            schema->asString().c_str(), kSchema);

    PerfReport report;
    if (auto v = numberAt(json, "frame_limit"); v.ok())
        report.frameLimit = static_cast<std::size_t>(*v);
    else
        return v.error();
    if (auto v = numberAt(json, "scale"); v.ok())
        report.scale = *v;
    else
        return v.error();
    if (const util::Json *profile = json.find("gpu_profile"))
        report.baseline = profile->asString() == "baseline";
    // Optional: pre-fast-mem baselines carry no mode and were exact.
    if (const util::Json *mode = json.find("mem_mode"))
        report.memMode = mode->asString();

    const util::Json *rows = json.find("benchmarks");
    if (!rows || !rows->isArray())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "perf report: missing 'benchmarks'");
    for (const util::Json &row : rows->items()) {
        BenchPerf b;
        const util::Json *alias = row.find("alias");
        if (!alias || !alias->isString())
            return resilience::errorf(resilience::Errc::BadFormat,
                                      "perf report: row missing "
                                      "'alias'");
        b.alias = alias->asString();
        struct {
            const char *key;
            double *out;
        } fields[] = {
            {"wall_seconds", &b.wallSeconds},
            {"frames_per_sec", &b.framesPerSec},
            {"mcycles_per_sec", &b.mcyclesPerSec},
        };
        auto frames = numberAt(row, "frames");
        if (!frames.ok())
            return frames.error();
        b.frames = static_cast<std::size_t>(*frames);
        auto cycles = numberAt(row, "cycles");
        if (!cycles.ok())
            return cycles.error();
        b.cycles = static_cast<std::uint64_t>(*cycles);
        for (const auto &field : fields) {
            auto v = numberAt(row, field.key);
            if (!v.ok())
                return v.error();
            *field.out = *v;
        }
        report.benches.push_back(std::move(b));
    }

    if (const util::Json *split = json.find("phase_split"))
        for (const util::Json &row : split->items()) {
            PhaseSplit p;
            if (const util::Json *name = row.find("phase"))
                p.name = name->asString();
            if (const util::Json *sec = row.find("seconds"))
                p.seconds = sec->asNumber();
            report.phases.push_back(std::move(p));
        }

    report.computeAggregates();
    return report;
}

resilience::Expected<void>
PerfReport::save(const std::string &path) const
{
    return resilience::atomicWriteFile(path, toJson().dump());
}

resilience::Expected<PerfReport>
PerfReport::load(const std::string &path)
{
    auto text = resilience::readFileToString(path);
    if (!text.ok())
        return text.error();
    auto json = util::Json::parse(*text);
    if (!json.ok())
        return json.error();
    return fromJson(*json);
}

resilience::Expected<PerfReport>
runHotpath(const PerfOptions &options)
{
    std::size_t frames = options.frames;
    if (frames == 0)
        if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
            frames = static_cast<std::size_t>(std::atoll(env));

    std::vector<std::string> benches = options.benches;
    if (benches.empty())
        benches = workloads::benchmarkNames();

    PerfReport report;
    report.frameLimit = frames;
    report.scale = options.scale;
    report.baseline = options.baseline;
    report.memMode = options.fastMem.enabled ? "fast" : "exact";

    gpusim::GpuConfig config =
        options.baseline ? gpusim::GpuConfig::baseline()
                         : gpusim::GpuConfig::evaluationScaled();
    config.fastMem = options.fastMem;

    // Attribution window over the whole harness: the simulator's own
    // scopes (geometry/raster/shade/memwalk) claim the hot loop, the
    // explicit scopes below claim the load phase, and whatever is
    // left lands in obs.host.other.
    obs::AttribRoot attribRoot;

    obs::PhaseProfiler profiler;
    for (const std::string &alias : benches) {
        gfx::SceneTrace scene;
        {
            obs::PhaseProfiler::Scoped load(profiler, "load");
            obs::AttribScope loadScope(obs::HostDomain::Load);
            auto built = workloads::tryBuildBenchmark(
                alias, options.scale, frames);
            if (!built.ok())
                return built.error();
            scene = std::move(*built);
        }

        gpusim::SceneBinding binding(scene);
        gpusim::TimingSimulator sim(config, binding);
        gpusim::GeometryProcessor geometry(config, binding);
        gpusim::GeometryIR ir;

        BenchPerf b;
        b.alias = alias;
        obs::TimelineRecorder::Span benchSpan("perf.bench",
                                              scene.numFrames(),
                                              alias);
        const double t0 = obs::wallSeconds();
        for (const gfx::FrameTrace &frame : scene.frames) {
            {
                obs::PhaseProfiler::Scoped geom(profiler, "geometry");
                obs::AttribScope geomScope(obs::HostDomain::Geometry);
                geometry.processInto(frame, ir);
            }
            obs::PhaseProfiler::Scoped timing(profiler, "timing");
            b.cycles += sim.simulate(ir).cycles;
            ++b.frames;
        }
        b.wallSeconds = obs::wallSeconds() - t0;
        if (b.wallSeconds > 0.0) {
            b.framesPerSec =
                static_cast<double>(b.frames) / b.wallSeconds;
            b.mcyclesPerSec = static_cast<double>(b.cycles) / 1e6 /
                              b.wallSeconds;
        }
        report.benches.push_back(std::move(b));
    }

    for (const obs::PhaseProfiler::Phase &p : profiler.phases())
        report.phases.push_back({p.name, p.seconds});
    report.computeAggregates();
    return report;
}

std::vector<PerfDelta>
comparePerfDeltas(const PerfReport &current,
                  const PerfReport &baseline, double bandPercent)
{
    std::vector<PerfDelta> deltas;
    auto check = [&](const std::string &what, double cur,
                     double base) {
        if (base <= 0.0)
            return;
        const double deltaPercent = (cur - base) / base * 100.0;
        if (deltaPercent < -bandPercent || deltaPercent > bandPercent)
            deltas.push_back({what, cur, base, deltaPercent});
    };
    for (const BenchPerf &cur : current.benches)
        for (const BenchPerf &base : baseline.benches)
            if (cur.alias == base.alias)
                check(cur.alias, cur.framesPerSec, base.framesPerSec);
    check("suite", current.framesPerSec, baseline.framesPerSec);
    return deltas;
}

std::vector<std::string>
compareReports(const PerfReport &current, const PerfReport &baseline,
               double bandPercent)
{
    std::vector<std::string> warnings;
    char line[192];
    for (const PerfDelta &d :
         comparePerfDeltas(current, baseline, bandPercent)) {
        std::snprintf(line, sizeof(line),
                      "%s: %.1f frames/sec vs baseline %.1f "
                      "(%+.1f%%, band +-%.0f%%)",
                      d.what.c_str(), d.current, d.baseline,
                      d.deltaPercent, bandPercent);
        warnings.emplace_back(line);
    }
    return warnings;
}

} // namespace msim::perf
