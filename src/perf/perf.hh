/**
 * @file
 * Hot-path microbenchmark harness and the versioned BENCH_gpusim.json
 * perf report it emits. The harness drives the cycle-level timing
 * simulator over the Table II suite exactly as the ground-truth pass
 * does (geometry -> timing, cold caches per frame) but with no disk
 * cache, no checkpointing and no pool — pure simulator throughput, so
 * the numbers track the hot path and nothing else.
 *
 * The report records frames/sec and simulated Mcycles/sec per
 * benchmark plus the suite aggregate and the per-phase wall split
 * from a PhaseProfiler, under the `megsim-bench-v1` schema. Every
 * perf PR appends a point to this trajectory: `bench/hotpath` and
 * `megsim-cli perf` both emit it, and CI compares a fresh run against
 * the committed baseline (warn-only — wall clocks are machine-
 * dependent, which is why comparisons use a wide relative band).
 */

#ifndef MSIM_PERF_PERF_HH
#define MSIM_PERF_PERF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/fastmem.hh"
#include "resilience/expected.hh"
#include "util/json.hh"

namespace msim::perf
{

/** Throughput of one benchmark's timing-simulator run. */
struct BenchPerf
{
    std::string alias;
    std::size_t frames = 0;
    std::uint64_t cycles = 0;     // simulated GPU cycles
    double wallSeconds = 0.0;     // host wall clock (geometry+timing)
    double framesPerSec = 0.0;
    double mcyclesPerSec = 0.0;   // simulated Mcycles per host second
};

/** One row of the per-phase wall split (PhaseProfiler snapshot). */
struct PhaseSplit
{
    std::string name;
    double seconds = 0.0;
};

struct PerfReport
{
    static constexpr const char *kSchema = "megsim-bench-v1";

    // Run parameters (so two reports are known comparable).
    std::size_t frameLimit = 0; // 0 = full sequences
    double scale = 1.0;
    bool baseline = false;      // Table I GPU instead of eval profile
    /**
     * "exact" or "fast": which memory model the run used. Optional on
     * load (pre-fast-mem baselines were always exact), but strict
     * comparisons refuse to gate across modes — a fast-mem point is a
     * separate trajectory, not a speedup of the exact one.
     */
    std::string memMode = "exact";

    std::vector<BenchPerf> benches;
    std::vector<PhaseSplit> phases;

    // Aggregates over `benches`.
    std::size_t totalFrames = 0;
    std::uint64_t totalCycles = 0;
    double totalWallSeconds = 0.0;
    double framesPerSec = 0.0;
    double mcyclesPerSec = 0.0;

    void computeAggregates();

    util::Json toJson() const;
    static resilience::Expected<PerfReport> fromJson(
        const util::Json &json);

    resilience::Expected<void> save(const std::string &path) const;
    static resilience::Expected<PerfReport> load(
        const std::string &path);
};

struct PerfOptions
{
    /** Aliases to run; empty = the full Table II suite. */
    std::vector<std::string> benches;
    /** Frames per benchmark; 0 = MEGSIM_FRAME_LIMIT, then full. */
    std::size_t frames = 0;
    double scale = 1.0;
    bool baseline = false;
    /** Run the timing simulators with the calibrated fast-mem model. */
    mem::FastMemConfig fastMem;
};

/** Run the hot-path microbench and assemble the report. */
resilience::Expected<PerfReport> runHotpath(const PerfOptions &options);

/**
 * One out-of-band frames/sec deviation between two perf reports —
 * the structured form both the warn-only and the strict (--strict,
 * exit 10) comparison paths consume. deltaPercent < 0 is a
 * regression, > 0 an improvement beyond the band.
 */
struct PerfDelta
{
    std::string what; // benchmark alias or "suite"
    double current = 0.0;
    double baseline = 0.0;
    double deltaPercent = 0.0;
};

/**
 * Every benchmark (and the suite) whose frames/sec deviates from
 * @p baseline by more than @p bandPercent. Empty = within the band.
 */
std::vector<PerfDelta> comparePerfDeltas(const PerfReport &current,
                                         const PerfReport &baseline,
                                         double bandPercent);

/** comparePerfDeltas() rendered as ready-to-print warning lines. */
std::vector<std::string> compareReports(const PerfReport &current,
                                        const PerfReport &baseline,
                                        double bandPercent);

} // namespace msim::perf

#endif // MSIM_PERF_PERF_HH
