#include "batch/campaign.hh"

#include <cstdlib>

#include "exec/pool.hh"
#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "workloads/workloads.hh"

namespace msim::batch
{

namespace
{

double
counterValue(const char *name)
{
    const obs::Stat *stat = obs::processRegistry().find(name);
    return stat ? stat->value() : 0.0;
}

} // namespace

/** One benchmark moving through the campaign. */
struct Campaign::Item
{
    std::string alias;
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    std::string cacheStatus = "built";
    std::size_t resumedFrames = 0;
    /** Non-null while the benchmark's ground truth is in flight. */
    std::unique_ptr<megsim::GroundTruthPass> pass;
    /** First global frame index of this benchmark in the shared job. */
    std::size_t firstUnit = 0;
    BenchmarkReport report;
    bool analyzed = false;
};

CampaignConfig
CampaignConfig::fromEnv()
{
    CampaignConfig config;
    // Same selector seed as the bench drivers, so campaign.json rows
    // are comparable (and bit-identical) to table3/fig7 output.
    config.megsim.selector.kmeans.seed = 0x4d4547; // "MEG"
    if (const char *env = std::getenv("MEGSIM_CACHE_DIR"))
        config.cacheDir = env;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        config.frameLimit =
            static_cast<std::size_t>(std::atoll(env));
    if (const char *env = std::getenv("MEGSIM_SCALE"))
        config.scale = std::atof(env);
    return config;
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config))
{
    if (config_.benches.empty())
        config_.benches = workloads::benchmarkNames();
}

Campaign::~Campaign() = default;

BenchmarkReport
analyzeBenchmark(const std::string &alias,
                 megsim::BenchmarkData &data,
                 const megsim::MegsimConfig &config)
{
    const double t0 = obs::wallSeconds();
    obs::TimelineRecorder::Span span("campaign.analyze", 0, alias);
    megsim::MegsimPipeline pipeline(data, config);
    const megsim::MegsimRun run = pipeline.run();

    BenchmarkReport report;
    report.alias = alias;
    report.frames = run.numFrames;
    report.chosenK = run.selection.chosen().k;
    report.representatives = run.numRepresentatives();
    report.reduction = run.reductionFactor();
    for (std::size_t m = 0; m < kNumMetrics; ++m)
        report.errorPercent[m] =
            pipeline.errorPercent(run, kMetrics[m]);
    if (data.fastMem()) {
        report.memMode = "fast";
        const megsim::FastMemAudit &audit = data.audit();
        if (audit.auditedFrames > 0) {
            report.hasExactVsFast = true;
            report.auditedFrames = audit.auditedFrames;
            for (std::size_t m = 0; m < kNumMetrics; ++m)
                report.exactVsFast[m] = audit.errorPercent(m);
        }
    }
    report.wallSeconds = obs::wallSeconds() - t0;
    return report;
}

SuiteAnalysis
analyzeSuite(const std::vector<SuiteBench> &benches,
             const megsim::MegsimConfig &config)
{
    obs::TimelineRecorder::Span span("campaign.analyze_suite",
                                     benches.size());
    SuiteAnalysis out;
    if (benches.empty())
        return out;

    // Per-bench pipelines stay alive for the whole analysis: they own
    // the normalized matrices the pool borrows pointers into, and
    // they price the per-bench baseline the reduction factor is
    // measured against.
    std::vector<std::unique_ptr<megsim::MegsimPipeline>> pipelines;
    std::vector<const megsim::FeatureMatrix *> normalized;
    for (const SuiteBench &bench : benches) {
        pipelines.push_back(std::make_unique<megsim::MegsimPipeline>(
            *bench.data, config));
        normalized.push_back(&pipelines.back()->features());
    }

    const megsim::PooledFeatures pooled = poolFeatures(normalized);
    const megsim::SuiteClustering suite =
        megsim::clusterSuite(pooled, config);
    const std::size_t numReps = suite.representatives.size();
    out.sharedRepresentatives = numReps;

    // The shared representatives' timing is simulated once, under the
    // benchmark each one came from; every other benchmark reuses the
    // values through its own fold-back weights.
    std::vector<std::vector<double>> repMetric(
        kNumMetrics, std::vector<double>(numReps, 0.0));
    std::vector<std::vector<double>> truthTotals(
        kNumMetrics, std::vector<double>(benches.size(), 0.0));
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        for (std::size_t b = 0; b < benches.size(); ++b) {
            const std::vector<double> truth =
                benches[b].data->metric(kMetrics[m]);
            for (double v : truth)
                truthTotals[m][b] += v;
            for (std::size_t r = 0; r < numReps; ++r) {
                const megsim::SuiteRepresentative &rep =
                    suite.representatives[r];
                if (rep.bench == b)
                    repMetric[m][r] = truth[rep.frame];
            }
        }
    }

    for (std::size_t b = 0; b < benches.size(); ++b) {
        const double t0 = obs::wallSeconds();
        const SuiteBench &bench = benches[b];
        BenchmarkReport row;
        row.alias = bench.alias;
        row.frames = pooled.frames[b];
        row.resumedFrames = bench.resumedFrames;
        row.cacheStatus = bench.cacheStatus;

        // Serving representatives: the clusters holding at least one
        // of this benchmark's frames. Borrowed = simulated under
        // another benchmark.
        std::size_t serving = 0;
        std::size_t borrowed = 0;
        for (std::size_t r = 0; r < numReps; ++r) {
            if (suite.memberCounts[b][r] <= 0.0)
                continue;
            ++serving;
            if (suite.representatives[r].bench != b)
                ++borrowed;
        }
        row.chosenK = serving;
        row.representatives = serving;
        row.borrowedReps = borrowed;
        row.reduction =
            serving == 0 ? 0.0
                         : static_cast<double>(row.frames) /
                               static_cast<double>(serving);
        for (std::size_t m = 0; m < kNumMetrics; ++m)
            row.errorPercent[m] = megsim::foldBackErrorPercent(
                suite.memberCounts[b], repMetric[m],
                truthTotals[m][b]);

        if (bench.data->fastMem()) {
            row.memMode = "fast";
            const megsim::FastMemAudit &audit = bench.data->audit();
            if (audit.auditedFrames > 0) {
                row.hasExactVsFast = true;
                row.auditedFrames = audit.auditedFrames;
                for (std::size_t m = 0; m < kNumMetrics; ++m)
                    row.exactVsFast[m] = audit.errorPercent(m);
            }
        }

        // The per-bench baseline: exactly the clustering the default
        // mode would run, priced here so suite_reduction_factor is a
        // measured number, not an estimate.
        out.perBenchRepresentatives +=
            pipelines[b]->run().numRepresentatives();

        row.wallSeconds = obs::wallSeconds() - t0;
        out.rows.push_back(std::move(row));
    }

    if (out.sharedRepresentatives > 0)
        out.suiteReductionFactor =
            static_cast<double>(out.perBenchRepresentatives) /
            static_cast<double>(out.sharedRepresentatives);
    return out;
}

BenchmarkReport
Campaign::analyze(Item &item)
{
    BenchmarkReport report =
        analyzeBenchmark(item.alias, *item.data, config_.megsim);
    report.resumedFrames = item.resumedFrames;
    report.cacheStatus = item.cacheStatus;
    return report;
}

resilience::Expected<CampaignReport>
Campaign::run()
{
    const double t0 = obs::wallSeconds();
    exec::Pool &pool = exec::Pool::global();
    const double busy0 = counterValue("exec.pool.busy_seconds");
    const double job0 = counterValue("exec.pool.job_seconds");
    // Window the caller thread's host-cost attribution over the whole
    // campaign: uncovered time lands in obs.host.other, so the report
    // can state what share of wall time the named domains explain.
    obs::AttribRoot attribRoot;

    // 1. Load every scene up front — an unknown alias fails the whole
    // campaign before any simulation work starts.
    items_.clear();
    {
        obs::TimelineRecorder::Span loadSpan("campaign.load_scenes",
                                             config_.benches.size());
        obs::AttribScope loadScope(obs::HostDomain::Load);
        for (const std::string &alias : config_.benches) {
            auto built = workloads::tryBuildBenchmark(
                alias, config_.scale, config_.frameLimit);
            if (!built.ok())
                return built.error();
            auto item = std::make_unique<Item>();
            item->alias = alias;
            item->scene = std::move(*built);
            gpusim::GpuConfig gpu =
                gpusim::GpuConfig::evaluationScaled();
            gpu.fastMem = config_.fastMem;
            item->data = std::make_unique<megsim::BenchmarkData>(
                item->scene, gpu, config_.cacheDir);
            items_.push_back(std::move(item));
        }
    }

    // 2. Probe the caches: fresh benchmarks go straight to analysis,
    // the rest get a checkpoint-resuming ground-truth pass.
    std::vector<Item *> fresh;
    std::vector<Item *> regen;
    {
        obs::TimelineRecorder::Span probeSpan("campaign.probe",
                                              items_.size());
        for (auto &item : items_) {
            switch (item->data->probeCaches()) {
              case megsim::CacheProbe::Loaded:
                item->cacheStatus = "fresh";
                fresh.push_back(item.get());
                break;
              case megsim::CacheProbe::Invalid:
                item->cacheStatus = "rebuilt";
                regen.push_back(item.get());
                break;
              case megsim::CacheProbe::Missing:
                item->cacheStatus = "built";
                regen.push_back(item.get());
                break;
            }
        }
    }

    // 3. The shared job. Item space: one analysis unit per fresh
    // benchmark, then every remaining ground-truth frame of every
    // regenerating benchmark, bench-major. Dynamic chunks let workers
    // drain a short benchmark and flow into the next with no barrier;
    // ordered commits serialize each benchmark's journal appends and
    // finish (cache store + checkpoint discard) the moment its last
    // frame lands, so a killed campaign keeps its completed prefix.
    // Suite clustering needs EVERY benchmark's ground truth before any
    // analysis can start (the feature space is pooled), so in that
    // mode no analysis units enter the job — the job only regenerates
    // caches, and analyzeSuite() runs at top level afterwards.
    const std::size_t analysisUnits =
        config_.suiteCluster ? 0 : fresh.size();
    std::size_t totalUnits = analysisUnits;
    std::vector<Item *> pending;
    for (Item *item : regen) {
        item->pass = std::make_unique<megsim::GroundTruthPass>(
            *item->data, pool.workers());
        item->resumedFrames = item->pass->resumedFrames();
        if (item->pass->remaining() == 0) {
            // A previous run died between the cache store and the
            // journal discard: the journal already holds every frame.
            // Publish and discard up front — the in-job finish trigger
            // below never fires for a zero-unit pass, and without this
            // the finished shard would re-simulate from scratch.
            item->pass->finish();
            item->pass.reset();
            continue;
        }
        item->firstUnit = totalUnits;
        totalUnits += item->pass->remaining();
        pending.push_back(item);
    }

    struct Unit
    {
        BenchmarkReport report; // analysis units
        megsim::GroundTruthFrame frame;
    };

    // Map a global unit index to the regenerating benchmark owning it.
    auto ownerOf = [&](std::size_t unit) -> Item * {
        Item *owner = nullptr;
        for (Item *item : pending) {
            if (item->firstUnit > unit)
                break;
            owner = item;
        }
        return owner;
    };

    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "campaign-batch");
    obs::TimelineRecorder::Span jobSpan("campaign.batch",
                                        totalUnits);
    auto job = pool.parallelMapOrdered<Unit>(
        totalUnits,
        [&](std::size_t unit,
            std::size_t w) -> resilience::Expected<Unit> {
            Unit out;
            if (unit < analysisUnits) {
                // Nested pipeline calls degrade to inline serial on
                // this worker — clustering is thread-count-invariant,
                // so the numbers still match a pool-parallel run.
                out.report = analyze(*fresh[unit]);
                return out;
            }
            Item *item = ownerOf(unit);
            auto frame =
                item->pass->produce(unit - item->firstUnit, w);
            if (!frame.ok())
                return frame.error();
            out.frame = std::move(*frame);
            return out;
        },
        [&](std::size_t unit, Unit &&out) {
            if (unit < analysisUnits) {
                fresh[unit]->report = std::move(out.report);
                fresh[unit]->analyzed = true;
                return;
            }
            Item *item = ownerOf(unit);
            item->pass->commit(unit - item->firstUnit,
                               std::move(out.frame));
            if (unit - item->firstUnit + 1 ==
                item->pass->remaining()) {
                item->pass->finish();
                item->pass.reset();
            }
        });
    if (!job.ok())
        return job.error();

    CampaignReport report;
    report.threads = pool.workers();
    report.memMode = config_.fastMem.enabled ? "fast" : "exact";
    if (config_.suiteCluster) {
        // 4. One pooled analysis over every benchmark, clustering
        // suite-wide and folding shared representatives back into
        // per-bench rows.
        std::vector<SuiteBench> inputs;
        for (auto &item : items_)
            inputs.push_back(SuiteBench{item->alias, item->data.get(),
                                        item->cacheStatus,
                                        item->resumedFrames});
        SuiteAnalysis suite = analyzeSuite(inputs, config_.megsim);
        for (std::size_t i = 0; i < items_.size(); ++i) {
            items_[i]->report = std::move(suite.rows[i]);
            items_[i]->analyzed = true;
        }
        report.suiteCluster = true;
        report.sharedRepresentatives = suite.sharedRepresentatives;
        report.perBenchRepresentatives =
            suite.perBenchRepresentatives;
        report.suiteReductionFactor = suite.suiteReductionFactor;
    } else {
        // 4. Regenerated benchmarks analyze at top level, where
        // clustering fans out over the (now idle) pool exactly like
        // the single-benchmark drivers.
        for (auto &item : items_) {
            if (!item->analyzed) {
                item->report = analyze(*item);
                item->analyzed = true;
            }
        }
    }

    for (auto &item : items_)
        report.benchmarks.push_back(item->report);
    report.computeAggregates();
    report.wallSeconds = obs::wallSeconds() - t0;

    const double busy = counterValue("exec.pool.busy_seconds") - busy0;
    const double jobSeconds =
        counterValue("exec.pool.job_seconds") - job0;
    const double capacity =
        static_cast<double>(pool.workers()) * jobSeconds;
    report.poolUtilization =
        capacity > 0.0
            ? (busy < capacity ? busy / capacity : 1.0)
            : 1.0;

    publishCampaignStats(report);
    return report;
}

void
publishCampaignStats(const CampaignReport &report)
{
    obs::StatsRegistry &registry = obs::processRegistry();
    for (const BenchmarkReport &b : report.benchmarks) {
        obs::StatsGroup group =
            registry.group("campaign." + b.alias);
        group.scalar("frames", "ground-truth frames").set(
            static_cast<double>(b.frames));
        group.scalar("resumed_frames",
                     "frames recovered from a checkpoint")
            .set(static_cast<double>(b.resumedFrames));
        group.scalar("k", "chosen cluster count")
            .set(static_cast<double>(b.chosenK));
        group.scalar("representatives", "simulated representatives")
            .set(static_cast<double>(b.representatives));
        group.scalar("reduction", "frame reduction factor")
            .set(b.reduction);
        group.scalar("wall_seconds", "analysis wall time")
            .set(b.wallSeconds);
        obs::StatsGroup errors = group.group("error");
        for (std::size_t m = 0; m < kNumMetrics; ++m)
            errors.scalar(kMetricKeys[m], "relative error (%)")
                .set(b.errorPercent[m]);
        if (b.hasExactVsFast) {
            obs::StatsGroup audit = group.group("exact_vs_fast");
            audit
                .scalar("audited_frames",
                        "frames double-run for the audit")
                .set(static_cast<double>(b.auditedFrames));
            for (std::size_t m = 0; m < kNumMetrics; ++m)
                audit
                    .scalar(kMetricKeys[m],
                            "fast-mem audit error (%)")
                    .set(b.exactVsFast[m]);
        }
    }
    obs::StatsGroup suite = registry.group("campaign.suite");
    suite.scalar("benchmarks", "benchmarks in the campaign")
        .set(static_cast<double>(report.benchmarks.size()));
    suite.scalar("mean_reduction",
                 "mean per-benchmark reduction factor")
        .set(report.meanReduction);
    suite.scalar("suite_reduction",
                 "total frames / total representatives")
        .set(report.suiteReduction);
    if (report.suiteCluster) {
        suite
            .scalar("shared_representatives",
                    "representatives timing-simulated suite-wide")
            .set(static_cast<double>(report.sharedRepresentatives));
        suite
            .scalar("per_bench_representatives",
                    "what independent per-bench clustering needs")
            .set(static_cast<double>(report.perBenchRepresentatives));
        suite
            .scalar("suite_reduction_factor",
                    "per-bench reps / shared reps")
            .set(report.suiteReductionFactor);
    }
    suite.scalar("wall_seconds", "campaign wall time")
        .set(report.wallSeconds);
    suite.scalar("pool_utilization",
                 "busy worker share of pool job time")
        .set(report.poolUtilization);
}

} // namespace msim::batch
