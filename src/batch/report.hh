/**
 * @file
 * The campaign's machine-readable accuracy report — the artifact CI
 * gates on. A CampaignReport holds one row per benchmark (chosen k,
 * reduction factor, relative error for the four Fig. 7 metrics, wall
 * time, cache provenance) plus suite-level aggregates, serializes to
 * a versioned `campaign.json` via an atomic write, and parses back
 * bit-for-bit so threshold checks and regression diffs run on exactly
 * the numbers the campaign produced. Thresholds mirror the report
 * shape; checkThresholds() returns human-readable violations,
 * one per breached limit.
 */

#ifndef MSIM_BATCH_REPORT_HH
#define MSIM_BATCH_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/frame_stats.hh"
#include "resilience/expected.hh"
#include "util/json.hh"

namespace msim::batch
{

/** The four reported metrics, in Fig. 7 order. */
constexpr std::size_t kNumMetrics = 4;
extern const gpusim::Metric kMetrics[kNumMetrics];
/** JSON keys of the metrics: "cycles", "dram", "l2", "tile". */
extern const char *const kMetricKeys[kNumMetrics];

struct BenchmarkReport
{
    std::string alias;
    std::size_t frames = 0;
    /** Frames recovered from a checkpoint left by a killed run. */
    std::size_t resumedFrames = 0;
    std::size_t chosenK = 0;
    std::size_t representatives = 0;
    double reduction = 0.0;
    double errorPercent[kNumMetrics] = {};
    double wallSeconds = 0.0;
    /**
     * Ground-truth provenance: "fresh" (served from a verified
     * cache), "rebuilt" (stale/corrupt cache regenerated), "built"
     * (no cache existed).
     */
    std::string cacheStatus = "built";
    /**
     * How the ground truth was simulated: "exact" (the default
     * cycle-accurate walk) or "fast" (the calibrated --fast-mem
     * model). Schema v2; absent in v1 reports, which were always
     * exact.
     */
    std::string memMode = "exact";
    /**
     * Fast-mem audit column (schema v2, "fast" rows only): relative
     * error (%) of the model's metric totals against exact re-runs of
     * the audited frames, plus how many frames were audited.
     */
    bool hasExactVsFast = false;
    double exactVsFast[kNumMetrics] = {};
    std::size_t auditedFrames = 0;
    /**
     * Suite-cluster column (schema v3): how many of this benchmark's
     * serving representatives were simulated under ANOTHER benchmark
     * (cross-benchmark timing reuse). Zero in per-bench mode.
     */
    std::size_t borrowedReps = 0;
};

/**
 * A shard the supervised runner gave up on after exhausting its retry
 * cap (poison-shard detection): the campaign completed degraded, with
 * the owning benchmark dropped from the result rows.
 */
struct QuarantinedShard
{
    std::size_t shard = 0;
    std::string bench;
    /** Frame range [begin, end) the shard covered. */
    std::size_t beginFrame = 0;
    std::size_t endFrame = 0;
    std::size_t attempts = 0;
    std::string reason;
};

struct CampaignReport
{
    /**
     * v2 adds the fast-mem provenance fields (campaign + per-row
     * mem_mode, per-row exact_vs_fast / audited_frames). fromJson()
     * still accepts v1 — every added field is optional with an
     * exact-mode default, so pre-v2 reports load, diff and gate
     * unchanged.
     *
     * v3 adds the suite-cluster fields (campaign `suite_cluster`,
     * per-row `borrowed_reps`, suite `shared_representatives` /
     * `per_bench_representatives` / `suite_reduction_factor`).
     * toJson() only emits v3 when suiteCluster is set — a campaign
     * with suite clustering off serializes BYTE-IDENTICALLY to the
     * v2 writer, which is what the golden tests pin.
     */
    static constexpr const char *kSchema = "megsim-campaign-v2";
    static constexpr const char *kSchemaV1 = "megsim-campaign-v1";
    static constexpr const char *kSchemaV3 = "megsim-campaign-v3";

    std::size_t threads = 0;
    /** "exact" or "fast": the mode every result row ran under. */
    std::string memMode = "exact";
    /**
     * Degraded completion: at least one shard was quarantined, its
     * benchmark has no result row, and the CLI exits with the
     * distinct degraded code instead of 0.
     */
    bool degraded = false;
    std::vector<QuarantinedShard> quarantined;
    std::vector<BenchmarkReport> benchmarks;

    /**
     * Suite-cluster provenance (schema v3). The schema the report was
     * parsed from (or will serialize as) is recorded so tooling can
     * refuse cross-schema comparisons with a clear message.
     */
    bool suiteCluster = false;
    /** Shared representatives actually timing-simulated suite-wide. */
    std::size_t sharedRepresentatives = 0;
    /** What independent per-bench clustering would have simulated. */
    std::size_t perBenchRepresentatives = 0;
    /** perBenchRepresentatives / sharedRepresentatives (>= 1 good). */
    double suiteReductionFactor = 0.0;
    std::string schemaVersion = kSchema;

    // Suite aggregates, derived by computeAggregates().
    double totalFrames = 0.0;
    double totalRepresentatives = 0.0;
    /** Mean of the per-benchmark reduction factors. */
    double meanReduction = 0.0;
    /** totalFrames / totalRepresentatives (the paper's headline). */
    double suiteReduction = 0.0;
    double meanErrorPercent[kNumMetrics] = {};
    double maxErrorPercent[kNumMetrics] = {};
    double wallSeconds = 0.0;
    /** busy worker seconds / (workers * job seconds), in [0, 1]. */
    double poolUtilization = 0.0;

    void computeAggregates();

    util::Json toJson() const;
    static resilience::Expected<CampaignReport>
    fromJson(const util::Json &json);

    /** Atomic write (temp file + rename) of toJson(). */
    resilience::Expected<void> save(const std::string &path) const;
    static resilience::Expected<CampaignReport>
    load(const std::string &path);
};

/** CI gate limits; absent fields stay permissive. */
struct Thresholds
{
    static constexpr const char *kSchema = "megsim-thresholds-v1";

    /** Per-benchmark ceiling on each metric's relative error (%). */
    double maxErrorPercent[kNumMetrics];
    /** Per-benchmark floor on the reduction factor. */
    double minReduction = 0.0;
    /** Suite floor on the mean reduction factor. */
    double minMeanReduction = 0.0;
    /**
     * Per-benchmark ceiling on each metric's exact-vs-fast audit
     * error (%); only rows carrying the audit column are checked.
     * Optional `max_exact_vs_fast_percent` object — the schema stays
     * v1 because old parsers ignore unknown keys.
     */
    double maxExactVsFastPercent[kNumMetrics];
    /**
     * Optional nested `suite` block gating suite-cluster reports:
     * per-benchmark fold-back error ceilings (REPLACING
     * max_error_percent for v3 reports, whose errors come from
     * cross-benchmark reuse and are calibrated separately) and the
     * floor on suite_reduction_factor. Ignored for per-bench reports.
     */
    double suiteMaxErrorPercent[kNumMetrics];
    double suiteMinGain = 0.0;

    Thresholds();

    static resilience::Expected<Thresholds>
    fromJson(const util::Json &json);
    static resilience::Expected<Thresholds>
    load(const std::string &path);
};

/**
 * Every limit the report breaches, as ready-to-print lines naming the
 * benchmark, metric, measured value and limit. Empty = gate passes.
 */
std::vector<std::string> checkThresholds(const CampaignReport &report,
                                         const Thresholds &limits);

/**
 * Compare two reports modulo the documented host-side fields —
 * wall_seconds (per-benchmark and suite), pool_utilization, threads,
 * and the cache provenance pair (cache, resumed_frames), all of which
 * legitimately differ between machines, thread counts and cache
 * states. Everything else (per-benchmark frames, k, representatives,
 * reduction, per-metric error; suite totals and error aggregates) must
 * match EXACTLY — the campaign's determinism claim is bit-identity, so
 * no epsilon. Returns ready-to-print difference lines; empty = equal.
 */
std::vector<std::string> diffReports(const CampaignReport &a,
                                     const CampaignReport &b);

} // namespace msim::batch

#endif // MSIM_BATCH_REPORT_HH
