#include "batch/report.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "resilience/artifact.hh"

namespace msim::batch
{

const gpusim::Metric kMetrics[kNumMetrics] = {
    gpusim::Metric::Cycles,
    gpusim::Metric::DramAccesses,
    gpusim::Metric::L2Accesses,
    gpusim::Metric::TileCacheAccesses,
};

const char *const kMetricKeys[kNumMetrics] = {"cycles", "dram", "l2",
                                              "tile"};

namespace
{

util::Json
metricObject(const double values[kNumMetrics])
{
    util::Json obj = util::Json::object();
    for (std::size_t m = 0; m < kNumMetrics; ++m)
        obj.set(kMetricKeys[m], values[m]);
    return obj;
}

resilience::Expected<void>
metricObjectInto(const util::Json *obj, const char *what,
                 double out[kNumMetrics])
{
    if (!obj || !obj->isObject())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "report: missing object '%s'", what);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        const util::Json *v = obj->find(kMetricKeys[m]);
        if (!v || !v->isNumber())
            return resilience::errorf(
                resilience::Errc::BadFormat,
                "report: missing number '%s.%s'", what,
                kMetricKeys[m]);
        out[m] = v->asNumber();
    }
    return {};
}

resilience::Expected<double>
numberAt(const util::Json &obj, const char *key)
{
    const util::Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "report: missing number '%s'", key);
    return v->asNumber();
}

} // namespace

void
CampaignReport::computeAggregates()
{
    totalFrames = 0.0;
    totalRepresentatives = 0.0;
    meanReduction = 0.0;
    suiteReduction = 0.0;
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        meanErrorPercent[m] = 0.0;
        maxErrorPercent[m] = 0.0;
    }
    if (benchmarks.empty())
        return;
    for (const BenchmarkReport &b : benchmarks) {
        totalFrames += static_cast<double>(b.frames);
        totalRepresentatives += static_cast<double>(b.representatives);
        meanReduction += b.reduction;
        for (std::size_t m = 0; m < kNumMetrics; ++m) {
            meanErrorPercent[m] += b.errorPercent[m];
            maxErrorPercent[m] =
                std::max(maxErrorPercent[m], b.errorPercent[m]);
        }
    }
    const double n = static_cast<double>(benchmarks.size());
    meanReduction /= n;
    for (std::size_t m = 0; m < kNumMetrics; ++m)
        meanErrorPercent[m] /= n;
    if (totalRepresentatives > 0.0)
        suiteReduction = totalFrames / totalRepresentatives;
}

util::Json
CampaignReport::toJson() const
{
    util::Json root = util::Json::object();
    // Suite clustering off must serialize byte-identically to the v2
    // writer, so every v3 key below is gated on suiteCluster.
    root.set("schema", suiteCluster ? kSchemaV3 : kSchema);
    root.set("threads", threads);
    root.set("mem_mode", memMode);
    if (suiteCluster)
        root.set("suite_cluster", true);
    root.set("degraded", degraded);

    util::Json quarantineRows = util::Json::array();
    for (const QuarantinedShard &q : quarantined) {
        util::Json row = util::Json::object();
        row.set("shard", q.shard);
        row.set("bench", q.bench);
        row.set("begin_frame", q.beginFrame);
        row.set("end_frame", q.endFrame);
        row.set("attempts", q.attempts);
        row.set("reason", q.reason);
        quarantineRows.push(std::move(row));
    }
    root.set("quarantined_shards", std::move(quarantineRows));

    util::Json rows = util::Json::array();
    for (const BenchmarkReport &b : benchmarks) {
        util::Json row = util::Json::object();
        row.set("alias", b.alias);
        row.set("frames", b.frames);
        row.set("resumed_frames", b.resumedFrames);
        row.set("k", b.chosenK);
        row.set("representatives", b.representatives);
        row.set("reduction", b.reduction);
        row.set("error_percent", metricObject(b.errorPercent));
        row.set("wall_seconds", b.wallSeconds);
        row.set("cache", b.cacheStatus);
        row.set("mem_mode", b.memMode);
        if (b.hasExactVsFast) {
            row.set("exact_vs_fast", metricObject(b.exactVsFast));
            row.set("audited_frames", b.auditedFrames);
        }
        if (suiteCluster)
            row.set("borrowed_reps", b.borrowedReps);
        rows.push(std::move(row));
    }
    root.set("benchmarks", std::move(rows));

    util::Json suite = util::Json::object();
    suite.set("benchmarks", benchmarks.size());
    suite.set("total_frames", totalFrames);
    suite.set("total_representatives", totalRepresentatives);
    suite.set("mean_reduction", meanReduction);
    suite.set("suite_reduction", suiteReduction);
    suite.set("mean_error_percent", metricObject(meanErrorPercent));
    suite.set("max_error_percent", metricObject(maxErrorPercent));
    if (suiteCluster) {
        suite.set("shared_representatives", sharedRepresentatives);
        suite.set("per_bench_representatives",
                  perBenchRepresentatives);
        suite.set("suite_reduction_factor", suiteReductionFactor);
    }
    suite.set("wall_seconds", wallSeconds);
    suite.set("pool_utilization", poolUtilization);
    root.set("suite", std::move(suite));
    return root;
}

resilience::Expected<CampaignReport>
CampaignReport::fromJson(const util::Json &json)
{
    const util::Json *schema = json.find("schema");
    if (!schema || !schema->isString())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "report: missing 'schema'");
    // v1/v2 reports load fine: every later field is optional and
    // defaults to the value earlier rows implicitly carried.
    if (schema->asString() != kSchema &&
        schema->asString() != kSchemaV1 &&
        schema->asString() != kSchemaV3)
        return resilience::errorf(
            resilience::Errc::BadVersion,
            "report: schema '%s', expected '%s' (or '%s', '%s')",
            schema->asString().c_str(), kSchema, kSchemaV1, kSchemaV3);

    CampaignReport report;
    report.schemaVersion = schema->asString();
    if (const util::Json *sc = json.find("suite_cluster"))
        report.suiteCluster = sc->asBool();
    if (const util::Json *mode = json.find("mem_mode"))
        report.memMode = mode->asString();
    if (auto threads = numberAt(json, "threads"); threads.ok())
        report.threads = static_cast<std::size_t>(*threads);
    else
        return threads.error();
    if (const util::Json *degraded = json.find("degraded"))
        report.degraded = degraded->asBool();
    if (const util::Json *qs = json.find("quarantined_shards")) {
        if (!qs->isArray())
            return resilience::errorf(
                resilience::Errc::BadFormat,
                "report: 'quarantined_shards' is not an array");
        for (const util::Json &row : qs->items()) {
            QuarantinedShard q;
            const util::Json *bench = row.find("bench");
            if (!bench || !bench->isString())
                return resilience::errorf(
                    resilience::Errc::BadFormat,
                    "report: quarantined shard missing 'bench'");
            q.bench = bench->asString();
            struct {
                const char *key;
                std::size_t *out;
            } counts[] = {
                {"shard", &q.shard},
                {"begin_frame", &q.beginFrame},
                {"end_frame", &q.endFrame},
                {"attempts", &q.attempts},
            };
            for (const auto &field : counts) {
                auto v = numberAt(row, field.key);
                if (!v.ok())
                    return v.error();
                *field.out = static_cast<std::size_t>(*v);
            }
            if (const util::Json *reason = row.find("reason"))
                q.reason = reason->asString();
            report.quarantined.push_back(std::move(q));
        }
    }

    const util::Json *rows = json.find("benchmarks");
    if (!rows || !rows->isArray())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "report: missing 'benchmarks'");
    for (const util::Json &row : rows->items()) {
        BenchmarkReport b;
        const util::Json *alias = row.find("alias");
        if (!alias || !alias->isString())
            return resilience::errorf(resilience::Errc::BadFormat,
                                      "report: row missing 'alias'");
        b.alias = alias->asString();
        struct {
            const char *key;
            std::size_t *out;
        } counts[] = {
            {"frames", &b.frames},
            {"resumed_frames", &b.resumedFrames},
            {"k", &b.chosenK},
            {"representatives", &b.representatives},
        };
        for (const auto &field : counts) {
            auto v = numberAt(row, field.key);
            if (!v.ok())
                return v.error();
            *field.out = static_cast<std::size_t>(*v);
        }
        auto reduction = numberAt(row, "reduction");
        if (!reduction.ok())
            return reduction.error();
        b.reduction = *reduction;
        auto errors = metricObjectInto(row.find("error_percent"),
                                       "error_percent",
                                       b.errorPercent);
        if (!errors.ok())
            return errors.error();
        auto wall = numberAt(row, "wall_seconds");
        if (!wall.ok())
            return wall.error();
        b.wallSeconds = *wall;
        if (const util::Json *cache = row.find("cache"))
            b.cacheStatus = cache->asString();
        if (const util::Json *mode = row.find("mem_mode"))
            b.memMode = mode->asString();
        if (const util::Json *audit = row.find("exact_vs_fast")) {
            auto parsed = metricObjectInto(audit, "exact_vs_fast",
                                           b.exactVsFast);
            if (!parsed.ok())
                return parsed.error();
            b.hasExactVsFast = true;
            if (auto frames = numberAt(row, "audited_frames");
                frames.ok())
                b.auditedFrames = static_cast<std::size_t>(*frames);
        }
        if (auto borrowed = numberAt(row, "borrowed_reps");
            borrowed.ok())
            b.borrowedReps = static_cast<std::size_t>(*borrowed);
        report.benchmarks.push_back(std::move(b));
    }

    const util::Json *suite = json.find("suite");
    if (!suite || !suite->isObject())
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "report: missing 'suite'");
    struct {
        const char *key;
        double *out;
    } suiteFields[] = {
        {"total_frames", &report.totalFrames},
        {"total_representatives", &report.totalRepresentatives},
        {"mean_reduction", &report.meanReduction},
        {"suite_reduction", &report.suiteReduction},
        {"wall_seconds", &report.wallSeconds},
        {"pool_utilization", &report.poolUtilization},
    };
    for (const auto &field : suiteFields) {
        auto v = numberAt(*suite, field.key);
        if (!v.ok())
            return v.error();
        *field.out = *v;
    }
    auto meanErr = metricObjectInto(suite->find("mean_error_percent"),
                                    "suite.mean_error_percent",
                                    report.meanErrorPercent);
    if (!meanErr.ok())
        return meanErr.error();
    auto maxErr = metricObjectInto(suite->find("max_error_percent"),
                                   "suite.max_error_percent",
                                   report.maxErrorPercent);
    if (!maxErr.ok())
        return maxErr.error();
    if (auto v = numberAt(*suite, "shared_representatives"); v.ok())
        report.sharedRepresentatives = static_cast<std::size_t>(*v);
    if (auto v = numberAt(*suite, "per_bench_representatives"); v.ok())
        report.perBenchRepresentatives = static_cast<std::size_t>(*v);
    if (auto v = numberAt(*suite, "suite_reduction_factor"); v.ok())
        report.suiteReductionFactor = *v;
    return report;
}

resilience::Expected<void>
CampaignReport::save(const std::string &path) const
{
    return resilience::atomicWriteFile(path, toJson().dump());
}

resilience::Expected<CampaignReport>
CampaignReport::load(const std::string &path)
{
    auto text = resilience::readFileToString(path);
    if (!text.ok())
        return text.error();
    auto json = util::Json::parse(*text);
    if (!json.ok())
        return json.error();
    return fromJson(*json);
}

Thresholds::Thresholds()
{
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        maxErrorPercent[m] = std::numeric_limits<double>::infinity();
        maxExactVsFastPercent[m] =
            std::numeric_limits<double>::infinity();
        suiteMaxErrorPercent[m] =
            std::numeric_limits<double>::infinity();
    }
}

resilience::Expected<Thresholds>
Thresholds::fromJson(const util::Json &json)
{
    const util::Json *schema = json.find("schema");
    if (!schema || schema->asString() != kSchema)
        return resilience::errorf(
            resilience::Errc::BadVersion,
            "thresholds: missing or unknown schema (expected '%s')",
            kSchema);
    Thresholds limits;
    if (const util::Json *errs = json.find("max_error_percent")) {
        for (std::size_t m = 0; m < kNumMetrics; ++m)
            if (const util::Json *v = errs->find(kMetricKeys[m]))
                limits.maxErrorPercent[m] = v->asNumber();
    }
    if (const util::Json *errs =
            json.find("max_exact_vs_fast_percent")) {
        for (std::size_t m = 0; m < kNumMetrics; ++m)
            if (const util::Json *v = errs->find(kMetricKeys[m]))
                limits.maxExactVsFastPercent[m] = v->asNumber();
    }
    if (const util::Json *v = json.find("min_reduction"))
        limits.minReduction = v->asNumber();
    if (const util::Json *v = json.find("min_mean_reduction"))
        limits.minMeanReduction = v->asNumber();
    if (const util::Json *suite = json.find("suite")) {
        if (const util::Json *errs =
                suite->find("max_error_percent")) {
            for (std::size_t m = 0; m < kNumMetrics; ++m)
                if (const util::Json *v = errs->find(kMetricKeys[m]))
                    limits.suiteMaxErrorPercent[m] = v->asNumber();
        }
        if (const util::Json *v = suite->find("min_gain"))
            limits.suiteMinGain = v->asNumber();
    }
    return limits;
}

resilience::Expected<Thresholds>
Thresholds::load(const std::string &path)
{
    auto text = resilience::readFileToString(path);
    if (!text.ok())
        return text.error();
    auto json = util::Json::parse(*text);
    if (!json.ok())
        return json.error();
    return fromJson(*json);
}

std::vector<std::string>
checkThresholds(const CampaignReport &report, const Thresholds &limits)
{
    std::vector<std::string> violations;
    char line[160];
    // Suite-cluster fold-back errors come from cross-benchmark reuse
    // and are calibrated by the `suite` block, not the per-bench one.
    const double *errorLimits = report.suiteCluster
                                    ? limits.suiteMaxErrorPercent
                                    : limits.maxErrorPercent;
    for (const BenchmarkReport &b : report.benchmarks) {
        for (std::size_t m = 0; m < kNumMetrics; ++m) {
            if (b.errorPercent[m] > errorLimits[m]) {
                std::snprintf(line, sizeof(line),
                              "%s: %s error %.4f%% exceeds limit "
                              "%.4f%%",
                              b.alias.c_str(), kMetricKeys[m],
                              b.errorPercent[m], errorLimits[m]);
                violations.emplace_back(line);
            }
        }
        for (std::size_t m = 0; b.hasExactVsFast && m < kNumMetrics;
             ++m) {
            if (b.exactVsFast[m] > limits.maxExactVsFastPercent[m]) {
                std::snprintf(line, sizeof(line),
                              "%s: %s exact-vs-fast error %.4f%% "
                              "exceeds limit %.4f%%",
                              b.alias.c_str(), kMetricKeys[m],
                              b.exactVsFast[m],
                              limits.maxExactVsFastPercent[m]);
                violations.emplace_back(line);
            }
        }
        if (b.reduction < limits.minReduction) {
            std::snprintf(line, sizeof(line),
                          "%s: reduction %.2fx below floor %.2fx",
                          b.alias.c_str(), b.reduction,
                          limits.minReduction);
            violations.emplace_back(line);
        }
    }
    if (report.meanReduction < limits.minMeanReduction) {
        std::snprintf(line, sizeof(line),
                      "suite: mean reduction %.2fx below floor %.2fx",
                      report.meanReduction, limits.minMeanReduction);
        violations.emplace_back(line);
    }
    if (report.suiteCluster &&
        report.suiteReductionFactor < limits.suiteMinGain) {
        std::snprintf(line, sizeof(line),
                      "suite: suite reduction factor %.2fx below "
                      "floor %.2fx",
                      report.suiteReductionFactor,
                      limits.suiteMinGain);
        violations.emplace_back(line);
    }
    return violations;
}

std::vector<std::string>
diffReports(const CampaignReport &a, const CampaignReport &b)
{
    std::vector<std::string> diffs;
    char line[200];
    auto number = [&](const char *where, const char *what, double va,
                      double vb) {
        if (va == vb)
            return;
        std::snprintf(line, sizeof(line), "%s: %s %.17g != %.17g",
                      where, what, va, vb);
        diffs.emplace_back(line);
    };

    if (a.suiteCluster != b.suiteCluster) {
        std::snprintf(line, sizeof(line),
                      "suite: suite_cluster %s != %s",
                      a.suiteCluster ? "true" : "false",
                      b.suiteCluster ? "true" : "false");
        diffs.emplace_back(line);
    }
    if (a.benchmarks.size() != b.benchmarks.size()) {
        std::snprintf(line, sizeof(line),
                      "suite: %zu benchmarks != %zu",
                      a.benchmarks.size(), b.benchmarks.size());
        diffs.emplace_back(line);
    }
    const std::size_t rows =
        std::min(a.benchmarks.size(), b.benchmarks.size());
    for (std::size_t i = 0; i < rows; ++i) {
        const BenchmarkReport &ra = a.benchmarks[i];
        const BenchmarkReport &rb = b.benchmarks[i];
        if (ra.alias != rb.alias) {
            std::snprintf(line, sizeof(line),
                          "row %zu: alias '%s' != '%s'", i,
                          ra.alias.c_str(), rb.alias.c_str());
            diffs.emplace_back(line);
            continue; // field diffs of misaligned rows are noise
        }
        const char *where = ra.alias.c_str();
        if (ra.memMode != rb.memMode) {
            std::snprintf(line, sizeof(line),
                          "%s: mem_mode '%s' != '%s'", where,
                          ra.memMode.c_str(), rb.memMode.c_str());
            diffs.emplace_back(line);
        }
        number(where, "frames", static_cast<double>(ra.frames),
               static_cast<double>(rb.frames));
        number(where, "k", static_cast<double>(ra.chosenK),
               static_cast<double>(rb.chosenK));
        number(where, "representatives",
               static_cast<double>(ra.representatives),
               static_cast<double>(rb.representatives));
        number(where, "reduction", ra.reduction, rb.reduction);
        for (std::size_t m = 0; m < kNumMetrics; ++m) {
            char what[48];
            std::snprintf(what, sizeof(what), "error_percent.%s",
                          kMetricKeys[m]);
            number(where, what, ra.errorPercent[m],
                   rb.errorPercent[m]);
        }
        // The audit column only exists on fast rows; compare it when
        // both sides carry it so exact-vs-v1 diffs stay clean.
        for (std::size_t m = 0;
             ra.hasExactVsFast && rb.hasExactVsFast && m < kNumMetrics;
             ++m) {
            char what[48];
            std::snprintf(what, sizeof(what), "exact_vs_fast.%s",
                          kMetricKeys[m]);
            number(where, what, ra.exactVsFast[m], rb.exactVsFast[m]);
        }
        if (a.suiteCluster && b.suiteCluster)
            number(where, "borrowed_reps",
                   static_cast<double>(ra.borrowedReps),
                   static_cast<double>(rb.borrowedReps));
    }

    if (a.degraded != b.degraded) {
        std::snprintf(line, sizeof(line),
                      "suite: degraded %s != %s",
                      a.degraded ? "true" : "false",
                      b.degraded ? "true" : "false");
        diffs.emplace_back(line);
    }
    // Quarantine identity is the (bench, frame-range) pair; attempts
    // and reason are host-side retry detail that legitimately varies.
    if (a.quarantined.size() != b.quarantined.size()) {
        std::snprintf(line, sizeof(line),
                      "suite: %zu quarantined shards != %zu",
                      a.quarantined.size(), b.quarantined.size());
        diffs.emplace_back(line);
    }
    const std::size_t shards =
        std::min(a.quarantined.size(), b.quarantined.size());
    for (std::size_t i = 0; i < shards; ++i) {
        const QuarantinedShard &qa = a.quarantined[i];
        const QuarantinedShard &qb = b.quarantined[i];
        if (qa.bench != qb.bench || qa.beginFrame != qb.beginFrame ||
            qa.endFrame != qb.endFrame) {
            std::snprintf(
                line, sizeof(line),
                "quarantine %zu: %s[%zu,%zu) != %s[%zu,%zu)", i,
                qa.bench.c_str(), qa.beginFrame, qa.endFrame,
                qb.bench.c_str(), qb.beginFrame, qb.endFrame);
            diffs.emplace_back(line);
        }
    }

    number("suite", "total_frames", a.totalFrames, b.totalFrames);
    number("suite", "total_representatives", a.totalRepresentatives,
           b.totalRepresentatives);
    number("suite", "mean_reduction", a.meanReduction,
           b.meanReduction);
    number("suite", "suite_reduction", a.suiteReduction,
           b.suiteReduction);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        char what[48];
        std::snprintf(what, sizeof(what), "mean_error_percent.%s",
                      kMetricKeys[m]);
        number("suite", what, a.meanErrorPercent[m],
               b.meanErrorPercent[m]);
        std::snprintf(what, sizeof(what), "max_error_percent.%s",
                      kMetricKeys[m]);
        number("suite", what, a.maxErrorPercent[m],
               b.maxErrorPercent[m]);
    }
    if (a.suiteCluster && b.suiteCluster) {
        number("suite", "shared_representatives",
               static_cast<double>(a.sharedRepresentatives),
               static_cast<double>(b.sharedRepresentatives));
        number("suite", "per_bench_representatives",
               static_cast<double>(a.perBenchRepresentatives),
               static_cast<double>(b.perBenchRepresentatives));
        number("suite", "suite_reduction_factor",
               a.suiteReductionFactor, b.suiteReductionFactor);
    }
    return diffs;
}

} // namespace msim::batch
