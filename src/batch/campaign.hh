/**
 * @file
 * Batch campaign runner: the full MEGsim pipeline (ground truth,
 * feature extraction, k-selection, representative estimation) for a
 * whole benchmark suite through ONE shared exec::Pool.
 *
 * The campaign probes every benchmark's ground-truth caches first,
 * then runs a single pool job whose item space splices together
 *
 *   [analyses of cache-fresh benchmarks][frames of all benchmarks
 *    needing (re)generation, bench-major in suite order]
 *
 * Dynamic chunking makes workers flow across benchmark boundaries, so
 * a short benchmark never leaves the pool idle behind a long one, and
 * stale or corrupt caches detected by the resilience layer are
 * rebuilt on pool workers *while* the fresh benchmarks' analyses
 * proceed (async cache regeneration). Ordered commits keep each
 * benchmark's checkpoint journal serialized exactly as in a
 * single-benchmark run: a campaign killed mid-flight leaves verified
 * caches for every completed benchmark and a resumable checkpoint for
 * the in-flight one. Because frames simulate cold and clustering is
 * thread-count-invariant, the per-benchmark numbers in the report are
 * bit-identical to the single-benchmark drivers at any MEGSIM_THREADS.
 *
 * Per-benchmark results land under `campaign.<alias>.*` in the
 * process stats registry, suite aggregates under `campaign.suite.*`.
 */

#ifndef MSIM_BATCH_CAMPAIGN_HH
#define MSIM_BATCH_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "batch/report.hh"
#include "core/megsim.hh"
#include "resilience/expected.hh"

namespace msim::batch
{

struct CampaignConfig
{
    /** Benchmark aliases to run; empty = the full Table II suite. */
    std::vector<std::string> benches;
    /** Empty disables the disk cache (and checkpointing with it). */
    std::string cacheDir = "out/cache";
    double scale = 1.0;
    /** Truncate every benchmark to this many frames (0 = full). */
    std::size_t frameLimit = 0;
    megsim::MegsimConfig megsim;
    /**
     * Opt-in calibrated fast-mem model for the ground-truth pass.
     * Deliberately NOT read by fromEnv(): the mode must be chosen
     * explicitly (megsim-cli --fast-mem) so supervised serve workers
     * and cron-style env-driven runs stay exact unless asked.
     */
    mem::FastMemConfig fastMem;
    /**
     * Opt-in suite clustering (megsim-cli --suite-cluster): pool every
     * benchmark's normalized features into ONE space, cluster
     * suite-wide and share representatives across benchmarks. Like
     * fastMem, deliberately NOT read by fromEnv() — the CLI maps
     * MEGSIM_SUITE_CLUSTER itself so env-driven serve workers stay in
     * per-bench mode unless explicitly asked.
     */
    bool suiteCluster = false;

    /**
     * The evaluation defaults shared with the bench drivers (same
     * k-means seed), plus MEGSIM_FRAME_LIMIT / MEGSIM_SCALE /
     * MEGSIM_CACHE_DIR from the environment.
     */
    static CampaignConfig fromEnv();
};

/**
 * Analyze one benchmark whose ground truth is available (cached,
 * regenerated or installed) and fold it into a report row. Shared by
 * the in-process Campaign and the supervised serve::Supervisor so
 * both runners produce bit-identical rows from identical frames.
 */
BenchmarkReport analyzeBenchmark(const std::string &alias,
                                 megsim::BenchmarkData &data,
                                 const megsim::MegsimConfig &config);

/** Publish campaign.<alias>.* / campaign.suite.* stats. */
void publishCampaignStats(const CampaignReport &report);

/** One benchmark entering the suite-level analysis. */
struct SuiteBench
{
    std::string alias;
    megsim::BenchmarkData *data = nullptr;
    std::string cacheStatus = "built";
    std::size_t resumedFrames = 0;
};

/** What analyzeSuite() hands back for the v3 report. */
struct SuiteAnalysis
{
    /** One row per input benchmark, in input order. */
    std::vector<BenchmarkReport> rows;
    /** Representatives actually timing-simulated suite-wide. */
    std::size_t sharedRepresentatives = 0;
    /** What independent per-bench clustering would have simulated. */
    std::size_t perBenchRepresentatives = 0;
    /** perBenchRepresentatives / sharedRepresentatives. */
    double suiteReductionFactor = 0.0;
};

/**
 * Suite-level analysis (--suite-cluster): pool every benchmark's
 * normalized features, cluster once suite-wide, elect shared
 * representatives and fold each benchmark's estimate back through its
 * own member counts. Also runs the independent per-bench clustering
 * (cheap — ground truth is already in memory) so the report can state
 * the measured suite reduction factor. Shared by the in-process
 * Campaign and the scheduler's finalize path so `--workers N` output
 * is bit-identical to the single-process run.
 */
SuiteAnalysis analyzeSuite(const std::vector<SuiteBench> &benches,
                           const megsim::MegsimConfig &config);

class Campaign
{
  public:
    explicit Campaign(CampaignConfig config);
    ~Campaign();

    /**
     * Run the whole suite through the shared pool. Returns the
     * completed report (aggregates included) or the first structured
     * error (unknown alias, failed ground-truth frame). The report is
     * NOT written to disk — callers pick the path and call
     * CampaignReport::save().
     */
    resilience::Expected<CampaignReport> run();

  private:
    struct Item;

    BenchmarkReport analyze(Item &item);

    CampaignConfig config_;
    std::vector<std::unique_ptr<Item>> items_;
};

} // namespace msim::batch

#endif // MSIM_BATCH_CAMPAIGN_HH
