#include "gpusim/geometry.hh"

#include <cmath>

namespace msim::gpusim
{

void
GeometryProcessor::transformDraw(const gfx::DrawCall &draw, DrawIR &out,
                                 std::vector<util::Vec2f> &screen,
                                 std::vector<float> &depth) const
{
    const gfx::SceneTrace &scene = binding_->scene();
    const gfx::Mesh &mesh = scene.meshes[draw.meshId];
    const float sw = static_cast<float>(config_.screenWidth);
    const float sh = static_cast<float>(config_.screenHeight);
    // Draws scale against the short screen axis so aspect is preserved.
    const float unit = std::min(sw, sh);

    out.meshId = draw.meshId;
    out.vsId = draw.vsId;
    out.fsId = draw.fsId;
    out.textureId = draw.textureId;
    out.transparent = draw.transparent;
    out.vertexCount =
        static_cast<std::uint32_t>(mesh.positions.size());

    const float cx = draw.x * sw;
    const float cy = draw.y * sh;
    const float s = draw.scale * unit;
    const float cosR = std::cos(draw.rotation);
    const float sinR = std::sin(draw.rotation);

    screen.resize(mesh.positions.size());
    depth.resize(mesh.positions.size());
    for (std::size_t i = 0; i < mesh.positions.size(); ++i) {
        const util::Vec3f &p = mesh.positions[i];
        screen[i] = {cx + s * (p.x * cosR - p.y * sinR),
                     cy + s * (p.x * sinR + p.y * cosR)};
        // Mesh-local z perturbs the draw depth so 3D meshes get
        // intra-draw occlusion; 0.2 keeps draws depth-ordered.
        depth[i] = draw.depth + 0.2f * p.z * draw.scale;
    }

    out.triangles.clear();
    out.triangles.reserve(mesh.triangleCount());
    for (std::size_t t = 0; t + 2 < mesh.indices.size(); t += 3) {
        ScreenTriangle tri;
        for (int k = 0; k < 3; ++k) {
            const std::uint32_t idx = mesh.indices[t + k];
            tri.v[k] = screen[idx];
            tri.z[k] = depth[idx];
            tri.uv[k] = mesh.uvs[idx];
        }
        if (tri.area2() == 0.0f)
            continue; // degenerate
        const util::BBox2i box = tri.bounds().intersect(
            util::BBox2i{0, 0, static_cast<int>(sw),
                         static_cast<int>(sh)});
        if (box.empty())
            continue; // fully off-screen
        out.triangles.push_back(tri);
    }
}

GeometryIR
GeometryProcessor::process(const gfx::FrameTrace &frame) const
{
    GeometryIR ir;
    ir.frameIndex = frame.index;
    ir.draws.reserve(frame.draws.size());

    std::vector<util::Vec2f> screen;
    std::vector<float> depth;
    for (const gfx::DrawCall &draw : frame.draws) {
        DrawIR out;
        transformDraw(draw, out, screen, depth);
        ir.draws.push_back(std::move(out));
    }
    return ir;
}

void
GeometryProcessor::processInto(const gfx::FrameTrace &frame,
                               GeometryIR &out)
{
    out.frameIndex = frame.index;
    // Shrink keeps leading DrawIRs (and their triangle capacity)
    // alive; growth default-constructs the tail in place.
    out.draws.resize(frame.draws.size());
    for (std::size_t i = 0; i < frame.draws.size(); ++i)
        transformDraw(frame.draws[i], out.draws[i], screen_, depth_);
}

} // namespace msim::gpusim
