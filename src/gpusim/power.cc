#include "gpusim/power.hh"

namespace msim::gpusim
{

namespace
{

double
counter(const obs::StatsRegistry &registry, const char *name)
{
    const obs::Stat *stat = registry.find(name);
    return stat ? stat->value() : 0.0;
}

} // namespace

EnergyBreakdown
energyFromRegistry(const obs::StatsRegistry &registry,
                   const EnergyModel &m)
{
    EnergyBreakdown e;
    e.geometryNj =
        counter(registry, "gpu.geometry.vs_instructions") *
            m.vsInstructionNj +
        counter(registry, "gpu.vertex_cache.accesses") *
            m.vertexCacheAccessNj +
        counter(registry, "gpu.geometry.dram_lines") * m.dramLineNj;
    e.tilingNj =
        counter(registry, "gpu.tiling.tile_entries") * m.tileEntryNj +
        counter(registry, "gpu.tiling.tile_list_bytes") *
            m.tileListByteNj +
        counter(registry, "gpu.tiling.dram_lines") * m.dramLineNj;
    e.rasterNj =
        counter(registry, "gpu.raster.fs_instructions") *
            m.fsInstructionNj +
        counter(registry, "gpu.texture_cache.accesses") *
            m.textureCacheAccessNj +
        counter(registry, "gpu.raster.quads") * m.quadRasterNj +
        counter(registry, "gpu.raster.blended_pixels") *
            m.blendPixelNj +
        counter(registry, "gpu.tile_cache.accesses") *
            m.tileCacheAccessNj +
        counter(registry, "gpu.raster.dram_lines") * m.dramLineNj;
    return e;
}

PowerBreakdown
powerBreakdown(const std::vector<FrameStats> &frames)
{
    EnergyBreakdown total;
    for (const FrameStats &s : frames)
        total += s.energy;

    PowerBreakdown pb;
    pb.totalNj = total.totalNj();
    if (pb.totalNj > 0.0) {
        pb.geometryFraction = total.geometryNj / pb.totalNj;
        pb.tilingFraction = total.tilingNj / pb.totalNj;
        pb.rasterFraction = total.rasterNj / pb.totalNj;
    }
    return pb;
}

} // namespace msim::gpusim
