#include "gpusim/timing_simulator.hh"

#include <algorithm>
#include <iostream>
#include <utility>

#include "gpusim/power.hh"
#include "obs/profile.hh"

namespace msim::gpusim
{

PipeQueue::PipeQueue(obs::StatsGroup stats, obs::TraceBuffer &trace,
                     const char *name, std::uint32_t entries)
    : ring_(entries ? entries : 1, 0), name_(name), trace_(&trace),
      pushes_(&stats.scalar("pushes", "items enqueued")),
      stallCycles_(&stats.scalar("stall_cycles",
                                 "producer cycles lost to a full queue"))
{}

void
PipeQueue::reset(std::uint32_t frame)
{
    std::fill(ring_.begin(), ring_.end(), 0);
    head_ = 0;
    frame_ = frame;
}

TimingSimulator::TimingSimulator(const GpuConfig &config,
                                 const SceneBinding &binding,
                                 const obs::ObsConfig &obsConfig)
    : config_(config), binding_(&binding),
      geometry_(config, binding), trace_(obsConfig),
      vertexCache_(config.vertexCache,
                   registry_.group("gpu.vertex_cache")),
      tileCache_(config.tileCache, registry_.group("gpu.tile_cache")),
      l2_(config.memory.l2, registry_.group("gpu.l2")),
      dram_(config.memory.dram, registry_.group("gpu.dram")),
      vertexInQueue_(registry_.group("gpu.queue.vertex_in"), trace_,
                     "vertex_in", config.vertexInQueueEntries),
      vertexOutQueue_(registry_.group("gpu.queue.vertex_out"), trace_,
                      "vertex_out", config.vertexInQueueEntries),
      triangleQueue_(registry_.group("gpu.queue.triangle"), trace_,
                     "triangle", config.triangleQueueEntries),
      fragmentQueue_(registry_.group("gpu.queue.fragment"), trace_,
                     "fragment", config.fragmentQueueEntries),
      colorQueue_(registry_.group("gpu.queue.color"), trace_, "color",
                  config.colorQueueEntries),
      statsDump_(obsConfig.statsDump)
{
    // All texture caches share one stats group: registration is
    // idempotent, so the four caches aggregate into the same counters.
    textureCaches_.reserve(config.numTextureCaches);
    for (std::uint32_t i = 0; i < config.numTextureCaches; ++i)
        textureCaches_.emplace_back(
            config.textureCache, registry_.group("gpu.texture_cache"));

    vertexProcFree_.resize(std::max(1u, config.numVertexProcessors));
    fragmentProcFree_.resize(
        std::max(1u, config.numFragmentProcessors));
    earlyZFree_.resize(std::max(1u, config.earlyZInflightQuads));

    tileDepth_.resize(static_cast<std::size_t>(config.tileWidth) *
                      config.tileHeight);
    tileOwner_.resize(tileDepth_.size());
    tileUv_.resize(tileDepth_.size());

    obs::StatsGroup geom = registry_.group("gpu.geometry");
    vsInvocations_ = &geom.scalar("vs_invocations",
                                  "vertex-shader executions");
    vsInstructions_ = &geom.scalar("vs_instructions",
                                   "vertex-shader instructions");
    geomDramLines_ = &geom.scalar("dram_lines",
                                  "DRAM lines fetched for vertices");

    obs::StatsGroup tiling = registry_.group("gpu.tiling");
    trianglesBinned_ = &tiling.scalar("triangles",
                                      "triangles binned");
    tileEntries_ = &tiling.scalar("tile_entries",
                                  "triangle-tile pairs emitted");
    tileListBytes_ = &tiling.scalar("tile_list_bytes",
                                    "bytes written to tile lists");
    tilingDramLines_ = &tiling.scalar("dram_lines",
                                      "DRAM lines for tile lists");

    obs::StatsGroup raster = registry_.group("gpu.raster");
    quads_ = &raster.scalar("quads", "quad-fragments rasterized");
    earlyZKills_ = &raster.scalar("earlyz_kills",
                                  "quads rejected by early-Z");
    fsInvocations_ = &raster.scalar("fs_invocations",
                                    "fragments shaded");
    fsInstructions_ = &raster.scalar("fs_instructions",
                                     "fragment-shader instructions");
    blendedPixels_ = &raster.scalar("blended_pixels",
                                    "pixels through the blend unit");
    framebufferBytes_ = &raster.scalar(
        "framebuffer_bytes", "tile-flush bytes written off-chip");
    rasterDramLines_ = &raster.scalar(
        "dram_lines", "DRAM lines for textures + flushes");
    tileCycles_ = &raster.distribution(
        "tile_cycles", 0.0, 20000.0, 20, "cycles spent per tile");

    obs::StatsGroup frame = registry_.group("gpu.frame");
    frameCycles_ = &frame.scalar("cycles", "frame execution cycles");
    frameStallCycles_ = &frame.scalar(
        "stall_cycles", "total queue backpressure cycles");
    framesSimulated_ = &frame.scalar("index", "frame index simulated");
    frameWallSeconds_ = &frame.scalar(
        "wall_seconds", "host wall-clock time simulating the frame");
    frame.formula(
        "ipc",
        [this] {
            const double c = frameCycles_->value();
            return c > 0.0 ? (vsInstructions_->value() +
                              fsInstructions_->value()) /
                                 c
                           : 0.0;
        },
        "instructions per cycle");

    const gfx::SceneTrace &scene = binding.scene();
    shaderColumn_.resize(scene.shaders.size(), 0);
    for (const gfx::ShaderProgram &s : scene.shaders) {
        if (s.kind == gfx::ShaderKind::Vertex)
            shaderColumn_[s.id] =
                static_cast<std::uint32_t>(numVs_++);
        else
            shaderColumn_[s.id] =
                static_cast<std::uint32_t>(numFs_++);
    }
}

sim::Tick
TimingSimulator::memAccess(mem::Cache *l1, sim::Tick now,
                           sim::Addr addr, bool write,
                           obs::Scalar *dramLines)
{
    sim::Tick t = now;
    if (l1) {
        const mem::CacheAccess a = l1->access(addr, write);
        t += l1->config().hitLatency;
        if (a.writeback) {
            const mem::CacheAccess wb = l2_.access(a.victimLine, true);
            if (wb.writeback)
                dram_.access(t, wb.victimLine, true);
        }
        if (a.hit)
            return t;
        write = false; // the L2-facing side of a fill is a read
    }
    const mem::CacheAccess l2a = l2_.access(addr, write);
    t += l2_.config().hitLatency;
    if (l2a.writeback)
        dram_.access(t, l2a.victimLine, true);
    if (l2a.hit)
        return t;
    const sim::Tick done = dram_.access(t, addr, write);
    ++*dramLines;
    trace_.emit("dram", obs::TraceCategory::Dram, frameIndex_, t, done,
                addr);
    return done;
}

FrameStats
TimingSimulator::simulate(const gfx::FrameTrace &frame,
                          FrameActivity *activity)
{
    return simulate(geometry_.process(frame), activity);
}

FrameStats
TimingSimulator::simulate(const GeometryIR &ir, FrameActivity *activity)
{
    const double wallStart = obs::wallSeconds();
    const gfx::SceneTrace &scene = binding_->scene();
    frameIndex_ = ir.frameIndex;

    // Cold start: each frame simulates independently of which frames
    // ran before — the property representative-only simulation needs.
    registry_.resetPerFrame();
    vertexCache_.invalidate();
    for (mem::Cache &c : textureCaches_)
        c.invalidate();
    tileCache_.invalidate();
    l2_.invalidate();
    dram_.drain();
    vertexInQueue_.reset(frameIndex_);
    vertexOutQueue_.reset(frameIndex_);
    triangleQueue_.reset(frameIndex_);
    fragmentQueue_.reset(frameIndex_);
    colorQueue_.reset(frameIndex_);
    std::fill(vertexProcFree_.begin(), vertexProcFree_.end(), 0);
    std::fill(fragmentProcFree_.begin(), fragmentProcFree_.end(), 0);
    std::fill(earlyZFree_.begin(), earlyZFree_.end(), 0);

    if (activity) {
        *activity = FrameActivity{};
        activity->frameIndex = ir.frameIndex;
        activity->vsCounts.assign(numVs_, 0);
        activity->fsCounts.assign(numFs_, 0);
    }

    const std::uint32_t tilesX = config_.tilesX();
    const std::uint32_t tilesY = config_.tilesY();
    const std::size_t numTiles =
        static_cast<std::size_t>(tilesX) * tilesY;
    // Per tile: (draw index, triangle index) in submission order.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        bins(numTiles);

    // ---- Geometry + binning --------------------------------------------
    sim::Tick fetchClock = 0;
    sim::Tick paFree = 0;
    sim::Tick binFree = 0;
    sim::Tick geomDone = 0;
    std::size_t vpRR = 0;

    StageSpan fetchSpan, vsSpan, paSpan, binSpan;

    for (std::uint32_t di = 0; di < ir.draws.size(); ++di) {
        const DrawIR &draw = ir.draws[di];
        const gfx::ShaderProgram &vs = scene.shaders[draw.vsId];
        const std::uint64_t vsInstr = vs.instructionCount();

        sim::Tick lastPaDone = fetchClock;
        for (std::uint32_t v = 0; v < draw.vertexCount; ++v) {
            const sim::Tick fetchStart = fetchClock++;
            const sim::Tick fetchDone = memAccess(
                &vertexCache_, fetchStart,
                binding_->vertexAddr(draw.meshId, v), false,
                geomDramLines_);
            fetchSpan.cover(fetchStart, fetchDone);

            const sim::Tick inIssue = vertexInQueue_.reserve(fetchDone);
            sim::Tick &vp = vertexProcFree_[vpRR];
            vpRR = (vpRR + 1) % vertexProcFree_.size();
            const sim::Tick vpStart = std::max(inIssue, vp);
            const sim::Tick vpDone = vpStart + vsInstr;
            vp = vpDone;
            vertexInQueue_.complete(vpStart);
            vsSpan.cover(vpStart, vpDone);

            const sim::Tick outIssue = vertexOutQueue_.reserve(vpDone);
            const sim::Tick paStart = std::max(outIssue, paFree);
            const sim::Tick paDone =
                paStart + (v % std::max(1u, config_.paVerticesPerCycle)
                               ? 0
                               : 1);
            paFree = paDone;
            vertexOutQueue_.complete(paStart);
            paSpan.cover(paStart, paDone);
            lastPaDone = paDone;
        }
        *vsInvocations_ += static_cast<double>(draw.vertexCount);
        *vsInstructions_ +=
            static_cast<double>(vsInstr * draw.vertexCount);
        if (activity) {
            activity->verticesShaded += draw.vertexCount;
            activity->vsCounts[shaderColumn_[draw.vsId]] +=
                draw.vertexCount;
            activity->primitives += draw.triangles.size();
        }

        // Binning: assign each surviving triangle to the tiles its
        // bounding box covers and write the tile-list entries.
        for (std::uint32_t ti = 0; ti < draw.triangles.size(); ++ti) {
            const ScreenTriangle &tri = draw.triangles[ti];
            const util::BBox2i box = tri.bounds().intersect(
                util::BBox2i{0, 0,
                             static_cast<int>(config_.screenWidth),
                             static_cast<int>(config_.screenHeight)});

            const sim::Tick tqIssue =
                triangleQueue_.reserve(lastPaDone);
            sim::Tick binStart = std::max(tqIssue, binFree);
            sim::Tick binDone = binStart;

            const int tx0 = box.x0 / static_cast<int>(config_.tileWidth);
            const int ty0 =
                box.y0 / static_cast<int>(config_.tileHeight);
            const int tx1 = (box.x1 - 1) /
                            static_cast<int>(config_.tileWidth);
            const int ty1 = (box.y1 - 1) /
                            static_cast<int>(config_.tileHeight);
            for (int ty = ty0; ty <= ty1; ++ty) {
                for (int tx = tx0; tx <= tx1; ++tx) {
                    const std::size_t tile =
                        static_cast<std::size_t>(ty) * tilesX +
                        static_cast<std::size_t>(tx);
                    binDone += 1; // one entry per cycle
                    binDone = std::max(
                        binDone,
                        memAccess(nullptr, binDone,
                                  binding_->tileListAddr(
                                      static_cast<std::uint32_t>(tile),
                                      static_cast<std::uint32_t>(
                                          bins[tile].size())),
                                  true, tilingDramLines_));
                    bins[tile].emplace_back(di, ti);
                    ++*tileEntries_;
                    *tileListBytes_ +=
                        SceneBinding::kTileListEntryBytes;
                }
            }
            binFree = binDone;
            triangleQueue_.complete(binStart);
            binSpan.cover(binStart, binDone);
            geomDone = std::max(geomDone, binDone);
            ++*trianglesBinned_;
        }
        geomDone = std::max(geomDone, lastPaDone);
    }

    auto emitStage = [&](const char *name, const StageSpan &span) {
        if (span.used())
            trace_.emit(name, obs::TraceCategory::Stage, frameIndex_,
                        span.begin, span.end);
    };
    emitStage("vertex_fetch", fetchSpan);
    emitStage("vertex_shader", vsSpan);
    emitStage("primitive_assembly", paSpan);
    emitStage("binning", binSpan);
    trace_.emit("geometry", obs::TraceCategory::Phase, frameIndex_, 0,
                geomDone);

    // ---- Per-tile rasterization ----------------------------------------
    sim::Tick clock = geomDone;
    const int tileW = static_cast<int>(config_.tileWidth);
    const int tileH = static_cast<int>(config_.tileHeight);
    std::size_t fpRR = 0, ezRR = 0, texRR = 0;

    // Deferred (HSR) per-pixel shading bookkeeping.
    std::vector<std::uint64_t> hsrPixelsPerDraw;

    for (std::size_t tile = 0; tile < numTiles; ++tile) {
        if (bins[tile].empty())
            continue;
        const sim::Tick tileStart = clock;
        const int px0 =
            static_cast<int>(tile % tilesX) * tileW;
        const int py0 =
            static_cast<int>(tile / tilesX) * tileH;
        const util::BBox2i tileBox{
            px0, py0,
            std::min(px0 + tileW,
                     static_cast<int>(config_.screenWidth)),
            std::min(py0 + tileH,
                     static_cast<int>(config_.screenHeight))};

        std::fill(tileDepth_.begin(), tileDepth_.end(), 1.0f);
        std::fill(tileOwner_.begin(), tileOwner_.end(), 0u);

        // Read the tile list back (one L2 access per line).
        sim::Tick t = clock;
        const std::size_t listLines =
            (bins[tile].size() * SceneBinding::kTileListEntryBytes +
             63) /
            64;
        for (std::size_t line = 0; line < listLines; ++line)
            t = memAccess(nullptr, t,
                          binding_->tileListAddr(
                              static_cast<std::uint32_t>(tile),
                              static_cast<std::uint32_t>(line * 4)),
                          false, tilingDramLines_);

        StageSpan rastSpan, ezSpan, fsSpan, blendSpan, flushSpan;
        sim::Tick rastFree = t;
        sim::Tick blendFree = t;
        sim::Tick tileDone = t;

        auto pixelIndex = [&](int x, int y) {
            return static_cast<std::size_t>(y - py0) * tileW +
                   static_cast<std::size_t>(x - px0);
        };

        // Shade one surviving quad: queue -> fragment processor ->
        // texture samples -> blend. Returns the blend-complete time.
        auto shadeQuad = [&](const DrawIR &draw, sim::Tick ready,
                             const QuadFragment &quad, int pixels) {
            const gfx::ShaderProgram &fs = scene.shaders[draw.fsId];
            const std::uint64_t fsInstr = fs.instructionCount();

            const sim::Tick fqIssue = fragmentQueue_.reserve(ready);
            sim::Tick &fp = fragmentProcFree_[fpRR];
            fpRR = (fpRR + 1) % fragmentProcFree_.size();
            const sim::Tick fpStart = std::max(fqIssue, fp);
            sim::Tick fpDone = fpStart + fsInstr;
            fragmentQueue_.complete(fpStart);

            for (std::uint32_t s = 0; s < fs.textureSamples; ++s) {
                mem::Cache &tc = textureCaches_[texRR];
                texRR = (texRR + 1) % textureCaches_.size();
                const sim::Tick texDone = memAccess(
                    &tc, fpStart,
                    binding_->texelAddr(draw.textureId,
                                        quad.uv.x + 0.01f * s,
                                        quad.uv.y),
                    false, rasterDramLines_);
                fpDone = std::max(fpDone, texDone);
            }
            fp = fpDone;
            fsSpan.cover(fpStart, fpDone);
            *fsInvocations_ += pixels;
            *fsInstructions_ += static_cast<double>(
                fsInstr * static_cast<std::uint64_t>(pixels));
            if (activity) {
                activity->fragmentsShaded +=
                    static_cast<std::uint64_t>(pixels);
                activity->fsCounts[shaderColumn_[draw.fsId]] +=
                    static_cast<std::uint64_t>(pixels);
            }

            const sim::Tick cqIssue = colorQueue_.reserve(fpDone);
            const sim::Tick blendStart = std::max(cqIssue, blendFree);
            const sim::Tick blendDone = blendStart + pixels;
            blendFree = blendDone;
            colorQueue_.complete(blendStart);
            blendSpan.cover(blendStart, blendDone);
            *blendedPixels_ += pixels;
            return blendDone;
        };

        for (const auto &[di, ti] : bins[tile]) {
            const DrawIR &draw = ir.draws[di];
            const ScreenTriangle &tri = draw.triangles[ti];
            const bool deferOpaque =
                config_.hsrEnabled && !draw.transparent;

            // Triangle setup: attribute interpolants.
            rastFree +=
                12 / std::max(1u, config_.rastAttributesPerCycle);

            rasterizeTriangleInTile(
                tri, tileBox, [&](const QuadFragment &quad) {
                    const sim::Tick rastDone = ++rastFree;
                    rastSpan.cover(rastDone - 1, rastDone);
                    ++*quads_;

                    // Early depth test against the on-chip tile
                    // buffer (no memory traffic — the TBR advantage).
                    sim::Tick &ez = earlyZFree_[ezRR];
                    ezRR = (ezRR + 1) % earlyZFree_.size();
                    const sim::Tick ezStart =
                        std::max(rastDone, ez);
                    const sim::Tick ezDone = ezStart + 1;
                    ez = ezDone;
                    ezSpan.cover(ezStart, ezDone);

                    int passing = 0;
                    for (int s = 0; s < 4; ++s) {
                        if (!(quad.mask & (1 << s)))
                            continue;
                        const int x = quad.x + (s & 1);
                        const int y = quad.y + (s >> 1);
                        const std::size_t pix = pixelIndex(x, y);
                        if (quad.z[s] > tileDepth_[pix])
                            continue;
                        ++passing;
                        if (!draw.transparent) {
                            tileDepth_[pix] = quad.z[s];
                            if (deferOpaque) {
                                tileOwner_[pix] = di + 1;
                                tileUv_[pix] = quad.uv;
                            }
                        }
                    }
                    if (passing == 0) {
                        ++*earlyZKills_;
                        return;
                    }
                    if (deferOpaque)
                        return; // shaded after HSR resolve
                    tileDone = std::max(
                        tileDone, shadeQuad(draw, ezDone, quad,
                                            passing));
                });
            tileDone = std::max(tileDone, rastFree);
        }

        if (config_.hsrEnabled) {
            // Deferred shading: only the visible opaque pixels are
            // shaded, grouped per draw (PowerVR-style HSR).
            hsrPixelsPerDraw.assign(ir.draws.size(), 0);
            for (std::size_t pix = 0; pix < tileOwner_.size(); ++pix)
                if (tileOwner_[pix])
                    ++hsrPixelsPerDraw[tileOwner_[pix] - 1];
            for (std::size_t di = 0; di < hsrPixelsPerDraw.size();
                 ++di) {
                std::uint64_t pixels = hsrPixelsPerDraw[di];
                if (!pixels)
                    continue;
                const DrawIR &draw =
                    ir.draws[static_cast<std::uint32_t>(di)];
                // Find one representative uv for the draw's texels.
                QuadFragment quad;
                for (std::size_t pix = 0; pix < tileOwner_.size();
                     ++pix) {
                    if (tileOwner_[pix] == di + 1) {
                        quad.uv = tileUv_[pix];
                        break;
                    }
                }
                while (pixels) {
                    const int batch = static_cast<int>(
                        std::min<std::uint64_t>(4, pixels));
                    pixels -= static_cast<std::uint64_t>(batch);
                    tileDone = std::max(
                        tileDone,
                        shadeQuad(draw, tileDone, quad, batch));
                }
            }
        }

        // Tile flush: one color write per pixel, through the tile
        // cache to DRAM. This is the only framebuffer traffic TBR
        // generates.
        const std::uint64_t flushBytes =
            static_cast<std::uint64_t>(tileBox.width()) *
            static_cast<std::uint64_t>(tileBox.height()) * 4;
        sim::Tick flushT = tileDone;
        for (int y = tileBox.y0; y < tileBox.y1; ++y) {
            for (int x = tileBox.x0; x < tileBox.x1; x += 16) {
                // one access per 64 B line (16 4-byte pixels)
                flushT = std::max(
                    flushT,
                    memAccess(
                        &tileCache_, flushT,
                        binding_->colorAddr(config_.screenWidth,
                                            static_cast<std::uint32_t>(
                                                x),
                                            static_cast<std::uint32_t>(
                                                y)),
                        true, rasterDramLines_));
            }
        }
        flushSpan.cover(tileDone, flushT);
        *framebufferBytes_ += static_cast<double>(flushBytes);
        tileDone = flushT;

        emitStage("rasterizer", rastSpan);
        emitStage("early_z", ezSpan);
        emitStage("fragment_shader", fsSpan);
        emitStage("blend", blendSpan);
        emitStage("tile_flush", flushSpan);
        trace_.emit("raster_tile", obs::TraceCategory::Stage,
                    frameIndex_, tileStart, tileDone,
                    static_cast<std::uint64_t>(tile));

        tileCycles_->sample(static_cast<double>(tileDone - tileStart));
        clock = tileDone;
    }

    trace_.emit("raster", obs::TraceCategory::Phase, frameIndex_,
                geomDone, clock);
    trace_.emit("frame", obs::TraceCategory::Frame, frameIndex_, 0,
                clock, ir.primitives());

    lastFrameWall_ = obs::wallSeconds() - wallStart;
    frameWallSeconds_->set(lastFrameWall_);
    return harvest(ir.frameIndex, clock);
}

FrameStats
TimingSimulator::harvest(std::uint32_t frameIndex, sim::Tick cycles)
{
    frameCycles_->set(static_cast<double>(cycles));
    framesSimulated_->set(static_cast<double>(frameIndex));
    frameStallCycles_->set(
        static_cast<double>(vertexInQueue_.stallCycles() +
                            vertexOutQueue_.stallCycles() +
                            triangleQueue_.stallCycles() +
                            fragmentQueue_.stallCycles() +
                            colorQueue_.stallCycles()));

    // FrameStats is read back out of the registry: the registry is the
    // single source of truth for every counter below.
    FrameStats s;
    s.frameIndex = frameIndex;
    s.cycles = cycles;
    auto count = [this](const char *name) {
        const obs::Stat *stat = registry_.find(name);
        return stat ? static_cast<std::uint64_t>(stat->value()) : 0;
    };
    s.vsInvocations = count("gpu.geometry.vs_invocations");
    s.vsInstructions = count("gpu.geometry.vs_instructions");
    s.fsInvocations = count("gpu.raster.fs_invocations");
    s.fsInstructions = count("gpu.raster.fs_instructions");
    s.primitives = count("gpu.tiling.triangles");
    s.vertexCacheAccesses = count("gpu.vertex_cache.accesses");
    s.textureCacheAccesses = count("gpu.texture_cache.accesses");
    s.tileCacheAccesses = count("gpu.tile_cache.accesses");
    s.l2Accesses = count("gpu.l2.accesses");
    s.dramAccesses = count("gpu.dram.transactions");
    s.dramBytes = count("gpu.dram.bytes");
    s.framebufferBytes = count("gpu.raster.framebuffer_bytes");
    s.stallCycles = count("gpu.frame.stall_cycles");
    s.earlyZKills = count("gpu.raster.earlyz_kills");
    s.energy = energyFromRegistry(registry_);

    if (!statsDump_.empty())
        registry_.dump(std::cerr, statsDump_);
    return s;
}

} // namespace msim::gpusim
