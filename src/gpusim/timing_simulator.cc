#include "gpusim/timing_simulator.hh"

#include <algorithm>
#include <iostream>
#include <optional>
#include <utility>

#include "gpusim/power.hh"
#include "obs/profile.hh"

namespace msim::gpusim
{

PipeQueue::PipeQueue(obs::StatsGroup stats, obs::TraceBuffer &trace,
                     const char *name, std::uint32_t entries)
    : ring_(entries ? entries : 1, 0), name_(name), trace_(&trace),
      pushes_(&stats.scalar("pushes", "items enqueued")),
      stallCycles_(&stats.scalar("stall_cycles",
                                 "producer cycles lost to a full queue"))
{}

void
PipeQueue::reset(std::uint32_t frame)
{
    std::fill(ring_.begin(), ring_.end(), 0);
    head_ = 0;
    frame_ = frame;
}

void
PipeQueue::flushStats()
{
    if (pendPushes_) {
        *pushes_ += static_cast<double>(pendPushes_);
        pendPushes_ = 0;
    }
    if (pendStall_) {
        *stallCycles_ += static_cast<double>(pendStall_);
        pendStall_ = 0;
    }
}

TimingSimulator::TimingSimulator(const GpuConfig &config,
                                 const SceneBinding &binding,
                                 const obs::ObsConfig &obsConfig)
    : config_(config), binding_(&binding),
      geometry_(config, binding), trace_(obsConfig),
      vertexCache_(config.vertexCache,
                   registry_.group("gpu.vertex_cache")),
      tileCache_(config.tileCache, registry_.group("gpu.tile_cache")),
      l2_(config.memory.l2, registry_.group("gpu.l2")),
      dram_(config.memory.dram, registry_.group("gpu.dram")),
      vertexInQueue_(registry_.group("gpu.queue.vertex_in"), trace_,
                     "vertex_in", config.vertexInQueueEntries),
      vertexOutQueue_(registry_.group("gpu.queue.vertex_out"), trace_,
                      "vertex_out", config.vertexInQueueEntries),
      triangleQueue_(registry_.group("gpu.queue.triangle"), trace_,
                     "triangle", config.triangleQueueEntries),
      fragmentQueue_(registry_.group("gpu.queue.fragment"), trace_,
                     "fragment", config.fragmentQueueEntries),
      colorQueue_(registry_.group("gpu.queue.color"), trace_, "color",
                  config.colorQueueEntries),
      statsDump_(obsConfig.statsDump)
{
    // All texture caches share one stats group: registration is
    // idempotent, so the four caches aggregate into the same counters.
    textureCaches_.reserve(config.numTextureCaches);
    for (std::uint32_t i = 0; i < config.numTextureCaches; ++i)
        textureCaches_.emplace_back(
            config.textureCache, registry_.group("gpu.texture_cache"));

    // The merge protocol is only sound when an MRU-way read hit on
    // the L2 is provably state-free (the 2-way specialization); any
    // other geometry silently runs with the MSHR off.
    l2Mshr_.configure(l2_.readHitIdempotent() ? config.memory.l2Mshr
                                              : mem::MshrConfig{});
    l2Mshr_.bindStats(registry_.group("gpu.l2.mshr"));
    fastMemOn_ = config.fastMem.enabled;
    fastMem_.configure(config.fastMem);

    vertexProcFree_.resize(std::max(1u, config.numVertexProcessors));
    fragmentProcFree_.resize(
        std::max(1u, config.numFragmentProcessors));

    // Epoch 0 is never used for a tile, so zero-initialized stamps
    // read as "stale" (depth 1.0f, no owner) from the first frame on.
    tileZ_.assign(static_cast<std::size_t>(config.tileWidth) *
                      config.tileHeight,
                  TileDepthEntry{1.0f, 0});
    tileOwner_.resize(tileZ_.size());
    tileUv_.resize(tileZ_.size());

    obs::StatsGroup geom = registry_.group("gpu.geometry");
    vsInvocations_ = &geom.scalar("vs_invocations",
                                  "vertex-shader executions");
    vsInstructions_ = &geom.scalar("vs_instructions",
                                   "vertex-shader instructions");
    geomDramLines_ = &geom.scalar("dram_lines",
                                  "DRAM lines fetched for vertices");

    obs::StatsGroup tiling = registry_.group("gpu.tiling");
    trianglesBinned_ = &tiling.scalar("triangles",
                                      "triangles binned");
    tileEntries_ = &tiling.scalar("tile_entries",
                                  "triangle-tile pairs emitted");
    tileListBytes_ = &tiling.scalar("tile_list_bytes",
                                    "bytes written to tile lists");
    tilingDramLines_ = &tiling.scalar("dram_lines",
                                      "DRAM lines for tile lists");

    obs::StatsGroup raster = registry_.group("gpu.raster");
    quads_ = &raster.scalar("quads", "quad-fragments rasterized");
    earlyZKills_ = &raster.scalar("earlyz_kills",
                                  "quads rejected by early-Z");
    fsInvocations_ = &raster.scalar("fs_invocations",
                                    "fragments shaded");
    fsInstructions_ = &raster.scalar("fs_instructions",
                                     "fragment-shader instructions");
    blendedPixels_ = &raster.scalar("blended_pixels",
                                    "pixels through the blend unit");
    framebufferBytes_ = &raster.scalar(
        "framebuffer_bytes", "tile-flush bytes written off-chip");
    rasterDramLines_ = &raster.scalar(
        "dram_lines", "DRAM lines for textures + flushes");
    tileCycles_ = &raster.distribution(
        "tile_cycles", 0.0, 20000.0, 20, "cycles spent per tile");

    obs::StatsGroup frame = registry_.group("gpu.frame");
    frameCycles_ = &frame.scalar("cycles", "frame execution cycles");
    frameStallCycles_ = &frame.scalar(
        "stall_cycles", "total queue backpressure cycles");
    framesSimulated_ = &frame.scalar("index", "frame index simulated");
    frameWallSeconds_ = &frame.scalar(
        "wall_seconds", "host wall-clock time simulating the frame");
    frame.formula(
        "ipc",
        [this] {
            const double c = frameCycles_->value();
            return c > 0.0 ? (vsInstructions_->value() +
                              fsInstructions_->value()) /
                                 c
                           : 0.0;
        },
        "instructions per cycle");

    const gfx::SceneTrace &scene = binding.scene();
    shaderColumn_.resize(scene.shaders.size(), 0);
    for (const gfx::ShaderProgram &s : scene.shaders) {
        if (s.kind == gfx::ShaderKind::Vertex)
            shaderColumn_[s.id] =
                static_cast<std::uint32_t>(numVs_++);
        else
            shaderColumn_[s.id] =
                static_cast<std::uint32_t>(numFs_++);
    }
}

void
TimingSimulator::flushFrameStats()
{
    // Fold the fast-mem estimate for this frame's modeled walks into
    // the cache/DRAM counters before anything flushes: the observed
    // hit rates scale to the modeled population in exact integer
    // arithmetic (see mem/fastmem.hh), so merged totals stay
    // integer-valued and the flush below stays exact. No-op (all
    // zeros) in the default exact mode.
    if (fastMemOn_) {
        const mem::FastMemModel::Estimates e = fastMem_.estimates();
        if (e.l1Accesses != 0 && !textureCaches_.empty()) {
            // Any texture cache works: they share one stats group.
            textureCaches_[0].addModeled(e.l1Accesses, e.l1Hits);
            l2_.addModeled(e.l2Accesses, e.l2Hits);
            dram_.addModeled(e.dramLines);
            batch_.rasterDramLines += e.dramLines;
        }
    }

    // Each Scalar was reset at frame start, so every counter receives
    // exactly one integer-valued add here — exact below 2^53 and
    // therefore bit-identical to per-event increments. The texture
    // caches fold one after another into their shared group; every
    // partial sum is an exact integer, so the order is immaterial.
    *vsInvocations_ += static_cast<double>(batch_.vsInvocations);
    *vsInstructions_ += static_cast<double>(batch_.vsInstructions);
    *geomDramLines_ += static_cast<double>(batch_.geomDramLines);
    *trianglesBinned_ += static_cast<double>(batch_.triangles);
    *tileEntries_ += static_cast<double>(batch_.tileEntries);
    *tileListBytes_ += static_cast<double>(batch_.tileListBytes);
    *tilingDramLines_ += static_cast<double>(batch_.tilingDramLines);
    *quads_ += static_cast<double>(batch_.quads);
    *earlyZKills_ += static_cast<double>(batch_.earlyZKills);
    *fsInvocations_ += static_cast<double>(batch_.fsInvocations);
    *fsInstructions_ += static_cast<double>(batch_.fsInstructions);
    *blendedPixels_ += static_cast<double>(batch_.blendedPixels);
    *framebufferBytes_ += static_cast<double>(batch_.framebufferBytes);
    *rasterDramLines_ += static_cast<double>(batch_.rasterDramLines);
    batch_ = FrameBatch{};

    vertexCache_.flushStats();
    for (mem::Cache &c : textureCaches_)
        c.flushStats();
    tileCache_.flushStats();
    l2_.flushStats();
    l2Mshr_.flushStats();
    dram_.flushStats(); // sole flush this frame: latency_avg is exact

    vertexInQueue_.flushStats();
    vertexOutQueue_.flushStats();
    triangleQueue_.flushStats();
    fragmentQueue_.flushStats();
    colorQueue_.flushStats();
}

FrameStats
TimingSimulator::simulate(const gfx::FrameTrace &frame,
                          FrameActivity *activity)
{
    {
        obs::AttribScope geomScope(obs::HostDomain::Geometry);
        geometry_.processInto(frame, ir_);
    }
    return simulate(ir_, activity);
}

FrameStats
TimingSimulator::simulate(const GeometryIR &ir, FrameActivity *activity)
{
    const double wallStart = obs::wallSeconds();
    const gfx::SceneTrace &scene = binding_->scene();
    frameIndex_ = ir.frameIndex;

    // Cold start: each frame simulates independently of which frames
    // ran before — the property representative-only simulation needs.
    registry_.resetPerFrame();
    vertexCache_.invalidate();
    for (mem::Cache &c : textureCaches_)
        c.invalidate();
    tileCache_.invalidate();
    l2_.invalidate();
    dram_.drain();
    l2Mshr_.reset();
    fastMem_.reset();
    vertexInQueue_.reset(frameIndex_);
    vertexOutQueue_.reset(frameIndex_);
    triangleQueue_.reset(frameIndex_);
    fragmentQueue_.reset(frameIndex_);
    colorQueue_.reset(frameIndex_);
    std::fill(vertexProcFree_.begin(), vertexProcFree_.end(), 0);
    std::fill(fragmentProcFree_.begin(), fragmentProcFree_.end(), 0);
    batch_ = FrameBatch{};

    if (activity) {
        *activity = FrameActivity{};
        activity->frameIndex = ir.frameIndex;
        activity->vsCounts.assign(numVs_, 0);
        activity->fsCounts.assign(numFs_, 0);
    }

    const std::uint32_t tilesX = config_.tilesX();
    const std::uint32_t tilesY = config_.tilesY();
    const std::size_t numTiles =
        static_cast<std::size_t>(tilesX) * tilesY;
    // Per tile: (draw index, triangle index) in submission order.
    // Member scratch: clearing keeps each bin's capacity across frames.
    if (bins_.size() < numTiles)
        bins_.resize(numTiles);
    for (std::size_t tile = 0; tile < numTiles; ++tile)
        bins_[tile].clear();

    // Triangle setup is frame-invariant per triangle; compute it once
    // (lazily, at the first tile that rasterizes the triangle) and
    // reuse it in every other tile the triangle was binned into.
    drawTriOffset_.resize(ir.draws.size());
    std::size_t totalTris = 0;
    for (std::size_t di = 0; di < ir.draws.size(); ++di) {
        drawTriOffset_[di] = totalTris;
        totalTris += ir.draws[di].triangles.size();
    }
    setups_.resize(totalTris);
    setupDone_.assign(totalTris, 0);

    // ---- Geometry + binning --------------------------------------------
    sim::Tick fetchClock = 0;
    sim::Tick paFree = 0;
    sim::Tick binFree = 0;
    sim::Tick geomDone = 0;
    std::size_t vpRR = 0;

    StageSpan fetchSpan, vsSpan, paSpan, binSpan;

    std::optional<obs::AttribScope> geomScope;
    geomScope.emplace(obs::HostDomain::Geometry);
    for (std::uint32_t di = 0; di < ir.draws.size(); ++di) {
        const DrawIR &draw = ir.draws[di];
        const gfx::ShaderProgram &vs = scene.shaders[draw.vsId];
        const std::uint64_t vsInstr = vs.instructionCount();

        sim::Tick lastPaDone = fetchClock;
        for (std::uint32_t v = 0; v < draw.vertexCount; ++v) {
            const sim::Tick fetchStart = fetchClock++;
            const sim::Tick fetchDone = memAccess(
                &vertexCache_, fetchStart,
                binding_->vertexAddr(draw.meshId, v), false,
                &batch_.geomDramLines);
            fetchSpan.cover(fetchStart, fetchDone);

            const sim::Tick inIssue = vertexInQueue_.reserve(fetchDone);
            sim::Tick &vp = vertexProcFree_[vpRR];
            if (++vpRR == vertexProcFree_.size())
                vpRR = 0;
            const sim::Tick vpStart = std::max(inIssue, vp);
            const sim::Tick vpDone = vpStart + vsInstr;
            vp = vpDone;
            vertexInQueue_.complete(vpStart);
            vsSpan.cover(vpStart, vpDone);

            const sim::Tick outIssue = vertexOutQueue_.reserve(vpDone);
            const sim::Tick paStart = std::max(outIssue, paFree);
            const sim::Tick paDone =
                paStart + (v % std::max(1u, config_.paVerticesPerCycle)
                               ? 0
                               : 1);
            paFree = paDone;
            vertexOutQueue_.complete(paStart);
            paSpan.cover(paStart, paDone);
            lastPaDone = paDone;
        }
        batch_.vsInvocations += draw.vertexCount;
        batch_.vsInstructions += vsInstr * draw.vertexCount;
        if (activity) {
            activity->verticesShaded += draw.vertexCount;
            activity->vsCounts[shaderColumn_[draw.vsId]] +=
                draw.vertexCount;
            activity->primitives += draw.triangles.size();
        }

        // Binning: assign each surviving triangle to the tiles its
        // bounding box covers and write the tile-list entries.
        for (std::uint32_t ti = 0; ti < draw.triangles.size(); ++ti) {
            const ScreenTriangle &tri = draw.triangles[ti];
            const util::BBox2i box = tri.bounds().intersect(
                util::BBox2i{0, 0,
                             static_cast<int>(config_.screenWidth),
                             static_cast<int>(config_.screenHeight)});

            const sim::Tick tqIssue =
                triangleQueue_.reserve(lastPaDone);
            sim::Tick binStart = std::max(tqIssue, binFree);
            sim::Tick binDone = binStart;

            const int tx0 = box.x0 / static_cast<int>(config_.tileWidth);
            const int ty0 =
                box.y0 / static_cast<int>(config_.tileHeight);
            const int tx1 = (box.x1 - 1) /
                            static_cast<int>(config_.tileWidth);
            const int ty1 = (box.y1 - 1) /
                            static_cast<int>(config_.tileHeight);
            for (int ty = ty0; ty <= ty1; ++ty) {
                for (int tx = tx0; tx <= tx1; ++tx) {
                    const std::size_t tile =
                        static_cast<std::size_t>(ty) * tilesX +
                        static_cast<std::size_t>(tx);
                    binDone += 1; // one entry per cycle
                    binDone = std::max(
                        binDone,
                        memAccess(nullptr, binDone,
                                  binding_->tileListAddr(
                                      static_cast<std::uint32_t>(tile),
                                      static_cast<std::uint32_t>(
                                          bins_[tile].size())),
                                  true, &batch_.tilingDramLines));
                    bins_[tile].emplace_back(di, ti);
                    ++batch_.tileEntries;
                    batch_.tileListBytes +=
                        SceneBinding::kTileListEntryBytes;
                }
            }
            binFree = binDone;
            triangleQueue_.complete(binStart);
            binSpan.cover(binStart, binDone);
            geomDone = std::max(geomDone, binDone);
            ++batch_.triangles;
        }
        geomDone = std::max(geomDone, lastPaDone);
    }
    geomScope.reset();

    auto emitStage = [&](const char *name, const StageSpan &span) {
        if (span.used())
            trace_.emit(name, obs::TraceCategory::Stage, frameIndex_,
                        span.begin, span.end);
    };
    emitStage("vertex_fetch", fetchSpan);
    emitStage("vertex_shader", vsSpan);
    emitStage("primitive_assembly", paSpan);
    emitStage("binning", binSpan);
    trace_.emit("geometry", obs::TraceCategory::Phase, frameIndex_, 0,
                geomDone);

    // ---- Per-tile rasterization ----------------------------------------
    sim::Tick clock = geomDone;
    const int tileW = static_cast<int>(config_.tileWidth);
    const int tileH = static_cast<int>(config_.tileHeight);
    std::size_t fpRR = 0, texRR = 0;

    std::optional<obs::AttribScope> rasterScope;
    rasterScope.emplace(obs::HostDomain::Raster);
    for (std::size_t tile = 0; tile < numTiles; ++tile) {
        if (bins_[tile].empty())
            continue;
        const sim::Tick tileStart = clock;
        const int px0 =
            static_cast<int>(tile % tilesX) * tileW;
        const int py0 =
            static_cast<int>(tile / tilesX) * tileH;
        const util::BBox2i tileBox{
            px0, py0,
            std::min(px0 + tileW,
                     static_cast<int>(config_.screenWidth)),
            std::min(py0 + tileH,
                     static_cast<int>(config_.screenHeight))};

        // Clear the on-chip tile buffers by advancing the epoch: a
        // pixel whose stamp is stale reads as depth 1.0f / no owner,
        // exactly what the former per-tile fills produced. On the
        // (rare) 32-bit wrap, re-zero the stamps so an entry from
        // 2^32 tiles ago cannot alias the fresh epoch.
        if (++tileEpoch_ == 0) {
            for (TileDepthEntry &e : tileZ_)
                e.stamp = 0;
            tileEpoch_ = 1;
        }

        // Read the tile list back (one L2 access per line), as
        // batched multi-line walks. Entry indices wrap modulo 512
        // (tileListAddr), i.e. every 128 64-byte lines, so each chunk
        // re-walks the same contiguous window the per-line loop
        // addressed: line i maps to tileListAddr(tile, 0) + (i % 128)
        // * 64 exactly.
        sim::Tick t = clock;
        std::size_t listLines =
            (bins_[tile].size() * SceneBinding::kTileListEntryBytes +
             63) /
            64;
        const sim::Addr listBase = binding_->tileListAddr(
            static_cast<std::uint32_t>(tile), 0);
        while (listLines > 0) {
            const std::uint32_t chunk = static_cast<std::uint32_t>(
                std::min<std::size_t>(listLines, 128));
            t = memAccessLines(nullptr, t, listBase, chunk, false,
                               &batch_.tilingDramLines);
            listLines -= chunk;
        }

        StageSpan rastSpan, ezSpan, fsSpan, blendSpan, flushSpan;
        sim::Tick rastFree = t;
        sim::Tick blendFree = t;
        sim::Tick tileDone = t;

        // Per-draw constants hoisted out of the per-quad shading path:
        // the shader's instruction/sample counts and the resolved
        // texture, refreshed only when the draw changes (bin entries
        // arrive in draw order, so this is rare).
        struct DrawHot
        {
            std::uint64_t fsInstr = 0;
            std::uint32_t textureSamples = 0;
            std::uint32_t fsColumn = 0;
            SceneBinding::TextureRef tex;
        };
        auto makeHot = [&](const DrawIR &draw) {
            DrawHot h;
            const gfx::ShaderProgram &fs = scene.shaders[draw.fsId];
            h.fsInstr = fs.instructionCount();
            h.textureSamples = fs.textureSamples;
            h.fsColumn = shaderColumn_[draw.fsId];
            if (draw.textureId >= 0) {
                h.tex = binding_->textureRef(draw.textureId);
            } else {
                // Untextured fallback: a zero-dimension ref makes
                // texelAddr() collapse to its base, the same
                // tile-list-base address the textureId < 0 path
                // returned (untextured draws never sample anyway).
                h.tex.base = binding_->tileListAddr(0, 0);
            }
            return h;
        };

        // Shade one surviving quad: queue -> fragment processor ->
        // texture samples -> blend. Returns the blend-complete time.
        auto shadeQuad = [&](const DrawHot &hot, sim::Tick ready,
                             const QuadFragment &quad, int pixels) {
            obs::AttribScope shadeScope(obs::HostDomain::Shade);
            const std::uint64_t fsInstr = hot.fsInstr;

            const sim::Tick fqIssue = fragmentQueue_.reserve(ready);
            sim::Tick &fp = fragmentProcFree_[fpRR];
            if (++fpRR == fragmentProcFree_.size())
                fpRR = 0;
            const sim::Tick fpStart = std::max(fqIssue, fp);
            sim::Tick fpDone = fpStart + fsInstr;
            fragmentQueue_.complete(fpStart);

            for (std::uint32_t s = 0; s < hot.textureSamples; ++s) {
                mem::Cache &tc = textureCaches_[texRR];
                if (++texRR == textureCaches_.size())
                    texRR = 0;
                const sim::Tick texDone = textureAccess(
                    tc, fpStart,
                    SceneBinding::texelAddr(hot.tex,
                                            quad.uv.x + 0.01f * s,
                                            quad.uv.y));
                fpDone = std::max(fpDone, texDone);
            }
            fp = fpDone;
            fsSpan.cover(fpStart, fpDone);
            batch_.fsInvocations += static_cast<std::uint64_t>(pixels);
            batch_.fsInstructions +=
                fsInstr * static_cast<std::uint64_t>(pixels);
            if (activity) {
                activity->fragmentsShaded +=
                    static_cast<std::uint64_t>(pixels);
                activity->fsCounts[hot.fsColumn] +=
                    static_cast<std::uint64_t>(pixels);
            }

            const sim::Tick cqIssue = colorQueue_.reserve(fpDone);
            const sim::Tick blendStart = std::max(cqIssue, blendFree);
            const sim::Tick blendDone = blendStart + pixels;
            blendFree = blendDone;
            colorQueue_.complete(blendStart);
            blendSpan.cover(blendStart, blendDone);
            batch_.blendedPixels += static_cast<std::uint64_t>(pixels);
            return blendDone;
        };

        std::uint32_t hotDrawId = ~0u;
        DrawHot hot;
        for (const auto &[di, ti] : bins_[tile]) {
            const DrawIR &draw = ir.draws[di];
            if (di != hotDrawId) {
                hot = makeHot(draw);
                hotDrawId = di;
            }
            const ScreenTriangle &tri = draw.triangles[ti];
            const bool deferOpaque =
                config_.hsrEnabled && !draw.transparent;

            // Triangle setup: attribute interpolants.
            rastFree +=
                12 / std::max(1u, config_.rastAttributesPerCycle);

            const std::size_t si = drawTriOffset_[di] + ti;
            if (!setupDone_[si]) {
                setups_[si] = setupTriangle(tri);
                setupDone_[si] = 1;
            }

            rasterizeSetupInTile(
                setups_[si], tri, tileBox,
                [&](const QuadFragment &quad) {
                    const sim::Tick rastDone = ++rastFree;
                    rastSpan.cover(rastDone - 1, rastDone);
                    ++batch_.quads;

                    // Early depth test against the on-chip tile
                    // buffer (no memory traffic — the TBR advantage).
                    // The earlyZInflightQuads-deep availability ring
                    // never throttles: each quad advances rastFree by
                    // at least one cycle, so a ring slot written
                    // ezDone = thatRastDone + 1 one-or-more quads ago
                    // is always <= the current rastDone. The start
                    // time max(rastDone, slot) is therefore rastDone
                    // unconditionally and the unit-latency test
                    // finishes one cycle later.
                    const sim::Tick ezDone = rastDone + 1;
                    ezSpan.cover(rastDone, ezDone);

                    const std::size_t tw =
                        static_cast<std::size_t>(tileW);
                    const std::size_t base =
                        static_cast<std::size_t>(quad.y - py0) * tw +
                        static_cast<std::size_t>(quad.x - px0);
                    const std::size_t pixOf[4] = {base, base + 1,
                                                  base + tw,
                                                  base + tw + 1};
                    int passing = 0;
                    if (!deferOpaque) {
                        // Select-stores: a failing opaque sample
                        // writes the entry's own bits back, so the
                        // buffer is unchanged exactly as if the store
                        // were skipped — but the depth compare no
                        // longer forks control flow.
                        const bool opaque = !draw.transparent;
                        for (int s = 0; s < 4; ++s) {
                            if (!(quad.mask & (1 << s)))
                                continue;
                            TileDepthEntry &e = tileZ_[pixOf[s]];
                            const float depth = e.stamp == tileEpoch_
                                                    ? e.depth
                                                    : 1.0f;
                            const bool pass = !(quad.z[s] > depth);
                            passing += static_cast<int>(pass);
                            if (opaque) {
                                e.depth = pass ? quad.z[s] : e.depth;
                                e.stamp =
                                    pass ? tileEpoch_ : e.stamp;
                            }
                        }
                    } else {
                        for (int s = 0; s < 4; ++s) {
                            if (!(quad.mask & (1 << s)))
                                continue;
                            const std::size_t pix = pixOf[s];
                            TileDepthEntry &e = tileZ_[pix];
                            const float depth = e.stamp == tileEpoch_
                                                    ? e.depth
                                                    : 1.0f;
                            if (quad.z[s] > depth)
                                continue;
                            ++passing;
                            e.depth = quad.z[s];
                            e.stamp = tileEpoch_;
                            tileOwner_[pix] = di + 1;
                            tileUv_[pix] = quad.uv;
                        }
                    }
                    if (passing == 0) {
                        ++batch_.earlyZKills;
                        return;
                    }
                    if (deferOpaque)
                        return; // shaded after HSR resolve
                    tileDone = std::max(
                        tileDone, shadeQuad(hot, ezDone, quad,
                                            passing));
                });
            tileDone = std::max(tileDone, rastFree);
        }

        if (config_.hsrEnabled) {
            // Deferred shading: only the visible opaque pixels are
            // shaded, grouped per draw (PowerVR-style HSR). Under HSR
            // every opaque depth write also stamped an owner, so the
            // epoch check is exactly the former owner != 0 test; one
            // pass counts pixels and records each draw's first uv (the
            // same one the former ascending per-draw rescan found).
            hsrPixelsPerDraw_.assign(ir.draws.size(), 0);
            hsrUv_.resize(ir.draws.size());
            for (std::size_t pix = 0; pix < tileZ_.size(); ++pix) {
                if (tileZ_[pix].stamp != tileEpoch_)
                    continue;
                const std::uint32_t owner = tileOwner_[pix] - 1;
                if (++hsrPixelsPerDraw_[owner] == 1)
                    hsrUv_[owner] = tileUv_[pix];
            }
            for (std::size_t di = 0; di < hsrPixelsPerDraw_.size();
                 ++di) {
                std::uint64_t pixels = hsrPixelsPerDraw_[di];
                if (!pixels)
                    continue;
                const DrawIR &draw =
                    ir.draws[static_cast<std::uint32_t>(di)];
                const DrawHot drawHot = makeHot(draw);
                QuadFragment quad;
                quad.uv = hsrUv_[di];
                while (pixels) {
                    const int batch = static_cast<int>(
                        std::min<std::uint64_t>(4, pixels));
                    pixels -= static_cast<std::uint64_t>(batch);
                    tileDone = std::max(
                        tileDone,
                        shadeQuad(drawHot, tileDone, quad, batch));
                }
            }
        }

        // Tile flush: one color write per pixel, through the tile
        // cache to DRAM. This is the only framebuffer traffic TBR
        // generates.
        const std::uint64_t flushBytes =
            static_cast<std::uint64_t>(tileBox.width()) *
            static_cast<std::uint64_t>(tileBox.height()) * 4;
        // One access per 64 B line (16 4-byte pixels); each row is
        // contiguous, so it flushes as one batched multi-line walk.
        // Chaining through memAccessLines is identical to the former
        // per-access max(): every walk completes strictly after it
        // starts, so the max was always the new completion time.
        sim::Tick flushT = tileDone;
        const std::uint32_t rowLines = static_cast<std::uint32_t>(
            (tileBox.width() + 15) / 16);
        for (int y = tileBox.y0; y < tileBox.y1; ++y)
            flushT = memAccessLines(
                &tileCache_, flushT,
                binding_->colorAddr(
                    config_.screenWidth,
                    static_cast<std::uint32_t>(tileBox.x0),
                    static_cast<std::uint32_t>(y)),
                rowLines, true, &batch_.rasterDramLines);
        flushSpan.cover(tileDone, flushT);
        batch_.framebufferBytes += flushBytes;
        tileDone = flushT;

        emitStage("rasterizer", rastSpan);
        emitStage("early_z", ezSpan);
        emitStage("fragment_shader", fsSpan);
        emitStage("blend", blendSpan);
        emitStage("tile_flush", flushSpan);
        trace_.emit("raster_tile", obs::TraceCategory::Stage,
                    frameIndex_, tileStart, tileDone,
                    static_cast<std::uint64_t>(tile));

        tileCycles_->sample(static_cast<double>(tileDone - tileStart));
        clock = tileDone;
    }
    rasterScope.reset();

    trace_.emit("raster", obs::TraceCategory::Phase, frameIndex_,
                geomDone, clock);
    trace_.emit("frame", obs::TraceCategory::Frame, frameIndex_, 0,
                clock, ir.primitives());

    lastFrameWall_ = obs::wallSeconds() - wallStart;
    frameWallSeconds_->set(lastFrameWall_);
    return harvest(ir.frameIndex, clock);
}

FrameStats
TimingSimulator::harvest(std::uint32_t frameIndex, sim::Tick cycles)
{
    // Publish every deferred counter before the registry is read —
    // from here on the registry is complete and consistent.
    flushFrameStats();

    frameCycles_->set(static_cast<double>(cycles));
    framesSimulated_->set(static_cast<double>(frameIndex));
    frameStallCycles_->set(
        static_cast<double>(vertexInQueue_.stallCycles() +
                            vertexOutQueue_.stallCycles() +
                            triangleQueue_.stallCycles() +
                            fragmentQueue_.stallCycles() +
                            colorQueue_.stallCycles()));

    // FrameStats is read back out of the registry: the registry is the
    // single source of truth for every counter below.
    FrameStats s;
    s.frameIndex = frameIndex;
    s.cycles = cycles;
    auto count = [this](const char *name) {
        const obs::Stat *stat = registry_.find(name);
        return stat ? static_cast<std::uint64_t>(stat->value()) : 0;
    };
    s.vsInvocations = count("gpu.geometry.vs_invocations");
    s.vsInstructions = count("gpu.geometry.vs_instructions");
    s.fsInvocations = count("gpu.raster.fs_invocations");
    s.fsInstructions = count("gpu.raster.fs_instructions");
    s.primitives = count("gpu.tiling.triangles");
    s.vertexCacheAccesses = count("gpu.vertex_cache.accesses");
    s.textureCacheAccesses = count("gpu.texture_cache.accesses");
    s.tileCacheAccesses = count("gpu.tile_cache.accesses");
    s.l2Accesses = count("gpu.l2.accesses");
    s.dramAccesses = count("gpu.dram.transactions");
    s.dramBytes = count("gpu.dram.bytes");
    s.framebufferBytes = count("gpu.raster.framebuffer_bytes");
    s.stallCycles = count("gpu.frame.stall_cycles");
    s.earlyZKills = count("gpu.raster.earlyz_kills");
    s.energy = energyFromRegistry(registry_);

    if (!statsDump_.empty())
        registry_.dump(std::cerr, statsDump_);
    return s;
}

} // namespace msim::gpusim
