/**
 * @file
 * Cycle-level TBR GPU timing model (Sec. II-B architecture): bounded
 * inter-stage queues modelled as completion-time rings, latency-
 * annotated caches, banked DRAM, per-tile rasterization with early-Z
 * (or deferred HSR). Every stage, queue, cache and the DRAM register
 * their counters in one hierarchical stats registry, and the same
 * counters are what FrameStats is assembled from — there is a single
 * source of truth. Stage/queue/DRAM activity is mirrored into the
 * trace buffer when tracing is enabled.
 *
 * Hot-path engineering (see DESIGN.md §6g): per-access counters batch
 * into integer accumulators and reach the registry in one exact flush
 * per frame; the on-chip tile buffers clear via an epoch stamp
 * instead of a per-tile fill; triangle setup is computed once per
 * triangle and reused across the tiles it was binned into. All of it
 * keeps every statistic bit-identical to the straightforward model —
 * the golden suites under tests/perf enforce that.
 */

#ifndef MSIM_GPUSIM_TIMING_SIMULATOR_HH
#define MSIM_GPUSIM_TIMING_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/frame_stats.hh"
#include "gpusim/functional_simulator.hh"
#include "gpusim/geometry.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/rasterizer.hh"
#include "gpusim/scene_binding.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/fastmem.hh"
#include "mem/mshr.hh"
#include "obs/attrib.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace msim::gpusim
{

/**
 * A bounded pipeline queue, modelled as a ring of slot-free times: a
 * push at time t issues at max(t, time the oldest slot frees), which
 * is exactly the backpressure stall. Counters (pushes, stall cycles,
 * max occupancy proxy) live in the shared registry but accumulate in
 * plain integers between flushStats() calls (one flush per frame);
 * long stalls emit trace events.
 */
class PipeQueue
{
  public:
    PipeQueue(obs::StatsGroup stats, obs::TraceBuffer &trace,
              const char *name, std::uint32_t entries);

    /**
     * Reserve a slot for an item that becomes ready at @p ready.
     * Returns the entry time (>= ready; later when the queue is full
     * — that difference is the backpressure stall). Must be paired
     * with complete(), which records when the consumer frees the slot.
     */
    sim::Tick
    reserve(sim::Tick ready)
    {
        const sim::Tick slotFree = ring_[head_];
        const sim::Tick issue = slotFree > ready ? slotFree : ready;
        if (issue > ready) {
            const sim::Tick stall = issue - ready;
            pendStall_ += stall;
            if (stall >= kTraceStallThreshold)
                trace_->emit(name_, obs::TraceCategory::Queue, frame_,
                             ready, issue, stall);
        }
        ++pendPushes_;
        return issue;
    }

    /** The consumer drains the reserved slot at @p done. */
    void
    complete(sim::Tick done)
    {
        ring_[head_] = done;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    }

    void reset(std::uint32_t frame);

    /** Publish pending counter deltas to the registry (exact). */
    void flushStats();

    std::uint64_t stallCycles() const
    {
        return static_cast<std::uint64_t>(stallCycles_->value()) +
               pendStall_;
    }

  private:
    static constexpr sim::Tick kTraceStallThreshold = 8;

    std::vector<sim::Tick> ring_;
    std::size_t head_ = 0;
    const char *name_;
    std::uint32_t frame_ = 0;
    std::uint64_t pendPushes_ = 0;
    std::uint64_t pendStall_ = 0;
    obs::TraceBuffer *trace_;
    obs::Scalar *pushes_;
    obs::Scalar *stallCycles_;
};

class TimingSimulator
{
  public:
    TimingSimulator(const GpuConfig &config,
                    const SceneBinding &binding,
                    const obs::ObsConfig &obsConfig =
                        obs::ObsConfig::fromEnv());

    /**
     * Simulate one frame from scratch (cold caches, so the result is
     * independent of which frames were simulated before — the property
     * representative-only simulation relies on). Optionally also
     * reports the functional activity of the frame.
     */
    FrameStats simulate(const gfx::FrameTrace &frame,
                        FrameActivity *activity = nullptr);
    FrameStats simulate(const GeometryIR &ir,
                        FrameActivity *activity = nullptr);

    const GpuConfig &config() const { return config_; }
    obs::StatsRegistry &stats() { return registry_; }
    obs::TraceBuffer &trace() { return trace_; }

    /** Host wall-clock seconds the last simulate() call took — what
     *  the resilience watchdog compares against its budget. */
    double lastFrameWallSeconds() const { return lastFrameWall_; }

  private:
    struct StageSpan
    {
        sim::Tick begin = ~sim::Tick{0};
        sim::Tick end = 0;

        void
        cover(sim::Tick b, sim::Tick e)
        {
            if (b < begin)
                begin = b;
            if (e > end)
                end = e;
        }

        bool used() const { return end >= begin; }
    };

    /**
     * One frame's hot-loop counters, batched in integers and flushed
     * onto the (per-frame reset) registry Scalars in harvest(). The
     * single integer-valued add per Scalar is exact below 2^53, so
     * the registry totals are bit-identical to per-event increments.
     */
    struct FrameBatch
    {
        std::uint64_t vsInvocations = 0;
        std::uint64_t vsInstructions = 0;
        std::uint64_t geomDramLines = 0;
        std::uint64_t triangles = 0;
        std::uint64_t tileEntries = 0;
        std::uint64_t tileListBytes = 0;
        std::uint64_t tilingDramLines = 0;
        std::uint64_t quads = 0;
        std::uint64_t earlyZKills = 0;
        std::uint64_t fsInvocations = 0;
        std::uint64_t fsInstructions = 0;
        std::uint64_t blendedPixels = 0;
        std::uint64_t framebufferBytes = 0;
        std::uint64_t rasterDramLines = 0;
    };

    /**
     * Charge an access through @p l1 (may be null for L2-direct
     * streams) -> L2 -> DRAM; returns the completion time.
     * @p dramLines counts lines that reached DRAM for this requester
     * (a FrameBatch field), which is what attributes memory energy to
     * pipeline phases. Inline: every memory reference of a frame
     * funnels through here.
     */
    sim::Tick
    memAccess(mem::Cache *l1, sim::Tick now, sim::Addr addr,
              bool write, std::uint64_t *dramLines)
    {
        // Host-cost attribution of the whole walk (one predictable
        // branch when MEGSIM_ATTRIB is off).
        obs::AttribScope memScope(obs::HostDomain::MemWalk);
        return memWalk(l1, now, addr, write, dramLines);
    }

    /** memAccess() minus the attribution scope — the body shared by
     *  the single-access and batched entry points. */
    sim::Tick
    memWalk(mem::Cache *l1, sim::Tick now, sim::Addr addr,
            bool write, std::uint64_t *dramLines)
    {
        sim::Tick t = now;
        if (l1) {
            const mem::CacheAccess a = l1->accessDeferred(addr, write);
            t += l1->config().hitLatency;
            if (a.writeback) {
                const mem::CacheAccess wb =
                    l2_.accessDeferred(a.victimLine, true);
                if (wb.writeback)
                    dram_.accessDeferred(t, wb.victimLine, true);
            }
            if (a.hit)
                return t;
            // Fill side of the L1 miss: if the MSHR still holds this
            // line's walk and the L2 state stamp matches, the probe
            // below would provably be an MRU-way read hit — replay
            // its latency and counters without performing it (see
            // mem/mshr.hh for why this is bit-identical).
            const std::uint64_t l2Line = l2_.lineOf(addr);
            if (l2Mshr_.tryMerge(l2Line, l2_.stateTick())) {
                l2_.noteMergedHit();
                return t + l2_.config().hitLatency;
            }
            const mem::CacheAccess l2a =
                l2_.accessDeferred(addr, false); // fills read from L2
            t += l2_.config().hitLatency;
            if (l2a.writeback)
                dram_.accessDeferred(t, l2a.victimLine, true);
            if (!l2a.hit) {
                const sim::Tick done =
                    dram_.accessDeferred(t, addr, false);
                ++*dramLines;
                trace_.emit("dram", obs::TraceCategory::Dram,
                            frameIndex_, t, done, addr);
                t = done;
            }
            // Record the completed walk: the line is resident and MRU
            // at the current stamp, so repeat fills can merge onto it.
            l2Mshr_.noteWalk(l2Line, l2_.stateTick());
            return t;
        }
        const mem::CacheAccess l2a = l2_.accessDeferred(addr, write);
        t += l2_.config().hitLatency;
        if (l2a.writeback)
            dram_.accessDeferred(t, l2a.victimLine, true);
        if (l2a.hit)
            return t;
        const sim::Tick done = dram_.accessDeferred(t, addr, write);
        ++*dramLines;
        trace_.emit("dram", obs::TraceCategory::Dram, frameIndex_, t,
                    done, addr);
        return done;
    }

    /**
     * Batched multi-line walk: identical state, counter and timing
     * effects to @p lines consecutive line-stride memAccess() calls
     * with each walk starting when the previous one completed, but
     * with the attribution scope and per-call overhead hoisted out of
     * the loop. Returns the last line's completion time.
     */
    sim::Tick
    memAccessLines(mem::Cache *l1, sim::Tick now, sim::Addr addr,
                   std::uint32_t lines, bool write,
                   std::uint64_t *dramLines)
    {
        obs::AttribScope memScope(obs::HostDomain::MemWalk);
        const sim::Addr step = l2_.config().lineBytes;
        sim::Tick t = now;
        for (std::uint32_t i = 0; i < lines; ++i, addr += step)
            t = memWalk(l1, t, addr, write, dramLines);
        return t;
    }

    /**
     * The per-sample texture walk: exact by default; under --fast-mem
     * the calibration prefix and every probeEvery-th walk stay exact
     * (and feed the fit), the rest return the fitted mean latency
     * without touching the hierarchy. Counter deltas of the modeled
     * walks are folded in flushFrameStats() from the observed rates.
     */
    sim::Tick
    textureAccess(mem::Cache &tc, sim::Tick now, sim::Addr addr)
    {
        if (!fastMemOn_)
            return memAccess(&tc, now, addr, false,
                             &batch_.rasterDramLines);
        if (fastMem_.wantExact()) {
            const std::uint64_t l1Hits0 = tc.hits();
            const std::uint64_t l2Hits0 = l2_.hits();
            const std::uint64_t dram0 = batch_.rasterDramLines;
            const sim::Tick done = memAccess(
                &tc, now, addr, false, &batch_.rasterDramLines);
            fastMem_.observe(done - now, tc.hits() != l1Hits0,
                             l2_.hits() != l2Hits0,
                             batch_.rasterDramLines != dram0);
            return done;
        }
        fastMem_.noteModeled();
        return now + fastMem_.modeledLatency();
    }

    /** Flush every deferred counter (batch, caches, DRAM, queues). */
    void flushFrameStats();

    FrameStats harvest(std::uint32_t frameIndex, sim::Tick cycles);

    GpuConfig config_;
    const SceneBinding *binding_;
    GeometryProcessor geometry_;

    obs::StatsRegistry registry_;
    obs::TraceBuffer trace_;

    mem::Cache vertexCache_;
    std::vector<mem::Cache> textureCaches_;
    mem::Cache tileCache_;
    mem::Cache l2_;
    mem::Dram dram_;
    /** Walk records in front of the L2; see memWalk(). */
    mem::MshrFile l2Mshr_;
    /** --fast-mem model state (per frame); see textureAccess(). */
    mem::FastMemModel fastMem_;
    bool fastMemOn_ = false;

    PipeQueue vertexInQueue_;
    PipeQueue vertexOutQueue_;
    PipeQueue triangleQueue_;
    PipeQueue fragmentQueue_;
    PipeQueue colorQueue_;

    // Programmable / fixed-function unit availability rings.
    std::vector<sim::Tick> vertexProcFree_;
    std::vector<sim::Tick> fragmentProcFree_;

    /**
     * One on-chip depth-buffer pixel: depth plus the epoch stamp that
     * validates it, fused into 8 bytes so the early-Z test is a single
     * load. An entry is live only when its stamp matches tileEpoch_,
     * so "clearing" a tile is one counter increment instead of a fill
     * (stale entries read as depth 1.0f exactly as a fill would
     * produce). The 32-bit epoch wraps after 2^32 tiles; the wrap
     * handler re-zeroes the stamps so no stale entry can alias.
     */
    struct TileDepthEntry
    {
        float depth;
        std::uint32_t stamp;
    };

    // Per-frame working state.
    std::vector<TileDepthEntry> tileZ_;
    std::vector<std::uint32_t> tileOwner_; // HSR: winning draw + 1
    std::vector<util::Vec2f> tileUv_;      // HSR: winning sample uv
    std::uint32_t tileEpoch_ = 0;
    FrameBatch batch_;
    GeometryIR ir_; // reused by simulate(FrameTrace) across frames
    // Per-tile triangle lists, cleared (capacity kept) every frame.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        bins_;
    // Lazily built per-triangle rasterizer setups, shared by every
    // tile a triangle was binned into. Indexed drawTriOffset_[di]+ti.
    std::vector<TriangleSetup> setups_;
    std::vector<std::uint8_t> setupDone_;
    std::vector<std::size_t> drawTriOffset_;
    // HSR resolve scratch (per tile, only when hsrEnabled).
    std::vector<std::uint64_t> hsrPixelsPerDraw_;
    std::vector<util::Vec2f> hsrUv_;
    std::uint32_t frameIndex_ = 0;
    std::string statsDump_; // per-frame registry dump glob

    // Stage counters (geometry).
    obs::Scalar *vsInvocations_;
    obs::Scalar *vsInstructions_;
    obs::Scalar *geomDramLines_;
    // Tiling.
    obs::Scalar *trianglesBinned_;
    obs::Scalar *tileEntries_;
    obs::Scalar *tileListBytes_;
    obs::Scalar *tilingDramLines_;
    // Raster.
    obs::Scalar *quads_;
    obs::Scalar *earlyZKills_;
    obs::Scalar *fsInvocations_;
    obs::Scalar *fsInstructions_;
    obs::Scalar *blendedPixels_;
    obs::Scalar *framebufferBytes_;
    obs::Scalar *rasterDramLines_;
    obs::Distribution *tileCycles_;
    // Frame.
    obs::Scalar *frameCycles_;
    obs::Scalar *frameStallCycles_;
    obs::Scalar *framesSimulated_;
    obs::Scalar *frameWallSeconds_;
    double lastFrameWall_ = 0.0;

    // Column maps for FrameActivity output.
    std::vector<std::uint32_t> shaderColumn_;
    std::size_t numVs_ = 0;
    std::size_t numFs_ = 0;
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_TIMING_SIMULATOR_HH
