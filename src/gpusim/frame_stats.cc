#include "gpusim/frame_stats.hh"

#include "sim/logging.hh"

namespace msim::gpusim
{

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Cycles: return "cycles";
      case Metric::DramAccesses: return "dram accesses";
      case Metric::L2Accesses: return "l2 accesses";
      case Metric::TileCacheAccesses: return "tile cache accesses";
    }
    return "?";
}

double
metricValue(const FrameStats &stats, Metric metric)
{
    switch (metric) {
      case Metric::Cycles:
        return static_cast<double>(stats.cycles);
      case Metric::DramAccesses:
        return static_cast<double>(stats.dramAccesses);
      case Metric::L2Accesses:
        return static_cast<double>(stats.l2Accesses);
      case Metric::TileCacheAccesses:
        return static_cast<double>(stats.tileCacheAccesses);
    }
    return 0.0;
}

FrameStats &
FrameStats::operator+=(const FrameStats &o)
{
    cycles += o.cycles;
    vsInvocations += o.vsInvocations;
    vsInstructions += o.vsInstructions;
    fsInvocations += o.fsInvocations;
    fsInstructions += o.fsInstructions;
    primitives += o.primitives;
    vertexCacheAccesses += o.vertexCacheAccesses;
    textureCacheAccesses += o.textureCacheAccesses;
    tileCacheAccesses += o.tileCacheAccesses;
    l2Accesses += o.l2Accesses;
    dramAccesses += o.dramAccesses;
    dramBytes += o.dramBytes;
    framebufferBytes += o.framebufferBytes;
    stallCycles += o.stallCycles;
    earlyZKills += o.earlyZKills;
    energy += o.energy;
    return *this;
}

std::vector<std::string>
FrameStats::csvHeader()
{
    return {"frame",        "cycles",       "vs_inv",
            "vs_instr",     "fs_inv",       "fs_instr",
            "prims",        "vertex_cache", "texture_cache",
            "tile_cache",   "l2",           "dram",
            "dram_bytes",   "fb_bytes",     "stall_cycles",
            "earlyz_kills", "e_geometry",   "e_tiling",
            "e_raster"};
}

std::vector<double>
FrameStats::toCsvRow() const
{
    return {static_cast<double>(frameIndex),
            static_cast<double>(cycles),
            static_cast<double>(vsInvocations),
            static_cast<double>(vsInstructions),
            static_cast<double>(fsInvocations),
            static_cast<double>(fsInstructions),
            static_cast<double>(primitives),
            static_cast<double>(vertexCacheAccesses),
            static_cast<double>(textureCacheAccesses),
            static_cast<double>(tileCacheAccesses),
            static_cast<double>(l2Accesses),
            static_cast<double>(dramAccesses),
            static_cast<double>(dramBytes),
            static_cast<double>(framebufferBytes),
            static_cast<double>(stallCycles),
            static_cast<double>(earlyZKills),
            energy.geometryNj,
            energy.tilingNj,
            energy.rasterNj};
}

FrameStats
FrameStats::fromCsvRow(const std::vector<double> &row)
{
    if (row.size() != csvHeader().size())
        sim::fatal("frame-stats row has %zu columns, expected %zu",
                   row.size(), csvHeader().size());
    FrameStats s;
    std::size_t i = 0;
    auto u64 = [&] { return static_cast<std::uint64_t>(row[i++]); };
    s.frameIndex = u64();
    s.cycles = u64();
    s.vsInvocations = u64();
    s.vsInstructions = u64();
    s.fsInvocations = u64();
    s.fsInstructions = u64();
    s.primitives = u64();
    s.vertexCacheAccesses = u64();
    s.textureCacheAccesses = u64();
    s.tileCacheAccesses = u64();
    s.l2Accesses = u64();
    s.dramAccesses = u64();
    s.dramBytes = u64();
    s.framebufferBytes = u64();
    s.stallCycles = u64();
    s.earlyZKills = u64();
    s.energy.geometryNj = row[i++];
    s.energy.tilingNj = row[i++];
    s.energy.rasterNj = row[i++];
    return s;
}

} // namespace msim::gpusim
