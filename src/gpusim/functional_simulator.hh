/**
 * @file
 * Functional simulator: renders frames with no timing model and
 * collects the architecture-independent activity counts MEGsim builds
 * its characteristic vectors from (per-shader invocation counts and
 * the primitive count, Sec. III-B).
 */

#ifndef MSIM_GPUSIM_FUNCTIONAL_SIMULATOR_HH
#define MSIM_GPUSIM_FUNCTIONAL_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "gpusim/geometry.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/scene_binding.hh"

namespace msim::gpusim
{

/** Architecture-independent per-frame activity. */
struct FrameActivity
{
    std::uint32_t frameIndex = 0;
    std::uint64_t primitives = 0;
    std::uint64_t verticesShaded = 0;
    std::uint64_t fragmentsShaded = 0;
    // Invocations per shader, indexed by the shader's position among
    // shaders of its kind (SceneTrace column order).
    std::vector<std::uint64_t> vsCounts;
    std::vector<std::uint64_t> fsCounts;
};

class FunctionalSimulator
{
  public:
    FunctionalSimulator(const GpuConfig &config,
                        const SceneBinding &binding);

    FrameActivity simulate(const gfx::FrameTrace &frame);
    FrameActivity simulate(const GeometryIR &ir);

  private:
    GpuConfig config_;
    const SceneBinding *binding_;
    GeometryProcessor geometry_;
    std::vector<std::uint32_t> shaderColumn_; // global id -> column
    std::size_t numVs_ = 0;
    std::size_t numFs_ = 0;
    // Full-screen z buffer, cleared per frame by advancing the epoch:
    // a pixel whose stamp is stale reads as the clear value 1.0f, so
    // no per-frame fill of the whole screen is needed.
    std::vector<float> depth_;
    std::vector<std::uint64_t> depthStamp_;
    std::uint64_t depthEpoch_ = 0;
    GeometryIR ir_; // reused across simulate(FrameTrace) calls
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_FUNCTIONAL_SIMULATOR_HH
