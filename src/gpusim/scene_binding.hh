/**
 * @file
 * SceneBinding lays a SceneTrace out in the simulated physical address
 * space: vertex buffers, texture mips and the framebuffer get disjoint
 * regions, so both simulators and the IMR model generate consistent
 * memory-reference streams from the same scene.
 */

#ifndef MSIM_GPUSIM_SCENE_BINDING_HH
#define MSIM_GPUSIM_SCENE_BINDING_HH

#include <cstdint>
#include <vector>

#include "gfx/trace.hh"
#include "sim/types.hh"

namespace msim::gpusim
{

class SceneBinding
{
  public:
    static constexpr std::uint32_t kVertexBytes = 32;
    static constexpr std::uint32_t kTileListEntryBytes = 16;

    explicit SceneBinding(const gfx::SceneTrace &scene);

    const gfx::SceneTrace &scene() const { return *scene_; }

    sim::Addr
    vertexAddr(std::uint32_t meshId, std::uint32_t vertex) const
    {
        return meshBase_[meshId] +
               static_cast<sim::Addr>(vertex) * kVertexBytes;
    }

    /** Address of the texel nearest to (u, v) in texture 0-level. */
    sim::Addr texelAddr(std::int32_t textureId, float u, float v) const;

    /** Tile-list scratch region (binning output), per tile. */
    sim::Addr
    tileListAddr(std::uint32_t tile, std::uint32_t entry) const
    {
        return tileListBase_ + (static_cast<sim::Addr>(tile) * 512 +
                                entry % 512) *
                                   kTileListEntryBytes;
    }

    sim::Addr framebufferBase() const { return framebufferBase_; }

    /** Color address of pixel (x, y); 4 bytes per pixel. */
    sim::Addr
    colorAddr(std::uint32_t width, std::uint32_t x,
              std::uint32_t y) const
    {
        return framebufferBase_ +
               (static_cast<sim::Addr>(y) * width + x) * 4;
    }

    /** Depth address of pixel (x, y) (IMR only; TBR keeps z on-chip). */
    sim::Addr
    depthAddr(std::uint32_t width, std::uint32_t x,
              std::uint32_t y) const
    {
        return depthBase_ +
               (static_cast<sim::Addr>(y) * width + x) * 4;
    }

  private:
    const gfx::SceneTrace *scene_;
    std::vector<sim::Addr> meshBase_;
    std::vector<sim::Addr> textureBase_;
    sim::Addr tileListBase_ = 0;
    sim::Addr framebufferBase_ = 0;
    sim::Addr depthBase_ = 0;
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_SCENE_BINDING_HH
