/**
 * @file
 * SceneBinding lays a SceneTrace out in the simulated physical address
 * space: vertex buffers, texture mips and the framebuffer get disjoint
 * regions, so both simulators and the IMR model generate consistent
 * memory-reference streams from the same scene.
 */

#ifndef MSIM_GPUSIM_SCENE_BINDING_HH
#define MSIM_GPUSIM_SCENE_BINDING_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gfx/trace.hh"
#include "sim/types.hh"

namespace msim::gpusim
{

class SceneBinding
{
  public:
    static constexpr std::uint32_t kVertexBytes = 32;
    static constexpr std::uint32_t kTileListEntryBytes = 16;

    explicit SceneBinding(const gfx::SceneTrace &scene);

    const gfx::SceneTrace &scene() const { return *scene_; }

    sim::Addr
    vertexAddr(std::uint32_t meshId, std::uint32_t vertex) const
    {
        return meshBase_[meshId] +
               static_cast<sim::Addr>(vertex) * kVertexBytes;
    }

    /**
     * A draw's texture, resolved once: base address and the dimension
     * constants texelAddr() needs, so per-sample addressing is pure
     * arithmetic with no pointer chase through the scene. The float
     * dimensions are the exact casts the per-sample path computed.
     */
    struct TextureRef
    {
        sim::Addr base = 0;
        float widthF = 0.0f;
        float heightF = 0.0f;
        std::uint32_t widthMinus1 = 0;
        std::uint32_t heightMinus1 = 0;
        std::uint32_t width = 0;
        std::uint32_t bytesPerTexel = 0;
    };

    /** Resolve @p textureId (>= 0) for repeated texelAddr() calls. */
    TextureRef
    textureRef(std::int32_t textureId) const
    {
        const gfx::Texture &tex =
            scene_->textures[static_cast<std::size_t>(textureId)];
        TextureRef ref;
        ref.base = textureBase_[static_cast<std::size_t>(textureId)];
        ref.widthF = static_cast<float>(tex.width);
        ref.heightF = static_cast<float>(tex.height);
        ref.widthMinus1 = tex.width - 1;
        ref.heightMinus1 = tex.height - 1;
        ref.width = tex.width;
        ref.bytesPerTexel = tex.bytesPerTexel;
        return ref;
    }

    /**
     * Address of the texel nearest to (u, v) in the referenced
     * texture's 0-level. Inline: this sits on the per-sample hot path
     * of both pipelines.
     */
    static sim::Addr
    texelAddr(const TextureRef &tex, float u, float v)
    {
        // Wrap-around addressing, nearest texel.
        const float fu = u - std::floor(u);
        const float fv = v - std::floor(v);
        const auto tx = std::min<std::uint32_t>(
            tex.widthMinus1,
            static_cast<std::uint32_t>(fu * tex.widthF));
        const auto ty = std::min<std::uint32_t>(
            tex.heightMinus1,
            static_cast<std::uint32_t>(fv * tex.heightF));
        return tex.base +
               (static_cast<sim::Addr>(ty) * tex.width + tx) *
                   tex.bytesPerTexel;
    }

    sim::Addr
    texelAddr(std::int32_t textureId, float u, float v) const
    {
        if (textureId < 0)
            return tileListBase_; // untextured draws never call this
        return texelAddr(textureRef(textureId), u, v);
    }

    /** Tile-list scratch region (binning output), per tile. */
    sim::Addr
    tileListAddr(std::uint32_t tile, std::uint32_t entry) const
    {
        return tileListBase_ + (static_cast<sim::Addr>(tile) * 512 +
                                entry % 512) *
                                   kTileListEntryBytes;
    }

    sim::Addr framebufferBase() const { return framebufferBase_; }

    /** Color address of pixel (x, y); 4 bytes per pixel. */
    sim::Addr
    colorAddr(std::uint32_t width, std::uint32_t x,
              std::uint32_t y) const
    {
        return framebufferBase_ +
               (static_cast<sim::Addr>(y) * width + x) * 4;
    }

    /** Depth address of pixel (x, y) (IMR only; TBR keeps z on-chip). */
    sim::Addr
    depthAddr(std::uint32_t width, std::uint32_t x,
              std::uint32_t y) const
    {
        return depthBase_ +
               (static_cast<sim::Addr>(y) * width + x) * 4;
    }

  private:
    const gfx::SceneTrace *scene_;
    std::vector<sim::Addr> meshBase_;
    std::vector<sim::Addr> textureBase_;
    sim::Addr tileListBase_ = 0;
    sim::Addr framebufferBase_ = 0;
    sim::Addr depthBase_ = 0;
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_SCENE_BINDING_HH
