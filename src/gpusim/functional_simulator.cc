#include "gpusim/functional_simulator.hh"

#include "gpusim/rasterizer.hh"
#include "obs/attrib.hh"

namespace msim::gpusim
{

FunctionalSimulator::FunctionalSimulator(const GpuConfig &config,
                                         const SceneBinding &binding)
    : config_(config), binding_(&binding),
      geometry_(config, binding),
      depth_(static_cast<std::size_t>(config.screenWidth) *
             config.screenHeight),
      depthStamp_(depth_.size(), 0)
{
    const gfx::SceneTrace &scene = binding.scene();
    shaderColumn_.resize(scene.shaders.size(), 0);
    for (const gfx::ShaderProgram &s : scene.shaders) {
        if (s.kind == gfx::ShaderKind::Vertex)
            shaderColumn_[s.id] =
                static_cast<std::uint32_t>(numVs_++);
        else
            shaderColumn_[s.id] =
                static_cast<std::uint32_t>(numFs_++);
    }
}

FrameActivity
FunctionalSimulator::simulate(const gfx::FrameTrace &frame)
{
    {
        obs::AttribScope geomScope(obs::HostDomain::Geometry);
        geometry_.processInto(frame, ir_);
    }
    return simulate(ir_);
}

FrameActivity
FunctionalSimulator::simulate(const GeometryIR &ir)
{
    // The functional walk is coverage rasterization + depth test.
    obs::AttribScope rasterScope(obs::HostDomain::Raster);
    FrameActivity act;
    act.frameIndex = ir.frameIndex;
    act.vsCounts.assign(numVs_, 0);
    act.fsCounts.assign(numFs_, 0);

    // Clear the z buffer by advancing the epoch (stale stamps read as
    // the clear value 1.0f) — no full-screen fill per frame.
    ++depthEpoch_;
    const int width = static_cast<int>(config_.screenWidth);
    const util::BBox2i screen{0, 0, width,
                              static_cast<int>(config_.screenHeight)};

    for (const DrawIR &draw : ir.draws) {
        act.verticesShaded += draw.vertexCount;
        act.vsCounts[shaderColumn_[draw.vsId]] += draw.vertexCount;
        act.primitives += draw.triangles.size();

        std::uint64_t shaded = 0;
        for (const ScreenTriangle &tri : draw.triangles) {
            rasterizeTriangleInTile(
                tri, screen, [&](const QuadFragment &quad) {
                    for (int s = 0; s < 4; ++s) {
                        if (!(quad.mask & (1 << s)))
                            continue;
                        const std::size_t pix =
                            static_cast<std::size_t>(
                                quad.y + (s >> 1)) *
                                static_cast<std::size_t>(width) +
                            static_cast<std::size_t>(quad.x +
                                                     (s & 1));
                        const float d =
                            depthStamp_[pix] == depthEpoch_
                                ? depth_[pix]
                                : 1.0f;
                        if (draw.transparent) {
                            // Blended: shaded, no depth write.
                            if (quad.z[s] <= d)
                                ++shaded;
                        } else if (quad.z[s] <= d) {
                            depth_[pix] = quad.z[s];
                            depthStamp_[pix] = depthEpoch_;
                            ++shaded;
                        }
                    }
                });
        }
        act.fragmentsShaded += shaded;
        act.fsCounts[shaderColumn_[draw.fsId]] += shaded;
    }
    return act;
}

} // namespace msim::gpusim
