/**
 * @file
 * Per-phase energy model (Fig. 4). Event energies are charged against
 * the stats-registry counters the timing simulator maintains — the
 * same counters FrameStats reports — so the power breakdown, the
 * estimator and `megsim-cli stats` can never disagree about activity.
 */

#ifndef MSIM_GPUSIM_POWER_HH
#define MSIM_GPUSIM_POWER_HH

#include <vector>

#include "gpusim/frame_stats.hh"
#include "obs/stats.hh"

namespace msim::gpusim
{

/** Energy per event, nanojoules (65 nm-class, model calibration). */
struct EnergyModel
{
    double vsInstructionNj = 2.0;
    double vertexCacheAccessNj = 0.4;
    double tileEntryNj = 20.0;
    double tileListByteNj = 1.0;
    double fsInstructionNj = 0.25;
    double textureCacheAccessNj = 0.10;
    double quadRasterNj = 0.05;
    double blendPixelNj = 0.04;
    double tileCacheAccessNj = 0.10;
    double dramLineNj = 12.0;
};

/**
 * Read a frame's per-phase energy out of the registry the timing
 * simulator populates.
 */
EnergyBreakdown energyFromRegistry(const obs::StatsRegistry &registry,
                                   const EnergyModel &model =
                                       EnergyModel{});

/** Fractions of total dissipated energy per phase (Fig. 4). */
struct PowerBreakdown
{
    double geometryFraction = 0.0;
    double tilingFraction = 0.0;
    double rasterFraction = 0.0;
    double totalNj = 0.0;
};

PowerBreakdown powerBreakdown(const std::vector<FrameStats> &frames);

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_POWER_HH
