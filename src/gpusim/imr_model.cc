#include "gpusim/imr_model.hh"

#include "gpusim/rasterizer.hh"

namespace msim::gpusim
{

ImrMemoryModel::ImrMemoryModel(const GpuConfig &config,
                               sim::Addr framebufferBase)
    : config_(config), framebufferBase_(framebufferBase),
      depthBase_(framebufferBase +
                 static_cast<sim::Addr>(config.screenWidth) *
                     config.screenHeight * 4),
      // The IMR design spends the tile-buffer SRAM budget on a
      // framebuffer cache instead.
      framebufferCache_(config.tileCache),
      depth_(static_cast<std::size_t>(config.screenWidth) *
             config.screenHeight)
{}

ImrTraffic
ImrMemoryModel::frameTraffic(const GeometryIR &ir)
{
    const int width = static_cast<int>(config_.screenWidth);
    const util::BBox2i screen{0, 0, width,
                              static_cast<int>(config_.screenHeight)};
    std::fill(depth_.begin(), depth_.end(), 1.0f);
    framebufferCache_.invalidate();

    const std::uint32_t line = framebufferCache_.config().lineBytes;
    ImrTraffic traffic;
    std::uint64_t dramLines = 0;

    auto touch = [&](sim::Addr addr, bool write) {
        const mem::CacheAccess a =
            framebufferCache_.access(addr, write);
        if (!a.hit)
            ++dramLines;
        if (a.writeback)
            ++dramLines;
    };

    for (const DrawIR &draw : ir.draws) {
        for (const ScreenTriangle &tri : draw.triangles) {
            rasterizeTriangleInTile(
                tri, screen, [&](const QuadFragment &quad) {
                    for (int s = 0; s < 4; ++s) {
                        if (!(quad.mask & (1 << s)))
                            continue;
                        const int x = quad.x + (s & 1);
                        const int y = quad.y + (s >> 1);
                        const std::size_t pix =
                            static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(width) +
                            static_cast<std::size_t>(x);
                        const sim::Addr off =
                            static_cast<sim::Addr>(pix) * 4;

                        // Off-chip depth test (read), then write on
                        // pass for opaque draws.
                        touch(depthBase_ + off, false);
                        ++traffic.depthReads;
                        if (quad.z[s] > depth_[pix])
                            continue;
                        if (!draw.transparent) {
                            depth_[pix] = quad.z[s];
                            touch(depthBase_ + off, true);
                        }
                        // Shade + color write (overdraw pays again).
                        ++traffic.fragmentsShaded;
                        touch(framebufferBase_ + off, true);
                        ++traffic.colorWrites;
                    }
                });
        }
    }
    traffic.dramBytes = dramLines * line;
    return traffic;
}

} // namespace msim::gpusim
