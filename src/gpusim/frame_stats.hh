/**
 * @file
 * Per-frame simulation results: the performance counters MEGsim
 * estimates (cycles, memory-hierarchy accesses), the activity counts
 * behind them and the per-phase energy breakdown. FrameStats is what
 * the ground-truth cache serializes, so its CSV schema is versioned.
 */

#ifndef MSIM_GPUSIM_FRAME_STATS_HH
#define MSIM_GPUSIM_FRAME_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace msim::gpusim
{

/** The four key metrics of the paper's Fig. 7. */
enum class Metric { Cycles, DramAccesses, L2Accesses, TileCacheAccesses };

const char *metricName(Metric metric);

/** Energy per pipeline phase, in nanojoules (Fig. 4 grouping). */
struct EnergyBreakdown
{
    double geometryNj = 0.0;
    double tilingNj = 0.0;
    double rasterNj = 0.0;

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        geometryNj += o.geometryNj;
        tilingNj += o.tilingNj;
        rasterNj += o.rasterNj;
        return *this;
    }

    double totalNj() const { return geometryNj + tilingNj + rasterNj; }
};

struct FrameStats
{
    std::uint64_t frameIndex = 0;
    std::uint64_t cycles = 0;

    // Shading activity.
    std::uint64_t vsInvocations = 0;
    std::uint64_t vsInstructions = 0;
    std::uint64_t fsInvocations = 0;
    std::uint64_t fsInstructions = 0;
    std::uint64_t primitives = 0;

    // Memory hierarchy.
    std::uint64_t vertexCacheAccesses = 0;
    std::uint64_t textureCacheAccesses = 0;
    std::uint64_t tileCacheAccesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t framebufferBytes = 0; // tile-flush share of dramBytes

    // Pipeline behaviour.
    std::uint64_t stallCycles = 0;
    std::uint64_t earlyZKills = 0;

    EnergyBreakdown energy;

    std::uint64_t
    instructions() const
    {
        return vsInstructions + fsInstructions;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions()) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    FrameStats &operator+=(const FrameStats &o);

    /** CSV schema for the on-disk ground-truth cache. */
    static std::vector<std::string> csvHeader();
    std::vector<double> toCsvRow() const;
    static FrameStats fromCsvRow(const std::vector<double> &row);
};

double metricValue(const FrameStats &stats, Metric metric);

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_FRAME_STATS_HH
