/**
 * @file
 * GPU configuration: the Table I parameters of the modelled
 * Mali-450-like TBR GPU, plus the scaled evaluation profile this
 * repository uses so full ground-truth simulation stays affordable.
 */

#ifndef MSIM_GPUSIM_GPU_CONFIG_HH
#define MSIM_GPUSIM_GPU_CONFIG_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/fastmem.hh"
#include "mem/mshr.hh"

namespace msim::gpusim
{

struct MemoryConfig
{
    mem::CacheConfig l2;
    mem::DramConfig dram;
    /**
     * MSHR file in front of the L2 merging redundant fill-side walks
     * (gpgpusim texture-FIFO style, `F:128:4`). Result-neutral by
     * construction — merged probes are provably identical replays
     * (see mem/mshr.hh) — so it is deliberately EXCLUDED from
     * fingerprint(): toggling it must not invalidate frame caches.
     */
    mem::MshrConfig l2Mshr{mem::MshrConfig::Policy::TexFifo, 128, 4};
};

struct GpuConfig
{
    // Baseline GPU.
    std::uint32_t frequencyMhz = 600;
    double voltage = 1.1;
    std::uint32_t technologyNm = 65;
    std::uint32_t screenWidth = 1440;
    std::uint32_t screenHeight = 720;
    std::uint32_t tileWidth = 32;
    std::uint32_t tileHeight = 32;

    // Queues (entries, bytes/entry).
    std::uint32_t vertexInQueueEntries = 16;
    std::uint32_t vertexQueueEntryBytes = 136;
    std::uint32_t triangleQueueEntries = 16;
    std::uint32_t triangleQueueEntryBytes = 388;
    std::uint32_t fragmentQueueEntries = 64;
    std::uint32_t fragmentQueueEntryBytes = 233;
    std::uint32_t colorQueueEntries = 64;
    std::uint32_t colorQueueEntryBytes = 24;

    // Caches (64 B lines, 2-way) + memory.
    mem::CacheConfig vertexCache{4 * 1024, 64, 2, 1, 1, false};
    mem::CacheConfig textureCache{8 * 1024, 64, 2, 2, 1, false};
    mem::CacheConfig tileCache{32 * 1024, 64, 2, 2, 1, false};
    std::uint32_t numTextureCaches = 4;
    MemoryConfig memory{
        mem::CacheConfig{256 * 1024, 64, 2, 18, 8, false},
        mem::DramConfig{}};

    // Non-programmable stages.
    std::uint32_t paVerticesPerCycle = 1;
    std::uint32_t rastAttributesPerCycle = 4;
    std::uint32_t earlyZInflightQuads = 8;

    // Programmable stages.
    std::uint32_t numVertexProcessors = 4;
    std::uint32_t numFragmentProcessors = 4;

    // Visibility policy: false = TBR with early-Z, true = TBDR with
    // deferred Hidden Surface Removal (Sec. IV-A ablation).
    bool hsrEnabled = false;

    /**
     * Opt-in calibrated sampled cache model replacing most texture
     * walks (`--fast-mem` / MEGSIM_FAST_MEM). Changes results, so it
     * IS mixed into fingerprint() — but only when enabled, keeping
     * every existing exact-mode fingerprint stable.
     */
    mem::FastMemConfig fastMem;

    /** The paper's Table I configuration. */
    static GpuConfig baseline();

    /**
     * The scaled profile the evaluation benches run: a 192x96 screen
     * with proportionally smaller caches, so ground-truth simulation
     * of every frame of every benchmark is tractable.
     */
    static GpuConfig evaluationScaled();

    /** Hash of all timing-relevant fields (keys the frame cache). */
    std::uint64_t fingerprint() const;

    std::uint32_t tilesX() const
    {
        return (screenWidth + tileWidth - 1) / tileWidth;
    }
    std::uint32_t tilesY() const
    {
        return (screenHeight + tileHeight - 1) / tileHeight;
    }
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_GPU_CONFIG_HH
