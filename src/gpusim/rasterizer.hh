/**
 * @file
 * Edge-function rasterizer emitting 2x2 quad-fragments, the unit both
 * pipelines shade in. Header-only so the per-quad callback inlines in
 * the simulator hot loops.
 */

#ifndef MSIM_GPUSIM_RASTERIZER_HH
#define MSIM_GPUSIM_RASTERIZER_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/geom.hh"

namespace msim::gpusim
{

/** A screen-space triangle after geometry processing. */
struct ScreenTriangle
{
    util::Vec2f v[3];   // pixel coordinates
    float z[3] = {0.5f, 0.5f, 0.5f};
    util::Vec2f uv[3];

    util::BBox2i
    bounds() const
    {
        const float x0 = std::min({v[0].x, v[1].x, v[2].x});
        const float y0 = std::min({v[0].y, v[1].y, v[2].y});
        const float x1 = std::max({v[0].x, v[1].x, v[2].x});
        const float y1 = std::max({v[0].y, v[1].y, v[2].y});
        return util::BBox2i{static_cast<int>(std::floor(x0)),
                            static_cast<int>(std::floor(y0)),
                            static_cast<int>(std::floor(x1)) + 1,
                            static_cast<int>(std::floor(y1)) + 1};
    }

    /** Twice the signed area; 0 = degenerate, <0 = back-facing. */
    float
    area2() const
    {
        return (v[1].x - v[0].x) * (v[2].y - v[0].y) -
               (v[2].x - v[0].x) * (v[1].y - v[0].y);
    }
};

/**
 * A 2x2 fragment quad: the x/y of its top-left pixel (even
 * coordinates), a 4-bit coverage mask (bit i = pixel (i%2, i/2)),
 * per-pixel interpolated depth and the quad-center texture coordinate.
 */
struct QuadFragment
{
    int x = 0;
    int y = 0;
    std::uint8_t mask = 0;
    float z[4] = {};
    util::Vec2f uv;

    int coveredPixels() const { return __builtin_popcount(mask); }
};

/**
 * Rasterize @p tri over the pixels of @p bounds (half-open), invoking
 * @p emit for every quad with at least one covered sample. Returns the
 * number of quads emitted. Winding-insensitive (2D sprites flip).
 */
template <typename Emit>
std::size_t
rasterizeTriangleInTile(const ScreenTriangle &tri,
                        const util::BBox2i &bounds, Emit &&emit)
{
    float a2 = tri.area2();
    if (a2 == 0.0f)
        return 0;
    // Orient the edge functions so inside is positive.
    const float flip = a2 < 0.0f ? -1.0f : 1.0f;
    a2 *= flip;

    util::BBox2i box = tri.bounds().intersect(bounds);
    if (box.empty())
        return 0;
    // Snap to the quad grid.
    box.x0 &= ~1;
    box.y0 &= ~1;

    const util::Vec2f &p0 = tri.v[0];
    const util::Vec2f &p1 = tri.v[1];
    const util::Vec2f &p2 = tri.v[2];
    // Edge i: from v[i] to v[(i+1)%3]; e(x,y) = A*x + B*y + C.
    const float ax[3] = {flip * (p0.y - p1.y), flip * (p1.y - p2.y),
                         flip * (p2.y - p0.y)};
    const float by[3] = {flip * (p1.x - p0.x), flip * (p2.x - p1.x),
                         flip * (p0.x - p2.x)};
    const float cc[3] = {flip * (p0.x * p1.y - p1.x * p0.y),
                         flip * (p1.x * p2.y - p2.x * p1.y),
                         flip * (p2.x * p0.y - p0.x * p2.y)};

    const float inv = 1.0f / a2;
    std::size_t quads = 0;
    for (int y = box.y0; y < box.y1; y += 2) {
        for (int x = box.x0; x < box.x1; x += 2) {
            QuadFragment quad;
            quad.x = x;
            quad.y = y;
            for (int s = 0; s < 4; ++s) {
                const float px =
                    static_cast<float>(x + (s & 1)) + 0.5f;
                const float py =
                    static_cast<float>(y + (s >> 1)) + 0.5f;
                const float e0 = ax[0] * px + by[0] * py + cc[0];
                const float e1 = ax[1] * px + by[1] * py + cc[1];
                const float e2 = ax[2] * px + by[2] * py + cc[2];
                if (e0 < 0.0f || e1 < 0.0f || e2 < 0.0f)
                    continue;
                // Barycentric weights: e1 belongs to v0 (opposite
                // edge), e2 to v1, e0 to v2.
                const float w0 = e1 * inv;
                const float w1 = e2 * inv;
                const float w2 = e0 * inv;
                if (!quad.mask) {
                    // Texture coordinate of the first covered sample
                    // stands in for the whole quad.
                    quad.uv = {w0 * tri.uv[0].x + w1 * tri.uv[1].x +
                                   w2 * tri.uv[2].x,
                               w0 * tri.uv[0].y + w1 * tri.uv[1].y +
                                   w2 * tri.uv[2].y};
                }
                quad.mask |= static_cast<std::uint8_t>(1u << s);
                quad.z[s] =
                    w0 * tri.z[0] + w1 * tri.z[1] + w2 * tri.z[2];
            }
            if (quad.mask) {
                emit(static_cast<const QuadFragment &>(quad));
                ++quads;
            }
        }
    }
    return quads;
}

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_RASTERIZER_HH
