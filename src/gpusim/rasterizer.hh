/**
 * @file
 * Edge-function rasterizer emitting 2x2 quad-fragments, the unit both
 * pipelines shade in. Header-only so the per-quad callback inlines in
 * the simulator hot loops.
 */

#ifndef MSIM_GPUSIM_RASTERIZER_HH
#define MSIM_GPUSIM_RASTERIZER_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/geom.hh"

namespace msim::gpusim
{

/** A screen-space triangle after geometry processing. */
struct ScreenTriangle
{
    util::Vec2f v[3];   // pixel coordinates
    float z[3] = {0.5f, 0.5f, 0.5f};
    util::Vec2f uv[3];

    util::BBox2i
    bounds() const
    {
        const float x0 = std::min({v[0].x, v[1].x, v[2].x});
        const float y0 = std::min({v[0].y, v[1].y, v[2].y});
        const float x1 = std::max({v[0].x, v[1].x, v[2].x});
        const float y1 = std::max({v[0].y, v[1].y, v[2].y});
        return util::BBox2i{static_cast<int>(std::floor(x0)),
                            static_cast<int>(std::floor(y0)),
                            static_cast<int>(std::floor(x1)) + 1,
                            static_cast<int>(std::floor(y1)) + 1};
    }

    /** Twice the signed area; 0 = degenerate, <0 = back-facing. */
    float
    area2() const
    {
        return (v[1].x - v[0].x) * (v[2].y - v[0].y) -
               (v[2].x - v[0].x) * (v[1].y - v[0].y);
    }
};

/**
 * A 2x2 fragment quad: the x/y of its top-left pixel (even
 * coordinates), a 4-bit coverage mask (bit i = pixel (i%2, i/2)),
 * per-pixel interpolated depth and the quad-center texture coordinate.
 */
struct QuadFragment
{
    int x = 0;
    int y = 0;
    std::uint8_t mask = 0;
    float z[4] = {};
    util::Vec2f uv;

    int coveredPixels() const { return __builtin_popcount(mask); }
};

/**
 * Per-triangle rasterization state that is independent of the tile
 * being scanned: oriented edge-function coefficients, the inverse
 * area and the screen-space bounding box. A triangle binned into many
 * tiles is set up once and rasterized per tile from the same setup —
 * the coefficients are computed with exactly the expressions the
 * one-shot rasterizer used, so coverage, depth and uv are unchanged.
 */
struct TriangleSetup
{
    float ax[3] = {};
    float by[3] = {};
    float cc[3] = {};
    float inv = 0.0f;
    util::BBox2i box{0, 0, 0, 0}; // tri.bounds(), pre-intersection
    bool valid = false;           // false = degenerate (zero area)
};

inline TriangleSetup
setupTriangle(const ScreenTriangle &tri)
{
    TriangleSetup s;
    float a2 = tri.area2();
    if (a2 == 0.0f)
        return s;
    // Orient the edge functions so inside is positive.
    const float flip = a2 < 0.0f ? -1.0f : 1.0f;
    a2 *= flip;

    const util::Vec2f &p0 = tri.v[0];
    const util::Vec2f &p1 = tri.v[1];
    const util::Vec2f &p2 = tri.v[2];
    // Edge i: from v[i] to v[(i+1)%3]; e(x,y) = A*x + B*y + C.
    s.ax[0] = flip * (p0.y - p1.y);
    s.ax[1] = flip * (p1.y - p2.y);
    s.ax[2] = flip * (p2.y - p0.y);
    s.by[0] = flip * (p1.x - p0.x);
    s.by[1] = flip * (p2.x - p1.x);
    s.by[2] = flip * (p0.x - p2.x);
    s.cc[0] = flip * (p0.x * p1.y - p1.x * p0.y);
    s.cc[1] = flip * (p1.x * p2.y - p2.x * p1.y);
    s.cc[2] = flip * (p2.x * p0.y - p0.x * p2.y);
    s.inv = 1.0f / a2;
    s.box = tri.bounds();
    s.valid = true;
    return s;
}

/**
 * Rasterize a set-up triangle over the pixels of @p bounds
 * (half-open), invoking @p emit for every quad with at least one
 * covered sample. Returns the number of quads emitted. @p tri supplies
 * the z/uv attributes interpolated from the setup's barycentrics.
 */
template <typename Emit>
std::size_t
rasterizeSetupInTile(const TriangleSetup &setup,
                     const ScreenTriangle &tri,
                     const util::BBox2i &bounds, Emit &&emit)
{
    if (!setup.valid)
        return 0;
    util::BBox2i box = setup.box.intersect(bounds);
    if (box.empty())
        return 0;
    // Snap to the quad grid.
    box.x0 &= ~1;
    box.y0 &= ~1;

    const float ax0 = setup.ax[0], ax1 = setup.ax[1], ax2 = setup.ax[2];
    const float by0 = setup.by[0], by1 = setup.by[1], by2 = setup.by[2];
    const float cc0 = setup.cc[0], cc1 = setup.cc[1], cc2 = setup.cc[2];
    const float inv = setup.inv;
    // Row-termination predicates. Round-to-nearest is a monotone map,
    // so the float-evaluated edge function is monotone along a row
    // exactly like the real one: for an edge with ax <= 0 (e does not
    // increase with x), a failure at a row's RIGHT sample keeps
    // failing at every larger x. Once both rows of a quad-row have
    // terminated this way, the remaining quads provably have empty
    // coverage and the scan can stop without any output changing.
    // Relevance mask per edge: all lanes when the edge can terminate a
    // row (ax <= 0), none otherwise.
    const unsigned rel0 = ax0 <= 0.0f ? 0xFu : 0u;
    const unsigned rel1 = ax1 <= 0.0f ? 0xFu : 0u;
    const unsigned rel2 = ax2 <= 0.0f ? 0xFu : 0u;

#if defined(__SSE2__)
    const __m128 ax0v = _mm_set1_ps(ax0);
    const __m128 ax1v = _mm_set1_ps(ax1);
    const __m128 ax2v = _mm_set1_ps(ax2);
    const __m128 cc0v = _mm_set1_ps(cc0);
    const __m128 cc1v = _mm_set1_ps(cc1);
    const __m128 cc2v = _mm_set1_ps(cc2);
    const __m128 zerov = _mm_setzero_ps();
#endif

    std::size_t quads = 0;
    for (int y = box.y0; y < box.y1; y += 2) {
        const float pyA = static_cast<float>(y) + 0.5f;
        const float pyB = static_cast<float>(y + 1) + 0.5f;
        // Row-constant by*py products — the exact products the
        // per-sample evaluation computed; the (ax*px + b) + cc
        // grouping below matches the original ((ax*px) + (by*py)) + cc
        // evaluation order term for term.
        const float b0A = by0 * pyA, b0B = by0 * pyB;
        const float b1A = by1 * pyA, b1B = by1 * pyB;
        const float b2A = by2 * pyA, b2B = by2 * pyB;
#if defined(__SSE2__)
        const __m128 b0v = _mm_setr_ps(b0A, b0A, b0B, b0B);
        const __m128 b1v = _mm_setr_ps(b1A, b1A, b1B, b1B);
        const __m128 b2v = _mm_setr_ps(b2A, b2A, b2B, b2B);
#endif
        bool doneA = false, doneB = false;
        for (int x = box.x0; x < box.x1; x += 2) {
            const float pxL = static_cast<float>(x) + 0.5f;
            const float pxR = static_cast<float>(x + 1) + 0.5f;
            // Branchless 4-sample evaluation, lane order s0 = (L,A),
            // s1 = (R,A), s2 = (L,B), s3 = (R,B). Each lane is the
            // scalar sample expression verbatim — packed mul/add are
            // per-lane IEEE single ops, so the SSE2 path rounds
            // exactly like the scalar one (no fma, no reassociation) —
            // and evaluating an edge the short-circuiting scan
            // skipped has no side effects. fI holds edge I's fail
            // (e < 0) bit per lane, the same predicate polarity the
            // scan used, so even a NaN takes the branch it did.
            alignas(16) float e0a[4], e1a[4], e2a[4];
            unsigned f0, f1, f2;
#if defined(__SSE2__)
            const __m128 pxv = _mm_setr_ps(pxL, pxR, pxL, pxR);
            const __m128 e0v = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(ax0v, pxv), b0v), cc0v);
            const __m128 e1v = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(ax1v, pxv), b1v), cc1v);
            const __m128 e2v = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(ax2v, pxv), b2v), cc2v);
            f0 = static_cast<unsigned>(
                _mm_movemask_ps(_mm_cmplt_ps(e0v, zerov)));
            f1 = static_cast<unsigned>(
                _mm_movemask_ps(_mm_cmplt_ps(e1v, zerov)));
            f2 = static_cast<unsigned>(
                _mm_movemask_ps(_mm_cmplt_ps(e2v, zerov)));
            _mm_store_ps(e0a, e0v);
            _mm_store_ps(e1a, e1v);
            _mm_store_ps(e2a, e2v);
#else
            e0a[0] = (ax0 * pxL + b0A) + cc0;
            e0a[1] = (ax0 * pxR + b0A) + cc0;
            e0a[2] = (ax0 * pxL + b0B) + cc0;
            e0a[3] = (ax0 * pxR + b0B) + cc0;
            e1a[0] = (ax1 * pxL + b1A) + cc1;
            e1a[1] = (ax1 * pxR + b1A) + cc1;
            e1a[2] = (ax1 * pxL + b1B) + cc1;
            e1a[3] = (ax1 * pxR + b1B) + cc1;
            e2a[0] = (ax2 * pxL + b2A) + cc2;
            e2a[1] = (ax2 * pxR + b2A) + cc2;
            e2a[2] = (ax2 * pxL + b2B) + cc2;
            e2a[3] = (ax2 * pxR + b2B) + cc2;
            f0 = f1 = f2 = 0;
            for (int s = 0; s < 4; ++s) {
                f0 |= e0a[s] < 0.0f ? 1u << s : 0u;
                f1 |= e1a[s] < 0.0f ? 1u << s : 0u;
                f2 |= e2a[s] < 0.0f ? 1u << s : 0u;
            }
#endif
            const unsigned mask = ~(f0 | f1 | f2) & 0xFu;
            if (mask) {
                QuadFragment quad;
                quad.x = x;
                quad.y = y;
                quad.mask = static_cast<std::uint8_t>(mask);
                int first = -1;
                for (int s = 0; s < 4; ++s) {
                    if (!(mask & (1u << s)))
                        continue;
                    // Barycentric weights: e1 belongs to v0 (opposite
                    // edge), e2 to v1, e0 to v2.
                    const float w0 = e1a[s] * inv;
                    const float w1 = e2a[s] * inv;
                    const float w2 = e0a[s] * inv;
                    if (first < 0) {
                        first = s;
                        // Texture coordinate of the first covered
                        // sample stands in for the whole quad.
                        quad.uv = {w0 * tri.uv[0].x +
                                       w1 * tri.uv[1].x +
                                       w2 * tri.uv[2].x,
                                   w0 * tri.uv[0].y +
                                       w1 * tri.uv[1].y +
                                       w2 * tri.uv[2].y};
                    }
                    quad.z[s] =
                        w0 * tri.z[0] + w1 * tri.z[1] + w2 * tri.z[2];
                }
                emit(static_cast<const QuadFragment &>(quad));
                ++quads;
            }

            // Bits 1/3 are each row's RIGHT sample.
            const unsigned rowFail =
                (f0 & rel0) | (f1 & rel1) | (f2 & rel2);
            doneA = doneA || (rowFail & 2u) != 0;
            doneB = doneB || (rowFail & 8u) != 0;
            if (doneA && doneB)
                break;
        }
    }
    return quads;
}

/**
 * One-shot rasterization: set up @p tri and scan @p bounds. Callers
 * that visit the same triangle in many tiles should cache
 * setupTriangle() and call rasterizeSetupInTile() instead.
 */
template <typename Emit>
std::size_t
rasterizeTriangleInTile(const ScreenTriangle &tri,
                        const util::BBox2i &bounds, Emit &&emit)
{
    return rasterizeSetupInTile(setupTriangle(tri), tri, bounds,
                                std::forward<Emit>(emit));
}

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_RASTERIZER_HH
