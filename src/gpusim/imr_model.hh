/**
 * @file
 * Immediate-Mode Rendering memory model (Sec. II-A comparison): no
 * binning pass, fragments test and write depth + color straight to the
 * off-chip framebuffer through a cache. Reports the post-cache DRAM
 * traffic the TBR tile flush avoids.
 */

#ifndef MSIM_GPUSIM_IMR_MODEL_HH
#define MSIM_GPUSIM_IMR_MODEL_HH

#include <cstdint>
#include <vector>

#include "gpusim/geometry.hh"
#include "gpusim/gpu_config.hh"
#include "mem/cache.hh"
#include "sim/types.hh"

namespace msim::gpusim
{

struct ImrTraffic
{
    std::uint64_t dramBytes = 0;       // post-cache depth+color traffic
    std::uint64_t fragmentsShaded = 0; // includes overdraw
    std::uint64_t depthReads = 0;
    std::uint64_t colorWrites = 0;
};

class ImrMemoryModel
{
  public:
    ImrMemoryModel(const GpuConfig &config, sim::Addr framebufferBase);

    /** Render @p ir and report the frame's framebuffer DRAM traffic. */
    ImrTraffic frameTraffic(const GeometryIR &ir);

  private:
    GpuConfig config_;
    sim::Addr framebufferBase_;
    sim::Addr depthBase_;
    mem::Cache framebufferCache_;
    std::vector<float> depth_;
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_IMR_MODEL_HH
