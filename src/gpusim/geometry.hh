/**
 * @file
 * Geometry front-end shared by every back-end model: transforms draw
 * calls into screen-space triangle lists (GeometryIR). The transform
 * is the architecture-independent part of the pipeline, so the
 * functional simulator, the TBR timing simulator and the IMR model all
 * consume the same IR.
 */

#ifndef MSIM_GPUSIM_GEOMETRY_HH
#define MSIM_GPUSIM_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "gfx/trace.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/rasterizer.hh"
#include "gpusim/scene_binding.hh"

namespace msim::gpusim
{

/** One draw call after geometry processing. */
struct DrawIR
{
    std::uint32_t meshId = 0;
    std::uint32_t vsId = 0;
    std::uint32_t fsId = 0;
    std::int32_t textureId = -1;
    bool transparent = false;
    std::uint32_t vertexCount = 0;  // vertices fetched and shaded
    std::vector<ScreenTriangle> triangles; // surviving cull + clip
};

struct GeometryIR
{
    std::uint32_t frameIndex = 0;
    std::vector<DrawIR> draws;

    std::uint64_t
    primitives() const
    {
        std::uint64_t n = 0;
        for (const DrawIR &d : draws)
            n += d.triangles.size();
        return n;
    }
};

class GeometryProcessor
{
  public:
    GeometryProcessor(const GpuConfig &config,
                      const SceneBinding &binding)
        : config_(config), binding_(&binding)
    {}

    GeometryIR process(const gfx::FrameTrace &frame) const;

    /**
     * Like process(), but fills @p out in place so a caller looping
     * over frames reuses the draw/triangle allocations of the
     * previous frame, along with the processor's own per-vertex
     * scratch (the values are identical to process()).
     */
    void processInto(const gfx::FrameTrace &frame, GeometryIR &out);

  private:
    /** Transform one draw; shared by process() and processInto(). */
    void transformDraw(const gfx::DrawCall &draw, DrawIR &out,
                       std::vector<util::Vec2f> &screen,
                       std::vector<float> &depth) const;

    GpuConfig config_;
    const SceneBinding *binding_;
    // processInto() scratch, reused across frames.
    std::vector<util::Vec2f> screen_;
    std::vector<float> depth_;
};

} // namespace msim::gpusim

#endif // MSIM_GPUSIM_GEOMETRY_HH
