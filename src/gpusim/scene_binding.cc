#include "gpusim/scene_binding.hh"

#include <cmath>

namespace msim::gpusim
{

SceneBinding::SceneBinding(const gfx::SceneTrace &scene)
    : scene_(&scene)
{
    sim::Addr next = 0x1000; // leave page 0 unmapped
    auto align = [](sim::Addr a) { return (a + 0xfff) & ~sim::Addr{0xfff}; };

    meshBase_.reserve(scene.meshes.size());
    for (const gfx::Mesh &mesh : scene.meshes) {
        meshBase_.push_back(next);
        next = align(next + static_cast<sim::Addr>(
                                mesh.positions.size()) *
                                kVertexBytes);
    }
    textureBase_.reserve(scene.textures.size());
    for (const gfx::Texture &tex : scene.textures) {
        textureBase_.push_back(next);
        next = align(next + tex.sizeBytes());
    }
    tileListBase_ = next;
    next = align(next + (1u << 20)); // binning scratch
    framebufferBase_ = next;
    next = align(next + (8u << 20));
    depthBase_ = next;
}

} // namespace msim::gpusim
