#include "gpusim/scene_binding.hh"

#include <cmath>

namespace msim::gpusim
{

SceneBinding::SceneBinding(const gfx::SceneTrace &scene)
    : scene_(&scene)
{
    sim::Addr next = 0x1000; // leave page 0 unmapped
    auto align = [](sim::Addr a) { return (a + 0xfff) & ~sim::Addr{0xfff}; };

    meshBase_.reserve(scene.meshes.size());
    for (const gfx::Mesh &mesh : scene.meshes) {
        meshBase_.push_back(next);
        next = align(next + static_cast<sim::Addr>(
                                mesh.positions.size()) *
                                kVertexBytes);
    }
    textureBase_.reserve(scene.textures.size());
    for (const gfx::Texture &tex : scene.textures) {
        textureBase_.push_back(next);
        next = align(next + tex.sizeBytes());
    }
    tileListBase_ = next;
    next = align(next + (1u << 20)); // binning scratch
    framebufferBase_ = next;
    next = align(next + (8u << 20));
    depthBase_ = next;
}

sim::Addr
SceneBinding::texelAddr(std::int32_t textureId, float u, float v) const
{
    if (textureId < 0)
        return tileListBase_; // untextured draws never call this
    const gfx::Texture &tex =
        scene_->textures[static_cast<std::size_t>(textureId)];
    // Wrap-around addressing, nearest texel.
    const float fu = u - std::floor(u);
    const float fv = v - std::floor(v);
    const auto tx = std::min<std::uint32_t>(
        tex.width - 1,
        static_cast<std::uint32_t>(fu * static_cast<float>(tex.width)));
    const auto ty = std::min<std::uint32_t>(
        tex.height - 1, static_cast<std::uint32_t>(
                            fv * static_cast<float>(tex.height)));
    return textureBase_[static_cast<std::size_t>(textureId)] +
           (static_cast<sim::Addr>(ty) * tex.width + tx) *
               tex.bytesPerTexel;
}

} // namespace msim::gpusim
