#include "gpusim/gpu_config.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/random.hh"

namespace msim::gpusim
{

namespace
{

/**
 * MEGSIM_L2_MSHR overrides the L2 MSHR file with a gpgpusim-style
 * spec (`F:128:4`, `A:16:0`, `F:0:0` to disable). Result-neutral by
 * construction, so the override is safe to flip per run without
 * invalidating any committed frame cache.
 */
void
applyMshrEnv(GpuConfig &c)
{
    const char *env = std::getenv("MEGSIM_L2_MSHR");
    if (!env || env[0] == '\0')
        return;
    auto parsed = mem::MshrConfig::parse(env);
    if (parsed.ok()) {
        c.memory.l2Mshr = *parsed;
    } else {
        std::fprintf(stderr,
                     "MEGSIM_L2_MSHR '%s' ignored: %s\n", env,
                     parsed.error().message.c_str());
    }
}

} // namespace

GpuConfig
GpuConfig::baseline()
{
    GpuConfig c;
    applyMshrEnv(c);
    return c;
}

GpuConfig
GpuConfig::evaluationScaled()
{
    GpuConfig c;
    // 1/7.5 of the baseline screen in both dimensions; the cache and
    // queue capacities scale with it so hit rates and backpressure stay
    // in a realistic regime instead of everything fitting on-chip.
    c.screenWidth = 192;
    c.screenHeight = 96;
    c.vertexCache.sizeBytes = 1 * 1024;
    c.textureCache.sizeBytes = 2 * 1024;
    c.tileCache.sizeBytes = 4 * 1024;
    c.memory.l2.sizeBytes = 16 * 1024;
    c.vertexInQueueEntries = 8;
    c.triangleQueueEntries = 8;
    c.fragmentQueueEntries = 32;
    c.colorQueueEntries = 32;
    applyMshrEnv(c);
    return c;
}

namespace
{

std::uint64_t
mixCache(std::uint64_t h, const mem::CacheConfig &c)
{
    h = sim::hashMix(h, c.sizeBytes, c.lineBytes);
    h = sim::hashMix(h, c.ways, c.hitLatency);
    return sim::hashMix(h, c.banks, c.writeThrough);
}

} // namespace

std::uint64_t
GpuConfig::fingerprint() const
{
    std::uint64_t h = 0x4d4547u; // "MEG"
    h = sim::hashMix(h, frequencyMhz, screenWidth);
    h = sim::hashMix(h, screenHeight, tileWidth);
    h = sim::hashMix(h, tileHeight, numTextureCaches);
    h = sim::hashMix(h, vertexInQueueEntries, triangleQueueEntries);
    h = sim::hashMix(h, fragmentQueueEntries, colorQueueEntries);
    h = sim::hashMix(h, paVerticesPerCycle, rastAttributesPerCycle);
    h = sim::hashMix(h, earlyZInflightQuads, numVertexProcessors);
    h = sim::hashMix(h, numFragmentProcessors, hsrEnabled);
    h = mixCache(h, vertexCache);
    h = mixCache(h, textureCache);
    h = mixCache(h, tileCache);
    h = mixCache(h, memory.l2);
    h = sim::hashMix(h, memory.dram.rowHitLatency,
                     memory.dram.rowMissLatency);
    h = sim::hashMix(h, memory.dram.bytesPerCycle,
                     memory.dram.banks);
    h = sim::hashMix(h, memory.dram.lineBytes,
                     memory.dram.rowBytes);
    // memory.l2Mshr is result-neutral and deliberately left out (see
    // MemoryConfig). fastMem changes results, but only when enabled —
    // mixing it in conditionally keeps exact-mode fingerprints (and
    // thus every committed frame cache) byte-stable.
    if (fastMem.enabled) {
        h = sim::hashMix(h, 0xFA57u, fastMem.calibrationWalks);
        h = sim::hashMix(h, fastMem.probeEvery, fastMem.auditEvery);
    }
    return h;
}

} // namespace msim::gpusim
