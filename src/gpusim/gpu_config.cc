#include "gpusim/gpu_config.hh"

#include "sim/random.hh"

namespace msim::gpusim
{

GpuConfig
GpuConfig::baseline()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::evaluationScaled()
{
    GpuConfig c;
    // 1/7.5 of the baseline screen in both dimensions; the cache and
    // queue capacities scale with it so hit rates and backpressure stay
    // in a realistic regime instead of everything fitting on-chip.
    c.screenWidth = 192;
    c.screenHeight = 96;
    c.vertexCache.sizeBytes = 1 * 1024;
    c.textureCache.sizeBytes = 2 * 1024;
    c.tileCache.sizeBytes = 4 * 1024;
    c.memory.l2.sizeBytes = 16 * 1024;
    c.vertexInQueueEntries = 8;
    c.triangleQueueEntries = 8;
    c.fragmentQueueEntries = 32;
    c.colorQueueEntries = 32;
    return c;
}

namespace
{

std::uint64_t
mixCache(std::uint64_t h, const mem::CacheConfig &c)
{
    h = sim::hashMix(h, c.sizeBytes, c.lineBytes);
    h = sim::hashMix(h, c.ways, c.hitLatency);
    return sim::hashMix(h, c.banks, c.writeThrough);
}

} // namespace

std::uint64_t
GpuConfig::fingerprint() const
{
    std::uint64_t h = 0x4d4547u; // "MEG"
    h = sim::hashMix(h, frequencyMhz, screenWidth);
    h = sim::hashMix(h, screenHeight, tileWidth);
    h = sim::hashMix(h, tileHeight, numTextureCaches);
    h = sim::hashMix(h, vertexInQueueEntries, triangleQueueEntries);
    h = sim::hashMix(h, fragmentQueueEntries, colorQueueEntries);
    h = sim::hashMix(h, paVerticesPerCycle, rastAttributesPerCycle);
    h = sim::hashMix(h, earlyZInflightQuads, numVertexProcessors);
    h = sim::hashMix(h, numFragmentProcessors, hsrEnabled);
    h = mixCache(h, vertexCache);
    h = mixCache(h, textureCache);
    h = mixCache(h, tileCache);
    h = mixCache(h, memory.l2);
    h = sim::hashMix(h, memory.dram.rowHitLatency,
                     memory.dram.rowMissLatency);
    h = sim::hashMix(h, memory.dram.bytesPerCycle,
                     memory.dram.banks);
    return sim::hashMix(h, memory.dram.lineBytes,
                        memory.dram.rowBytes);
}

} // namespace msim::gpusim
