/**
 * @file
 * Miss-status holding registers in front of a cache: a small file of
 * in-flight/just-completed walk records so that repeated misses to the
 * same line from the caches above MERGE into the one walk already
 * performed instead of re-probing the hierarchy. Configured with the
 * gpgpusim texture-MSHR syntax `<policy>:<entries>:<merge>` — e.g.
 * `F:128:4` is a 128-entry texture-FIFO file merging up to 4 repeat
 * requesters per walk; `<entries>=0` disables the file entirely.
 *
 * ## Why merging is bit-identical (the stamp protocol)
 *
 * The file never models new timing — it only elides probes that are
 * PROVABLY side-effect-free replays. Each entry records the line a
 * completed walk installed plus the downstream cache's state stamp
 * (Cache::stateTick()) at completion: at that stamp the line is
 * resident and MRU in its set. The stamp ticks on every simulated
 * state mutation (fill, eviction, MRU flip, dirty set, invalidate) —
 * an MRU-way READ hit is the one access that mutates nothing. So if a
 * later fill-side probe finds a matching entry with a matching stamp,
 * the real probe would have been exactly such an MRU-way read hit:
 * same latency, same counters, zero state change. The simulator skips
 * it and bumps the counters via Cache::noteMergedHit(). Any mismatch
 * falls through to the real probe, which is always correct.
 *
 * Counters are pend-batched like mem::Cache and flush into an
 * `<prefix>.mshr` stats group once per frame.
 */

#ifndef MSIM_MEM_MSHR_HH
#define MSIM_MEM_MSHR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats.hh"
#include "resilience/expected.hh"

namespace msim::mem
{

struct MshrConfig
{
    enum class Policy : std::uint8_t {
        TexFifo, // 'F': a conflicting allocation recycles the slot
        Assoc,   // 'A': a conflicting live slot refuses (full stall)
    };

    Policy policy = Policy::TexFifo;
    std::uint32_t entries = 0;  // 0 disables; rounded up to pow2
    std::uint32_t maxMerges = 0; // merged requesters/walk (0 = no cap)

    bool enabled() const { return entries != 0; }

    /** Parse the gpgpusim-style spec `<F|A>:<entries>:<merge>`. */
    static resilience::Expected<MshrConfig>
    parse(const std::string &spec);

    std::string toString() const;
};

class MshrFile
{
  public:
    MshrFile() = default;
    explicit MshrFile(const MshrConfig &config) { configure(config); }

    /** (Re)size the file; drops entries, keeps pending counters. */
    void configure(const MshrConfig &config);

    const MshrConfig &config() const { return config_; }
    bool enabled() const { return !slots_.empty(); }

    /**
     * Record a completed walk: @p line is resident and MRU downstream
     * at state stamp @p stamp. TexFifo recycles a conflicting live
     * slot (counted as an eviction); Assoc refuses while the resident
     * entry is still live (counted as a full-MSHR stall).
     */
    void
    noteWalk(std::uint64_t line, std::uint64_t stamp)
    {
        if (slots_.empty())
            return;
        Slot &slot = slots_[line & mask_];
        if (slot.valid && slot.line != line && slot.stamp == stamp) {
            if (config_.policy == MshrConfig::Policy::Assoc) {
                ++pendStalls_;
                return;
            }
            ++pendEvictions_;
        }
        slot.line = line;
        slot.stamp = stamp;
        slot.seq = seq_++;
        slot.merges = 0;
        slot.valid = true;
        ++pendAllocations_;
    }

    /**
     * Would a fill-side probe of @p line at downstream state @p stamp
     * replay the recorded walk? True consumes one merge credit; false
     * means the caller must perform the real probe (stale entry, other
     * line, or merge cap reached).
     */
    bool
    tryMerge(std::uint64_t line, std::uint64_t stamp)
    {
        if (slots_.empty())
            return false;
        Slot &slot = slots_[line & mask_];
        if (!slot.valid || slot.line != line || slot.stamp != stamp)
            return false;
        if (config_.maxMerges && slot.merges >= config_.maxMerges)
            return false;
        ++slot.merges;
        ++pendMerges_;
        return true;
    }

    /** Drop all entries (per-frame cold start). Keeps counters. */
    void reset();

    /** Register the allocation/merge/eviction/stall counters. */
    void bindStats(obs::StatsGroup stats);

    /** Publish pending counter deltas (once per frame). */
    void flushStats();

    std::uint64_t allocations() const
    {
        return scalarValue(allocations_) + pendAllocations_;
    }
    std::uint64_t merges() const
    {
        return scalarValue(merges_) + pendMerges_;
    }
    std::uint64_t evictions() const
    {
        return scalarValue(evictions_) + pendEvictions_;
    }
    std::uint64_t stalls() const
    {
        return scalarValue(stalls_) + pendStalls_;
    }

    /** Test/introspection view of one slot (FIFO order via seq). */
    struct SlotView
    {
        bool valid = false;
        std::uint64_t line = 0;
        std::uint64_t stamp = 0;
        std::uint64_t seq = 0;
        std::uint32_t merges = 0;
    };
    std::uint32_t numSlots() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }
    SlotView slot(std::uint32_t index) const;

  private:
    struct Slot
    {
        std::uint64_t line = 0;
        std::uint64_t stamp = 0;
        std::uint64_t seq = 0;
        std::uint32_t merges = 0;
        bool valid = false;
    };

    static std::uint64_t scalarValue(const obs::Scalar *s)
    {
        return s ? static_cast<std::uint64_t>(s->value()) : 0;
    }

    MshrConfig config_;
    std::vector<Slot> slots_;   // pow2, direct-mapped by line
    std::uint64_t mask_ = ~std::uint64_t{0}; // slots-1 when enabled
    std::uint64_t seq_ = 0;     // allocation order (texture FIFO)

    // Deferred counter deltas (see flushStats()).
    std::uint64_t pendAllocations_ = 0;
    std::uint64_t pendMerges_ = 0;
    std::uint64_t pendEvictions_ = 0;
    std::uint64_t pendStalls_ = 0;

    obs::Scalar *allocations_ = nullptr;
    obs::Scalar *merges_ = nullptr;
    obs::Scalar *evictions_ = nullptr;
    obs::Scalar *stalls_ = nullptr;
};

} // namespace msim::mem

#endif // MSIM_MEM_MSHR_HH
