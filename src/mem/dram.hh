/**
 * @file
 * Banked, bandwidth-limited DRAM timing model. Per-bank open-row
 * state gives row-hit/row-miss latencies; a shared channel serializes
 * bursts at the configured bytes/cycle. Counters live in an obs
 * registry like the caches.
 *
 * Counter batching mirrors mem::Cache: accessDeferred() accumulates
 * integer deltas (and the latency sum, in sample order) in plain
 * members; flushStats() publishes them. The latency average is exact
 * only when flushed ONCE onto a freshly reset registry — the timing
 * simulator flushes a frame's samples in one batch, so the folded sum
 * equals the per-sample left fold bit for bit.
 */

#ifndef MSIM_MEM_DRAM_HH
#define MSIM_MEM_DRAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/stats.hh"
#include "sim/types.hh"

namespace msim::mem
{

struct DramConfig
{
    sim::Tick rowHitLatency = 50;
    sim::Tick rowMissLatency = 100;
    std::uint32_t bytesPerCycle = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 2048;
};

class Dram
{
  public:
    explicit Dram(const DramConfig &config);
    Dram(const DramConfig &config, obs::StatsGroup stats);

    /**
     * Issue a line transfer at @p now; returns the completion tick
     * after bank availability, row activation and channel bandwidth.
     * Publishes counters eagerly (accessDeferred() is the batched
     * variant).
     */
    sim::Tick access(sim::Tick now, sim::Addr addr, bool write);

    /** access() with the counter updates left pending. Inline: sits
     *  at the bottom of every cache-miss chain in the hot loop. */
    sim::Tick
    accessDeferred(sim::Tick now, sim::Addr addr, bool write)
    {
        const std::uint64_t row =
            rowPow2_ ? addr >> rowShift_ : addr / config_.rowBytes;
        Bank &bank = banks_[banksPow2_ ? row & bankMask_
                                       : row % banks_.size()];

        const bool rowHit = bank.rowValid && bank.openRow == row;
        const sim::Tick latency =
            rowHit ? config_.rowHitLatency : config_.rowMissLatency;
        const sim::Tick burst = burstCycles_;

        sim::Tick start = now > bank.readyAt ? now : bank.readyAt;
        if (channelReadyAt_ > start)
            start = channelReadyAt_;
        const sim::Tick done = start + latency + burst;
        bank.readyAt = done;
        bank.openRow = row;
        bank.rowValid = true;
        channelReadyAt_ = start + burst;

        ++pendTransactions_;
        ++(write ? pendWrites_ : pendReads_);
        pendBytes_ += config_.lineBytes;
        ++(rowHit ? pendRowHits_ : pendRowMisses_);
        pendLatencySum_ += static_cast<double>(done - now);
        ++pendLatencyCount_;
        return done;
    }

    /**
     * Fold @p lines modeled (fast-mem) read transfers into the volume
     * counters (transactions/reads/bytes). Pure accounting: bank and
     * channel timing state is untouched, and the row-locality and
     * latency averages stay exact over the PROBED transfers only —
     * modeled traffic has no per-transfer timing to sample.
     */
    void
    addModeled(std::uint64_t lines)
    {
        pendTransactions_ += lines;
        pendReads_ += lines;
        pendBytes_ += lines * config_.lineBytes;
    }

    /** Publish pending counter deltas; see the batching note above. */
    void flushStats();

    /** Close all rows and clear timing state (per-frame cold start). */
    void drain();

    const DramConfig &config() const { return config_; }

    std::uint64_t transactions() const
    {
        return static_cast<std::uint64_t>(transactions_->value()) +
               pendTransactions_;
    }
    std::uint64_t bytesTransferred() const
    {
        return static_cast<std::uint64_t>(bytes_->value()) +
               pendBytes_;
    }

  private:
    struct Bank
    {
        sim::Tick readyAt = 0;
        std::uint64_t openRow = 0;
        bool rowValid = false;
    };

    void bindStats(obs::StatsGroup stats);

    DramConfig config_;
    std::vector<Bank> banks_;
    sim::Tick channelReadyAt_ = 0;
    sim::Tick burstCycles_ = 0; // lineBytes / bytesPerCycle, hoisted

    // Power-of-two fast paths.
    std::uint32_t rowShift_ = 0;
    std::uint64_t bankMask_ = 0;
    bool rowPow2_ = false;
    bool banksPow2_ = false;

    // Deferred counter deltas (see flushStats()).
    std::uint64_t pendTransactions_ = 0;
    std::uint64_t pendReads_ = 0;
    std::uint64_t pendWrites_ = 0;
    std::uint64_t pendBytes_ = 0;
    std::uint64_t pendRowHits_ = 0;
    std::uint64_t pendRowMisses_ = 0;
    double pendLatencySum_ = 0.0;    // left fold in sample order
    std::uint64_t pendLatencyCount_ = 0;

    std::unique_ptr<obs::StatsRegistry> ownRegistry_;
    obs::Scalar *transactions_ = nullptr;
    obs::Scalar *reads_ = nullptr;
    obs::Scalar *writes_ = nullptr;
    obs::Scalar *bytes_ = nullptr;
    obs::Scalar *rowHits_ = nullptr;
    obs::Scalar *rowMisses_ = nullptr;
    obs::Average *latency_ = nullptr;
};

} // namespace msim::mem

#endif // MSIM_MEM_DRAM_HH
