/**
 * @file
 * Banked, bandwidth-limited DRAM timing model. Per-bank open-row
 * state gives row-hit/row-miss latencies; a shared channel serializes
 * bursts at the configured bytes/cycle. Counters live in an obs
 * registry like the caches.
 */

#ifndef MSIM_MEM_DRAM_HH
#define MSIM_MEM_DRAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/stats.hh"
#include "sim/types.hh"

namespace msim::mem
{

struct DramConfig
{
    sim::Tick rowHitLatency = 50;
    sim::Tick rowMissLatency = 100;
    std::uint32_t bytesPerCycle = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 2048;
};

class Dram
{
  public:
    explicit Dram(const DramConfig &config);
    Dram(const DramConfig &config, obs::StatsGroup stats);

    /**
     * Issue a line transfer at @p now; returns the completion tick
     * after bank availability, row activation and channel bandwidth.
     */
    sim::Tick access(sim::Tick now, sim::Addr addr, bool write);

    /** Close all rows and clear timing state (per-frame cold start). */
    void drain();

    const DramConfig &config() const { return config_; }

    std::uint64_t transactions() const
    {
        return static_cast<std::uint64_t>(transactions_->value());
    }
    std::uint64_t bytesTransferred() const
    {
        return static_cast<std::uint64_t>(bytes_->value());
    }

  private:
    struct Bank
    {
        sim::Tick readyAt = 0;
        std::uint64_t openRow = 0;
        bool rowValid = false;
    };

    void bindStats(obs::StatsGroup stats);

    DramConfig config_;
    std::vector<Bank> banks_;
    sim::Tick channelReadyAt_ = 0;

    std::unique_ptr<obs::StatsRegistry> ownRegistry_;
    obs::Scalar *transactions_ = nullptr;
    obs::Scalar *reads_ = nullptr;
    obs::Scalar *writes_ = nullptr;
    obs::Scalar *bytes_ = nullptr;
    obs::Scalar *rowHits_ = nullptr;
    obs::Scalar *rowMisses_ = nullptr;
    obs::Average *latency_ = nullptr;
};

} // namespace msim::mem

#endif // MSIM_MEM_DRAM_HH
