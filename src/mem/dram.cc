#include "mem/dram.hh"

#include <algorithm>

namespace msim::mem
{

Dram::Dram(const DramConfig &config)
    : config_(config), banks_(config.banks ? config.banks : 1),
      ownRegistry_(std::make_unique<obs::StatsRegistry>())
{
    bindStats(ownRegistry_->group("dram"));
}

Dram::Dram(const DramConfig &config, obs::StatsGroup stats)
    : Dram(config)
{
    ownRegistry_.reset();
    bindStats(stats);
}

void
Dram::bindStats(obs::StatsGroup stats)
{
    transactions_ = &stats.scalar("transactions",
                                  "line transfers issued");
    reads_ = &stats.scalar("reads", "read transactions");
    writes_ = &stats.scalar("writes", "write transactions");
    bytes_ = &stats.scalar("bytes", "bytes transferred");
    rowHits_ = &stats.scalar("row_hits", "open-row hits");
    rowMisses_ = &stats.scalar("row_misses", "row activations");
    latency_ = &stats.average("latency_avg",
                              "issue-to-completion cycles");
}

sim::Tick
Dram::access(sim::Tick now, sim::Addr addr, bool write)
{
    const std::uint64_t row = addr / config_.rowBytes;
    Bank &bank = banks_[row % banks_.size()];

    const bool rowHit = bank.rowValid && bank.openRow == row;
    const sim::Tick latency =
        rowHit ? config_.rowHitLatency : config_.rowMissLatency;
    const sim::Tick burst =
        config_.lineBytes / std::max(1u, config_.bytesPerCycle);

    const sim::Tick start =
        std::max({now, bank.readyAt, channelReadyAt_});
    const sim::Tick done = start + latency + burst;
    bank.readyAt = done;
    bank.openRow = row;
    bank.rowValid = true;
    channelReadyAt_ = start + burst;

    ++*transactions_;
    ++*(write ? writes_ : reads_);
    *bytes_ += static_cast<double>(config_.lineBytes);
    ++*(rowHit ? rowHits_ : rowMisses_);
    latency_->sample(static_cast<double>(done - now));
    return done;
}

void
Dram::drain()
{
    for (Bank &bank : banks_)
        bank = Bank{};
    channelReadyAt_ = 0;
}

} // namespace msim::mem
