#include "mem/dram.hh"

#include <algorithm>

#include "obs/attrib.hh"

namespace msim::mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

std::uint32_t
log2u(std::uint64_t v)
{
    std::uint32_t n = 0;
    while (v >>= 1)
        ++n;
    return n;
}

} // namespace

Dram::Dram(const DramConfig &config)
    : config_(config), banks_(config.banks ? config.banks : 1),
      ownRegistry_(std::make_unique<obs::StatsRegistry>())
{
    rowPow2_ = isPow2(config_.rowBytes);
    rowShift_ = rowPow2_ ? log2u(config_.rowBytes) : 0;
    banksPow2_ = isPow2(banks_.size());
    bankMask_ = banksPow2_ ? banks_.size() - 1 : 0;
    burstCycles_ = config_.lineBytes / std::max(1u, config_.bytesPerCycle);
    bindStats(ownRegistry_->group("dram"));
}

Dram::Dram(const DramConfig &config, obs::StatsGroup stats)
    : Dram(config)
{
    ownRegistry_.reset();
    bindStats(stats);
}

void
Dram::bindStats(obs::StatsGroup stats)
{
    transactions_ = &stats.scalar("transactions",
                                  "line transfers issued");
    reads_ = &stats.scalar("reads", "read transactions");
    writes_ = &stats.scalar("writes", "write transactions");
    bytes_ = &stats.scalar("bytes", "bytes transferred");
    rowHits_ = &stats.scalar("row_hits", "open-row hits");
    rowMisses_ = &stats.scalar("row_misses", "row activations");
    latency_ = &stats.average("latency_avg",
                              "issue-to-completion cycles");
}

sim::Tick
Dram::access(sim::Tick now, sim::Addr addr, bool write)
{
    // Standalone entry point; hot-loop traffic is attributed by the
    // simulator's memAccess scope (see mem/cache.cc).
    obs::AttribScope memScope(obs::HostDomain::MemWalk);
    const sim::Tick done = accessDeferred(now, addr, write);
    flushStats();
    return done;
}

void
Dram::flushStats()
{
    if (pendTransactions_) {
        *transactions_ += static_cast<double>(pendTransactions_);
        pendTransactions_ = 0;
    }
    if (pendReads_) {
        *reads_ += static_cast<double>(pendReads_);
        pendReads_ = 0;
    }
    if (pendWrites_) {
        *writes_ += static_cast<double>(pendWrites_);
        pendWrites_ = 0;
    }
    if (pendBytes_) {
        *bytes_ += static_cast<double>(pendBytes_);
        pendBytes_ = 0;
    }
    if (pendRowHits_) {
        *rowHits_ += static_cast<double>(pendRowHits_);
        pendRowHits_ = 0;
    }
    if (pendRowMisses_) {
        *rowMisses_ += static_cast<double>(pendRowMisses_);
        pendRowMisses_ = 0;
    }
    if (pendLatencyCount_) {
        latency_->accumulate(pendLatencySum_, pendLatencyCount_);
        pendLatencySum_ = 0.0;
        pendLatencyCount_ = 0;
    }
}

void
Dram::drain()
{
    for (Bank &bank : banks_)
        bank = Bank{};
    channelReadyAt_ = 0;
}

} // namespace msim::mem
