/**
 * @file
 * Calibrated sampled cache model for the opt-in `--fast-mem` mode
 * (MEGSIM_FAST_MEM): replaces most texture-walk probes of the exact
 * L1→L2→DRAM hierarchy with a model fitted online from the walks it
 * still performs exactly. Per frame (frames simulate cold, so the fit
 * is per-frame and thread-count invariant):
 *
 *   1. the first `calibrationWalks` walks run exactly and are
 *      observed (latency + which levels they touched);
 *   2. after calibration every `probeEvery`-th walk stays exact — the
 *      online re-fit as the frame streams — and the rest return the
 *      fitted mean latency without touching the hierarchy;
 *   3. at frame flush the modeled walk count is folded into the cache
 *      and DRAM counters by scaling the observed hit rates
 *      (estimates(), pure integer arithmetic, hand-checkable).
 *
 * The model's error is never assumed: every `auditEvery`-th frame the
 * ground-truth pass ALSO runs the exact simulator and the campaign
 * reports the measured exact-vs-fast deviation per metric, gated in
 * CI by `ci/thresholds.json` (`max_exact_vs_fast_percent`). This is
 * the online-learning template of "An Online Learning Methodology for
 * Performance Modeling of Graphics Processors" applied to MEGsim's
 * walk: fit from an exact prefix, refresh from periodic probes,
 * measure — not assume — the resulting error.
 */

#ifndef MSIM_MEM_FASTMEM_HH
#define MSIM_MEM_FASTMEM_HH

#include <cmath>
#include <cstdint>

#include "sim/types.hh"

namespace msim::mem
{

struct FastMemConfig
{
    bool enabled = false;
    /** Exact-walk prefix fitted at the start of every frame. */
    std::uint32_t calibrationWalks = 512;
    /** After calibration, 1-in-N walks stay exact (online re-fit). */
    std::uint32_t probeEvery = 64;
    /** 1-in-N frames also run exactly to measure exact_vs_fast. */
    std::uint32_t auditEvery = 8;

    /**
     * MEGSIM_FAST_MEM=1 enables; MEGSIM_FAST_MEM_CALIB /
     * MEGSIM_FAST_MEM_PROBE / MEGSIM_FAST_MEM_AUDIT override the
     * sampling parameters.
     */
    static FastMemConfig fromEnv();
};

/** Per-simulator, per-frame model state. Reset at every cold start. */
class FastMemModel
{
  public:
    void
    configure(const FastMemConfig &config)
    {
        config_ = config;
        reset();
    }

    const FastMemConfig &config() const { return config_; }

    /** Drop the fit (per-frame cold start). */
    void
    reset()
    {
        walkIndex_ = 0;
        modeledWalks_ = 0;
        obsWalks_ = 0;
        obsL1Hits_ = 0;
        obsL2Hits_ = 0;
        obsDramLines_ = 0;
        latencySum_ = 0;
    }

    /**
     * Advance the per-frame walk counter and decide this walk's fate:
     * true = perform it exactly (and observe() it), false = the
     * caller may model it. Exact while calibrating, on every
     * `probeEvery`-th walk after, and always until at least one walk
     * has been observed (the model needs a sample to return).
     */
    bool
    wantExact()
    {
        ++walkIndex_;
        if (obsWalks_ == 0 || walkIndex_ <= config_.calibrationWalks)
            return true;
        return config_.probeEvery != 0 &&
               walkIndex_ % config_.probeEvery == 0;
    }

    /** Record an exact walk: its latency and the levels it touched. */
    void
    observe(sim::Tick latency, bool l1Hit, bool l2Hit, bool dramLine)
    {
        ++obsWalks_;
        latencySum_ += latency;
        obsL1Hits_ += l1Hit ? 1 : 0;
        obsL2Hits_ += l2Hit ? 1 : 0;
        obsDramLines_ += dramLine ? 1 : 0;
    }

    /** Book one modeled walk (counter folded by estimates()). */
    void noteModeled() { ++modeledWalks_; }

    /** Fitted mean walk latency (integer floor; ≥ 1). */
    sim::Tick
    modeledLatency() const
    {
        if (obsWalks_ == 0)
            return 1;
        const sim::Tick mean = latencySum_ / obsWalks_;
        return mean ? mean : 1;
    }

    /**
     * Counter estimates for the modeled walks: observed hit rates
     * scaled to the modeled population, in exact integer arithmetic
     * (floor at each level, misses = accesses − hits throughout) so
     * the fold is deterministic and hand-checkable.
     */
    struct Estimates
    {
        std::uint64_t l1Accesses = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t dramLines = 0;
    };
    Estimates
    estimates() const
    {
        Estimates e;
        if (modeledWalks_ == 0 || obsWalks_ == 0)
            return e;
        e.l1Accesses = modeledWalks_;
        e.l1Hits = modeledWalks_ * obsL1Hits_ / obsWalks_;
        e.l2Accesses = e.l1Accesses - e.l1Hits;
        const std::uint64_t obsL2Accesses = obsWalks_ - obsL1Hits_;
        e.l2Hits = obsL2Accesses
                       ? e.l2Accesses * obsL2Hits_ / obsL2Accesses
                       : 0;
        e.dramLines = e.l2Accesses - e.l2Hits;
        return e;
    }

    std::uint64_t exactWalks() const { return obsWalks_; }
    std::uint64_t modeledWalks() const { return modeledWalks_; }

    /**
     * The reported exact-vs-fast deviation: |fast − exact| as a
     * percentage of exact, the formula the campaign applies per
     * metric over the audited frames' sums.
     */
    static double
    exactVsFastPercent(double exactSum, double fastSum)
    {
        if (exactSum == 0.0)
            return fastSum == 0.0 ? 0.0 : 100.0;
        return std::fabs(fastSum - exactSum) / exactSum * 100.0;
    }

  private:
    FastMemConfig config_;
    std::uint64_t walkIndex_ = 0;
    std::uint64_t modeledWalks_ = 0;
    std::uint64_t obsWalks_ = 0;
    std::uint64_t obsL1Hits_ = 0;
    std::uint64_t obsL2Hits_ = 0;
    std::uint64_t obsDramLines_ = 0;
    sim::Tick latencySum_ = 0;
};

} // namespace msim::mem

#endif // MSIM_MEM_FASTMEM_HH
