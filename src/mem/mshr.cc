#include "mem/mshr.hh"

#include <cstdlib>

namespace msim::mem
{

namespace
{

std::uint64_t
roundUpPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

resilience::Expected<MshrConfig>
MshrConfig::parse(const std::string &spec)
{
    MshrConfig config;
    const auto bad = [&spec]() {
        return resilience::errorf(
            resilience::Errc::BadFormat,
            "mshr spec '%s' is not <F|A>:<entries>:<merge>",
            spec.c_str());
    };
    if (spec.size() < 2 || spec[1] != ':')
        return bad();
    switch (spec[0]) {
    case 'F':
        config.policy = Policy::TexFifo;
        break;
    case 'A':
        config.policy = Policy::Assoc;
        break;
    default:
        return bad();
    }
    const std::size_t sep = spec.find(':', 2);
    if (sep == std::string::npos || sep == 2 ||
        sep + 1 >= spec.size())
        return bad();
    for (std::size_t i = 2; i < spec.size(); ++i)
        if (i != sep && (spec[i] < '0' || spec[i] > '9'))
            return bad();
    config.entries = static_cast<std::uint32_t>(
        std::strtoul(spec.c_str() + 2, nullptr, 10));
    config.maxMerges = static_cast<std::uint32_t>(
        std::strtoul(spec.c_str() + sep + 1, nullptr, 10));
    return config;
}

std::string
MshrConfig::toString() const
{
    std::string s(1, policy == Policy::TexFifo ? 'F' : 'A');
    s += ':';
    s += std::to_string(entries);
    s += ':';
    s += std::to_string(maxMerges);
    return s;
}

void
MshrFile::configure(const MshrConfig &config)
{
    config_ = config;
    slots_.clear();
    seq_ = 0;
    if (config_.entries == 0) {
        mask_ = ~std::uint64_t{0};
        return;
    }
    const std::uint64_t n = roundUpPow2(config_.entries);
    slots_.assign(static_cast<std::size_t>(n), Slot{});
    mask_ = n - 1;
}

void
MshrFile::reset()
{
    for (Slot &slot : slots_)
        slot.valid = false;
    seq_ = 0;
}

void
MshrFile::bindStats(obs::StatsGroup stats)
{
    allocations_ =
        &stats.scalar("allocations", "walk records allocated");
    merges_ = &stats.scalar("merges", "repeat walks merged");
    evictions_ =
        &stats.scalar("evictions", "live records recycled (FIFO)");
    stalls_ =
        &stats.scalar("stalls", "allocations refused (file full)");
}

void
MshrFile::flushStats()
{
    if (!allocations_) {
        // Unbound (unit-test) file: counters stay pending and remain
        // visible through the accessors.
        return;
    }
    if (pendAllocations_) {
        *allocations_ += static_cast<double>(pendAllocations_);
        pendAllocations_ = 0;
    }
    if (pendMerges_) {
        *merges_ += static_cast<double>(pendMerges_);
        pendMerges_ = 0;
    }
    if (pendEvictions_) {
        *evictions_ += static_cast<double>(pendEvictions_);
        pendEvictions_ = 0;
    }
    if (pendStalls_) {
        *stalls_ += static_cast<double>(pendStalls_);
        pendStalls_ = 0;
    }
}

MshrFile::SlotView
MshrFile::slot(std::uint32_t index) const
{
    SlotView view;
    if (index >= slots_.size())
        return view;
    const Slot &s = slots_[index];
    view.valid = s.valid;
    view.line = s.line;
    view.stamp = s.stamp;
    view.seq = s.seq;
    view.merges = s.merges;
    return view;
}

} // namespace msim::mem
