/**
 * @file
 * Set-associative, latency-annotated functional cache (LRU). Hit/miss
 * state updates synchronously; the caller charges latencies and sends
 * misses down the hierarchy. All counters live in an obs registry —
 * either one supplied by the owning simulator (so `l2.misses` shows up
 * in its stats tree and resets per frame) or a private one for
 * standalone use.
 *
 * ## Shared stats-group aggregation contract
 *
 * Any number of caches may be constructed against the SAME StatsGroup
 * (the timing simulator's per-core texture caches all bind to
 * `gpu.texture_cache`). Registration is idempotent — every cache
 * resolves to the one registered Scalar per counter — so N caches SUM
 * into the shared counters; they never overwrite each other. The
 * accessor methods read the shared Stat and therefore report the
 * group aggregate on such caches, not per-cache traffic.
 *
 * ## Hot-path counter batching
 *
 * accessDeferred() is access() minus the immediate registry update:
 * counter deltas accumulate in plain integer members and reach the
 * Scalars when flushStats() runs (the timing simulator flushes once
 * per frame, before harvest reads the registry). The accessors fold
 * pending deltas in, so they are always current. access() itself
 * publishes eagerly — code that reads the registry between accesses
 * (tests, the IMR model) keeps working unchanged. The flush adds
 * integer-valued deltas onto integer-valued doubles, which is exact
 * below 2^53, so totals are bit-identical either way.
 */

#ifndef MSIM_MEM_CACHE_HH
#define MSIM_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/stats.hh"
#include "sim/types.hh"

namespace msim::mem
{

struct CacheConfig
{
    std::uint64_t sizeBytes = 4 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 2;
    sim::Tick hitLatency = 1;
    std::uint32_t banks = 1;     // parallel banks (L2)
    bool writeThrough = false;
};

struct CacheAccess
{
    bool hit = false;
    bool writeback = false;     // evicted a dirty line
    sim::Addr victimLine = 0;   // line address written back
};

class Cache
{
  public:
    /** Standalone cache with a private stats registry. */
    explicit Cache(const CacheConfig &config);

    /** Cache whose counters live under @p stats in a shared registry. */
    Cache(const CacheConfig &config, obs::StatsGroup stats);

    CacheAccess access(sim::Addr addr, bool write);

    /**
     * Same state transition and counters as access(), but the counter
     * deltas stay pending until flushStats() — the per-access entry
     * point of the simulator hot loop. Inline: this is the single
     * most-called function in a timing run.
     */
    CacheAccess
    accessDeferred(sim::Addr addr, bool write)
    {
        const std::uint64_t line =
            linePow2_ ? addr >> lineShift_ : addr / config_.lineBytes;
        const std::size_t set = static_cast<std::size_t>(
            setsPow2_ ? line & setMask_ : line % numSets_);
        Line *ways = &lines_[set * config_.ways];

        ++pendAccesses_;

        if (ways2_) {
            // Two-way specialization: the LRU way is by construction
            // the non-MRU way (every hit or fill touches exactly one
            // way and marks it MRU), so no lru timestamps are needed
            // at all — a hit is two compares, and the victim on a
            // miss is mru ^ 1. A line is live only while its gen
            // matches gen_ (see invalidate()).
            const std::uint32_t m = mru_[set];
            Line &a = ways[m];
            if (a.gen == gen_ && a.tag == line) {
                if (write) {
                    a.dirty = !config_.writeThrough;
                    ++stateTick_;
                }
                ++pendHits_;
                return CacheAccess{true, false, 0};
            }
            Line &b = ways[m ^ 1u];
            if (b.gen == gen_ && b.tag == line) {
                if (write)
                    b.dirty = !config_.writeThrough;
                mru_[set] = m ^ 1u;
                ++stateTick_;
                ++pendHits_;
                return CacheAccess{true, false, 0};
            }
            return accessMiss(ways, set, line, write);
        }

        ++tick_;
        ++stateTick_;
        const std::size_t base = set * config_.ways;
        // MRU fast path: tags are unique within a set, so if the last
        // way that hit here matches, no other way can — skip the scan.
        Line &m = ways[mru_[set]];
        if (m.gen == gen_ && m.tag == line) {
            lru_[base + mru_[set]] = tick_;
            if (write)
                m.dirty = !config_.writeThrough;
            ++pendHits_;
            return CacheAccess{true, false, 0};
        }
        // Full hit scan, still inline: only a true miss (fill, victim
        // selection, writeback) leaves the fast path.
        for (std::uint32_t w = 0; w < config_.ways; ++w) {
            Line &l = ways[w];
            if (l.gen == gen_ && l.tag == line) {
                lru_[base + w] = tick_;
                if (write)
                    l.dirty = !config_.writeThrough;
                mru_[set] = w;
                ++pendHits_;
                return CacheAccess{true, false, 0};
            }
        }
        return accessMiss(ways, set, line, write);
    }

    /**
     * Hint that @p addr's set is about to be probed — prefetches the
     * tag lines into the host cache. Pure host-side optimization: no
     * simulated state or counter changes.
     */
    void
    prefetchSet(sim::Addr addr) const
    {
        const std::uint64_t line =
            linePow2_ ? addr >> lineShift_ : addr / config_.lineBytes;
        const std::size_t set = static_cast<std::size_t>(
            setsPow2_ ? line & setMask_ : line % numSets_);
        __builtin_prefetch(&lines_[set * config_.ways]);
    }

    /**
     * Access every line the byte range [addr, addr + bytes) spans, in
     * ascending line order — identical tag/LRU/counter effects to
     * calling access() per line. Returns the number of lines touched
     * and how many hit; writeback side effects are not reported (use
     * access() when the caller must chain victims down the hierarchy).
     */
    struct RangeResult
    {
        std::uint32_t lines = 0;
        std::uint32_t hits = 0;
    };
    RangeResult accessRange(sim::Addr addr, std::uint64_t bytes,
                            bool write);

    /**
     * Invalidate all lines (per-frame cold start). Keeps counters.
     * O(1): bumps the line generation, so every line's gen stops
     * matching; the rare 32-bit wrap falls back to a real clear.
     */
    void invalidate();

    /**
     * Publish pending counter deltas to the registry Scalars. Must run
     * before the registry is read directly (find()/dump()); the
     * accessors below need no flush. Exact: integer-valued adds.
     */
    void flushStats();

    const CacheConfig &config() const { return config_; }

    /** Line address (addr / lineBytes) via the pow2 fast path. */
    std::uint64_t
    lineOf(sim::Addr addr) const
    {
        return linePow2_ ? addr >> lineShift_
                         : addr / config_.lineBytes;
    }

    /**
     * Simulated-state mutation stamp: ticks on every fill, eviction,
     * MRU change, dirty-bit set or invalidate. An MRU-way READ hit —
     * the one access that mutates nothing — leaves it unchanged, so
     * stamp equality proves "no state change since" (the MSHR merge
     * protocol, see mem/mshr.hh). Only exact for 2-way caches (see
     * readHitIdempotent()); the generic path ticks on every access
     * because its LRU clock itself is simulated state.
     */
    std::uint64_t stateTick() const { return stateTick_; }

    /**
     * True when an MRU-way read hit provably changes no simulated
     * state: the 2-way specialization has no LRU timestamps to touch.
     * MSHR merging in front of this cache is only sound when true.
     */
    bool readHitIdempotent() const { return ways2_; }

    /**
     * Book a merged MSHR walk: the counter effects of the MRU-way
     * read hit the merged probe would have been, with no state or
     * stamp change. See mem/mshr.hh for the identity argument.
     */
    void
    noteMergedHit()
    {
        ++pendAccesses_;
        ++pendHits_;
    }

    /**
     * Fold modeled (fast-mem) traffic into the counters: @p accesses
     * accesses of which @p hits hit; the remainder books as misses.
     * Pure accounting — no tag state is touched.
     */
    void
    addModeled(std::uint64_t accesses, std::uint64_t hits)
    {
        pendAccesses_ += accesses;
        pendHits_ += hits;
        pendMisses_ += accesses - hits;
    }

    std::uint64_t accesses() const
    {
        return static_cast<std::uint64_t>(accesses_->value()) +
               pendAccesses_;
    }
    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_->value()) + pendHits_;
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_->value()) +
               pendMisses_;
    }
    std::uint64_t writebacks() const
    {
        return static_cast<std::uint64_t>(writebacks_->value()) +
               pendWritebacks_;
    }

  private:
    /**
     * 16 bytes, so a 2-way set is exactly 32 bytes of host memory and
     * a tag probe touches one host cache line. LRU timestamps (only
     * needed for ways > 2) live in the parallel lru_ array.
     */
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint32_t gen = 0;      // live iff gen == cache gen_
        bool dirty = false;
    };

    void bindStats(obs::StatsGroup stats);

    /** Miss path of accessDeferred(): victim selection + fill. */
    CacheAccess accessMiss(Line *ways, std::size_t set,
                           std::uint64_t line, bool write);

    CacheConfig config_;
    std::size_t numSets_;
    std::vector<Line> lines_;   // numSets_ x ways
    std::vector<std::uint64_t> lru_; // per-line LRU stamp (ways > 2)
    std::vector<std::uint32_t> mru_; // per-set most-recent way
    std::uint64_t tick_ = 0;    // LRU clock (generic path only)
    std::uint64_t stateTick_ = 0; // mutation stamp (see stateTick())
    std::uint32_t gen_ = 1;     // current line generation
    bool ways2_ = false;        // 2-way: lru-free hit/victim paths

    // Power-of-two fast paths (division/modulo -> shift/mask).
    std::uint32_t lineShift_ = 0;
    std::uint64_t setMask_ = 0;
    bool linePow2_ = false;
    bool setsPow2_ = false;

    // Deferred counter deltas (see flushStats()).
    std::uint64_t pendAccesses_ = 0;
    std::uint64_t pendHits_ = 0;
    std::uint64_t pendMisses_ = 0;
    std::uint64_t pendWritebacks_ = 0;

    std::unique_ptr<obs::StatsRegistry> ownRegistry_;
    obs::Scalar *accesses_ = nullptr;
    obs::Scalar *hits_ = nullptr;
    obs::Scalar *misses_ = nullptr;
    obs::Scalar *writebacks_ = nullptr;
};

} // namespace msim::mem

#endif // MSIM_MEM_CACHE_HH
