/**
 * @file
 * Set-associative, latency-annotated functional cache (LRU). Hit/miss
 * state updates synchronously; the caller charges latencies and sends
 * misses down the hierarchy. All counters live in an obs registry —
 * either one supplied by the owning simulator (so `l2.misses` shows up
 * in its stats tree and resets per frame) or a private one for
 * standalone use.
 */

#ifndef MSIM_MEM_CACHE_HH
#define MSIM_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/stats.hh"
#include "sim/types.hh"

namespace msim::mem
{

struct CacheConfig
{
    std::uint64_t sizeBytes = 4 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 2;
    sim::Tick hitLatency = 1;
    std::uint32_t banks = 1;     // parallel banks (L2)
    bool writeThrough = false;
};

struct CacheAccess
{
    bool hit = false;
    bool writeback = false;     // evicted a dirty line
    sim::Addr victimLine = 0;   // line address written back
};

class Cache
{
  public:
    /** Standalone cache with a private stats registry. */
    explicit Cache(const CacheConfig &config);

    /** Cache whose counters live under @p stats in a shared registry. */
    Cache(const CacheConfig &config, obs::StatsGroup stats);

    CacheAccess access(sim::Addr addr, bool write);

    /** Invalidate all lines (per-frame cold start). Keeps counters. */
    void invalidate();

    const CacheConfig &config() const { return config_; }

    std::uint64_t accesses() const
    {
        return static_cast<std::uint64_t>(accesses_->value());
    }
    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_->value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_->value());
    }
    std::uint64_t writebacks() const
    {
        return static_cast<std::uint64_t>(writebacks_->value());
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    void bindStats(obs::StatsGroup stats);

    CacheConfig config_;
    std::size_t numSets_;
    std::vector<Line> lines_;   // numSets_ x ways
    std::uint64_t tick_ = 0;    // LRU clock

    std::unique_ptr<obs::StatsRegistry> ownRegistry_;
    obs::Scalar *accesses_ = nullptr;
    obs::Scalar *hits_ = nullptr;
    obs::Scalar *misses_ = nullptr;
    obs::Scalar *writebacks_ = nullptr;
};

} // namespace msim::mem

#endif // MSIM_MEM_CACHE_HH
