#include "mem/cache.hh"

#include "sim/logging.hh"

namespace msim::mem
{

Cache::Cache(const CacheConfig &config)
    : config_(config),
      ownRegistry_(std::make_unique<obs::StatsRegistry>())
{
    const std::uint64_t numLines =
        config_.sizeBytes / config_.lineBytes;
    if (numLines == 0 || config_.ways == 0)
        sim::fatal("cache of %llu bytes / %u B lines is empty",
                   static_cast<unsigned long long>(config_.sizeBytes),
                   config_.lineBytes);
    numSets_ = static_cast<std::size_t>(
        numLines / config_.ways ? numLines / config_.ways : 1);
    lines_.resize(numSets_ * config_.ways);
    bindStats(ownRegistry_->group("cache"));
}

Cache::Cache(const CacheConfig &config, obs::StatsGroup stats)
    : Cache(config)
{
    ownRegistry_.reset();
    accesses_ = hits_ = misses_ = writebacks_ = nullptr;
    bindStats(stats);
}

void
Cache::bindStats(obs::StatsGroup stats)
{
    accesses_ = &stats.scalar("accesses", "total lookups");
    hits_ = &stats.scalar("hits", "lookups that hit");
    misses_ = &stats.scalar("misses", "lookups that missed");
    writebacks_ = &stats.scalar("writebacks",
                                "dirty lines evicted");
    obs::Scalar *hits = hits_, *accesses = accesses_;
    stats.formula(
        "miss_rate",
        [hits, accesses] {
            const double a = accesses->value();
            return a > 0.0 ? 1.0 - hits->value() / a : 0.0;
        },
        "misses / accesses");
}

CacheAccess
Cache::access(sim::Addr addr, bool write)
{
    const std::uint64_t line = addr / config_.lineBytes;
    const std::size_t set =
        static_cast<std::size_t>(line % numSets_);
    Line *ways = &lines_[set * config_.ways];

    ++*accesses_;
    ++tick_;

    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (ways[w].valid && ways[w].tag == line) {
            ways[w].lru = tick_;
            if (write)
                ways[w].dirty = !config_.writeThrough;
            ++*hits_;
            return CacheAccess{true, false, 0};
        }
    }

    // Miss: fill over the LRU way.
    ++*misses_;
    Line *victim = &ways[0];
    for (std::uint32_t w = 1; w < config_.ways; ++w)
        if (!ways[w].valid ||
            (victim->valid && ways[w].lru < victim->lru))
            victim = &ways[w];

    CacheAccess result{false, false, 0};
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimLine = victim->tag * config_.lineBytes;
        ++*writebacks_;
    }
    victim->valid = true;
    victim->tag = line;
    victim->lru = tick_;
    victim->dirty = write && !config_.writeThrough;
    return result;
}

void
Cache::invalidate()
{
    for (Line &line : lines_)
        line = Line{};
}

} // namespace msim::mem
