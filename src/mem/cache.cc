#include "mem/cache.hh"

#include "obs/attrib.hh"
#include "sim/logging.hh"

namespace msim::mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

std::uint32_t
log2u(std::uint64_t v)
{
    std::uint32_t n = 0;
    while (v >>= 1)
        ++n;
    return n;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config),
      ownRegistry_(std::make_unique<obs::StatsRegistry>())
{
    const std::uint64_t numLines =
        config_.sizeBytes / config_.lineBytes;
    if (numLines == 0 || config_.ways == 0)
        sim::fatal("cache of %llu bytes / %u B lines is empty",
                   static_cast<unsigned long long>(config_.sizeBytes),
                   config_.lineBytes);
    numSets_ = static_cast<std::size_t>(
        numLines / config_.ways ? numLines / config_.ways : 1);
    lines_.resize(numSets_ * config_.ways);
    lru_.assign(lines_.size(), 0);
    mru_.assign(numSets_, 0);
    linePow2_ = isPow2(config_.lineBytes);
    lineShift_ = linePow2_ ? log2u(config_.lineBytes) : 0;
    setsPow2_ = isPow2(numSets_);
    setMask_ = setsPow2_ ? numSets_ - 1 : 0;
    ways2_ = config_.ways == 2 && lines_.size() >= 2;
    bindStats(ownRegistry_->group("cache"));
}

Cache::Cache(const CacheConfig &config, obs::StatsGroup stats)
    : Cache(config)
{
    ownRegistry_.reset();
    accesses_ = hits_ = misses_ = writebacks_ = nullptr;
    bindStats(stats);
}

void
Cache::bindStats(obs::StatsGroup stats)
{
    accesses_ = &stats.scalar("accesses", "total lookups");
    hits_ = &stats.scalar("hits", "lookups that hit");
    misses_ = &stats.scalar("misses", "lookups that missed");
    writebacks_ = &stats.scalar("writebacks",
                                "dirty lines evicted");
    obs::Scalar *hits = hits_, *accesses = accesses_;
    stats.formula(
        "miss_rate",
        [hits, accesses] {
            const double a = accesses->value();
            return a > 0.0 ? 1.0 - hits->value() / a : 0.0;
        },
        "misses / accesses");
}

CacheAccess
Cache::accessMiss(Line *ways, std::size_t set, std::uint64_t line,
                  bool write)
{
    // Miss: fill over the LRU way.
    ++pendMisses_;
    ++stateTick_;
    Line *victim;
    if (ways2_) {
        // Same choice the lru scan below would make: prefer an
        // invalid way (way 1 when both are invalid, as the scan's
        // tie-break does), else the non-MRU way, which for 2-way is
        // exactly the LRU way.
        victim = ways[1].gen != gen_  ? &ways[1]
                 : ways[0].gen != gen_ ? &ways[0]
                                       : &ways[1u - mru_[set]];
    } else {
        const std::size_t base = set * config_.ways;
        victim = &ways[0];
        for (std::uint32_t w = 1; w < config_.ways; ++w)
            if (ways[w].gen != gen_ ||
                (victim->gen == gen_ &&
                 lru_[base + w] < lru_[base + (victim - ways)]))
                victim = &ways[w];
        lru_[base + (victim - ways)] = tick_;
    }

    CacheAccess result{false, false, 0};
    if (victim->gen == gen_ && victim->dirty) {
        result.writeback = true;
        result.victimLine = victim->tag * config_.lineBytes;
        ++pendWritebacks_;
    }
    victim->gen = gen_;
    victim->tag = line;
    victim->dirty = write && !config_.writeThrough;
    mru_[set] = static_cast<std::uint32_t>(victim - ways);
    return result;
}

CacheAccess
Cache::access(sim::Addr addr, bool write)
{
    // Standalone entry point (IMR model, tests): attribute the walk
    // here, since these callers never pass through the simulator's
    // memAccess scope. accessDeferred stays scope-free — in the hot
    // loop the enclosing chain already carries the MemWalk scope.
    obs::AttribScope memScope(obs::HostDomain::MemWalk);
    const CacheAccess result = accessDeferred(addr, write);
    flushStats();
    return result;
}

Cache::RangeResult
Cache::accessRange(sim::Addr addr, std::uint64_t bytes, bool write)
{
    obs::AttribScope memScope(obs::HostDomain::MemWalk);
    RangeResult r;
    if (bytes == 0)
        return r;
    const std::uint64_t lb = config_.lineBytes;
    const std::uint64_t first =
        linePow2_ ? addr >> lineShift_ : addr / lb;
    const std::uint64_t last = linePow2_
                                   ? (addr + bytes - 1) >> lineShift_
                                   : (addr + bytes - 1) / lb;
    for (std::uint64_t line = first; line <= last; ++line) {
        ++r.lines;
        if (accessDeferred(line * lb, write).hit)
            ++r.hits;
    }
    return r;
}

void
Cache::flushStats()
{
    if (pendAccesses_) {
        *accesses_ += static_cast<double>(pendAccesses_);
        pendAccesses_ = 0;
    }
    if (pendHits_) {
        *hits_ += static_cast<double>(pendHits_);
        pendHits_ = 0;
    }
    if (pendMisses_) {
        *misses_ += static_cast<double>(pendMisses_);
        pendMisses_ = 0;
    }
    if (pendWritebacks_) {
        *writebacks_ += static_cast<double>(pendWritebacks_);
        pendWritebacks_ = 0;
    }
}

void
Cache::invalidate()
{
    // O(1) cold start: lines are live only while their gen matches,
    // so bumping gen_ invalidates everything at once. On the (once
    // per 2^32 invalidates) wrap, really clear so no surviving line
    // can alias a recycled generation.
    ++stateTick_;
    if (++gen_ == 0) {
        for (Line &line : lines_)
            line = Line{};
        for (std::uint64_t &l : lru_)
            l = 0;
        gen_ = 1;
    }
}

} // namespace msim::mem
