#include "mem/fastmem.hh"

#include <cstdlib>

namespace msim::mem
{

namespace
{

std::uint32_t
envU32(const char *name, std::uint32_t fallback)
{
    if (const char *env = std::getenv(name))
        return static_cast<std::uint32_t>(std::atoll(env));
    return fallback;
}

} // namespace

FastMemConfig
FastMemConfig::fromEnv()
{
    FastMemConfig config;
    if (const char *env = std::getenv("MEGSIM_FAST_MEM"))
        config.enabled = env[0] != '\0' && env[0] != '0';
    config.calibrationWalks =
        envU32("MEGSIM_FAST_MEM_CALIB", config.calibrationWalks);
    config.probeEvery =
        envU32("MEGSIM_FAST_MEM_PROBE", config.probeEvery);
    config.auditEvery =
        envU32("MEGSIM_FAST_MEM_AUDIT", config.auditEvery);
    return config;
}

} // namespace msim::mem
