#include "resilience/fault.hh"

#include <csignal>
#include <cstdlib>
#include <sstream>

#include "obs/stats.hh"
#include "sim/logging.hh"

namespace msim::resilience
{

namespace
{

obs::Scalar &
injectedCounter(FaultClass cls)
{
    return obs::processRegistry().scalar(
        std::string("resilience.faults.") + faultClassName(cls),
        "faults injected");
}

Expected<FaultClass>
parseClass(const std::string &name)
{
    if (name == "io.read")
        return FaultClass::IoRead;
    if (name == "io.write")
        return FaultClass::IoWrite;
    if (name == "cache.corrupt")
        return FaultClass::CacheCorrupt;
    if (name == "frame.hang")
        return FaultClass::FrameHang;
    if (name == "run.kill")
        return FaultClass::RunKill;
    if (name == "worker.kill")
        return FaultClass::WorkerKill;
    if (name == "worker.hang")
        return FaultClass::WorkerHang;
    return errorf(Errc::BadFormat, "unknown fault class '%s'",
                  name.c_str());
}

std::string
trim(const std::string &text)
{
    std::size_t b = text.find_first_not_of(" \t");
    std::size_t e = text.find_last_not_of(" \t");
    if (b == std::string::npos)
        return "";
    return text.substr(b, e - b + 1);
}

Expected<FaultClause>
parseClause(const std::string &text)
{
    const std::size_t colon = text.find(':');
    const std::string name = trim(text.substr(0, colon));
    auto cls = parseClass(name);
    if (!cls)
        return cls.error();

    FaultClause clause;
    clause.cls = *cls;
    if (colon == std::string::npos)
        return clause;

    std::stringstream params(text.substr(colon + 1));
    std::string param;
    while (std::getline(params, param, ',')) {
        param = trim(param);
        if (param.empty())
            continue;
        const std::size_t eq = param.find('=');
        if (eq == std::string::npos)
            return errorf(Errc::BadFormat,
                          "fault '%s': parameter '%s' is not key=value",
                          name.c_str(), param.c_str());
        const std::string key = trim(param.substr(0, eq));
        const std::string value = trim(param.substr(eq + 1));
        if (key == "p") {
            clause.probability = std::atof(value.c_str());
        } else if (key == "seed") {
            clause.seed = static_cast<std::uint64_t>(
                std::atoll(value.c_str()));
        } else if (key == "frame") {
            clause.frame = static_cast<std::uint64_t>(
                std::atoll(value.c_str()));
        } else if (key == "shard") {
            clause.shard = static_cast<std::uint64_t>(
                std::atoll(value.c_str()));
        } else if (key == "times") {
            clause.times = static_cast<std::uint64_t>(
                std::atoll(value.c_str()));
        } else if (key == "path" || key == "kind" || key == "site") {
            clause.match = value;
        } else {
            return errorf(Errc::BadFormat,
                          "fault '%s': unknown parameter '%s'",
                          name.c_str(), key.c_str());
        }
    }
    return clause;
}

} // namespace

FaultInjector::FaultInjector(const FaultInjector &other)
    : armed_(other.armed_)
{}

FaultInjector &
FaultInjector::operator=(const FaultInjector &other)
{
    if (this != &other) {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_ = other.armed_;
    }
    return *this;
}

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::IoRead: return "io_read";
      case FaultClass::IoWrite: return "io_write";
      case FaultClass::CacheCorrupt: return "cache_corrupt";
      case FaultClass::FrameHang: return "frame_hang";
      case FaultClass::RunKill: return "run_kill";
      case FaultClass::WorkerKill: return "worker_kill";
      case FaultClass::WorkerHang: return "worker_hang";
    }
    return "?";
}

Expected<FaultInjector>
FaultInjector::parse(const std::string &spec)
{
    FaultInjector injector;
    std::stringstream clauses(spec);
    std::string text;
    while (std::getline(clauses, text, ';')) {
        text = trim(text);
        if (text.empty())
            continue;
        auto clause = parseClause(text);
        if (!clause)
            return clause.error();
        injector.armed_.emplace_back(*clause);
    }
    return injector;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector = [] {
        const char *env = std::getenv("MEGSIM_FAULTS");
        if (!env || !*env)
            return FaultInjector();
        auto parsed = parse(env);
        if (!parsed.ok()) {
            sim::warn("MEGSIM_FAULTS ignored: %s",
                      parsed.error().message.c_str());
            return FaultInjector();
        }
        sim::inform("fault injection armed: %s", env);
        return *parsed;
    }();
    return injector;
}

void
FaultInjector::setGlobalSpec(const std::string &spec)
{
    auto parsed = parse(spec);
    if (!parsed.ok()) {
        sim::warn("fault spec ignored: %s",
                  parsed.error().message.c_str());
        global() = FaultInjector();
        return;
    }
    global() = *parsed;
}

bool
FaultInjector::roll(Armed &armed, const std::string &subject)
{
    if (!armed.clause.match.empty() &&
        subject.find(armed.clause.match) == std::string::npos)
        return false;
    if (armed.clause.probability < 1.0 &&
        armed.rng.uniform() >= armed.clause.probability)
        return false;
    ++injectedCounter(armed.clause.cls);
    return true;
}

bool
FaultInjector::failRead(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_)
        if (armed.clause.cls == FaultClass::IoRead &&
            roll(armed, path))
            return true;
    return false;
}

bool
FaultInjector::failWrite(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_)
        if (armed.clause.cls == FaultClass::IoWrite &&
            roll(armed, path))
            return true;
    return false;
}

bool
FaultInjector::corruptCache(const std::string &kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_)
        if (armed.clause.cls == FaultClass::CacheCorrupt &&
            roll(armed, kind))
            return true;
    return false;
}

bool
FaultInjector::hangFrame(std::uint64_t frame)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_) {
        if (armed.clause.cls != FaultClass::FrameHang)
            continue;
        if (armed.clause.frame != ~0ULL) {
            if (armed.clause.frame == frame && roll(armed, ""))
                return true;
        } else if (roll(armed, "")) {
            return true;
        }
    }
    return false;
}

void
FaultInjector::maybeKillAfterFrame(std::uint64_t frame)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_) {
        if (armed.clause.cls != FaultClass::RunKill ||
            armed.clause.frame != frame)
            continue;
        ++injectedCounter(armed.clause.cls);
        sim::warn("fault run.kill: dying after frame %llu",
                  static_cast<unsigned long long>(frame));
        std::raise(SIGKILL);
    }
}

void
FaultInjector::maybeKillAtSite(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_) {
        if (armed.clause.cls != FaultClass::RunKill ||
            armed.clause.match.empty() ||
            site.find(armed.clause.match) == std::string::npos)
            continue;
        ++injectedCounter(armed.clause.cls);
        sim::warn("fault run.kill: dying at site '%s'", site.c_str());
        std::raise(SIGKILL);
    }
}

bool
FaultInjector::workerRoll(Armed &armed, FaultClass cls,
                          std::uint64_t shard, std::uint64_t attempt)
{
    const FaultClause &c = armed.clause;
    if (c.cls != cls)
        return false;
    if (c.shard != ~0ULL && c.shard != shard)
        return false;
    if (c.times != ~0ULL && attempt >= c.times)
        return false;
    if (c.probability < 1.0) {
        // Pure function of (seed, shard, attempt) — no RNG stream to
        // advance, so a freshly forked worker rolls the identical
        // outcome for the identical shard attempt.
        const std::uint64_t h = sim::hashMix(c.seed, shard, attempt);
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;
        if (u >= c.probability)
            return false;
    }
    ++injectedCounter(c.cls);
    return true;
}

bool
FaultInjector::killWorker(std::uint64_t shard, std::uint64_t attempt)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_)
        if (workerRoll(armed, FaultClass::WorkerKill, shard, attempt))
            return true;
    return false;
}

bool
FaultInjector::hangWorker(std::uint64_t shard, std::uint64_t attempt)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Armed &armed : armed_)
        if (workerRoll(armed, FaultClass::WorkerHang, shard, attempt))
            return true;
    return false;
}

} // namespace msim::resilience
