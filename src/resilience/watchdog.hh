/**
 * @file
 * Per-frame simulation budgets shared by the watchdog-guarded
 * simulators (resilience/degrade.hh) and the ground-truth pass
 * (core/megsim.hh). Split out so core headers don't pull in the whole
 * degradation layer.
 */

#ifndef MSIM_RESILIENCE_WATCHDOG_HH
#define MSIM_RESILIENCE_WATCHDOG_HH

#include <cstdint>

namespace msim::resilience
{

/** Per-frame simulation budgets; 0 disables a check. */
struct WatchdogConfig
{
    double wallBudgetSeconds = 0.0;
    std::uint64_t cycleBudget = 0;

    /**
     * MEGSIM_FRAME_BUDGET_MS caps per-frame wall time,
     * MEGSIM_FRAME_CYCLE_BUDGET caps simulated cycles.
     */
    static WatchdogConfig fromEnv();
};

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_WATCHDOG_HH
