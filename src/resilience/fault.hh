/**
 * @file
 * Deterministic fault injection for exercising recovery paths.
 *
 * Faults are described by the MEGSIM_FAULTS environment variable: a
 * `;`-separated list of clauses, each `class[:key=value[,key=value]]`.
 *
 *   class          keys                  effect
 *   io.read        p, seed, path         file reads fail
 *   io.write       p, seed, path         file writes fail
 *   cache.corrupt  p, seed, kind         cache artifact loads report
 *                                        a checksum mismatch
 *   frame.hang     frame | p, seed       a frame blows its watchdog
 *                                        budget (simulated timeout)
 *   run.kill       frame | site          raise(SIGKILL) right after
 *                                        frame N is checkpointed, or
 *                                        when execution passes the
 *                                        named kill site (substring
 *                                        match, e.g. `site=ckpt.discard`)
 *   worker.kill    p, seed, shard, times a supervised serve worker
 *                                        dies (SIGKILL) right after
 *                                        its first fresh frame commit
 *                                        of the targeted shard attempt
 *   worker.hang    p, seed, shard, times a supervised serve worker
 *                                        stalls past its shard
 *                                        deadline instead of replying
 *
 * `p` is an independent per-site probability (default 1), `seed` makes
 * the dice deterministic (default 1), `path`/`kind` are substring
 * filters. `shard=K` targets one shard id (default: every shard) and
 * `times=N` fires on attempts 0..N-1 only (default: every attempt), so
 * `worker.kill:shard=2,times=1` kills shard 2's first attempt exactly
 * once and `worker.kill:shard=2` is a permanent poison shard.
 * Injections are counted in the process-wide stats registry under
 * `resilience.faults.*`.
 *
 * Thread safety: the query methods are safe to call from exec::Pool
 * workers (a mutex guards the per-clause RNG state). Frame-targeted
 * clauses (`frame=N`) stay fully deterministic at any thread count.
 * Probabilistic clauses (`p<1`) draw from one shared RNG stream, so
 * WHICH call site receives a given draw depends on scheduling; their
 * injection sequence is reproducible only at MEGSIM_THREADS=1 — with
 * the exception of the worker.* classes, whose dice are a pure hash of
 * (seed, shard, attempt): a freshly forked worker re-rolls the exact
 * same outcome for the same shard attempt, which is what makes the
 * supervision recovery paths deterministic across respawns.
 */

#ifndef MSIM_RESILIENCE_FAULT_HH
#define MSIM_RESILIENCE_FAULT_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/expected.hh"
#include "sim/random.hh"

namespace msim::resilience
{

enum class FaultClass {
    IoRead,
    IoWrite,
    CacheCorrupt,
    FrameHang,
    RunKill,
    WorkerKill,
    WorkerHang,
};

const char *faultClassName(FaultClass cls);

struct FaultClause
{
    FaultClass cls = FaultClass::IoRead;
    double probability = 1.0;
    std::uint64_t seed = 1;
    std::string match;                  // path/kind/site substring
    std::uint64_t frame = ~0ULL;        // frame.hang / run.kill target
    std::uint64_t shard = ~0ULL;        // worker.* target (~0 = any)
    std::uint64_t times = ~0ULL;        // worker.* attempt cap (~0 = all)
};

class FaultInjector
{
  public:
    FaultInjector() = default;
    FaultInjector(const FaultInjector &other);
    FaultInjector &operator=(const FaultInjector &other);

    /** Parse a MEGSIM_FAULTS spec; empty spec = no faults. */
    static Expected<FaultInjector> parse(const std::string &spec);

    /** Process-wide injector, parsed from MEGSIM_FAULTS on first use. */
    static FaultInjector &global();

    /**
     * Replace the global injector's spec (tests, tools). Warns and
     * arms nothing when the spec does not parse.
     */
    static void setGlobalSpec(const std::string &spec);

    bool enabled() const { return !armed_.empty(); }
    std::size_t clauseCount() const { return armed_.size(); }

    /** Should a read of @p path fail right now? */
    bool failRead(const std::string &path);

    /** Should a write of @p path fail right now? */
    bool failWrite(const std::string &path);

    /** Should a cache artifact of @p kind load as corrupted? */
    bool corruptCache(const std::string &kind);

    /** Should @p frame be treated as hung (watchdog timeout)? */
    bool hangFrame(std::uint64_t frame);

    /** Die (SIGKILL) if a run.kill clause targets @p frame. */
    void maybeKillAfterFrame(std::uint64_t frame);

    /**
     * Die (SIGKILL) if a run.kill clause's `site=` filter matches
     * @p site — the hook the checkpoint discard-ordering regression
     * test uses to kill a run between the cache store and the journal
     * discard.
     */
    void maybeKillAtSite(const std::string &site);

    /**
     * Should the worker running attempt @p attempt of shard @p shard
     * die right after its first fresh frame commit? A pure function
     * of the clause seed and (shard, attempt): a respawned worker
     * re-rolls the same outcome, so recovery is deterministic.
     */
    bool killWorker(std::uint64_t shard, std::uint64_t attempt);

    /** Same targeting as killWorker(), for a stall past the shard
     *  deadline instead of a death. */
    bool hangWorker(std::uint64_t shard, std::uint64_t attempt);

  private:
    struct Armed
    {
        FaultClause clause;
        sim::Rng rng;

        explicit Armed(const FaultClause &c)
            : clause(c), rng(c.seed)
        {}
    };

    bool roll(Armed &armed, const std::string &subject);
    bool workerRoll(Armed &armed, FaultClass cls, std::uint64_t shard,
                    std::uint64_t attempt);

    // Guards armed_ (RNG draws mutate per-clause state); the injector
    // is queried from pool workers during the ground-truth pass.
    mutable std::mutex mutex_;
    std::vector<Armed> armed_;
};

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_FAULT_HH
