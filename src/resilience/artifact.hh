/**
 * @file
 * Integrity-checked on-disk artifacts.
 *
 * Every persistent cache CSV gains a one-line header:
 *
 *   # megsim-artifact v1 fingerprint=<16hex> checksum=<16hex> rows=<n>
 *
 * where the fingerprint keys the artifact to its scene/config and the
 * checksum covers the CSV payload that follows. Writes are atomic
 * (temp file + rename), so readers never observe a half-written
 * artifact; loads verify version, fingerprint, row count and checksum
 * and return a structured error instead of trusting a truncated or
 * bit-flipped file. Detected corruption is counted under
 * `resilience.cache.*` in the process-wide stats registry.
 */

#ifndef MSIM_RESILIENCE_ARTIFACT_HH
#define MSIM_RESILIENCE_ARTIFACT_HH

#include <cstdint>
#include <string>

#include "resilience/expected.hh"
#include "util/csv.hh"

namespace msim::resilience
{

/** Read a whole file; consults the io.read fault hook. */
Expected<std::string> readFileToString(const std::string &path);

/**
 * Write @p content to @p path via a temp file in the same directory
 * plus an atomic rename; consults the io.write fault hook.
 */
Expected<void> atomicWriteFile(const std::string &path,
                               const std::string &content);

/**
 * Write @p table as a checksummed artifact keyed by @p fingerprint.
 * @p kind is a short tag ("stats", "activity") used for logging and
 * fault matching.
 */
Expected<void> writeCsvArtifact(const std::string &path,
                                const util::CsvTable &table,
                                std::uint64_t fingerprint,
                                const std::string &kind);

/**
 * Load an artifact written by writeCsvArtifact, verifying version,
 * fingerprint, row count and checksum. NotFound is benign (cache
 * miss); every other error means the file exists but cannot be
 * trusted.
 */
Expected<util::CsvTable> readCsvArtifact(const std::string &path,
                                         std::uint64_t fingerprint,
                                         const std::string &kind);

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_ARTIFACT_HH
