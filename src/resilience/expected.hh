/**
 * @file
 * Lightweight Expected<T> result type for structured error
 * propagation. Loaders (trace/scene/cache artifacts, checkpoint
 * manifests, benchmark lookup) return Expected instead of calling
 * sim::fatal, so callers decide between graceful degradation
 * (regenerate a cache, fall back to another representative) and a
 * clean exit with a usable message.
 */

#ifndef MSIM_RESILIENCE_EXPECTED_HH
#define MSIM_RESILIENCE_EXPECTED_HH

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

namespace msim::resilience
{

/** Error categories: every recovery path switches on one of these. */
enum class Errc {
    Io,             // read/write syscall-level failure
    NotFound,       // the artifact simply does not exist (benign)
    Truncated,      // fewer rows/bytes than the header promised
    BadVersion,     // artifact format version mismatch
    BadFingerprint, // scene/config fingerprint mismatch (stale)
    BadChecksum,    // content checksum mismatch (corruption)
    BadFormat,      // unparseable structure
    UnknownAlias,   // benchmark alias lookup failed
    FrameTimeout,   // a frame blew its watchdog budget
    Exhausted,      // every fallback in a cluster failed
    Injected,       // failure produced by the fault-injection layer
    Busy,           // a bounded resource is at capacity (backpressure)
};

const char *errcName(Errc code);

struct Error
{
    Errc code = Errc::Io;
    std::string message;
};

/** printf-style Error constructor. */
Error errorf(Errc code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Holds either a T or an Error. Deliberately minimal (no monadic
 * chaining): check ok(), then value() or error().
 */
template <typename T> class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    T &value() { return *value_; }
    const T &value() const { return *value_; }
    T &operator*() { return *value_; }
    const T &operator*() const { return *value_; }
    T *operator->() { return &*value_; }
    const T *operator->() const { return &*value_; }

    const Error &error() const { return error_; }

  private:
    std::optional<T> value_;
    Error error_;
};

template <> class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : error_(std::move(error)), ok_(false) {}

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    const Error &error() const { return error_; }

  private:
    Error error_;
    bool ok_ = true;
};

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_EXPECTED_HH
