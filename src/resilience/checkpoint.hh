/**
 * @file
 * Checkpoint/resume for long simulation passes.
 *
 * A checkpoint is three files next to the cache artifacts:
 *
 *   <stem>.ckpt.manifest      versioned, atomically rewritten after
 *                             every committed frame:
 *                               megsim-checkpoint v1
 *                               fingerprint <16hex>
 *                               total <N> stats_cols <k> activity_cols <m>
 *                               frames <n>
 *   <stem>.ckpt.stats.jnl     one line per completed frame: the
 *   <stem>.ckpt.activity.jnl  CSV row plus `#<16hex>` FNV-1a line
 *                             checksum, appended + flushed
 *
 * A killed run leaves at worst one torn journal line past the last
 * manifest commit; resume() recovers the longest prefix that is valid
 * in both journals AND committed by the manifest, truncates the
 * journals back to it, and the pass continues from there. Because
 * every frame simulates cold (order-independent), a resumed run is
 * bit-identical to an uninterrupted one.
 */

#ifndef MSIM_RESILIENCE_CHECKPOINT_HH
#define MSIM_RESILIENCE_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "resilience/expected.hh"

namespace msim::resilience
{

class Checkpoint
{
  public:
    /**
     * @p stem is the directory + artifact stem the checkpoint files
     * hang off; @p fingerprint keys the checkpoint to its scene and
     * GPU config; the column counts validate journal rows.
     */
    Checkpoint(std::string stem, std::uint64_t fingerprint,
               std::size_t totalFrames, std::size_t statsCols,
               std::size_t activityCols);

    /**
     * Recover a previous run's progress. Returns the number of
     * completed frames recovered (0 when there is no usable
     * checkpoint); their rows are in statsRows()/activityRows().
     * Also opens the journals for appending.
     */
    std::size_t resume();

    const std::vector<std::vector<double>> &statsRows() const
    {
        return statsRows_;
    }

    const std::vector<std::vector<double>> &activityRows() const
    {
        return activityRows_;
    }

    /** Journal one completed frame, then commit the manifest. */
    void append(const std::vector<double> &statsRow,
                const std::vector<double> &activityRow);

    /** Delete the checkpoint files (pass finished or state unusable). */
    void discard();

    std::size_t frames() const { return frames_; }
    bool writable() const { return !writeFailed_; }

    std::string manifestPath() const { return stem_ + ".ckpt.manifest"; }
    std::string statsJournalPath() const
    {
        return stem_ + ".ckpt.stats.jnl";
    }
    std::string activityJournalPath() const
    {
        return stem_ + ".ckpt.activity.jnl";
    }

  private:
    void commitManifest();
    void failWrites(const char *what);

    std::string stem_;
    std::uint64_t fingerprint_;
    std::size_t totalFrames_;
    std::size_t statsCols_;
    std::size_t activityCols_;

    std::vector<std::vector<double>> statsRows_;
    std::vector<std::vector<double>> activityRows_;
    std::ofstream statsJnl_;
    std::ofstream activityJnl_;
    std::size_t frames_ = 0;
    bool writeFailed_ = false;
};

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_CHECKPOINT_HH
