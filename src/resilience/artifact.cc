#include "resilience/artifact.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/stats.hh"
#include "resilience/checksum.hh"
#include "resilience/fault.hh"
#include "sim/logging.hh"

namespace msim::resilience
{

namespace
{

constexpr std::uint32_t kArtifactVersion = 1;

obs::Scalar &
counter(const char *name, const char *desc)
{
    return obs::processRegistry().scalar(
        std::string("resilience.cache.") + name, desc);
}

Error
countCorrupt(Error error, const std::string &path,
             const std::string &kind)
{
    ++counter("corrupt_detected",
              "cache artifacts rejected by integrity checks");
    sim::warn("%s cache '%s' rejected: %s", kind.c_str(),
              path.c_str(), error.message.c_str());
    return error;
}

} // namespace

Expected<std::string>
readFileToString(const std::string &path)
{
    if (FaultInjector::global().failRead(path))
        return errorf(Errc::Injected, "injected read failure on '%s'",
                      path.c_str());
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (!std::filesystem::exists(path))
            return errorf(Errc::NotFound, "'%s' does not exist",
                          path.c_str());
        return errorf(Errc::Io, "cannot open '%s' for reading",
                      path.c_str());
    }
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad())
        return errorf(Errc::Io, "error reading '%s'", path.c_str());
    return content.str();
}

Expected<void>
atomicWriteFile(const std::string &path, const std::string &content)
{
    if (FaultInjector::global().failWrite(path))
        return errorf(Errc::Injected, "injected write failure on '%s'",
                      path.c_str());
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return errorf(Errc::Io, "cannot open '%s' for writing",
                          tmp.c_str());
        out << content;
        out.flush();
        if (!out)
            return errorf(Errc::Io, "error writing '%s'", tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return errorf(Errc::Io, "cannot rename '%s' into place: %s",
                      tmp.c_str(), ec.message().c_str());
    }
    return {};
}

Expected<void>
writeCsvArtifact(const std::string &path, const util::CsvTable &table,
                 std::uint64_t fingerprint, const std::string &kind)
{
    const std::string payload = util::csvToString(table);
    char header[128];
    std::snprintf(header, sizeof(header),
                  "# megsim-artifact v%" PRIu32
                  " fingerprint=%016" PRIx64 " checksum=%016" PRIx64
                  " rows=%zu\n",
                  kArtifactVersion, fingerprint, fnv1a(payload),
                  table.rows.size());
    auto written = atomicWriteFile(path, header + payload);
    if (!written.ok()) {
        ++counter("write_failures", "cache artifact writes that failed");
        sim::warn("cannot store %s cache '%s': %s", kind.c_str(),
                  path.c_str(), written.error().message.c_str());
        return written;
    }
    return {};
}

Expected<util::CsvTable>
readCsvArtifact(const std::string &path, std::uint64_t fingerprint,
                const std::string &kind)
{
    auto content = readFileToString(path);
    if (!content.ok())
        return content.error();
    if (FaultInjector::global().corruptCache(kind))
        return countCorrupt(errorf(Errc::Injected,
                                   "injected cache corruption"),
                            path, kind);

    const std::string &text = *content;
    const std::size_t eol = text.find('\n');
    if (eol == std::string::npos)
        return countCorrupt(
            errorf(Errc::BadFormat, "missing artifact header"), path,
            kind);

    const std::string headerLine = text.substr(0, eol);
    std::uint32_t version = 0;
    std::uint64_t storedFingerprint = 0, storedChecksum = 0;
    std::size_t rows = 0;
    if (std::sscanf(headerLine.c_str(),
                    "# megsim-artifact v%" SCNu32
                    " fingerprint=%" SCNx64 " checksum=%" SCNx64
                    " rows=%zu",
                    &version, &storedFingerprint, &storedChecksum,
                    &rows) != 4)
        return countCorrupt(
            errorf(Errc::BadFormat, "unparseable artifact header"),
            path, kind);
    if (version != kArtifactVersion)
        return countCorrupt(
            errorf(Errc::BadVersion,
                   "artifact version %u, expected %u", version,
                   kArtifactVersion),
            path, kind);
    if (storedFingerprint != fingerprint)
        return countCorrupt(
            errorf(Errc::BadFingerprint,
                   "fingerprint %016llx does not match expected %016llx",
                   static_cast<unsigned long long>(storedFingerprint),
                   static_cast<unsigned long long>(fingerprint)),
            path, kind);

    const std::string payload = text.substr(eol + 1);
    util::CsvTable table;
    if (!util::csvFromString(payload, table))
        return countCorrupt(
            errorf(Errc::BadFormat, "unparseable CSV payload"), path,
            kind);
    if (table.rows.size() < rows)
        return countCorrupt(
            errorf(Errc::Truncated, "%zu rows on disk, header says %zu",
                   table.rows.size(), rows),
            path, kind);
    if (fnv1a(payload) != storedChecksum)
        return countCorrupt(
            errorf(Errc::BadChecksum, "payload checksum mismatch"),
            path, kind);
    return table;
}

} // namespace msim::resilience
