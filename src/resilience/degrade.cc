#include "resilience/degrade.hh"

#include <cstdlib>

#include "obs/profile.hh"
#include "obs/stats.hh"
#include "resilience/fault.hh"
#include "sim/logging.hh"

namespace msim::resilience
{

namespace
{

obs::Scalar &
counter(const char *name, const char *desc)
{
    return obs::processRegistry().scalar(
        std::string("resilience.degrade.") + name, desc);
}

} // namespace

WatchdogConfig
WatchdogConfig::fromEnv()
{
    WatchdogConfig config;
    if (const char *env = std::getenv("MEGSIM_FRAME_BUDGET_MS"))
        config.wallBudgetSeconds = std::atof(env) / 1000.0;
    if (const char *env = std::getenv("MEGSIM_FRAME_CYCLE_BUDGET"))
        config.cycleBudget =
            static_cast<std::uint64_t>(std::atoll(env));
    return config;
}

GuardedFrameSimulator::GuardedFrameSimulator(
    const gfx::SceneTrace &scene, const gpusim::GpuConfig &config,
    WatchdogConfig watchdog)
    : scene_(&scene), binding_(scene), timing_(config, binding_),
      watchdog_(watchdog)
{}

Expected<gpusim::FrameStats>
GuardedFrameSimulator::simulate(std::size_t frameIndex)
{
    if (frameIndex >= scene_->numFrames())
        return errorf(Errc::BadFormat,
                      "frame %zu outside the %zu-frame scene",
                      frameIndex, scene_->numFrames());
    if (FaultInjector::global().hangFrame(frameIndex))
        return errorf(Errc::FrameTimeout,
                      "frame %zu hung (injected)", frameIndex);

    const gpusim::FrameStats stats =
        timing_.simulate(scene_->frames[frameIndex]);
    if (watchdog_.wallBudgetSeconds > 0.0 &&
        timing_.lastFrameWallSeconds() > watchdog_.wallBudgetSeconds)
        return errorf(Errc::FrameTimeout,
                      "frame %zu took %.3fs, budget %.3fs", frameIndex,
                      timing_.lastFrameWallSeconds(),
                      watchdog_.wallBudgetSeconds);
    if (watchdog_.cycleBudget > 0 && stats.cycles > watchdog_.cycleBudget)
        return errorf(Errc::FrameTimeout,
                      "frame %zu ran %llu cycles, budget %llu",
                      frameIndex,
                      static_cast<unsigned long long>(stats.cycles),
                      static_cast<unsigned long long>(
                          watchdog_.cycleBudget));
    return stats;
}

Expected<ResilientEstimate>
estimateWithDegradation(
    const megsim::RankedClusters &ranked, gpusim::Metric metric,
    const std::function<Expected<gpusim::FrameStats>(std::size_t)>
        &simulateFrame)
{
    ResilientEstimate estimate;
    for (std::size_t cl = 0; cl < ranked.members.size(); ++cl) {
        bool served = false;
        for (std::size_t rank = 0; rank < ranked.members[cl].size();
             ++rank) {
            const std::size_t frame = ranked.members[cl][rank];
            auto stats = simulateFrame(frame);
            if (!stats.ok()) {
                ++estimate.report.quarantined;
                estimate.report.quarantinedFrames.push_back(frame);
                ++counter("quarantined",
                          "representative frames quarantined");
                sim::warn("frame %zu quarantined (%s): %s", frame,
                          errcName(stats.error().code),
                          stats.error().message.c_str());
                continue;
            }
            ++estimate.report.simulated;
            if (rank > 0) {
                ++estimate.report.fallbacks;
                ++counter("fallbacks",
                          "clusters served by a fallback member");
                sim::inform("cluster %zu degraded to its rank-%zu "
                            "member (frame %zu)",
                            cl, rank, frame);
            }
            estimate.total += ranked.weights[cl] *
                              gpusim::metricValue(*stats, metric);
            estimate.frames.push_back(frame);
            estimate.weights.push_back(ranked.weights[cl]);
            ++estimate.report.clusters;
            served = true;
            break;
        }
        if (!served && !ranked.members[cl].empty()) {
            ++estimate.report.exhausted;
            ++counter("exhausted_clusters",
                      "clusters with no usable member");
            sim::warn("cluster %zu exhausted all %zu members; dropped "
                      "from the estimate",
                      cl, ranked.members[cl].size());
        }
    }
    if (estimate.frames.empty())
        return errorf(Errc::Exhausted,
                      "every cluster exhausted its members; no "
                      "estimate possible");
    return estimate;
}

Expected<ResilientEstimate>
estimateResilient(megsim::MegsimPipeline &pipeline,
                  const megsim::MegsimRun &run, gpusim::Metric metric,
                  const WatchdogConfig &watchdog)
{
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "representatives");
    const megsim::RankedClusters ranked = megsim::rankClusterMembers(
        pipeline.projectedFeatures(), run.selection.chosen());
    GuardedFrameSimulator sim(pipeline.data().scene(),
                              pipeline.data().config(), watchdog);
    return estimateWithDegradation(
        ranked, metric, [&](std::size_t frame) {
            return sim.simulate(frame);
        });
}

} // namespace msim::resilience
