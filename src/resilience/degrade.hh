/**
 * @file
 * Watchdog-guarded representative simulation with graceful
 * degradation.
 *
 * MEGsim's estimate only needs *a* frame near each cluster centroid.
 * When a representative frame exceeds its per-frame watchdog budget
 * (wall-clock or cycles) or fails under fault injection, it is
 * quarantined and the cluster falls back to the next-closest member;
 * only a cluster whose every member fails is dropped from the
 * estimate. All degradation is counted under `resilience.degrade.*`
 * in the process-wide stats registry.
 */

#ifndef MSIM_RESILIENCE_DEGRADE_HH
#define MSIM_RESILIENCE_DEGRADE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/megsim.hh"
#include "gpusim/timing_simulator.hh"
#include "resilience/expected.hh"
#include "resilience/watchdog.hh"

namespace msim::resilience
{

/**
 * Simulates single frames under a watchdog. A frame targeted by a
 * `frame.hang` fault, or one that blows a budget, reports
 * FrameTimeout instead of returning stats.
 */
class GuardedFrameSimulator
{
  public:
    GuardedFrameSimulator(const gfx::SceneTrace &scene,
                          const gpusim::GpuConfig &config,
                          WatchdogConfig watchdog =
                              WatchdogConfig::fromEnv());

    Expected<gpusim::FrameStats> simulate(std::size_t frameIndex);

  private:
    const gfx::SceneTrace *scene_;
    gpusim::SceneBinding binding_;
    gpusim::TimingSimulator timing_;
    WatchdogConfig watchdog_;
};

struct DegradationReport
{
    std::size_t clusters = 0;        // clusters in the estimate
    std::size_t simulated = 0;       // frames simulated successfully
    std::size_t quarantined = 0;     // frames that failed
    std::size_t fallbacks = 0;       // clusters served by a non-first
                                     // representative
    std::size_t exhausted = 0;       // clusters with no usable member
    std::vector<std::size_t> quarantinedFrames;

    bool degraded() const { return quarantined > 0 || exhausted > 0; }
};

/** A metric estimate that survived (possibly degraded) simulation. */
struct ResilientEstimate
{
    double total = 0.0;
    std::vector<std::size_t> frames; // representative used per cluster
    std::vector<double> weights;
    DegradationReport report;
};

/**
 * Estimate the weighted total of @p metric over ranked clusters,
 * falling back within each cluster as frames fail. Errors only when
 * every cluster is exhausted.
 */
Expected<ResilientEstimate> estimateWithDegradation(
    const megsim::RankedClusters &ranked, gpusim::Metric metric,
    const std::function<Expected<gpusim::FrameStats>(std::size_t)>
        &simulateFrame);

/**
 * Convenience driver: run the full degradation-aware representative
 * pass for an already-clustered @p run of @p pipeline.
 */
Expected<ResilientEstimate> estimateResilient(
    megsim::MegsimPipeline &pipeline, const megsim::MegsimRun &run,
    gpusim::Metric metric,
    const WatchdogConfig &watchdog = WatchdogConfig::fromEnv());

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_DEGRADE_HH
