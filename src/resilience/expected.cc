#include "resilience/expected.hh"

namespace msim::resilience
{

const char *
errcName(Errc code)
{
    switch (code) {
      case Errc::Io: return "io";
      case Errc::NotFound: return "not-found";
      case Errc::Truncated: return "truncated";
      case Errc::BadVersion: return "bad-version";
      case Errc::BadFingerprint: return "bad-fingerprint";
      case Errc::BadChecksum: return "bad-checksum";
      case Errc::BadFormat: return "bad-format";
      case Errc::UnknownAlias: return "unknown-alias";
      case Errc::FrameTimeout: return "frame-timeout";
      case Errc::Exhausted: return "exhausted";
      case Errc::Injected: return "injected";
      case Errc::Busy: return "busy";
    }
    return "?";
}

Error
errorf(Errc code, const char *fmt, ...)
{
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return Error{code, buf};
}

} // namespace msim::resilience
