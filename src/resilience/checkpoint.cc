#include "resilience/checkpoint.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "obs/stats.hh"
#include "resilience/artifact.hh"
#include "resilience/checksum.hh"
#include "resilience/fault.hh"
#include "sim/logging.hh"

namespace msim::resilience
{

namespace
{

constexpr std::uint32_t kCheckpointVersion = 1;

obs::Scalar &
counter(const char *name, const char *desc)
{
    return obs::processRegistry().scalar(
        std::string("resilience.checkpoint.") + name, desc);
}

std::string
journalLine(const std::vector<double> &row)
{
    std::string payload;
    char buf[64];
    for (std::size_t c = 0; c < row.size(); ++c) {
        std::snprintf(buf, sizeof(buf), "%.17g", row[c]);
        if (c)
            payload += ',';
        payload += buf;
    }
    char tail[24];
    std::snprintf(tail, sizeof(tail), "#%016" PRIx64, fnv1a(payload));
    return payload + tail;
}

/**
 * Parse journal text into rows, stopping at the first line that is
 * torn, mis-checksummed or has the wrong width — everything after a
 * bad line is unusable because appends are strictly ordered.
 */
std::vector<std::vector<double>>
parseJournal(const std::string &text, std::size_t cols)
{
    std::vector<std::vector<double>> rows;
    std::stringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        const std::size_t hash = line.rfind('#');
        if (hash == std::string::npos)
            break;
        const std::string payload = line.substr(0, hash);
        std::uint64_t stored = 0;
        if (std::sscanf(line.c_str() + hash, "#%" SCNx64, &stored) != 1)
            break;
        if (fnv1a(payload) != stored)
            break;
        std::vector<double> row;
        row.reserve(cols);
        std::stringstream cells(payload);
        std::string cell;
        while (std::getline(cells, cell, ','))
            row.push_back(std::strtod(cell.c_str(), nullptr));
        if (row.size() != cols)
            break;
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string
journalText(const std::vector<std::vector<double>> &rows)
{
    std::string text;
    for (const std::vector<double> &row : rows) {
        text += journalLine(row);
        text += '\n';
    }
    return text;
}

} // namespace

Checkpoint::Checkpoint(std::string stem, std::uint64_t fingerprint,
                       std::size_t totalFrames, std::size_t statsCols,
                       std::size_t activityCols)
    : stem_(std::move(stem)), fingerprint_(fingerprint),
      totalFrames_(totalFrames), statsCols_(statsCols),
      activityCols_(activityCols)
{}

std::size_t
Checkpoint::resume()
{
    statsRows_.clear();
    activityRows_.clear();
    frames_ = 0;

    auto manifest = readFileToString(manifestPath());
    if (manifest.ok()) {
        std::uint32_t version = 0;
        std::uint64_t fingerprint = 0;
        std::size_t total = 0, statsCols = 0, activityCols = 0,
                    committed = 0;
        const int got = std::sscanf(
            manifest->c_str(),
            "megsim-checkpoint v%" SCNu32 "\n"
            "fingerprint %" SCNx64 "\n"
            "total %zu stats_cols %zu activity_cols %zu\n"
            "frames %zu",
            &version, &fingerprint, &total, &statsCols, &activityCols,
            &committed);
        if (got != 6 || version != kCheckpointVersion ||
            fingerprint != fingerprint_ || total != totalFrames_ ||
            statsCols != statsCols_ || activityCols != activityCols_) {
            sim::warn("checkpoint '%s' does not match this run; "
                      "starting over",
                      manifestPath().c_str());
            discard();
        } else {
            auto statsText = readFileToString(statsJournalPath());
            auto activityText =
                readFileToString(activityJournalPath());
            if (statsText.ok() && activityText.ok()) {
                statsRows_ = parseJournal(*statsText, statsCols_);
                activityRows_ =
                    parseJournal(*activityText, activityCols_);
                frames_ = std::min({committed, statsRows_.size(),
                                    activityRows_.size(),
                                    totalFrames_});
                statsRows_.resize(frames_);
                activityRows_.resize(frames_);
            } else {
                sim::warn("checkpoint journals for '%s' unreadable; "
                          "starting over",
                          stem_.c_str());
                discard();
            }
        }
    } else if (manifest.error().code != Errc::NotFound) {
        sim::warn("checkpoint manifest '%s' unreadable: %s",
                  manifestPath().c_str(),
                  manifest.error().message.c_str());
    }

    if (frames_ > 0) {
        // Drop any torn/uncommitted journal tail so the files on disk
        // exactly mirror the recovered state before we append to them.
        auto statsOk = atomicWriteFile(statsJournalPath(),
                                       journalText(statsRows_));
        auto activityOk = atomicWriteFile(activityJournalPath(),
                                          journalText(activityRows_));
        if (!statsOk.ok() || !activityOk.ok()) {
            failWrites("truncating journals");
        } else {
            counter("frames_resumed",
                    "frames recovered from checkpoints") +=
                static_cast<double>(frames_);
            sim::inform("resuming '%s' from checkpoint: %zu/%zu frames "
                        "already done",
                        stem_.c_str(), frames_, totalFrames_);
        }
    } else {
        discard();
    }

    if (!writeFailed_) {
        statsJnl_.open(statsJournalPath(), std::ios::app);
        activityJnl_.open(activityJournalPath(), std::ios::app);
        if (!statsJnl_ || !activityJnl_)
            failWrites("opening journals");
        else
            commitManifest();
    }
    return frames_;
}

void
Checkpoint::append(const std::vector<double> &statsRow,
                   const std::vector<double> &activityRow)
{
    if (writeFailed_)
        return;
    if (FaultInjector::global().failWrite(statsJournalPath())) {
        failWrites("appending to journals (injected)");
        return;
    }
    statsJnl_ << journalLine(statsRow) << '\n';
    activityJnl_ << journalLine(activityRow) << '\n';
    statsJnl_.flush();
    activityJnl_.flush();
    if (!statsJnl_ || !activityJnl_) {
        failWrites("appending to journals");
        return;
    }
    ++frames_;
    commitManifest();
}

void
Checkpoint::commitManifest()
{
    char text[256];
    std::snprintf(text, sizeof(text),
                  "megsim-checkpoint v%" PRIu32 "\n"
                  "fingerprint %016" PRIx64 "\n"
                  "total %zu stats_cols %zu activity_cols %zu\n"
                  "frames %zu\n",
                  kCheckpointVersion, fingerprint_, totalFrames_,
                  statsCols_, activityCols_, frames_);
    auto written = atomicWriteFile(manifestPath(), text);
    if (!written.ok())
        failWrites("committing the manifest");
}

void
Checkpoint::failWrites(const char *what)
{
    if (writeFailed_)
        return;
    writeFailed_ = true;
    ++counter("write_failures", "checkpoints disabled by I/O errors");
    sim::warn("checkpointing of '%s' disabled: %s failed — the run "
              "continues without crash protection",
              stem_.c_str(), what);
}

void
Checkpoint::discard()
{
    statsJnl_.close();
    activityJnl_.close();
    std::error_code ec;
    std::filesystem::remove(manifestPath(), ec);
    std::filesystem::remove(statsJournalPath(), ec);
    std::filesystem::remove(activityJournalPath(), ec);
}

} // namespace msim::resilience
