/**
 * @file
 * FNV-1a 64-bit content checksums for on-disk artifacts (cache CSVs,
 * checkpoint journal lines). Not cryptographic — the threat model is
 * truncation, bit rot and partial writes, not an adversary.
 */

#ifndef MSIM_RESILIENCE_CHECKSUM_HH
#define MSIM_RESILIENCE_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace msim::resilience
{

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/** Streaming FNV-1a 64. */
class Checksum
{
  public:
    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= kFnvPrime;
        }
    }

    void update(std::string_view text)
    {
        update(text.data(), text.size());
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = kFnvOffsetBasis;
};

/** One-shot convenience. */
inline std::uint64_t
fnv1a(std::string_view text)
{
    Checksum c;
    c.update(text);
    return c.digest();
}

} // namespace msim::resilience

#endif // MSIM_RESILIENCE_CHECKSUM_HH
