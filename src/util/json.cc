#include "util/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace msim::util
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double d)
{
    // Integers print without an exponent or trailing zeros; anything
    // else keeps max_digits10 so values round-trip bit-for-bit.
    if (d == static_cast<double>(static_cast<long long>(d)) &&
        std::abs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, d);
    out += buf;
}

struct Parser
{
    const char *p;
    const char *end;

    void
    skipWs()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    resilience::Error
    fail(const char *what) const
    {
        return resilience::errorf(resilience::Errc::BadFormat,
                                  "JSON: %s at byte %zd", what,
                                  static_cast<std::ptrdiff_t>(
                                      p - start));
    }

    const char *start;

    resilience::Expected<Json>
    parseValue(int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': {
            auto s = parseString();
            if (!s.ok())
                return s.error();
            return Json(std::move(*s));
          }
          case 't':
            if (end - p >= 4 && std::string(p, p + 4) == "true") {
                p += 4;
                return Json(true);
            }
            return fail("bad literal");
          case 'f':
            if (end - p >= 5 && std::string(p, p + 5) == "false") {
                p += 5;
                return Json(false);
            }
            return fail("bad literal");
          case 'n':
            if (end - p >= 4 && std::string(p, p + 4) == "null") {
                p += 4;
                return Json();
            }
            return fail("bad literal");
          default: return parseNumber();
        }
    }

    resilience::Expected<std::string>
    parseString()
    {
        ++p; // opening quote
        std::string out;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("unterminated escape");
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("short \\u escape");
                    const std::string hex(p + 1, p + 5);
                    const long code = std::strtol(hex.c_str(),
                                                  nullptr, 16);
                    // ASCII only; everything the reports emit.
                    out += static_cast<char>(code & 0x7f);
                    p += 4;
                    break;
                  }
                  default: return fail("bad escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return out;
    }

    resilience::Expected<Json>
    parseNumber()
    {
        char *after = nullptr;
        const double d = std::strtod(p, &after);
        if (after == p || after > end)
            return fail("bad number");
        p = after;
        return Json(d);
    }

    resilience::Expected<Json>
    parseObject(int depth)
    {
        ++p; // '{'
        Json obj = Json::object();
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return obj;
        }
        for (;;) {
            skipWs();
            if (p >= end || *p != '"')
                return fail("expected object key");
            auto key = parseString();
            if (!key.ok())
                return key.error();
            skipWs();
            if (p >= end || *p != ':')
                return fail("expected ':'");
            ++p;
            auto value = parseValue(depth + 1);
            if (!value.ok())
                return value.error();
            obj.set(*key, std::move(*value));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return obj;
            }
            return fail("expected ',' or '}'");
        }
    }

    resilience::Expected<Json>
    parseArray(int depth)
    {
        ++p; // '['
        Json arr = Json::array();
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            return arr;
        }
        for (;;) {
            auto value = parseValue(depth + 1);
            if (!value.ok())
                return value.error();
            arr.push(std::move(*value));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return arr;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

Json &
Json::set(const std::string &key, Json value)
{
    kind_ = Kind::Object;
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const Json *
Json::findPath(const std::string &dottedPath) const
{
    const Json *node = this;
    std::size_t begin = 0;
    while (node && begin <= dottedPath.size()) {
        const std::size_t dot = dottedPath.find('.', begin);
        const std::string key =
            dottedPath.substr(begin, dot == std::string::npos
                                         ? std::string::npos
                                         : dot - begin);
        node = node->find(key);
        if (dot == std::string::npos)
            return node;
        begin = dot + 1;
    }
    return node;
}

Json &
Json::push(Json value)
{
    kind_ = Kind::Array;
    items_.push_back(std::move(value));
    return *this;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              static_cast<std::size_t>(depth + 1),
                          ' ');
    const std::string close(static_cast<std::size_t>(indent) *
                                static_cast<std::size_t>(depth),
                            ' ');
    const char *nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Number: appendNumber(out, number_); break;
      case Kind::String: appendEscaped(out, string_); break;
      case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            out += i ? "," : "";
            out += nl;
            out += indent > 0 ? pad : "";
            items_[i].dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += indent > 0 ? close : "";
        out += ']';
        break;
      case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += i ? "," : "";
            out += nl;
            out += indent > 0 ? pad : "";
            appendEscaped(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += indent > 0 ? close : "";
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

resilience::Expected<Json>
Json::parse(const std::string &text)
{
    Parser parser{text.data(), text.data() + text.size(),
                  text.data()};
    auto value = parser.parseValue(0);
    if (!value.ok())
        return value.error();
    parser.skipWs();
    if (parser.p != parser.end)
        return parser.fail("trailing garbage");
    return value;
}

} // namespace msim::util
