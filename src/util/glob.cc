#include "util/glob.hh"

namespace msim::util
{

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative wildcard match with backtracking over the last '*'.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

} // namespace msim::util
