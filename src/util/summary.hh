/**
 * @file
 * Summary statistics over samples: mean, standard deviation and
 * linear-interpolated percentiles (used for the 95 %-confidence
 * errors of Table IV).
 */

#ifndef MSIM_UTIL_SUMMARY_HH
#define MSIM_UTIL_SUMMARY_HH

#include <vector>

namespace msim::util
{

double mean(const std::vector<double> &values);
double stddev(const std::vector<double> &values);

/**
 * The @p percent th percentile (0..100) of @p values with linear
 * interpolation between order statistics. Empty input yields 0.
 */
double percentile(std::vector<double> values, double percent);

} // namespace msim::util

#endif // MSIM_UTIL_SUMMARY_HH
