/**
 * @file
 * Glob matching for stat paths and trace filters: '*' matches any run
 * of characters (including '.'), '?' any single character.
 */

#ifndef MSIM_UTIL_GLOB_HH
#define MSIM_UTIL_GLOB_HH

#include <string>

namespace msim::util
{

bool globMatch(const std::string &pattern, const std::string &text);

} // namespace msim::util

#endif // MSIM_UTIL_GLOB_HH
