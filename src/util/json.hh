/**
 * @file
 * Minimal ordered JSON value: what the campaign report and threshold
 * files need, nothing more. Objects keep insertion order so serialized
 * reports are stable and diffable; numbers round-trip through
 * max_digits10 so a parsed report compares bit-for-bit against the
 * values that produced it. Parsing returns structured errors through
 * resilience::Expected instead of throwing.
 */

#ifndef MSIM_UTIL_JSON_HH
#define MSIM_UTIL_JSON_HH

#include <string>
#include <utility>
#include <vector>

#include "resilience/expected.hh"

namespace msim::util
{

class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double d) : kind_(Kind::Number), number_(d) {}
    Json(int i) : kind_(Kind::Number), number_(i) {}
    Json(std::size_t n)
        : kind_(Kind::Number), number_(static_cast<double>(n))
    {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}

    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool fallback = false) const
    {
        return kind_ == Kind::Bool ? bool_ : fallback;
    }

    double asNumber(double fallback = 0.0) const
    {
        return kind_ == Kind::Number ? number_ : fallback;
    }

    const std::string &
    asString() const
    {
        static const std::string empty;
        return kind_ == Kind::String ? string_ : empty;
    }

    /** Object: set (or overwrite) @p key, preserving insertion order. */
    Json &set(const std::string &key, Json value);

    /** Object: the value at @p key, or nullptr. */
    const Json *find(const std::string &key) const;

    /** Object: nested lookup `a.b.c`, or nullptr. */
    const Json *findPath(const std::string &dottedPath) const;

    /** Array: append. */
    Json &push(Json value);

    const std::vector<Json> &items() const { return items_; }
    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return members_;
    }

    std::size_t
    size() const
    {
        return kind_ == Kind::Array ? items_.size() : members_.size();
    }

    /**
     * Serialize. @p indent 0 emits one compact line; otherwise a
     * pretty tree indented by @p indent spaces per level.
     */
    std::string dump(int indent = 2) const;

    static resilience::Expected<Json> parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace msim::util

#endif // MSIM_UTIL_JSON_HH
