#include "util/image.hh"

#include <fstream>

#include "sim/logging.hh"

namespace msim::util
{

void
GrayImage::writePgm(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        sim::fatal("cannot write PGM file '%s'", path.c_str());
    out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
    out.write(reinterpret_cast<const char *>(pixels_.data()),
              static_cast<std::streamsize>(pixels_.size()));
}

Rgb
RgbImage::categorical(std::size_t label)
{
    // 12 visually distinct hues, cycled.
    static const Rgb palette[] = {
        {230, 25, 75},   {60, 180, 75},   {255, 225, 25},
        {0, 130, 200},   {245, 130, 48},  {145, 30, 180},
        {70, 240, 240},  {240, 50, 230},  {210, 245, 60},
        {250, 190, 212}, {0, 128, 128},   {170, 110, 40},
    };
    return palette[label % (sizeof(palette) / sizeof(palette[0]))];
}

void
RgbImage::writePpm(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        sim::fatal("cannot write PPM file '%s'", path.c_str());
    out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
    out.write(reinterpret_cast<const char *>(pixels_.data()),
              static_cast<std::streamsize>(pixels_.size() * 3));
}

} // namespace msim::util
