#include "util/csv.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace msim::util
{

std::string
csvToString(const CsvTable &table)
{
    std::string out;
    for (std::size_t c = 0; c < table.header.size(); ++c) {
        if (c)
            out += ',';
        out += table.header[c];
    }
    out += '\n';
    char buf[64];
    for (const auto &row : table.rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            // %.17g round-trips doubles exactly; counters print short.
            std::snprintf(buf, sizeof(buf), "%.17g", row[c]);
            if (c)
                out += ',';
            out += buf;
        }
        out += '\n';
    }
    return out;
}

bool
csvFromString(const std::string &text, CsvTable &table)
{
    table.header.clear();
    table.rows.clear();

    std::stringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return false;
    std::stringstream hs(line);
    std::string cell;
    while (std::getline(hs, cell, ','))
        table.header.push_back(cell);

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<double> row;
        row.reserve(table.header.size());
        std::stringstream ls(line);
        while (std::getline(ls, cell, ','))
            row.push_back(std::strtod(cell.c_str(), nullptr));
        if (row.size() != table.header.size())
            return false;
        table.rows.push_back(std::move(row));
    }
    return true;
}

void
writeCsv(const std::string &path, const CsvTable &table)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot write CSV file '%s'", path.c_str());
    out << csvToString(table);
    if (!out)
        sim::fatal("error writing CSV file '%s'", path.c_str());
}

bool
readCsv(const std::string &path, CsvTable &table)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad())
        return false;
    return csvFromString(content.str(), table);
}

} // namespace msim::util
