/**
 * @file
 * Grayscale (PGM) and RGB (PPM) images for the similarity-matrix and
 * cluster plots (Figs. 5-6). Binary P5/P6 output, no dependencies.
 */

#ifndef MSIM_UTIL_IMAGE_HH
#define MSIM_UTIL_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace msim::util
{

class GrayImage
{
  public:
    GrayImage(int width, int height)
        : width_(width), height_(height),
          pixels_(static_cast<std::size_t>(width) * height, 0)
    {}

    int width() const { return width_; }
    int height() const { return height_; }

    std::uint8_t &
    at(int x, int y)
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    std::uint8_t
    at(int x, int y) const
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    void writePgm(const std::string &path) const;

  private:
    int width_;
    int height_;
    std::vector<std::uint8_t> pixels_;
};

struct Rgb
{
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;
};

class RgbImage
{
  public:
    RgbImage(int width, int height)
        : width_(width), height_(height),
          pixels_(static_cast<std::size_t>(width) * height)
    {}

    int width() const { return width_; }
    int height() const { return height_; }

    Rgb &
    at(int x, int y)
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    const Rgb &
    at(int x, int y) const
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** A well-separated categorical palette color for @p label. */
    static Rgb categorical(std::size_t label);

    void writePpm(const std::string &path) const;

  private:
    int width_;
    int height_;
    std::vector<Rgb> pixels_;
};

} // namespace msim::util

#endif // MSIM_UTIL_IMAGE_HH
