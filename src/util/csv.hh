/**
 * @file
 * Fixed-schema numeric CSV reader/writer. All persistent artifacts of
 * the library (frame-stats cache, bench outputs) are tables of doubles
 * with a one-line header, which keeps the format trivially diffable.
 */

#ifndef MSIM_UTIL_CSV_HH
#define MSIM_UTIL_CSV_HH

#include <string>
#include <vector>

namespace msim::util
{

struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;
};

/** Serialize @p table to CSV text (header line + %.17g rows). */
std::string csvToString(const CsvTable &table);

/** Parse CSV text produced by csvToString. False on ragged rows. */
bool csvFromString(const std::string &text, CsvTable &table);

/** Write @p table to @p path; fatal on I/O failure. */
void writeCsv(const std::string &path, const CsvTable &table);

/** Read a table written by writeCsv. Returns false if unreadable. */
bool readCsv(const std::string &path, CsvTable &table);

} // namespace msim::util

#endif // MSIM_UTIL_CSV_HH
