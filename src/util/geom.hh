/**
 * @file
 * Small geometry helpers used by the rasterizer and workload
 * composer: 2/3-component vectors and an integer pixel bounding box.
 */

#ifndef MSIM_UTIL_GEOM_HH
#define MSIM_UTIL_GEOM_HH

#include <algorithm>

namespace msim::util
{

struct Vec2f
{
    float x = 0.0f;
    float y = 0.0f;
};

struct Vec3f
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
};

/** Half-open pixel rectangle [x0, x1) x [y0, y1). */
struct BBox2i
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    bool empty() const { return x1 <= x0 || y1 <= y0; }
    int width() const { return x1 - x0; }
    int height() const { return y1 - y0; }

    BBox2i
    intersect(const BBox2i &o) const
    {
        return {std::max(x0, o.x0), std::max(y0, o.y0),
                std::min(x1, o.x1), std::min(y1, o.y1)};
    }
};

} // namespace msim::util

#endif // MSIM_UTIL_GEOM_HH
