#include "util/summary.hh"

#include <algorithm>
#include <cmath>

namespace msim::util
{

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double
percentile(std::vector<double> values, double percent)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        percent / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi)
        return values[lo];
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace msim::util
