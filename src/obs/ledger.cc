#include "obs/ledger.hh"

#include <algorithm>
#include <cstddef>
#include <iterator>

#include "obs/profile.hh"
#include "resilience/artifact.hh"
#include "sim/logging.hh"

namespace msim::obs
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

// Per-event field tables. `Str`/`Num` require that JSON kind; `StrArr`
// is an array of strings; `StrMap`/`NumMap` are open objects whose
// *values* must be strings/numbers (the keys are free — env vars,
// metric names, domain names).
enum class FieldKind { Str, Num, StrArr, StrMap, NumMap };

struct FieldSpec
{
    const char *name;
    FieldKind kind;
    bool required;
};

struct EventSpec
{
    const char *type;
    const FieldSpec *fields;
    std::size_t count;
};

constexpr FieldSpec kRunStartFields[] = {
    {"tool", FieldKind::Str, true},
    {"threads", FieldKind::Num, true},
    {"workers", FieldKind::Num, false},
    {"frame_limit", FieldKind::Num, false},
    {"scale", FieldKind::Num, false},
    {"gpu_profile", FieldKind::Str, false},
    {"benches", FieldKind::StrArr, false},
    {"fingerprint", FieldKind::Str, false},
    {"env", FieldKind::StrMap, false},
    {"mem_mode", FieldKind::Str, false},
    // Trajectory mode: "exact" / "fast" / "suite-cluster" / ... —
    // what `perf --history` groups rows by so modes never compare
    // against each other.
    {"mode", FieldKind::Str, false},
};

constexpr FieldSpec kCacheFields[] = {
    {"bench", FieldKind::Str, true},
    {"status", FieldKind::Str, true},
    {"resumed_frames", FieldKind::Num, false},
};

constexpr FieldSpec kPhaseFields[] = {
    {"name", FieldKind::Str, true},
    {"seconds", FieldKind::Num, true},
    {"entries", FieldKind::Num, false},
};

constexpr FieldSpec kBenchFields[] = {
    {"alias", FieldKind::Str, true},
    {"frames", FieldKind::Num, true},
    {"chosen_k", FieldKind::Num, false},
    {"representatives", FieldKind::Num, false},
    {"reduction", FieldKind::Num, false},
    {"wall_seconds", FieldKind::Num, false},
    {"cache_status", FieldKind::Str, false},
    {"error", FieldKind::NumMap, false},
    {"mem_mode", FieldKind::Str, false},
    {"exact_vs_fast", FieldKind::NumMap, false},
    {"audited_frames", FieldKind::Num, false},
};

constexpr FieldSpec kAttribFields[] = {
    {"domains", FieldKind::NumMap, true},
    {"coverage", FieldKind::Num, false},
    {"wall_seconds", FieldKind::Num, false},
};

constexpr FieldSpec kMetricsFields[] = {
    {"values", FieldKind::NumMap, true},
};

constexpr FieldSpec kRunEndFields[] = {
    {"wall_seconds", FieldKind::Num, true},
    {"status", FieldKind::Str, true},
};

constexpr FieldSpec kWorkerSpawnFields[] = {
    {"worker", FieldKind::Num, true},
    {"pid", FieldKind::Num, true},
    {"shard", FieldKind::Num, false},
};

constexpr FieldSpec kWorkerExitFields[] = {
    {"worker", FieldKind::Num, true},
    {"pid", FieldKind::Num, true},
    {"status", FieldKind::Str, true},
    {"reason", FieldKind::Str, false},
    {"shard", FieldKind::Num, false},
};

constexpr FieldSpec kShardRetryFields[] = {
    {"shard", FieldKind::Num, true},
    {"bench", FieldKind::Str, true},
    {"attempt", FieldKind::Num, true},
    {"reason", FieldKind::Str, true},
    {"backoff_ms", FieldKind::Num, false},
};

constexpr FieldSpec kShardQuarantineFields[] = {
    {"shard", FieldKind::Num, true},
    {"bench", FieldKind::Str, true},
    {"attempts", FieldKind::Num, true},
    {"reason", FieldKind::Str, true},
};

constexpr FieldSpec kShardCoalesceFields[] = {
    {"bench", FieldKind::Str, true},
    {"request", FieldKind::Num, true},
    {"producer", FieldKind::Num, true},
    {"shards_avoided", FieldKind::Num, true},
};

constexpr FieldSpec kLeaseResolvedFields[] = {
    {"bench", FieldKind::Str, true},
    {"request", FieldKind::Num, true},
    {"source", FieldKind::Str, true},
};

constexpr FieldSpec kRequestAdmitFields[] = {
    {"request", FieldKind::Num, true},
    {"tenant", FieldKind::Str, true},
    {"policy", FieldKind::Str, true},
    {"benches", FieldKind::StrArr, false},
    {"queue_depth", FieldKind::Num, false},
};

constexpr FieldSpec kSchedDispatchFields[] = {
    {"shard", FieldKind::Num, true},
    {"request", FieldKind::Num, true},
    {"worker", FieldKind::Num, true},
    {"bench", FieldKind::Str, true},
    {"policy", FieldKind::Str, false},
    {"remaining", FieldKind::Num, false},
};

constexpr FieldSpec kRequestDoneFields[] = {
    {"request", FieldKind::Num, true},
    {"status", FieldKind::Str, true},
    {"queue_wait_seconds", FieldKind::Num, true},
    {"service_seconds", FieldKind::Num, true},
    {"shards", FieldKind::Num, false},
    {"quarantined", FieldKind::Num, false},
};

constexpr EventSpec kEventSpecs[] = {
    {"run_start", kRunStartFields, std::size(kRunStartFields)},
    {"cache", kCacheFields, std::size(kCacheFields)},
    {"phase", kPhaseFields, std::size(kPhaseFields)},
    {"bench", kBenchFields, std::size(kBenchFields)},
    {"attrib", kAttribFields, std::size(kAttribFields)},
    {"metrics", kMetricsFields, std::size(kMetricsFields)},
    {"run_end", kRunEndFields, std::size(kRunEndFields)},
    {"worker_spawn", kWorkerSpawnFields,
     std::size(kWorkerSpawnFields)},
    {"worker_exit", kWorkerExitFields, std::size(kWorkerExitFields)},
    {"shard_retry", kShardRetryFields, std::size(kShardRetryFields)},
    {"shard_quarantine", kShardQuarantineFields,
     std::size(kShardQuarantineFields)},
    {"shard_coalesce", kShardCoalesceFields,
     std::size(kShardCoalesceFields)},
    {"lease_resolved", kLeaseResolvedFields,
     std::size(kLeaseResolvedFields)},
    {"request_admit", kRequestAdmitFields,
     std::size(kRequestAdmitFields)},
    {"sched_dispatch", kSchedDispatchFields,
     std::size(kSchedDispatchFields)},
    {"request_done", kRequestDoneFields,
     std::size(kRequestDoneFields)},
};

const EventSpec *
findSpec(const std::string &type)
{
    for (const EventSpec &s : kEventSpecs)
        if (type == s.type)
            return &s;
    return nullptr;
}

Expected<void>
checkField(const std::string &type, const FieldSpec &spec,
           const Json &value)
{
    switch (spec.kind) {
      case FieldKind::Str:
        if (!value.isString())
            return errorf(Errc::BadFormat,
                          "%s.%s: expected string", type.c_str(),
                          spec.name);
        break;
      case FieldKind::Num:
        if (!value.isNumber())
            return errorf(Errc::BadFormat,
                          "%s.%s: expected number", type.c_str(),
                          spec.name);
        break;
      case FieldKind::StrArr:
        if (!value.isArray())
            return errorf(Errc::BadFormat, "%s.%s: expected array",
                          type.c_str(), spec.name);
        for (const Json &item : value.items())
            if (!item.isString())
                return errorf(Errc::BadFormat,
                              "%s.%s: expected string elements",
                              type.c_str(), spec.name);
        break;
      case FieldKind::StrMap:
      case FieldKind::NumMap:
        if (!value.isObject())
            return errorf(Errc::BadFormat, "%s.%s: expected object",
                          type.c_str(), spec.name);
        for (const auto &[key, v] : value.members()) {
            const bool ok = spec.kind == FieldKind::StrMap
                                ? v.isString()
                                : v.isNumber();
            if (!ok)
                return errorf(
                    Errc::BadFormat, "%s.%s.%s: expected %s",
                    type.c_str(), spec.name, key.c_str(),
                    spec.kind == FieldKind::StrMap ? "string"
                                                   : "number");
        }
        break;
    }
    return {};
}

} // namespace

RunLedger::RunLedger() : start_(wallSeconds()) {}

void
RunLedger::event(const std::string &type, Json fields)
{
    Json ev = Json::object();
    ev.set("schema", kSchema);
    ev.set("seq", static_cast<std::size_t>(seq_++));
    ev.set("event", type);
    ev.set("t", wallSeconds() - start_);
    if (fields.isObject())
        for (const auto &[key, value] : fields.members())
            ev.set(key, value);
    const Expected<void> valid = validateEvent(ev);
    if (!valid.ok())
        sim::fatal("run ledger: invalid '%s' event: %s",
                   type.c_str(), valid.error().message.c_str());
    events_.push_back(std::move(ev));
}

std::string
RunLedger::serialize() const
{
    std::string out;
    for (const Json &ev : events_) {
        out += ev.dump(0);
        out += '\n';
    }
    return out;
}

Expected<void>
RunLedger::save(const std::string &path) const
{
    return resilience::atomicWriteFile(path, serialize());
}

Expected<std::vector<Json>>
RunLedger::parse(const std::string &text)
{
    std::vector<Json> events;
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        Expected<Json> parsed = Json::parse(line);
        if (!parsed.ok())
            return errorf(Errc::BadFormat, "ledger line %zu: %s",
                          lineNo, parsed.error().message.c_str());
        Expected<void> valid = validateEvent(*parsed);
        if (!valid.ok())
            return errorf(Errc::BadFormat, "ledger line %zu: %s",
                          lineNo, valid.error().message.c_str());
        events.push_back(std::move(*parsed));
    }
    if (events.empty())
        return errorf(Errc::Truncated, "ledger has no events");
    return events;
}

Expected<std::vector<Json>>
RunLedger::load(const std::string &path)
{
    Expected<std::string> text =
        resilience::readFileToString(path);
    if (!text.ok())
        return text.error();
    return parse(*text);
}

Expected<void>
RunLedger::validateEvent(const Json &ev)
{
    if (!ev.isObject())
        return errorf(Errc::BadFormat, "event is not an object");
    const Json *schema = ev.find("schema");
    if (!schema || !schema->isString())
        return errorf(Errc::BadFormat, "missing schema tag");
    if (schema->asString() != kSchema)
        return errorf(Errc::BadVersion, "schema '%s' != '%s'",
                      schema->asString().c_str(), kSchema);
    const Json *type = ev.find("event");
    if (!type || !type->isString())
        return errorf(Errc::BadFormat, "missing event type");
    const EventSpec *spec = findSpec(type->asString());
    if (!spec)
        return errorf(Errc::BadFormat, "unknown event type '%s'",
                      type->asString().c_str());
    const Json *seq = ev.find("seq");
    if (!seq || !seq->isNumber())
        return errorf(Errc::BadFormat, "%s: missing seq",
                      spec->type);
    const Json *t = ev.find("t");
    if (!t || !t->isNumber())
        return errorf(Errc::BadFormat, "%s: missing t", spec->type);

    for (std::size_t i = 0; i < spec->count; ++i) {
        const FieldSpec &f = spec->fields[i];
        const Json *value = ev.find(f.name);
        if (!value) {
            if (f.required)
                return errorf(Errc::BadFormat,
                              "%s: missing required field '%s'",
                              spec->type, f.name);
            continue;
        }
        Expected<void> fieldOk =
            checkField(spec->type, f, *value);
        if (!fieldOk.ok())
            return fieldOk;
    }
    for (const auto &[key, value] : ev.members()) {
        (void)value;
        if (key == "schema" || key == "seq" || key == "event" ||
            key == "t")
            continue;
        const bool known =
            std::any_of(spec->fields, spec->fields + spec->count,
                        [&key = key](const FieldSpec &f) {
                            return key == f.name;
                        });
        if (!known)
            return errorf(Errc::BadFormat,
                          "%s: unknown field '%s'", spec->type,
                          key.c_str());
    }
    return {};
}

LedgerSummary
summarizeLedger(const std::string &path,
                const std::vector<Json> &events)
{
    LedgerSummary row;
    row.path = path;
    for (const Json &ev : events) {
        const std::string &type = ev.find("event")->asString();
        if (type == "run_start") {
            row.tool = ev.find("tool")->asString();
            row.threads = static_cast<std::size_t>(
                ev.find("threads")->asNumber());
            // Pre-`mode` ledgers carried the trajectory mode in
            // mem_mode (exact/fast); older ones were always exact.
            if (const Json *mode = ev.find("mode"))
                row.mode = mode->asString();
            else if (const Json *mem = ev.find("mem_mode"))
                row.mode = mem->asString();
            else
                row.mode = "exact";
        } else if (type == "metrics") {
            row.metrics.clear();
            for (const auto &[key, value] :
                 ev.find("values")->members())
                row.metrics.emplace_back(key, value.asNumber());
        } else if (type == "run_end") {
            row.wallSeconds = ev.find("wall_seconds")->asNumber();
            row.status = ev.find("status")->asString();
        }
    }
    return row;
}

} // namespace msim::obs
