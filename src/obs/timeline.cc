#include "obs/timeline.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "sim/logging.hh"

namespace msim::obs
{

namespace
{

bool gTimelineEnabled = false;
std::string gTimelinePath;

bool
initTimelineFromEnv()
{
    const char *env = std::getenv("MEGSIM_TIMELINE");
    if (env && *env) {
        gTimelinePath =
            std::string(env) == "1" ? "timeline.json" : env;
        gTimelineEnabled = true;
    }
    return true;
}

// Runs once before main() can spawn threads; setTimelineEnabled is
// the programmatic override for tests and the CLI.
[[maybe_unused]] const bool gTimelineInit = initTimelineFromEnv();

thread_local TimelineRecorder *tlsTimelineOverride = nullptr;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatUs(double us)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // namespace

bool
timelineEnabled()
{
    return gTimelineEnabled;
}

void
setTimelineEnabled(bool on)
{
    gTimelineEnabled = on;
}

const std::string &
timelinePath()
{
    return gTimelinePath;
}

void
TimelineRecorder::mergeFrom(TimelineRecorder &other)
{
    if (other.spans_.empty())
        return;
    spans_.insert(spans_.end(),
                  std::make_move_iterator(other.spans_.begin()),
                  std::make_move_iterator(other.spans_.end()));
    other.spans_.clear();
}

TimelineRecorder &
TimelineRecorder::global()
{
    if (tlsTimelineOverride)
        return *tlsTimelineOverride;
    static TimelineRecorder recorder(0);
    return recorder;
}

TimelineOverride::TimelineOverride(TimelineRecorder &shard)
    : previous_(tlsTimelineOverride)
{
    tlsTimelineOverride = &shard;
}

TimelineOverride::~TimelineOverride()
{
    tlsTimelineOverride = previous_;
}

void
writeTimelineChrome(std::ostream &os,
                    const std::vector<HostSpan> &spans,
                    std::size_t workers)
{
    double origin = 0.0;
    bool haveOrigin = false;
    // Worker lanes are labelled densely (idle workers show as empty
    // lanes); anything above — request lanes at kRequestTrackBase —
    // is labelled sparsely, only where a span actually landed.
    std::vector<std::uint32_t> sparse;
    for (const HostSpan &s : spans) {
        if (!haveOrigin || s.begin < origin) {
            origin = s.begin;
            haveOrigin = true;
        }
        if (s.track >= workers)
            sparse.push_back(s.track);
    }
    std::sort(sparse.begin(), sparse.end());
    sparse.erase(std::unique(sparse.begin(), sparse.end()),
                 sparse.end());

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto label = [&](std::uint32_t t) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << t << ",\"args\":{\"name\":\"";
        if (t >= kRequestTrackBase)
            os << "request " << (t - kRequestTrackBase);
        else
            os << "worker " << t << (t == 0 ? " (caller)" : "");
        os << "\"}}";
    };
    for (std::size_t t = 0; t < workers; ++t)
        label(static_cast<std::uint32_t>(t));
    for (std::uint32_t t : sparse)
        label(t);
    for (const HostSpan &s : spans) {
        const double ts = (s.begin - origin) * 1e6;
        const double dur = (s.end - s.begin) * 1e6;
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << jsonEscape(s.name)
           << "\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":"
           << formatUs(ts) << ",\"dur\":" << formatUs(dur)
           << ",\"pid\":0,\"tid\":" << s.track
           << ",\"args\":{\"arg\":" << s.arg;
        if (!s.detail.empty())
            os << ",\"detail\":\"" << jsonEscape(s.detail) << "\"";
        os << "}}";
    }
    os << "]}\n";
}

void
writeTimelineChrome(const std::string &path,
                    const TimelineRecorder &recorder,
                    std::size_t workers)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot write timeline file '%s'", path.c_str());
    writeTimelineChrome(out, recorder.spans(), workers);
}

} // namespace msim::obs
