/**
 * @file
 * Host-side run timelines: wall-clock interval spans on per-worker
 * tracks.
 *
 * Where the TraceBuffer records *simulated* time (cycles inside one
 * frame), the TimelineRecorder records *host* time: what every
 * exec::Pool worker, the campaign driver and the cache/checkpoint
 * machinery were doing, and when. Spans carry a track id (the worker
 * index; the caller thread is track 0) so the Chrome `trace_event`
 * export opens in Perfetto with one lane per worker — an 8-thread
 * campaign visually shows its pool utilization instead of asserting
 * it through a counter.
 *
 * Ownership follows the StatsRegistry rule: a TimelineRecorder is
 * single-writer. exec::Pool gives each worker a shard (with the
 * worker's track id) via the thread-local TimelineOverride and merges
 * the shards back in worker-index order when the job completes; the
 * process-wide recorder is only ever written by the caller thread.
 *
 * Recording is off by default and costs one predictable branch when
 * disabled; MEGSIM_TIMELINE=<path> enables it for a run (the CLI
 * writes the Chrome JSON to <path> on exit). Defining
 * MSIM_OBS_NO_TRACE at build time compiles emission out entirely,
 * exactly like the cycle-trace layer.
 */

#ifndef MSIM_OBS_TIMELINE_HH
#define MSIM_OBS_TIMELINE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace msim::obs
{

double wallSeconds(); // obs/profile.hh

/** One host-time interval on a worker track. */
struct HostSpan
{
    const char *name;    // static string; never owned
    std::string detail;  // optional label (benchmark alias, path)
    std::uint32_t track; // worker index; 0 = caller thread
    double begin;        // wallSeconds()
    double end;
    std::uint64_t arg;   // payload: item index / frame / bytes
};

/**
 * Track ids at or above this base are per-request lanes ("request N"
 * where N = track − base) instead of worker lanes — the scheduler
 * records each request's queue-wait and service spans there, so a
 * concurrent serve run opens in Perfetto with one lane per request
 * above the worker lanes. The export labels these lanes sparsely:
 * only tracks that recorded a span get a name, so request ids stay
 * usable as track offsets without materializing 65k empty lanes.
 */
inline constexpr std::uint32_t kRequestTrackBase = 1u << 16;

/** True when MEGSIM_TIMELINE (or setTimelineEnabled) turned host
 *  timelines on for this process. Read on every record(); written
 *  only during single-threaded setup. */
bool timelineEnabled();
void setTimelineEnabled(bool on);

/** The MEGSIM_TIMELINE value ("" = disabled; "1" maps to
 *  "timeline.json") — where the CLI writes the Chrome export. */
const std::string &timelinePath();

class TimelineRecorder
{
  public:
    explicit TimelineRecorder(std::uint32_t track = 0)
        : track_(track)
    {}
    TimelineRecorder(const TimelineRecorder &) = delete;
    TimelineRecorder &operator=(const TimelineRecorder &) = delete;

    std::uint32_t track() const { return track_; }

    /** Record a completed span on this recorder's track. */
    void
    record(const char *name, double begin, double end,
           std::uint64_t arg = 0, std::string detail = {})
    {
#ifdef MSIM_OBS_NO_TRACE
        (void)name; (void)begin; (void)end; (void)arg; (void)detail;
#else
        if (!timelineEnabled()) [[likely]]
            return;
        spans_.push_back(
            HostSpan{name, std::move(detail), track_, begin, end, arg});
#endif
    }

    /** RAII span: times its own lifetime on the recorder active at
     *  *construction* (so a span opened inside a pool job lands on
     *  that worker's shard even if it closes after a merge). */
    class Span
    {
      public:
#ifdef MSIM_OBS_NO_TRACE
        Span(const char *, std::uint64_t = 0, std::string = {}) {}
#else
        Span(const char *name, std::uint64_t arg = 0,
             std::string detail = {})
            : recorder_(&TimelineRecorder::global()), name_(name),
              detail_(std::move(detail)), arg_(arg),
              t0_(timelineEnabled() ? wallSeconds() : 0.0)
        {}
        ~Span()
        {
            if (timelineEnabled())
                recorder_->record(name_, t0_, wallSeconds(), arg_,
                                  std::move(detail_));
        }
#endif
        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;

      private:
#ifndef MSIM_OBS_NO_TRACE
        TimelineRecorder *recorder_;
        const char *name_;
        std::string detail_;
        std::uint64_t arg_;
        double t0_;
#endif
    };

    const std::vector<HostSpan> &spans() const { return spans_; }
    std::size_t size() const { return spans_.size(); }
    void clear() { spans_.clear(); }

    /** Move @p other's spans onto this recorder (worker shards folding
     *  into the process recorder in worker-index order). Tracks are
     *  preserved — that is the whole point. */
    void mergeFrom(TimelineRecorder &other);

    /**
     * Process-wide recorder (track 0). Honors the calling thread's
     * TimelineOverride, so spans recorded inside an exec::Pool job
     * land on the worker's shard and keep its track id.
     */
    static TimelineRecorder &global();

  private:
    std::vector<HostSpan> spans_;
    std::uint32_t track_;
};

/** RAII thread-local redirect of TimelineRecorder::global(). */
class TimelineOverride
{
  public:
    explicit TimelineOverride(TimelineRecorder &shard);
    ~TimelineOverride();
    TimelineOverride(const TimelineOverride &) = delete;
    TimelineOverride &operator=(const TimelineOverride &) = delete;

  private:
    TimelineRecorder *previous_;
};

/**
 * Export spans as Chrome trace_event JSON (chrome://tracing /
 * Perfetto): one tid lane per track, labelled "worker N" ("worker 0
 * (caller)" for track 0), timestamps in microseconds relative to the
 * earliest span. @p workers labels that many tracks even if some
 * recorded nothing, so an idle worker shows as an empty lane.
 */
void writeTimelineChrome(std::ostream &os,
                         const std::vector<HostSpan> &spans,
                         std::size_t workers);

/** Convenience: export to @p path; fatal on I/O error. */
void writeTimelineChrome(const std::string &path,
                         const TimelineRecorder &recorder,
                         std::size_t workers);

} // namespace msim::obs

#endif // MSIM_OBS_TIMELINE_HH
