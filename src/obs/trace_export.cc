#include "obs/trace_export.hh"

#include <cstdio>
#include <fstream>
#include <map>

#include "sim/logging.hh"

namespace msim::obs
{

namespace
{

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        switch (*s) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(*s) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", *s);
                out += buf;
            } else {
                out += *s;
            }
        }
    }
    return out;
}

std::string
formatUs(double us)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 double frequencyMhz)
{
    const double cyclesPerUs =
        frequencyMhz > 0.0 ? frequencyMhz : 1.0;

    // One tid lane per distinct event name, grouped by category so
    // related lanes sort together in the viewer.
    std::map<std::string, int> lanes;
    for (const TraceEvent &e : events) {
        const std::string key =
            std::string(traceCategoryName(e.category)) + ":" + e.name;
        lanes.emplace(key, static_cast<int>(lanes.size()));
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[key, tid] : lanes) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(key.c_str()) << "\"}}";
    }
    for (const TraceEvent &e : events) {
        const std::string key =
            std::string(traceCategoryName(e.category)) + ":" + e.name;
        const int tid = lanes[key];
        const double ts =
            static_cast<double>(e.begin) / cyclesPerUs;
        const double dur =
            static_cast<double>(e.end - e.begin) / cyclesPerUs;
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << traceCategoryName(e.category) << "\",\"ph\":\""
           << (e.end > e.begin ? 'X' : 'i') << "\",\"ts\":"
           << formatUs(ts);
        if (e.end > e.begin)
            os << ",\"dur\":" << formatUs(dur);
        else
            os << ",\"s\":\"t\"";
        os << ",\"pid\":0,\"tid\":" << tid << ",\"args\":{\"frame\":"
           << e.frame << ",\"cycle\":" << e.begin << ",\"arg\":"
           << e.arg << "}}";
    }
    os << "]}\n";
}

void
writeChromeTrace(const std::string &path, const TraceBuffer &buf,
                 double frequencyMhz)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot write trace file '%s'", path.c_str());
    writeChromeTrace(out, buf.snapshot(), frequencyMhz);
    if (buf.droppedCount())
        sim::warn("trace ring dropped %llu early events "
                  "(capacity %zu; raise MEGSIM_TRACE_CAPACITY)",
                  static_cast<unsigned long long>(buf.droppedCount()),
                  buf.capacity());
}

void
writeTraceCsv(std::ostream &os, const std::vector<TraceEvent> &events)
{
    os << "name,category,frame,begin_cycle,end_cycle,arg\n";
    for (const TraceEvent &e : events)
        os << e.name << ',' << traceCategoryName(e.category) << ','
           << e.frame << ',' << e.begin << ',' << e.end << ','
           << e.arg << '\n';
}

void
writeTraceCsv(const std::string &path, const TraceBuffer &buf)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot write trace CSV '%s'", path.c_str());
    writeTraceCsv(out, buf.snapshot());
}

} // namespace msim::obs
