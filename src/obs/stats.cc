#include "obs/stats.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"
#include "util/glob.hh"

namespace msim::obs
{

void
Distribution::sample(double v, std::uint64_t n)
{
    if (!count_ || v < min_)
        min_ = v;
    if (!count_ || v > max_)
        max_ = v;
    count_ += n;
    sum_ += v * static_cast<double>(n);
    if (v < lo_) {
        underflow_ += n;
    } else if (v >= hi_) {
        overflow_ += n;
    } else {
        const auto idx = static_cast<std::size_t>(
            (v - lo_) / (hi_ - lo_) *
            static_cast<double>(buckets_.size()));
        buckets_[idx < buckets_.size() ? idx : buckets_.size() - 1] +=
            n;
    }
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    underflow_ = overflow_ = count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
Scalar::mergeFrom(const Stat &other)
{
    value_ += static_cast<const Scalar &>(other).value_;
}

std::unique_ptr<Stat>
Scalar::cloneEmpty() const
{
    return std::make_unique<Scalar>(name(), desc());
}

void
Average::mergeFrom(const Stat &other)
{
    const auto &o = static_cast<const Average &>(other);
    sum_ += o.sum_;
    count_ += o.count_;
}

std::unique_ptr<Stat>
Average::cloneEmpty() const
{
    return std::make_unique<Average>(name(), desc());
}

void
Distribution::mergeFrom(const Stat &other)
{
    const auto &o = static_cast<const Distribution &>(other);
    if (o.lo_ != lo_ || o.hi_ != hi_ ||
        o.buckets_.size() != buckets_.size())
        sim::fatal("distribution '%s' merged with a different shape",
                   name().c_str());
    if (o.count_ == 0)
        return;
    if (!count_ || o.min_ < min_)
        min_ = o.min_;
    if (!count_ || o.max_ > max_)
        max_ = o.max_;
    for (std::size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += o.buckets_[b];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    count_ += o.count_;
    sum_ += o.sum_;
}

std::unique_ptr<Stat>
Distribution::cloneEmpty() const
{
    return std::make_unique<Distribution>(name(), desc(), lo_, hi_,
                                          buckets_.size());
}

Stat &
StatsRegistry::insert(std::unique_ptr<Stat> stat)
{
    auto [it, ok] = stats_.emplace(stat->name(), std::move(stat));
    (void)ok;
    return *it->second;
}

Stat *
StatsRegistry::lookup(const std::string &name, Stat::Kind kind)
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        return nullptr;
    if (it->second->kind() != kind)
        sim::fatal("stat '%s' re-registered with a different kind",
                   name.c_str());
    return it->second.get();
}

Scalar &
StatsRegistry::scalar(const std::string &name, const std::string &desc)
{
    if (Stat *s = lookup(name, Stat::Kind::Scalar))
        return *static_cast<Scalar *>(s);
    return static_cast<Scalar &>(
        insert(std::make_unique<Scalar>(name, desc)));
}

Average &
StatsRegistry::average(const std::string &name, const std::string &desc)
{
    if (Stat *s = lookup(name, Stat::Kind::Average))
        return *static_cast<Average *>(s);
    return static_cast<Average &>(
        insert(std::make_unique<Average>(name, desc)));
}

Distribution &
StatsRegistry::distribution(const std::string &name, double lo,
                            double hi, std::size_t buckets,
                            const std::string &desc)
{
    if (Stat *s = lookup(name, Stat::Kind::Distribution))
        return *static_cast<Distribution *>(s);
    return static_cast<Distribution &>(insert(
        std::make_unique<Distribution>(name, desc, lo, hi, buckets)));
}

Formula &
StatsRegistry::formula(const std::string &name,
                       std::function<double()> fn,
                       const std::string &desc)
{
    if (Stat *s = lookup(name, Stat::Kind::Formula))
        return *static_cast<Formula *>(s);
    return static_cast<Formula &>(
        insert(std::make_unique<Formula>(name, desc, std::move(fn))));
}

StatsGroup
StatsRegistry::group(const std::string &prefix)
{
    return {*this, prefix};
}

const Stat *
StatsRegistry::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second.get();
}

void
StatsRegistry::resetPerFrame()
{
    for (auto &[name, stat] : stats_)
        stat->reset();
}

void
StatsRegistry::mergeFrom(const StatsRegistry &other)
{
    for (const auto &[name, stat] : other.stats_) {
        if (stat->kind() == Stat::Kind::Formula)
            continue;
        Stat *dest = lookup(name, stat->kind());
        if (!dest) {
            std::unique_ptr<Stat> clone = stat->cloneEmpty();
            if (!clone)
                continue;
            dest = &insert(std::move(clone));
        }
        dest->mergeFrom(*stat);
    }
}

void
StatsRegistry::visit(const std::function<void(const Stat &)> &fn,
                     const std::string &glob) const
{
    for (const auto &[name, stat] : stats_)
        if (util::globMatch(glob, name))
            fn(*stat);
}

namespace
{

std::string
formatValue(double v)
{
    char buf[48];
    if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.4f", v);
    }
    return buf;
}

} // namespace

void
StatsRegistry::dump(std::ostream &os, const std::string &glob) const
{
    // Dotted names, sorted, print as an indented tree:
    //   gpu
    //     l2
    //       accesses   1234   # total L2 lookups
    std::vector<std::string> open; // currently open group path
    visit(
        [&](const Stat &stat) {
            // Split the name into segments.
            std::vector<std::string> segs;
            std::size_t start = 0;
            const std::string &name = stat.name();
            for (std::size_t dot = name.find('.');
                 dot != std::string::npos;
                 start = dot + 1, dot = name.find('.', start))
                segs.push_back(name.substr(start, dot - start));
            const std::string leaf = name.substr(start);

            // Print group headers where the path diverges.
            std::size_t common = 0;
            while (common < open.size() && common < segs.size() &&
                   open[common] == segs[common])
                ++common;
            open.resize(common);
            for (std::size_t i = common; i < segs.size(); ++i) {
                os << std::string(2 * i, ' ') << segs[i] << '\n';
                open.push_back(segs[i]);
            }

            os << std::string(2 * segs.size(), ' ') << leaf;
            const std::size_t pad =
                2 * segs.size() + leaf.size() < 40
                    ? 40 - (2 * segs.size() + leaf.size())
                    : 1;
            os << std::string(pad, ' ') << formatValue(stat.value());
            if (stat.kind() == Stat::Kind::Distribution) {
                const auto &d =
                    static_cast<const Distribution &>(stat);
                os << "  (n=" << d.count() << " min="
                   << formatValue(d.min())
                   << " max=" << formatValue(d.max()) << ")";
            } else if (stat.kind() == Stat::Kind::Average) {
                os << "  (n="
                   << static_cast<const Average &>(stat).count()
                   << ")";
            }
            if (!stat.desc().empty())
                os << "  # " << stat.desc();
            os << '\n';
        },
        glob);
}

namespace
{

thread_local StatsRegistry *tlsProcessOverride = nullptr;

} // namespace

StatsRegistry &
processRegistry()
{
    if (tlsProcessOverride)
        return *tlsProcessOverride;
    static StatsRegistry registry;
    return registry;
}

ProcessRegistryOverride::ProcessRegistryOverride(StatsRegistry &shard)
    : previous_(tlsProcessOverride)
{
    tlsProcessOverride = &shard;
}

ProcessRegistryOverride::~ProcessRegistryOverride()
{
    tlsProcessOverride = previous_;
}

} // namespace msim::obs
