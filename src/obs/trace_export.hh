/**
 * @file
 * Trace-buffer exporters: Chrome `trace_event` JSON (the JSON Array
 * Format accepted by chrome://tracing and Perfetto) and a flat CSV
 * sink.
 *
 * Cycle timestamps are converted to microseconds with the GPU core
 * frequency so the trace timeline reads in simulated real time. Each
 * distinct event name gets its own `tid` lane, labelled with a
 * `thread_name` metadata record, which groups stage activity the way
 * Daisen lays out unit timelines.
 */

#ifndef MSIM_OBS_TRACE_EXPORT_HH
#define MSIM_OBS_TRACE_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace msim::obs
{

/** Write events as Chrome trace_event JSON. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      double frequencyMhz);

/** Convenience: export a buffer to @p path; fatal on I/O error. */
void writeChromeTrace(const std::string &path, const TraceBuffer &buf,
                      double frequencyMhz);

/** Flat CSV: name,category,frame,begin_cycle,end_cycle,arg. */
void writeTraceCsv(std::ostream &os,
                   const std::vector<TraceEvent> &events);
void writeTraceCsv(const std::string &path, const TraceBuffer &buf);

} // namespace msim::obs

#endif // MSIM_OBS_TRACE_EXPORT_HH
