/**
 * @file
 * Host-cost attribution: where do the simulator's *host* seconds go?
 *
 * PR 5 could only assert that the residual hot-path wall time lives
 * in the texture L1→L2→DRAM walk by hand-running interleaved A/B
 * timings. This layer makes that claim measurable in-tree: scoped,
 * thread-local attribution of wall time to a small fixed set of host
 * domains (geometry, rasterization, shading, the simulated-memory
 * walk, I/O, analysis), published as `obs.host.<domain>.seconds` /
 * `.entries` stats and reported by `megsim-cli perf --attrib`.
 *
 * Accounting is *exclusive*: entering a nested scope stops the clock
 * on the enclosing domain and restarts it on exit, so the per-domain
 * seconds sum to the covered wall time instead of double-counting.
 * Each thread accumulates into its own thread-local buckets;
 * flushHostAttrib() folds them into processRegistry() — which honors
 * the worker-shard override, so per-worker flushes merge back in
 * worker-index order like every other stat.
 *
 * Attribution is opt-in (MEGSIM_ATTRIB=1 / setHostAttribEnabled):
 * the scope constructor costs one predictable branch when disabled,
 * and two clock reads plus bucket arithmetic when enabled. Host
 * attribution never touches simulated counters, so simulated stats
 * stay bit-identical whether it is on or off.
 */

#ifndef MSIM_OBS_ATTRIB_HH
#define MSIM_OBS_ATTRIB_HH

#include <cstdint>
#include <cstddef>

namespace msim::obs
{

double wallSeconds(); // obs/profile.hh

/** Fixed host-cost domains. Order is the report order. */
enum class HostDomain : std::uint8_t
{
    Other = 0, // covered time not claimed by a nested scope
    Load,      // scene/cache/checkpoint I/O and decode
    Geometry,  // vertex fetch/shade, assembly, binning
    Raster,    // tile walk, coverage, depth test
    Shade,     // fragment shading (minus its memory walk)
    MemWalk,   // simulated L1→L2→DRAM access chain
    Analyze,   // feature build, clustering, estimation
    kCount
};

constexpr std::size_t kHostDomainCount =
    static_cast<std::size_t>(HostDomain::kCount);

/** Stable lower-case name used in stats and reports ("memwalk"). */
const char *hostDomainName(HostDomain d);

/** Global enable flag; written only during single-threaded setup
 *  (MEGSIM_ATTRIB env, CLI flag, tests). */
bool hostAttribEnabled();
void setHostAttribEnabled(bool on);

namespace detail
{

struct AttribBuckets
{
    double seconds[kHostDomainCount] = {};
    std::uint64_t entries[kHostDomainCount] = {};
    HostDomain current = HostDomain::Other;
    double stamp = 0.0; // wallSeconds() when `current` last started
    bool open = false;  // inside an AttribRoot window
};

AttribBuckets &tlsBuckets();

} // namespace detail

/**
 * Root attribution window. Opens the thread's accounting interval:
 * time inside the window not claimed by a nested AttribScope is
 * charged to HostDomain::Other, so domain seconds always sum to the
 * window's wall time (this is what makes ≥90% coverage checkable).
 * Destruction flushes the thread's buckets into processRegistry().
 */
class AttribRoot
{
  public:
    AttribRoot();
    ~AttribRoot();
    AttribRoot(const AttribRoot &) = delete;
    AttribRoot &operator=(const AttribRoot &) = delete;

  private:
    bool active_ = false;
};

/**
 * Exclusive-time domain scope. Charges elapsed time to the enclosing
 * domain on entry, runs as @p d, and restores the enclosing domain on
 * exit. Free outside an AttribRoot window or when attribution is off.
 */
class AttribScope
{
  public:
    explicit AttribScope(HostDomain d)
    {
        if (!hostAttribEnabled()) [[likely]]
            return;
        detail::AttribBuckets &b = detail::tlsBuckets();
        if (!b.open)
            return;
        const double now = wallSeconds();
        const std::size_t prev =
            static_cast<std::size_t>(b.current);
        b.seconds[prev] += now - b.stamp;
        previous_ = b.current;
        b.current = d;
        b.stamp = now;
        ++b.entries[static_cast<std::size_t>(d)];
        armed_ = true;
    }
    ~AttribScope()
    {
        if (!armed_)
            return;
        detail::AttribBuckets &b = detail::tlsBuckets();
        const double now = wallSeconds();
        b.seconds[static_cast<std::size_t>(b.current)] +=
            now - b.stamp;
        b.current = previous_;
        b.stamp = now;
    }
    AttribScope(const AttribScope &) = delete;
    AttribScope &operator=(const AttribScope &) = delete;

  private:
    HostDomain previous_ = HostDomain::Other;
    bool armed_ = false;
};

/**
 * Fold the calling thread's buckets into processRegistry() as
 * `obs.host.<domain>.seconds` / `obs.host.<domain>.entries` scalars
 * and reset them. Called by AttribRoot's destructor; safe to call
 * directly (e.g. at the end of a worker share before shard merge).
 */
void flushHostAttrib();

/**
 * The obs.host.* counters read back from processRegistry() after the
 * AttribRoot windows closed (all worker shards merged). coverage() is
 * the share of attributed time a *named* domain claims — the ≥90%
 * acceptance number; Other is the window time nothing accounted for.
 */
struct HostAttribSnapshot
{
    double seconds[kHostDomainCount] = {};
    std::uint64_t entries[kHostDomainCount] = {};

    double totalSeconds() const;
    /** (total - other) / total, or 0 with nothing attributed. */
    double coverage() const;
};

HostAttribSnapshot readHostAttrib();

} // namespace msim::obs

#endif // MSIM_OBS_ATTRIB_HH
