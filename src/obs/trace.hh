/**
 * @file
 * Low-overhead pipeline trace-event layer.
 *
 * Units emit interval events (stage activations, queue stalls, cache
 * misses, DRAM transactions) into a fixed-capacity ring buffer; the
 * exporters in trace_export.hh turn the buffer into Chrome
 * `trace_event` JSON (chrome://tracing / Perfetto, Daisen-style) or
 * CSV.
 *
 * Tracing is off by default. It is enabled per run with the
 * MEGSIM_TRACE environment variable (or programmatically through
 * ObsConfig), and the emit fast path when disabled is a single
 * predictable branch. Defining MSIM_OBS_NO_TRACE at build time
 * compiles emission out entirely.
 *
 * Event names must be string literals (or otherwise outlive the
 * buffer): events store `const char *` to keep emission allocation-
 * free.
 */

#ifndef MSIM_OBS_TRACE_HH
#define MSIM_OBS_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace msim::obs
{

enum class TraceCategory : std::uint8_t {
    Stage,  // a pipeline stage working on a batch (draw, tile, ...)
    Queue,  // backpressure: producer stalled on a full queue
    Cache,  // cache miss being filled
    Dram,   // a DRAM transaction occupying bank + channel
    Frame,  // whole-frame marker
    Phase,  // coarse pipeline phase (geometry / tiling / raster)
};

const char *traceCategoryName(TraceCategory cat);

struct TraceEvent
{
    const char *name;        // static string; never owned
    TraceCategory category;
    std::uint32_t frame;     // frame index the event belongs to
    sim::Tick begin;         // cycles
    sim::Tick end;           // cycles (== begin for instants)
    std::uint64_t arg;       // payload: count / bytes / address
};

/** Observability knobs, normally read from the environment once. */
struct ObsConfig
{
    bool traceEnabled = false;
    std::size_t traceCapacity = 1 << 16;
    /** Glob for a post-frame registry dump to stderr; empty = off. */
    std::string statsDump;

    /**
     * MEGSIM_TRACE=1 enables tracing, MEGSIM_TRACE_CAPACITY sets the
     * ring size, MEGSIM_STATS_DUMP=<glob|1> enables the per-frame
     * stats dump ("1" means "*").
     */
    static ObsConfig fromEnv();
};

class TraceBuffer
{
  public:
    TraceBuffer() : TraceBuffer(ObsConfig()) {}
    explicit TraceBuffer(const ObsConfig &config);

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }
    std::size_t capacity() const { return ring_.size(); }

    /** Record an interval event; keeps the most recent `capacity`. */
    void
    emit(const char *name, TraceCategory cat, std::uint32_t frame,
         sim::Tick begin, sim::Tick end, std::uint64_t arg = 0)
    {
#ifdef MSIM_OBS_NO_TRACE
        (void)name; (void)cat; (void)frame;
        (void)begin; (void)end; (void)arg;
#else
        if (!enabled_) [[likely]]
            return;
        ring_[emitted_ % ring_.size()] =
            TraceEvent{name, cat, frame, begin, end, arg};
        ++emitted_;
#endif
    }

    void
    instant(const char *name, TraceCategory cat, std::uint32_t frame,
            sim::Tick at, std::uint64_t arg = 0)
    {
        emit(name, cat, frame, at, at, arg);
    }

    /** Number of events currently retained. */
    std::size_t
    size() const
    {
        return emitted_ < ring_.size()
                   ? static_cast<std::size_t>(emitted_)
                   : ring_.size();
    }

    std::uint64_t emittedCount() const { return emitted_; }

    /** Events that fell off the ring. */
    std::uint64_t
    droppedCount() const
    {
        return emitted_ < ring_.size() ? 0 : emitted_ - ring_.size();
    }

    void clear() { emitted_ = 0; }

    /** Visit retained events oldest-first. */
    void forEach(const std::function<void(const TraceEvent &)> &fn)
        const;

    std::vector<TraceEvent> snapshot() const;

  private:
    std::vector<TraceEvent> ring_;
    std::uint64_t emitted_ = 0;
    bool enabled_ = false;
};

} // namespace msim::obs

#endif // MSIM_OBS_TRACE_HH
