/**
 * @file
 * Wall-clock phase profiling and long-run progress reporting.
 *
 * PhaseProfiler accumulates named wall-clock phases (functional pass,
 * feature build, clustering, representative simulation, estimation);
 * the MEGsim driver and bench binaries print its report so every perf
 * claim names where the time went. Heartbeat prints a throughput/ETA
 * line to stderr during multi-minute ground-truth simulations.
 */

#ifndef MSIM_OBS_PROFILE_HH
#define MSIM_OBS_PROFILE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace msim::obs
{

/** Monotonic wall-clock seconds. */
double wallSeconds();

class PhaseProfiler
{
  public:
    struct Phase
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t entries = 0;
    };

    /**
     * RAII scope adding its lifetime to a named phase. Holds the name
     * as a view — no allocation on entry — so the referenced string
     * must outlive the scope (phase names are string literals).
     */
    class Scoped
    {
      public:
        Scoped(PhaseProfiler &profiler, std::string_view name)
            : profiler_(&profiler), name_(name), t0_(wallSeconds())
        {}
        Scoped(const Scoped &) = delete;
        Scoped &operator=(const Scoped &) = delete;
        ~Scoped() { profiler_->add(name_, wallSeconds() - t0_); }

      private:
        PhaseProfiler *profiler_;
        std::string_view name_;
        double t0_;
    };

    void add(std::string_view name, double seconds);

    const std::vector<Phase> &phases() const { return phases_; }
    double totalSeconds() const;
    bool empty() const { return phases_.empty(); }
    void clear() { phases_.clear(); }

    /**
     * Aggregate another profiler's phases into this one (per-worker
     * shards folding into the session profile; the bench phase report
     * at exit sums worker time instead of losing it).
     */
    void mergeFrom(const PhaseProfiler &other);

    /** Fixed-width per-phase summary (seconds and share). */
    void report(std::ostream &os) const;

    /**
     * Process-wide profiler used by the MEGsim driver and benches.
     * Like a StatsRegistry, a profiler is single-writer: global()
     * honors the calling thread's PhaseProfilerOverride, so phases
     * timed inside an exec::Pool job land in the worker's shard and
     * are merged back on the caller thread.
     */
    static PhaseProfiler &global();

  private:
    std::vector<Phase> phases_; // insertion order = execution order
};

/** RAII thread-local redirect of PhaseProfiler::global() to a shard. */
class PhaseProfilerOverride
{
  public:
    explicit PhaseProfilerOverride(PhaseProfiler &shard);
    ~PhaseProfilerOverride();
    PhaseProfilerOverride(const PhaseProfilerOverride &) = delete;
    PhaseProfilerOverride &
    operator=(const PhaseProfilerOverride &) = delete;

  private:
    PhaseProfiler *previous_;
};

class Heartbeat
{
  public:
    /**
     * Progress over @p total units (frames). Prints at most once per
     * @p intervalSeconds, only after the first interval has passed —
     * short runs stay silent.
     */
    Heartbeat(std::size_t total, std::string label,
              double intervalSeconds = 2.0);

    /** Report that @p done units are complete. */
    void tick(std::size_t done);

    /** Final newline if anything was printed. */
    void finish();

    ~Heartbeat() { finish(); }

  private:
    std::size_t total_;
    std::string label_;
    double interval_;
    double start_;
    double lastPrint_;
    bool printed_ = false;
};

} // namespace msim::obs

#endif // MSIM_OBS_PROFILE_HH
