#include "obs/profile.hh"

#include <chrono>
#include <cstdio>

namespace msim::obs
{

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
PhaseProfiler::add(std::string_view name, double seconds)
{
    for (Phase &p : phases_) {
        if (p.name == name) {
            p.seconds += seconds;
            ++p.entries;
            return;
        }
    }
    phases_.push_back(Phase{std::string(name), seconds, 1});
}

double
PhaseProfiler::totalSeconds() const
{
    double total = 0.0;
    for (const Phase &p : phases_)
        total += p.seconds;
    return total;
}

void
PhaseProfiler::report(std::ostream &os) const
{
    const double total = totalSeconds();
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s %10s %7s %8s\n", "phase",
                  "seconds", "share", "entries");
    os << line;
    for (const Phase &p : phases_) {
        std::snprintf(line, sizeof(line), "%-24s %10.3f %6.1f%% %8llu\n",
                      p.name.c_str(), p.seconds,
                      total > 0.0 ? p.seconds / total * 100.0 : 0.0,
                      static_cast<unsigned long long>(p.entries));
        os << line;
    }
    std::snprintf(line, sizeof(line), "%-24s %10.3f\n", "total", total);
    os << line;
}

void
PhaseProfiler::mergeFrom(const PhaseProfiler &other)
{
    for (const Phase &p : other.phases_) {
        bool found = false;
        for (Phase &mine : phases_) {
            if (mine.name == p.name) {
                mine.seconds += p.seconds;
                mine.entries += p.entries;
                found = true;
                break;
            }
        }
        if (!found)
            phases_.push_back(p);
    }
}

namespace
{

thread_local PhaseProfiler *tlsPhaseOverride = nullptr;

} // namespace

PhaseProfiler &
PhaseProfiler::global()
{
    if (tlsPhaseOverride)
        return *tlsPhaseOverride;
    static PhaseProfiler profiler;
    return profiler;
}

PhaseProfilerOverride::PhaseProfilerOverride(PhaseProfiler &shard)
    : previous_(tlsPhaseOverride)
{
    tlsPhaseOverride = &shard;
}

PhaseProfilerOverride::~PhaseProfilerOverride()
{
    tlsPhaseOverride = previous_;
}

Heartbeat::Heartbeat(std::size_t total, std::string label,
                     double intervalSeconds)
    : total_(total), label_(std::move(label)),
      interval_(intervalSeconds), start_(wallSeconds()),
      lastPrint_(start_)
{}

void
Heartbeat::tick(std::size_t done)
{
    const double now = wallSeconds();
    if (now - lastPrint_ < interval_ || done == 0)
        return;
    lastPrint_ = now;
    printed_ = true;
    const double elapsed = now - start_;
    const double rate = static_cast<double>(done) / elapsed;
    const double eta =
        rate > 0.0
            ? static_cast<double>(total_ - done > 0 ? total_ - done
                                                    : 0) /
                  rate
            : 0.0;
    std::fprintf(stderr,
                 "\r%s: %zu/%zu frames (%.1f%%), %.1f frames/s, "
                 "ETA %.0fs   ",
                 label_.c_str(), done, total_,
                 total_ ? 100.0 * static_cast<double>(done) /
                              static_cast<double>(total_)
                        : 100.0,
                 rate, eta);
    std::fflush(stderr);
}

void
Heartbeat::finish()
{
    if (printed_) {
        std::fputc('\n', stderr);
        printed_ = false;
    }
}

} // namespace msim::obs
