/**
 * @file
 * Machine-readable run ledger: an append-only JSONL event log written
 * next to campaign.json / BENCH_gpusim.json.
 *
 * One line per event, each a compact `util::Json` object carrying the
 * schema tag (`megsim-run-v1`), a monotonically increasing sequence
 * number, the event type and a timestamp in seconds relative to the
 * ledger's creation. Event types:
 *
 *   run_start  manifest: tool, thread count, supervised worker count,
 *              frame limit, scale, GPU profile, bench list, config
 *              fingerprint, and the MEGSIM_* environment subset that
 *              shaped the run
 *   cache      per-benchmark cache outcome (fresh/rebuilt/built) and
 *              checkpoint-resumed frame count
 *   phase      a named wall-clock phase (seconds, entries)
 *   bench      one benchmark's result row (frames, chosen k,
 *              representatives, reduction, per-metric error)
 *   attrib     host-cost attribution (domain → seconds, coverage)
 *   metrics    final suite-level numbers (open key → number map)
 *   run_end    total wall seconds and exit status
 *
 * Supervised (multi-process) campaigns add four event types:
 *
 *   worker_spawn      a worker process forked (worker slot, pid)
 *   worker_exit       a worker left the pool: status is "exit N" or
 *                     "signal N", reason classifies the detection
 *                     (crash / hang / corrupt-reply / shutdown), and
 *                     shard names the in-flight shard if any
 *   shard_retry       a failed shard rescheduled (attempt number,
 *                     failure reason, backoff before re-dispatch)
 *   shard_quarantine  a shard abandoned after exhausting its retry
 *                     cap; the campaign completes degraded
 *
 * Scheduled (multi-request) campaigns add three more, recorded into
 * the owning request's ledger by the sched::Scheduler:
 *
 *   request_admit     a request entered the run queue (request id,
 *                     tenant, active policy, bench list, queue depth)
 *   sched_dispatch    one scheduling decision: shard N of request R
 *                     leased to fleet worker W under the policy
 *   request_done      the request finalized: ok/degraded, queue wait
 *                     and service time, shard/quarantine counts
 *
 * The schema is *strict*: validate() fails on an unknown event type,
 * a missing required field, or any top-level field the schema does
 * not name — CI round-trips every ledger through the util/json parser
 * and this validator, so a drive-by field addition cannot silently
 * fork the format. Timestamps and seconds are host-clock fields and
 * are excluded from cross-run comparisons by every consumer.
 *
 * The ledger accumulates in memory and is written atomically by
 * save(); a crashed run simply leaves no ledger, never a torn one.
 */

#ifndef MSIM_OBS_LEDGER_HH
#define MSIM_OBS_LEDGER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "resilience/expected.hh"
#include "util/json.hh"

namespace msim::obs
{

class RunLedger
{
  public:
    static constexpr const char *kSchema = "megsim-run-v1";

    RunLedger();

    /**
     * Append an event. @p fields is the event-specific payload (an
     * object); schema, seq, event and t are stamped on here. The
     * event is validated immediately — a malformed event is a fatal
     * error at the call site, not a surprise in CI.
     */
    void event(const std::string &type, util::Json fields);

    const std::vector<util::Json> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** One compact JSON object per line, newline-terminated. */
    std::string serialize() const;

    /** Atomic write of serialize() to @p path. */
    resilience::Expected<void> save(const std::string &path) const;

    /**
     * Parse and strictly validate a JSONL ledger. Returns the parsed
     * events, or a structured error naming the first offending line.
     */
    static resilience::Expected<std::vector<util::Json>>
    parse(const std::string &text);

    /** parse() on a file's contents. */
    static resilience::Expected<std::vector<util::Json>>
    load(const std::string &path);

    /**
     * Validate one event object against the megsim-run-v1 schema:
     * correct schema tag, known event type, all required fields
     * present with the right JSON kind, no undeclared fields.
     */
    static resilience::Expected<void>
    validateEvent(const util::Json &ev);

  private:
    std::vector<util::Json> events_;
    double start_;
    std::uint64_t seq_ = 0;
};

/** One ledger folded to a row for `megsim-cli perf --history`. */
struct LedgerSummary
{
    std::string path;          // ledger file (basename in reports)
    std::string tool;          // "campaign" / "perf"
    // Trajectory mode: "exact" / "fast" / "suite-cluster" / ...;
    // falls back to the run_start mem_mode for pre-mode ledgers.
    std::string mode = "exact";
    std::size_t threads = 0;
    std::string status;        // "ok" / "failed" / "" if no run_end
    double wallSeconds = 0.0;
    // metric name → value from the final `metrics` event.
    std::vector<std::pair<std::string, double>> metrics;
};

/** Fold a parsed ledger into a summary row. */
LedgerSummary summarizeLedger(const std::string &path,
                              const std::vector<util::Json> &events);

} // namespace msim::obs

#endif // MSIM_OBS_LEDGER_HH
