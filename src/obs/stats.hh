/**
 * @file
 * Hierarchical statistics registry (gem5-style).
 *
 * Every pipeline stage, queue, cache and the DRAM model declares its
 * counters in a StatsRegistry under a dotted `unit.subunit.stat` path
 * instead of keeping ad-hoc counter members. The registry is the
 * single source of truth: FrameStats is *read out of* the registry at
 * the end of a simulated frame, and `megsim-cli stats` dumps the same
 * tree the estimator consumes.
 *
 * Stat kinds:
 *  - Scalar:        a counter or gauge (`l2.misses`)
 *  - Average:       mean of sampled values (`dram.latency_avg`)
 *  - Distribution:  fixed-range histogram (`queue.occupancy`)
 *  - Formula:       computed on read from other stats (`l2.miss_rate`)
 *
 * Reset semantics are per-frame: resetPerFrame() zeroes every stat
 * except formulas (which recompute) — the simulator calls it at frame
 * start so a dump after simulate() describes exactly one frame.
 *
 * Ownership rule under parallel execution: a StatsRegistry is
 * deliberately lock-free and therefore single-writer. Every exec::Pool
 * worker mutates only registries it owns — its simulator's registry
 * and its per-worker shard of the process registry (processRegistry()
 * is redirected to the shard via ProcessRegistryOverride while the
 * worker runs). At the end of every pool job the caller thread merges
 * the shards into the real process registry in worker-index order
 * (mergeFrom), so integer-valued counters are bit-identical across
 * thread counts. No registry is ever mutated from two threads.
 */

#ifndef MSIM_OBS_STATS_HH
#define MSIM_OBS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace msim::obs
{

class Stat
{
  public:
    enum class Kind { Scalar, Average, Distribution, Formula };

    Stat(std::string name, std::string desc, Kind kind)
        : name_(std::move(name)), desc_(std::move(desc)), kind_(kind)
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    Kind kind() const { return kind_; }

    /** The headline value (count, mean, ...). */
    virtual double value() const = 0;
    virtual void reset() = 0;

    /**
     * Accumulate @p other (same kind, same name) into this stat —
     * how per-worker shards fold into the session registry.
     */
    virtual void mergeFrom(const Stat &other) = 0;

    /**
     * A zeroed stat of the same kind and shape, for creating the
     * destination of a merge. Formulas return nullptr (a closure
     * cannot be cloned; the owning unit re-registers it).
     */
    virtual std::unique_ptr<Stat> cloneEmpty() const = 0;

  private:
    std::string name_;
    std::string desc_;
    Kind kind_;
};

/** A plain counter / gauge. */
class Scalar : public Stat
{
  public:
    Scalar(std::string name, std::string desc)
        : Stat(std::move(name), std::move(desc), Kind::Scalar)
    {}

    Scalar &
    operator+=(double d)
    {
        value_ += d;
        return *this;
    }

    Scalar &
    operator++()
    {
        value_ += 1.0;
        return *this;
    }

    void set(double v) { value_ = v; }

    double value() const override { return value_; }
    void reset() override { value_ = 0.0; }
    void mergeFrom(const Stat &other) override;
    std::unique_ptr<Stat> cloneEmpty() const override;

  private:
    double value_ = 0.0;
};

/** Mean of sampled values. */
class Average : public Stat
{
  public:
    Average(std::string name, std::string desc)
        : Stat(std::move(name), std::move(desc), Kind::Average)
    {}

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /**
     * Fold a batch of samples accumulated elsewhere into this stat.
     * Bit-identical to sampling individually ONLY if @p sum was
     * accumulated in sample order and this is the sole batch folded
     * onto a freshly reset average (0.0 + sum == sum); the hot-path
     * units flush exactly once per frame for that reason.
     */
    void
    accumulate(double sum, std::uint64_t count)
    {
        sum_ += sum;
        count_ += count;
    }

    std::uint64_t count() const { return count_; }
    double value() const override
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    void
    reset() override
    {
        sum_ = 0.0;
        count_ = 0;
    }

    void mergeFrom(const Stat &other) override;
    std::unique_ptr<Stat> cloneEmpty() const override;

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-range histogram with underflow/overflow buckets. */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc, double lo,
                 double hi, std::size_t buckets)
        : Stat(std::move(name), std::move(desc), Kind::Distribution),
          lo_(lo), hi_(hi), buckets_(buckets ? buckets : 1, 0)
    {}

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double lowerBound() const { return lo_; }
    double upperBound() const { return hi_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Headline value: the sample mean. */
    double value() const override
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    void reset() override;
    void mergeFrom(const Stat &other) override;
    std::unique_ptr<Stat> cloneEmpty() const override;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Computed on read from other stats; never reset. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc), Kind::Formula),
          fn_(std::move(fn))
    {}

    double value() const override { return fn_ ? fn_() : 0.0; }
    void reset() override {}
    void mergeFrom(const Stat &) override {}
    std::unique_ptr<Stat> cloneEmpty() const override { return nullptr; }

  private:
    std::function<double()> fn_;
};

class StatsGroup;

class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /**
     * Register (or fetch, if already registered) a stat. Re-using a
     * name with a different kind is a fatal error — names are global
     * within a registry.
     */
    Scalar &scalar(const std::string &name,
                   const std::string &desc = "");
    Average &average(const std::string &name,
                     const std::string &desc = "");
    Distribution &distribution(const std::string &name, double lo,
                               double hi, std::size_t buckets,
                               const std::string &desc = "");
    Formula &formula(const std::string &name,
                     std::function<double()> fn,
                     const std::string &desc = "");

    /** Scoped view that prefixes every name with `prefix.`. */
    StatsGroup group(const std::string &prefix);

    const Stat *find(const std::string &name) const;
    std::size_t size() const { return stats_.size(); }

    /** Per-frame reset: zero everything except formulas. */
    void resetPerFrame();

    /**
     * Accumulate every stat of @p other into this registry, creating
     * missing stats of the same kind and shape (formulas are skipped —
     * they recompute from their owner's stats). Stats are visited in
     * name order, so merging N worker shards in worker-index order is
     * a deterministic fold.
     */
    void mergeFrom(const StatsRegistry &other);

    /** Visit stats whose dotted name matches @p glob, in name order. */
    void visit(const std::function<void(const Stat &)> &fn,
               const std::string &glob = "*") const;

    /**
     * Dump the registry as an indented tree, one leaf per line:
     * `name  value  # desc`. @p glob filters by full dotted path.
     */
    void dump(std::ostream &os, const std::string &glob = "*") const;

  private:
    Stat &insert(std::unique_ptr<Stat> stat);
    Stat *lookup(const std::string &name, Stat::Kind kind);

    // std::map keeps names sorted, which makes the dump a stable
    // pre-order walk of the implied tree.
    std::map<std::string, std::unique_ptr<Stat>> stats_;
};

/**
 * Process-wide registry for cross-cutting counters that outlive any
 * one simulator instance — fault injections, cache corruption
 * detections, checkpoint resumes, degradation events. Never reset.
 *
 * Honors the active ProcessRegistryOverride of the calling thread, so
 * deep library code keeps calling processRegistry() unchanged and
 * lands in the worker's shard when run inside an exec::Pool job.
 */
StatsRegistry &processRegistry();

/**
 * RAII thread-local redirect of processRegistry() to a worker shard.
 * Installed by exec::Pool around each worker's share of a job; the
 * shard is merged into the real process registry (caller thread, in
 * worker-index order) when the job completes.
 */
class ProcessRegistryOverride
{
  public:
    explicit ProcessRegistryOverride(StatsRegistry &shard);
    ~ProcessRegistryOverride();
    ProcessRegistryOverride(const ProcessRegistryOverride &) = delete;
    ProcessRegistryOverride &
    operator=(const ProcessRegistryOverride &) = delete;

  private:
    StatsRegistry *previous_;
};

/** Convenience handle carrying a `unit.` prefix into a registry. */
class StatsGroup
{
  public:
    StatsGroup(StatsRegistry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {}

    const std::string &prefix() const { return prefix_; }

    Scalar &
    scalar(const std::string &name, const std::string &desc = "")
    {
        return registry_->scalar(prefix_ + "." + name, desc);
    }

    Average &
    average(const std::string &name, const std::string &desc = "")
    {
        return registry_->average(prefix_ + "." + name, desc);
    }

    Distribution &
    distribution(const std::string &name, double lo, double hi,
                 std::size_t buckets, const std::string &desc = "")
    {
        return registry_->distribution(prefix_ + "." + name, lo, hi,
                                       buckets, desc);
    }

    Formula &
    formula(const std::string &name, std::function<double()> fn,
            const std::string &desc = "")
    {
        return registry_->formula(prefix_ + "." + name, std::move(fn),
                                  desc);
    }

    StatsGroup
    group(const std::string &sub) const
    {
        return {*registry_, prefix_ + "." + sub};
    }

    StatsRegistry &registry() { return *registry_; }

  private:
    StatsRegistry *registry_;
    std::string prefix_;
};

} // namespace msim::obs

#endif // MSIM_OBS_STATS_HH
