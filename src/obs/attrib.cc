#include "obs/attrib.hh"

#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/stats.hh"

namespace msim::obs
{

namespace
{

bool gAttribEnabled = false;

bool
initAttribFromEnv()
{
    const char *env = std::getenv("MEGSIM_ATTRIB");
    gAttribEnabled = env && *env && std::string_view(env) != "0";
    return gAttribEnabled;
}

[[maybe_unused]] const bool gAttribInit = initAttribFromEnv();

constexpr const char *kDomainNames[kHostDomainCount] = {
    "other", "load", "geometry", "raster", "shade", "memwalk",
    "analyze",
};

} // namespace

const char *
hostDomainName(HostDomain d)
{
    return kDomainNames[static_cast<std::size_t>(d)];
}

bool
hostAttribEnabled()
{
    return gAttribEnabled;
}

void
setHostAttribEnabled(bool on)
{
    gAttribEnabled = on;
}

namespace detail
{

AttribBuckets &
tlsBuckets()
{
    thread_local AttribBuckets buckets;
    return buckets;
}

} // namespace detail

AttribRoot::AttribRoot()
{
    if (!hostAttribEnabled())
        return;
    detail::AttribBuckets &b = detail::tlsBuckets();
    if (b.open) // nested roots are no-ops; the outer window accounts
        return;
    b.open = true;
    b.current = HostDomain::Other;
    b.stamp = wallSeconds();
    active_ = true;
}

AttribRoot::~AttribRoot()
{
    if (!active_)
        return;
    detail::AttribBuckets &b = detail::tlsBuckets();
    b.seconds[static_cast<std::size_t>(b.current)] +=
        wallSeconds() - b.stamp;
    b.open = false;
    flushHostAttrib();
}

void
flushHostAttrib()
{
    detail::AttribBuckets &b = detail::tlsBuckets();
    StatsRegistry &reg = processRegistry();
    for (std::size_t i = 0; i < kHostDomainCount; ++i) {
        if (b.seconds[i] == 0.0 && b.entries[i] == 0)
            continue;
        const std::string stem =
            std::string("obs.host.") + kDomainNames[i];
        reg.scalar(stem + ".seconds",
                   "host wall seconds attributed to this domain") +=
            b.seconds[i];
        reg.scalar(stem + ".entries",
                   "attribution scope entries for this domain") +=
            static_cast<double>(b.entries[i]);
        b.seconds[i] = 0.0;
        b.entries[i] = 0;
    }
}

double
HostAttribSnapshot::totalSeconds() const
{
    double total = 0.0;
    for (double s : seconds)
        total += s;
    return total;
}

double
HostAttribSnapshot::coverage() const
{
    const double total = totalSeconds();
    if (total <= 0.0)
        return 0.0;
    return (total -
            seconds[static_cast<std::size_t>(HostDomain::Other)]) /
           total;
}

HostAttribSnapshot
readHostAttrib()
{
    HostAttribSnapshot snap;
    const StatsRegistry &reg = processRegistry();
    for (std::size_t i = 0; i < kHostDomainCount; ++i) {
        const std::string stem =
            std::string("obs.host.") + kDomainNames[i];
        if (const Stat *s = reg.find(stem + ".seconds"))
            snap.seconds[i] = s->value();
        if (const Stat *s = reg.find(stem + ".entries"))
            snap.entries[i] =
                static_cast<std::uint64_t>(s->value());
    }
    return snap;
}

} // namespace msim::obs
