#include "obs/trace.hh"

#include <cstdlib>
#include <cstring>

namespace msim::obs
{

const char *
traceCategoryName(TraceCategory cat)
{
    switch (cat) {
      case TraceCategory::Stage: return "stage";
      case TraceCategory::Queue: return "queue";
      case TraceCategory::Cache: return "cache";
      case TraceCategory::Dram: return "dram";
      case TraceCategory::Frame: return "frame";
      case TraceCategory::Phase: return "phase";
    }
    return "?";
}

ObsConfig
ObsConfig::fromEnv()
{
    ObsConfig config;
    if (const char *env = std::getenv("MEGSIM_TRACE"))
        config.traceEnabled = env[0] && std::strcmp(env, "0") != 0;
    if (const char *env = std::getenv("MEGSIM_TRACE_CAPACITY")) {
        const long long n = std::atoll(env);
        if (n > 0)
            config.traceCapacity = static_cast<std::size_t>(n);
    }
    if (const char *env = std::getenv("MEGSIM_STATS_DUMP")) {
        if (env[0] && std::strcmp(env, "0") != 0)
            config.statsDump = std::strcmp(env, "1") ? env : "*";
    }
    return config;
}

TraceBuffer::TraceBuffer(const ObsConfig &config)
    : ring_(config.traceCapacity ? config.traceCapacity : 1),
      enabled_(config.traceEnabled)
{}

void
TraceBuffer::forEach(
    const std::function<void(const TraceEvent &)> &fn) const
{
    const std::size_t n = size();
    const std::size_t first =
        emitted_ < ring_.size()
            ? 0
            : static_cast<std::size_t>(emitted_ % ring_.size());
    for (std::size_t i = 0; i < n; ++i)
        fn(ring_[(first + i) % ring_.size()]);
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::vector<TraceEvent> events;
    events.reserve(size());
    forEach([&](const TraceEvent &e) { events.push_back(e); });
    return events;
}

} // namespace msim::obs
