#include "sched/report.hh"

#include <cmath>
#include <cstdio>

#include "resilience/artifact.hh"

namespace msim::sched
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

Expected<double>
numberAt(const Json &obj, const char *key)
{
    const Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return errorf(Errc::BadFormat,
                      "serve report: missing number '%s'", key);
    return v->asNumber();
}

std::string
pointLabel(const ServeLoadPoint &p)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%zuw x %zur (%s)", p.workers,
                  p.requests, p.policy.c_str());
    return buf;
}

} // namespace

Json
ServeReport::toJson() const
{
    Json root = Json::object();
    root.set("schema", kSchema);
    root.set("frame_limit", frameLimit);
    root.set("shard_frames", shardFrames);
    root.set("think_ms", thinkMs);
    Json rows = Json::array();
    for (const ServeLoadPoint &p : points) {
        Json row = Json::object();
        row.set("workers", p.workers);
        row.set("requests", p.requests);
        row.set("policy", p.policy);
        row.set("makespan_seconds", p.makespanSeconds);
        row.set("requests_per_sec", p.requestsPerSec);
        row.set("p50_latency_seconds", p.p50LatencySeconds);
        row.set("p95_latency_seconds", p.p95LatencySeconds);
        rows.push(std::move(row));
    }
    root.set("points", std::move(rows));
    root.set("fifo_requests_per_sec", fifoRequestsPerSec);
    root.set("fair_requests_per_sec", fairRequestsPerSec);
    root.set("fair_speedup", fairSpeedup);
    return root;
}

Expected<ServeReport>
ServeReport::fromJson(const Json &json)
{
    const Json *schema = json.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kSchema)
        return errorf(Errc::BadVersion,
                      "serve report: schema is not '%s'", kSchema);
    ServeReport report;
    if (auto v = numberAt(json, "frame_limit"); v.ok())
        report.frameLimit = static_cast<std::size_t>(*v);
    if (auto v = numberAt(json, "shard_frames"); v.ok())
        report.shardFrames = static_cast<std::size_t>(*v);
    if (auto v = numberAt(json, "think_ms"); v.ok())
        report.thinkMs = static_cast<std::size_t>(*v);
    const Json *rows = json.find("points");
    if (!rows || !rows->isArray())
        return errorf(Errc::BadFormat,
                      "serve report: missing 'points'");
    for (const Json &row : rows->items()) {
        ServeLoadPoint p;
        auto workers = numberAt(row, "workers");
        auto requests = numberAt(row, "requests");
        auto makespan = numberAt(row, "makespan_seconds");
        auto rps = numberAt(row, "requests_per_sec");
        auto p50 = numberAt(row, "p50_latency_seconds");
        auto p95 = numberAt(row, "p95_latency_seconds");
        if (!workers.ok())
            return workers.error();
        if (!requests.ok())
            return requests.error();
        if (!makespan.ok())
            return makespan.error();
        if (!rps.ok())
            return rps.error();
        if (!p50.ok())
            return p50.error();
        if (!p95.ok())
            return p95.error();
        p.workers = static_cast<std::size_t>(*workers);
        p.requests = static_cast<std::size_t>(*requests);
        if (const Json *policy = row.find("policy");
            policy && policy->isString())
            p.policy = policy->asString();
        p.makespanSeconds = *makespan;
        p.requestsPerSec = *rps;
        p.p50LatencySeconds = *p50;
        p.p95LatencySeconds = *p95;
        report.points.push_back(std::move(p));
    }
    if (auto v = numberAt(json, "fifo_requests_per_sec"); v.ok())
        report.fifoRequestsPerSec = *v;
    if (auto v = numberAt(json, "fair_requests_per_sec"); v.ok())
        report.fairRequestsPerSec = *v;
    if (auto v = numberAt(json, "fair_speedup"); v.ok())
        report.fairSpeedup = *v;
    return report;
}

Expected<void>
ServeReport::save(const std::string &path) const
{
    return resilience::atomicWriteFile(path, toJson().dump());
}

Expected<ServeReport>
ServeReport::load(const std::string &path)
{
    auto text = resilience::readFileToString(path);
    if (!text.ok())
        return text.error();
    auto json = Json::parse(*text);
    if (!json.ok())
        return json.error();
    return fromJson(*json);
}

std::vector<ServeDelta>
compareServeDeltas(const ServeReport &current,
                   const ServeReport &baseline, double bandPercent)
{
    std::vector<ServeDelta> deltas;
    auto match = [&](const ServeLoadPoint &p)
        -> const ServeLoadPoint * {
        for (const ServeLoadPoint &b : baseline.points)
            if (b.workers == p.workers &&
                b.requests == p.requests && b.policy == p.policy)
                return &b;
        return nullptr;
    };
    for (const ServeLoadPoint &p : current.points) {
        const ServeLoadPoint *b = match(p);
        if (!b) {
            deltas.push_back(
                {pointLabel(p), p.requestsPerSec, 0.0, 0.0, true});
            continue;
        }
        if (b->requestsPerSec <= 0.0)
            continue;
        const double deviation =
            (p.requestsPerSec - b->requestsPerSec) /
            b->requestsPerSec * 100.0;
        if (std::fabs(deviation) > bandPercent)
            deltas.push_back({pointLabel(p), p.requestsPerSec,
                              b->requestsPerSec, deviation, false});
    }
    if (baseline.fairSpeedup > 0.0 && current.fairSpeedup > 0.0) {
        const double deviation =
            (current.fairSpeedup - baseline.fairSpeedup) /
            baseline.fairSpeedup * 100.0;
        if (std::fabs(deviation) > bandPercent)
            deltas.push_back({"fair speedup", current.fairSpeedup,
                              baseline.fairSpeedup, deviation,
                              false});
    }
    return deltas;
}

std::vector<std::string>
compareServeReports(const ServeReport &current,
                    const ServeReport &baseline, double bandPercent)
{
    std::vector<std::string> lines;
    char buf[192];
    for (const ServeDelta &d :
         compareServeDeltas(current, baseline, bandPercent)) {
        if (d.missingBaseline) {
            std::snprintf(buf, sizeof(buf), "%s: no baseline point",
                          d.what.c_str());
        } else if (d.what == "fair speedup") {
            std::snprintf(
                buf, sizeof(buf),
                "fair speedup: %.2fx vs baseline %.2fx (%+.1f%%, "
                "band ±%.0f%%)",
                d.current, d.baseline, d.deltaPercent, bandPercent);
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "%s: %.3f req/s vs baseline %.3f (%+.1f%%, band "
                "±%.0f%%)",
                d.what.c_str(), d.current, d.baseline,
                d.deltaPercent, bandPercent);
        }
        lines.push_back(buf);
    }
    return lines;
}

} // namespace msim::sched
