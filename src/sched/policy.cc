#include "sched/policy.hh"

namespace msim::sched
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Fifo: return "fifo";
      case Policy::FairShare: return "fair";
      case Policy::ShortestRemaining: return "srs";
    }
    return "?";
}

Expected<Policy>
parsePolicy(const std::string &name)
{
    if (name == "fifo")
        return Policy::Fifo;
    if (name == "fair" || name == "fair-share")
        return Policy::FairShare;
    if (name == "srs" || name == "shortest" ||
        name == "shortest-remaining")
        return Policy::ShortestRemaining;
    return errorf(Errc::BadFormat,
                  "unknown scheduling policy '%s' (expected fifo, "
                  "fair or srs)",
                  name.c_str());
}

std::size_t
pickNext(Policy policy, const std::vector<Candidate> &candidates)
{
    if (policy == Policy::Fifo) {
        // Strict arrival order is EXCLUSIVE: the oldest unfinished
        // request owns the fleet; if none of its shards is eligible
        // right now, nobody dispatches.
        std::size_t oldest = kNoPick;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const Candidate &c = candidates[i];
            if (c.remaining == 0)
                continue;
            if (oldest == kNoPick ||
                c.arrival < candidates[oldest].arrival)
                oldest = i;
        }
        if (oldest == kNoPick || !candidates[oldest].eligible)
            return kNoPick;
        return oldest;
    }

    std::size_t best = kNoPick;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Candidate &c = candidates[i];
        if (!c.eligible || c.remaining == 0)
            continue;
        if (best == kNoPick) {
            best = i;
            continue;
        }
        const Candidate &b = candidates[best];
        if (policy == Policy::FairShare) {
            if (c.tenantVirtual < b.tenantVirtual ||
                (c.tenantVirtual == b.tenantVirtual &&
                 c.arrival < b.arrival))
                best = i;
        } else { // ShortestRemaining
            if (c.remaining < b.remaining ||
                (c.remaining == b.remaining &&
                 c.arrival < b.arrival))
                best = i;
        }
    }
    return best;
}

} // namespace msim::sched
