/**
 * @file
 * Multi-tenant campaign scheduler: a shard-granular run queue over one
 * shared serve::Fleet.
 *
 * The Scheduler sits between the request service and the worker fleet.
 * It admits up to maxInflight requests at once, decomposes each into
 * benchmark×frame-range shards exactly as the supervised runner does,
 * and leases fleet workers one shard at a time under a pluggable
 * policy (sched/policy.hh) — so shards from *different* requests
 * interleave on the same worker processes instead of one campaign
 * monopolizing the fleet while the queue idles.
 *
 * Isolation is per request, end to end: every request carries its own
 * optional StatsRegistry (applied as a ProcessRegistryOverride around
 * that request's load/analysis work) and its own optional RunLedger
 * (admission, dispatch decisions, retries, quarantines, completion all
 * land there, and fleet spawn/exit events are routed to the affected
 * request). A poison shard quarantines only its own request — sibling
 * shards of the same bench are cancelled, the request completes
 * degraded, and every other request is untouched. Because frames
 * simulate cold, shard rows reassemble in frame order, and analysis
 * runs through batch::analyzeBenchmark, each request's report is
 * bit-identical per bench to a solo run at any worker count and any
 * interleaving.
 *
 * Admission is bounded: admit() beyond maxInflight returns Errc::Busy
 * ("queue full") so callers can push backpressure to clients instead
 * of buffering unboundedly. Observability: sched.* counters in the
 * ambient stats registry, request_admit / sched_dispatch /
 * request_done ledger events, and per-request "request.wait" /
 * "request.service" spans on the kRequestTrackBase+id timeline lanes.
 */

#ifndef MSIM_SCHED_SCHEDULER_HH
#define MSIM_SCHED_SCHEDULER_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "batch/campaign.hh"
#include "obs/ledger.hh"
#include "obs/stats.hh"
#include "sched/policy.hh"
#include "serve/fleet.hh"
#include "serve/supervisor.hh"

namespace msim::sched
{

struct SchedulerConfig
{
    Policy policy = Policy::FairShare;
    /** Bounded run queue: admit() past this returns Errc::Busy. */
    std::size_t maxInflight = 8;
    /** Sharding/retry/backoff knobs, shared with the supervisor. */
    serve::SupervisorConfig shard;

    /**
     * Defaults plus MEGSIM_SCHED_POLICY / MEGSIM_SCHED_MAX_INFLIGHT
     * (and the shard knobs via SupervisorConfig::fromEnv()).
     */
    static SchedulerConfig fromEnv();
};

/** One campaign request as submitted to the scheduler. */
struct RequestSpec
{
    /** Benchmark aliases; empty = the full Table II suite. */
    std::vector<std::string> benches;
    /** Fair-share accounting bucket. */
    std::string tenant = "default";
    /** Fair-share weight: a weight-2 tenant is charged half the
     *  virtual time per dispatch, so it gets twice the share. */
    double weight = 1.0;
    /** Optional per-request ledger: receives this request's admit /
     *  dispatch / retry / quarantine / done events. */
    obs::RunLedger *ledger = nullptr;
    /** Optional per-request stats registry, applied as an override
     *  around this request's load and analysis work; nullptr uses the
     *  ambient registry (solo in-process behaviour). */
    obs::StatsRegistry *registry = nullptr;
};

/** A finished request: its report plus the scheduler's timings. */
struct RequestResult
{
    std::size_t id = 0;
    std::string tenant;
    /** "ok" or "degraded" (quarantined shards). */
    std::string status;
    /** Admission to first shard dispatch (or to analysis start when
     *  every bench was cache-fresh and nothing dispatched). */
    double queueWaitSeconds = 0.0;
    /** First dispatch (or analysis start) to completion. */
    double serviceSeconds = 0.0;
    batch::CampaignReport report;
};

class Scheduler
{
  public:
    /**
     * @p base supplies the shared campaign settings (cache dir,
     * scale, frame limit, analysis config); per-request benches come
     * from each RequestSpec. @p fleet outlives the scheduler.
     */
    Scheduler(batch::CampaignConfig base, SchedulerConfig config,
              serve::Fleet &fleet);
    ~Scheduler();
    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit one request: load its scenes, probe its caches, shard
     * whatever needs (re)generation, and enter it into the run queue.
     * Returns the request id, Errc::Busy when the queue is full, or
     * the first load error (unknown alias).
     */
    resilience::Expected<std::size_t> admit(const RequestSpec &spec);

    /**
     * One scheduling round: top up the fleet, dispatch eligible
     * shards under the policy, wait up to @p timeoutMs for replies,
     * recover failures, and finalize every request whose shards are
     * all terminal. Returns the requests that completed this round.
     */
    std::vector<RequestResult> step(int timeoutMs);

    /** Admitted requests not yet finalized. */
    std::size_t inflight() const { return active_.size(); }
    bool busy() const { return !active_.empty(); }

    /** step(50) until the queue drains; all results in finish order. */
    std::vector<RequestResult> runToCompletion();

    const SchedulerConfig &config() const { return config_; }

  private:
    struct Item;
    struct Shard;
    struct Request;

    void dispatchEligible(double now);
    void resolveLeases();
    void routeFleetEvents();
    void handleEvent(const serve::Fleet::Event &event);
    void failShard(Request &request, Shard &shard,
                   const std::string &reason);
    RequestResult finalize(std::unique_ptr<Request> request);
    double shardDeadlineSeconds(const Shard &shard) const;

    batch::CampaignConfig base_;
    SchedulerConfig config_;
    serve::Fleet &fleet_;
    obs::StatsRegistry &ambient_;
    std::vector<std::unique_ptr<Request>> active_;
    /** Global shard id → (owning request, index into its shards). */
    std::map<std::size_t, std::pair<Request *, std::size_t>> owner_;
    /**
     * Cache key → request currently regenerating that ground truth.
     * A later request targeting the same (scene, GPU config) leases
     * the in-flight regeneration instead of re-running it: it gets no
     * shards of its own, waits for the producer to finalize (which
     * stores the cache), then loads the verified cache. Closes the
     * DESIGN.md §6j duplicate-regeneration journal race.
     */
    std::map<std::uint64_t, std::size_t> regenOwner_;
    /** Tenant → consumed virtual time (fair-share state). */
    std::map<std::string, double> tenantVirtual_;
    std::size_t nextRequestId_ = 0;
    std::size_t nextShardId_ = 0;
};

} // namespace msim::sched

#endif // MSIM_SCHED_SCHEDULER_HH
