/**
 * @file
 * The concurrent-load serving report — BENCH_serve.json. One row per
 * (workers × concurrent requests) point of the bench/serve matrix:
 * batch makespan, aggregate requests/s, and the p50/p95 of the
 * per-request latency (queue wait + service). The report also carries
 * the FIFO-vs-fair A/B at the contended point — the acceptance
 * criterion's fair_speedup — under the `megsim-serve-v1` schema, and
 * compares warn-only against a committed baseline exactly like the
 * perf trajectory (wall clocks are machine-dependent; wide band).
 */

#ifndef MSIM_SCHED_REPORT_HH
#define MSIM_SCHED_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "resilience/expected.hh"
#include "util/json.hh"

namespace msim::sched
{

/** One point of the load matrix. */
struct ServeLoadPoint
{
    std::size_t workers = 0;
    std::size_t requests = 0;
    std::string policy;
    double makespanSeconds = 0.0;
    double requestsPerSec = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
};

struct ServeReport
{
    static constexpr const char *kSchema = "megsim-serve-v1";

    // Run parameters (so two reports are known comparable).
    std::size_t frameLimit = 0;
    std::size_t shardFrames = 0;
    /** Per-shard trace-ingest think time the load was run with. */
    std::size_t thinkMs = 0;

    std::vector<ServeLoadPoint> points;

    // FIFO-vs-fair A/B at the contended 4-worker × 4-request point.
    double fifoRequestsPerSec = 0.0;
    double fairRequestsPerSec = 0.0;
    /** fair / fifo aggregate throughput; the ≥1.5× criterion. */
    double fairSpeedup = 0.0;

    util::Json toJson() const;
    static resilience::Expected<ServeReport>
    fromJson(const util::Json &json);

    resilience::Expected<void> save(const std::string &path) const;
    static resilience::Expected<ServeReport>
    load(const std::string &path);
};

/**
 * One out-of-band deviation between two serve reports — the
 * structured form both the warn-only and the strict (--strict,
 * exit 10) comparison paths consume. A point with missingBaseline set
 * carries no delta and is informational only: matrix points present
 * on one side never fail a gate.
 */
struct ServeDelta
{
    std::string what; // point label or "fair speedup"
    double current = 0.0;
    double baseline = 0.0;
    double deltaPercent = 0.0;
    bool missingBaseline = false;
};

/**
 * Every matrix point (matched by workers×requests×policy) whose
 * requests/s deviates from @p baseline by more than @p bandPercent,
 * plus the fair speedup. Empty = within the band.
 */
std::vector<ServeDelta> compareServeDeltas(const ServeReport &current,
                                           const ServeReport &baseline,
                                           double bandPercent);

/** compareServeDeltas() rendered as ready-to-print warning lines. */
std::vector<std::string> compareServeReports(
    const ServeReport &current, const ServeReport &baseline,
    double bandPercent);

} // namespace msim::sched

#endif // MSIM_SCHED_REPORT_HH
