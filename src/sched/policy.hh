/**
 * @file
 * Scheduling policies: which admitted request gets the next idle
 * worker.
 *
 * The scheduler reduces each in-flight request to a Candidate — its
 * arrival order, remaining shard count, whether it has a shard
 * eligible to dispatch right now, and its tenant's virtual time — and
 * pickNext() chooses among them:
 *
 *   Fifo              strict arrival order. The oldest unfinished
 *                     request owns the fleet even while all its
 *                     remaining shards are backing off — younger
 *                     requests never jump the queue. This is the
 *                     pre-scheduler serving discipline, kept as the
 *                     baseline bench/serve measures fair-share
 *                     against.
 *   FairShare         weighted fair queueing over tenants: among
 *                     dispatchable requests, the one whose tenant has
 *                     consumed the least virtual time (each dispatch
 *                     charges 1/weight) goes first, arrival order
 *                     breaking ties. Monotone virtual time bounds any
 *                     tenant's wait by the shard service time of the
 *                     others — no starvation.
 *   ShortestRemaining shortest-remaining-shards first, arrival order
 *                     breaking ties: drains small requests fastest,
 *                     minimizing mean latency at the cost of letting
 *                     a large request wait.
 */

#ifndef MSIM_SCHED_POLICY_HH
#define MSIM_SCHED_POLICY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "resilience/expected.hh"

namespace msim::sched
{

enum class Policy { Fifo, FairShare, ShortestRemaining };

/** Stable names: "fifo" / "fair" / "srs" (reports, ledger events). */
const char *policyName(Policy policy);

/**
 * Parse a --policy / MEGSIM_SCHED_POLICY value. Accepts the stable
 * names plus the spelled-out aliases "fair-share",
 * "shortest-remaining" and "shortest"; anything else is BadFormat.
 */
resilience::Expected<Policy> parsePolicy(const std::string &name);

/** One in-flight request as the policy sees it. */
struct Candidate
{
    /** Admission order (monotone request id). */
    std::size_t arrival = 0;
    /** Shards not yet Done/Quarantined/Cancelled. */
    std::size_t remaining = 0;
    /** A pending shard is eligible to dispatch right now (not all
     *  backing off / already running). */
    bool eligible = false;
    /** The owning tenant's consumed virtual time. */
    double tenantVirtual = 0.0;
};

inline constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

/**
 * Index of the candidate to dispatch next, or kNoPick when the policy
 * refuses to dispatch (no eligible candidate — or, under Fifo, the
 * oldest unfinished request has nothing eligible yet).
 */
std::size_t pickNext(Policy policy,
                     const std::vector<Candidate> &candidates);

} // namespace msim::sched

#endif // MSIM_SCHED_POLICY_HH
