#include "sched/scheduler.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "core/megsim.hh"
#include "exec/pool.hh"
#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"
#include "resilience/watchdog.hh"
#include "serve/protocol.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/workloads.hh"

namespace msim::sched
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

double
counterValue(const char *name)
{
    const obs::Stat *stat = obs::processRegistry().find(name);
    return stat ? stat->value() : 0.0;
}

/** Parse one [[...], ...] rows array back into vectors of doubles. */
Expected<std::vector<std::vector<double>>>
rowsFromJson(const Json *rows, const char *what)
{
    if (!rows || !rows->isArray())
        return errorf(Errc::BadFormat,
                      "shard reply: missing '%s' rows", what);
    std::vector<std::vector<double>> out;
    out.reserve(rows->size());
    for (const Json &row : rows->items()) {
        if (!row.isArray())
            return errorf(Errc::BadFormat,
                          "shard reply: '%s' row is not an array",
                          what);
        std::vector<double> values;
        values.reserve(row.size());
        for (const Json &v : row.items()) {
            if (!v.isNumber())
                return errorf(
                    Errc::BadFormat,
                    "shard reply: non-numeric '%s' cell", what);
            values.push_back(v.asNumber());
        }
        out.push_back(std::move(values));
    }
    return out;
}

/** Record one span on a request's sparse timeline lane. */
void
recordRequestSpan(std::size_t requestId, const char *name,
                  double begin, double end, std::uint64_t arg,
                  std::string detail)
{
    if (!obs::timelineEnabled())
        return;
    obs::TimelineRecorder lane(
        obs::kRequestTrackBase +
        static_cast<std::uint32_t>(requestId));
    lane.record(name, begin, end, arg, std::move(detail));
    obs::TimelineRecorder::global().mergeFrom(lane);
}

} // namespace

SchedulerConfig
SchedulerConfig::fromEnv()
{
    SchedulerConfig config;
    config.shard = serve::SupervisorConfig::fromEnv();
    if (const char *env = std::getenv("MEGSIM_SCHED_POLICY")) {
        Expected<Policy> parsed = parsePolicy(env);
        if (parsed.ok())
            config.policy = *parsed;
        else
            sim::warn("sched: %s", parsed.error().message.c_str());
    }
    if (const char *env = std::getenv("MEGSIM_SCHED_MAX_INFLIGHT"))
        if (std::atoll(env) > 0)
            config.maxInflight =
                static_cast<std::size_t>(std::atoll(env));
    return config;
}

/** One benchmark moving through a request (mirrors the supervisor). */
struct Scheduler::Item
{
    std::string alias;
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    std::string cacheStatus = "built";
    std::size_t resumedFrames = 0;
    bool needsRegen = false;
    bool quarantined = false;
    /** True while another request's regeneration is leased. */
    bool leased = false;
    std::uint64_t leaseKey = 0;
    std::size_t leaseProducer = 0;
};

struct Scheduler::Shard
{
    enum class State { Pending, Running, Done, Quarantined, Cancelled };

    std::size_t id = 0;   // globally unique across requests
    std::size_t item = 0; // index into the owning request's items
    std::size_t beginFrame = 0;
    std::size_t endFrame = 0;
    std::size_t attempts = 0; // failures so far; also the next
                              // attempt number sent to workers
    double eligibleAt = 0.0;  // earliest re-dispatch instant
    State state = State::Pending;
    std::size_t resumed = 0;
    std::string lastReason;
    std::vector<std::vector<double>> statsRows;
    std::vector<std::vector<double>> activityRows;
};

struct Scheduler::Request
{
    std::size_t id = 0;
    std::string tenant;
    double weight = 1.0;
    obs::RunLedger *ledger = nullptr;
    obs::StatsRegistry *registry = nullptr;
    std::vector<std::unique_ptr<Item>> items;
    std::vector<Shard> shards;
    double admitAt = 0.0;
    double firstDispatchAt = -1.0; // < 0 until the first dispatch
    double busy0 = 0.0;            // pool counters at admission,
    double job0 = 0.0;             // read under the request override

    std::size_t
    remainingShards() const
    {
        std::size_t remaining = 0;
        for (const Shard &shard : shards)
            if (shard.state == Shard::State::Pending ||
                shard.state == Shard::State::Running)
                ++remaining;
        return remaining;
    }

    void
    recordEvent(const char *type, Json fields)
    {
        if (ledger)
            ledger->event(type, std::move(fields));
    }
};

Scheduler::Scheduler(batch::CampaignConfig base,
                     SchedulerConfig config, serve::Fleet &fleet)
    : base_(std::move(base)), config_(config), fleet_(fleet),
      ambient_(obs::processRegistry())
{
    if (config_.maxInflight == 0)
        config_.maxInflight = 1;
}

Scheduler::~Scheduler() = default;

double
Scheduler::shardDeadlineSeconds(const Shard &shard) const
{
    if (config_.shard.shardDeadlineMs > 0)
        return static_cast<double>(config_.shard.shardDeadlineMs) /
               1000.0;
    const resilience::WatchdogConfig watchdog =
        resilience::WatchdogConfig::fromEnv();
    if (watchdog.wallBudgetSeconds > 0.0) {
        // Per-frame budget times the shard size, with slack for the
        // worker's one-time scene composition.
        const double frames = static_cast<double>(
            shard.endFrame - shard.beginFrame);
        return watchdog.wallBudgetSeconds * frames * 4.0 + 10.0;
    }
    return 120.0;
}

Expected<std::size_t>
Scheduler::admit(const RequestSpec &spec)
{
    if (active_.size() >= config_.maxInflight) {
        ++ambient_.scalar("sched.requests_rejected",
                          "requests refused by admission control");
        return errorf(Errc::Busy,
                      "scheduler queue full (%zu in flight, cap %zu)",
                      active_.size(), config_.maxInflight);
    }

    auto request = std::make_unique<Request>();
    request->id = nextRequestId_;
    request->tenant =
        spec.tenant.empty() ? "default" : spec.tenant;
    request->weight = spec.weight > 0.0 ? spec.weight : 1.0;
    request->ledger = spec.ledger;
    request->registry = spec.registry;
    request->admitAt = obs::wallSeconds();

    std::vector<std::string> benches = spec.benches;
    if (benches.empty())
        benches = workloads::benchmarkNames();

    {
        std::optional<obs::ProcessRegistryOverride> isolate;
        if (request->registry)
            isolate.emplace(*request->registry);
        request->busy0 = counterValue("exec.pool.busy_seconds");
        request->job0 = counterValue("exec.pool.job_seconds");

        // Load every scene up front, exactly like batch::Campaign.
        obs::AttribScope loadScope(obs::HostDomain::Load);
        for (const std::string &alias : benches) {
            auto built = workloads::tryBuildBenchmark(
                alias, base_.scale, base_.frameLimit);
            if (!built.ok())
                return built.error();
            auto item = std::make_unique<Item>();
            item->alias = alias;
            item->scene = std::move(*built);
            item->data = std::make_unique<megsim::BenchmarkData>(
                item->scene, gpusim::GpuConfig::evaluationScaled(),
                base_.cacheDir);
            request->items.push_back(std::move(item));
        }

        // Probe caches; shard the benchmarks needing regeneration
        // into frame ranges, bench-major in suite order. Shard ids
        // are globally monotone across requests, so concurrent
        // requests never collide in the fleet's lease table.
        for (std::size_t i = 0; i < request->items.size(); ++i) {
            Item &item = *request->items[i];
            switch (item.data->probeCaches()) {
              case megsim::CacheProbe::Loaded:
                item.cacheStatus = "fresh";
                continue;
              case megsim::CacheProbe::Invalid:
                item.cacheStatus = "rebuilt";
                break;
              case megsim::CacheProbe::Missing:
                item.cacheStatus = "built";
                break;
            }
            item.needsRegen = true;
            const std::size_t frames = item.scene.numFrames();
            const std::size_t shardCount =
                (frames + config_.shard.shardFrames - 1) /
                config_.shard.shardFrames;

            // Coalesce duplicate regenerations: if another in-flight
            // request is already rebuilding this exact (scene, GPU
            // config) ground truth, lease its run instead of racing
            // it — this request creates no shards for the bench and
            // loads the producer's verified cache once it lands.
            const std::uint64_t key = item.data->cacheKey();
            auto inFlight = regenOwner_.find(key);
            if (inFlight != regenOwner_.end()) {
                item.leased = true;
                item.leaseKey = key;
                item.leaseProducer = inFlight->second;
                ambient_.scalar("sched.shards_coalesced",
                                "regeneration shards avoided by "
                                "leasing an in-flight rebuild") +=
                    static_cast<double>(shardCount);
                Json fields = Json::object();
                fields.set("bench", item.alias);
                fields.set("request", request->id);
                fields.set("producer", inFlight->second);
                fields.set("shards_avoided", shardCount);
                request->recordEvent("shard_coalesce",
                                     std::move(fields));
                continue;
            }
            regenOwner_[key] = request->id;
            for (std::size_t begin = 0; begin < frames;
                 begin += config_.shard.shardFrames) {
                Shard shard;
                shard.id = nextShardId_++;
                shard.item = i;
                shard.beginFrame = begin;
                shard.endFrame = std::min(
                    frames, begin + config_.shard.shardFrames);
                request->shards.push_back(std::move(shard));
            }
        }
    }

    ++nextRequestId_;
    ++ambient_.scalar("sched.requests_admitted",
                      "requests accepted into the run queue");
    Json fields = Json::object();
    fields.set("request", request->id);
    fields.set("tenant", request->tenant);
    fields.set("policy", policyName(config_.policy));
    Json names = Json::array();
    for (const auto &item : request->items)
        names.push(item->alias);
    fields.set("benches", std::move(names));
    fields.set("queue_depth", active_.size() + 1);
    request->recordEvent("request_admit", std::move(fields));

    const std::size_t id = request->id;
    active_.push_back(std::move(request));
    return id;
}

void
Scheduler::dispatchEligible(double now)
{
    while (fleet_.hasIdle()) {
        std::vector<Candidate> candidates;
        candidates.reserve(active_.size());
        for (const auto &request : active_) {
            Candidate c;
            c.arrival = request->id;
            c.remaining = request->remainingShards();
            c.tenantVirtual = tenantVirtual_[request->tenant];
            for (const Shard &shard : request->shards)
                if (shard.state == Shard::State::Pending &&
                    shard.eligibleAt <= now) {
                    c.eligible = true;
                    break;
                }
            candidates.push_back(c);
        }
        const std::size_t pick =
            pickNext(config_.policy, candidates);
        if (pick == kNoPick)
            return;

        Request &request = *active_[pick];
        Shard *next = nullptr;
        std::size_t index = 0;
        for (std::size_t s = 0; s < request.shards.size(); ++s)
            if (request.shards[s].state == Shard::State::Pending &&
                request.shards[s].eligibleAt <= now) {
                next = &request.shards[s];
                index = s;
                break;
            }
        if (!next)
            return; // cannot happen: eligible implied a pending shard

        serve::ShardSpec spec;
        spec.id = next->id;
        spec.bench = request.items[next->item]->alias;
        spec.beginFrame = next->beginFrame;
        spec.endFrame = next->endFrame;
        spec.attempt = next->attempts;
        std::size_t slot = 0;
        if (!fleet_.dispatch(spec, shardDeadlineSeconds(*next),
                             &slot))
            return; // every idle worker died taking a request

        next->state = Shard::State::Running;
        owner_[next->id] = {&request, index};
        if (request.firstDispatchAt < 0.0) {
            request.firstDispatchAt = now;
            recordRequestSpan(request.id, "request.wait",
                              request.admitAt, now, request.id,
                              request.tenant);
        }
        // Weighted fair queueing: each dispatch charges the tenant
        // 1/weight of virtual time, so a weight-2 tenant accumulates
        // half as fast and is picked twice as often under contention.
        tenantVirtual_[request.tenant] +=
            1.0 / std::max(request.weight, 1e-9);
        ++ambient_.scalar("sched.shards_dispatched",
                          "shards leased to fleet workers");
        Json fields = Json::object();
        fields.set("shard", next->id);
        fields.set("request", request.id);
        fields.set("worker", slot);
        fields.set("bench", spec.bench);
        fields.set("policy", policyName(config_.policy));
        fields.set("remaining", request.remainingShards());
        request.recordEvent("sched_dispatch", std::move(fields));
    }
}

void
Scheduler::resolveLeases()
{
    for (auto &request : active_) {
        for (std::size_t i = 0; i < request->items.size(); ++i) {
            Item &item = *request->items[i];
            if (!item.leased)
                continue;
            const bool producerActive = std::any_of(
                active_.begin(), active_.end(),
                [&](const std::unique_ptr<Request> &r) {
                    return r->id == item.leaseProducer;
                });
            if (producerActive)
                continue;

            // The producer finalized (or was never going to finish
            // this bench). Prefer its stored cache; fall back to
            // regenerating ourselves if it quarantined the bench or
            // the cache store failed.
            std::optional<obs::ProcessRegistryOverride> isolate;
            if (request->registry)
                isolate.emplace(*request->registry);
            item.leased = false;
            if (item.data->probeCaches() ==
                megsim::CacheProbe::Loaded) {
                item.cacheStatus = "coalesced";
                item.needsRegen = false; // nothing to reassemble
                Json fields = Json::object();
                fields.set("bench", item.alias);
                fields.set("request", request->id);
                fields.set("source", "cache");
                request->recordEvent("lease_resolved",
                                     std::move(fields));
                continue;
            }
            regenOwner_[item.leaseKey] = request->id;
            const std::size_t frames = item.scene.numFrames();
            for (std::size_t begin = 0; begin < frames;
                 begin += config_.shard.shardFrames) {
                Shard shard;
                shard.id = nextShardId_++;
                shard.item = i;
                shard.beginFrame = begin;
                shard.endFrame = std::min(
                    frames, begin + config_.shard.shardFrames);
                request->shards.push_back(std::move(shard));
            }
            Json fields = Json::object();
            fields.set("bench", item.alias);
            fields.set("request", request->id);
            fields.set("source", "rebuild");
            request->recordEvent("lease_resolved", std::move(fields));
        }
    }
}

void
Scheduler::routeFleetEvents()
{
    for (auto &[type, fields] : fleet_.drainLedgerEvents()) {
        Request *owner = nullptr;
        if (const Json *shard = fields.find("shard")) {
            auto it = owner_.find(
                static_cast<std::size_t>(shard->asNumber()));
            if (it != owner_.end())
                owner = it->second.first;
        }
        if (!owner)
            // Spawns and idle exits have no shard: charge the oldest
            // in-flight request that keeps a ledger (the facade's
            // single request in the solo case).
            for (const auto &request : active_)
                if (request->ledger) {
                    owner = request.get();
                    break;
                }
        if (owner)
            owner->recordEvent(type.c_str(), std::move(fields));
    }
}

void
Scheduler::failShard(Request &request, Shard &shard,
                     const std::string &reason)
{
    shard.state = Shard::State::Pending;
    shard.lastReason = reason;
    ++shard.attempts;
    const std::string &alias = request.items[shard.item]->alias;
    if (shard.attempts > config_.shard.retryCap) {
        shard.state = Shard::State::Quarantined;
        request.items[shard.item]->quarantined = true;
        // Abandon the bench's remaining work — without this shard it
        // can never produce a result row. Only THIS request degrades;
        // its neighbours in the run queue are untouched.
        for (Shard &other : request.shards)
            if (other.item == shard.item &&
                other.state == Shard::State::Pending)
                other.state = Shard::State::Cancelled;
        sim::warn("sched: quarantining shard %zu (%s [%zu, %zu)) "
                  "of request %zu after %zu attempts: %s",
                  shard.id, alias.c_str(), shard.beginFrame,
                  shard.endFrame, request.id, shard.attempts,
                  reason.c_str());
        ++ambient_.scalar("serve.shards_quarantined",
                          "shards abandoned after the retry cap");
        Json fields = Json::object();
        fields.set("shard", shard.id);
        fields.set("bench", alias);
        fields.set("attempts", shard.attempts);
        fields.set("reason", reason);
        request.recordEvent("shard_quarantine", std::move(fields));
        return;
    }
    // Exponential backoff with deterministic jitter: the schedule is
    // a pure function of (seed, shard, attempt), so recovery timing
    // is reproducible under MEGSIM_FAULTS.
    std::size_t backoffMs = config_.shard.backoffBaseMs
                            << std::min<std::size_t>(
                                   shard.attempts - 1, 16);
    backoffMs = std::min(backoffMs, config_.shard.backoffCapMs);
    if (config_.shard.backoffBaseMs > 0)
        backoffMs += sim::hashMix(config_.shard.seed, shard.id,
                                  shard.attempts) %
                     config_.shard.backoffBaseMs;
    shard.eligibleAt =
        obs::wallSeconds() + static_cast<double>(backoffMs) / 1000.0;
    ++ambient_.scalar("serve.shard_retries",
                      "shard attempts rescheduled");
    Json fields = Json::object();
    fields.set("shard", shard.id);
    fields.set("bench", alias);
    fields.set("attempt", shard.attempts);
    fields.set("reason", reason);
    fields.set("backoff_ms", backoffMs);
    request.recordEvent("shard_retry", std::move(fields));
}

void
Scheduler::handleEvent(const serve::Fleet::Event &event)
{
    auto it = owner_.find(event.shard);
    if (it == owner_.end())
        return; // stale lease (request already finalized)
    Request &request = *it->second.first;
    Shard &shard = request.shards[it->second.second];
    owner_.erase(it);

    if (event.kind != serve::Fleet::EventKind::Reply) {
        failShard(request, shard, event.reason);
        return;
    }

    const Json *status = event.reply.find("status");
    if (!status || status->asString() != "ok") {
        const Json *message = event.reply.find("message");
        failShard(request, shard,
                  message ? message->asString() : "worker error");
        return;
    }
    auto stats = rowsFromJson(event.reply.find("stats"), "stats");
    auto acts =
        rowsFromJson(event.reply.find("activity"), "activity");
    if (!stats.ok() || !acts.ok() ||
        stats->size() != shard.endFrame - shard.beginFrame ||
        acts->size() != stats->size()) {
        failShard(request, shard, "malformed shard reply");
        return;
    }
    if (const Json *resumed = event.reply.find("resumed"))
        shard.resumed =
            static_cast<std::size_t>(resumed->asNumber());
    shard.statsRows = std::move(*stats);
    shard.activityRows = std::move(*acts);
    shard.state = Shard::State::Done;
    ++ambient_.scalar("serve.shards_completed",
                      "shards completed and recorded");
    // The shard journal served its purpose; the rows now live with
    // the scheduler.
    const std::string stem = serve::shardStem(
        request.items[shard.item]->data->checkpointStem(),
        shard.beginFrame, shard.endFrame);
    std::error_code ec;
    std::filesystem::remove(stem + ".ckpt.manifest", ec);
    std::filesystem::remove(stem + ".ckpt.stats.jnl", ec);
    std::filesystem::remove(stem + ".ckpt.activity.jnl", ec);
}

RequestResult
Scheduler::finalize(std::unique_ptr<Request> request)
{
    const double analyzeStart = obs::wallSeconds();
    RequestResult result;
    result.id = request->id;
    result.tenant = request->tenant;

    // Release regeneration ownership: caches this request stored are
    // on disk now, so leasing requests resolve on their next step.
    for (auto it = regenOwner_.begin(); it != regenOwner_.end();)
        it = it->second == request->id ? regenOwner_.erase(it)
                                       : std::next(it);

    {
        std::optional<obs::ProcessRegistryOverride> isolate;
        if (request->registry)
            isolate.emplace(*request->registry);

        // Reassemble each regenerated benchmark's ground truth from
        // its shard rows (frame order = shard order within the
        // bench) and install it — same cache artifacts as the
        // in-process pass.
        for (std::size_t i = 0; i < request->items.size(); ++i) {
            Item &item = *request->items[i];
            if (!item.needsRegen || item.quarantined)
                continue;
            const std::size_t vs = item.scene.numVertexShaders();
            const std::size_t fs = item.scene.numFragmentShaders();
            std::vector<gpusim::FrameStats> stats;
            std::vector<gpusim::FrameActivity> acts;
            stats.reserve(item.scene.numFrames());
            acts.reserve(item.scene.numFrames());
            for (const Shard &shard : request->shards) {
                if (shard.item != i)
                    continue;
                item.resumedFrames += shard.resumed;
                for (const std::vector<double> &row :
                     shard.statsRows)
                    stats.push_back(
                        gpusim::FrameStats::fromCsvRow(row));
                for (const std::vector<double> &row :
                     shard.activityRows)
                    acts.push_back(
                        megsim::activityFromRow(row, vs, fs));
            }
            auto installed = item.data->installGroundTruth(
                std::move(stats), std::move(acts));
            if (!installed.ok())
                sim::warn("sched: cache store of '%s' failed: %s",
                          item.alias.c_str(),
                          installed.error().message.c_str());
        }

        // Analyze in suite order through the shared pipeline —
        // identical inputs, identical rows to the in-process
        // campaign.
        batch::CampaignReport &report = result.report;
        if (base_.suiteCluster) {
            std::vector<batch::SuiteBench> inputs;
            for (auto &item : request->items) {
                if (item->quarantined)
                    continue;
                inputs.push_back(batch::SuiteBench{
                    item->alias, item->data.get(), item->cacheStatus,
                    item->resumedFrames});
            }
            batch::SuiteAnalysis suite =
                batch::analyzeSuite(inputs, base_.megsim);
            for (batch::BenchmarkReport &row : suite.rows)
                report.benchmarks.push_back(std::move(row));
            report.suiteCluster = true;
            report.sharedRepresentatives =
                suite.sharedRepresentatives;
            report.perBenchRepresentatives =
                suite.perBenchRepresentatives;
            report.suiteReductionFactor = suite.suiteReductionFactor;
        } else {
            for (auto &item : request->items) {
                if (item->quarantined)
                    continue;
                batch::BenchmarkReport row = batch::analyzeBenchmark(
                    item->alias, *item->data, base_.megsim);
                row.resumedFrames = item->resumedFrames;
                row.cacheStatus = item->cacheStatus;
                report.benchmarks.push_back(std::move(row));
            }
        }
        for (const Shard &shard : request->shards) {
            if (shard.state != Shard::State::Quarantined)
                continue;
            batch::QuarantinedShard q;
            q.shard = shard.id;
            q.bench = request->items[shard.item]->alias;
            q.beginFrame = shard.beginFrame;
            q.endFrame = shard.endFrame;
            q.attempts = shard.attempts;
            q.reason = shard.lastReason;
            report.quarantined.push_back(std::move(q));
        }
        report.degraded = !report.quarantined.empty();
        exec::Pool &pool = exec::Pool::global();
        report.threads = pool.workers();
        report.computeAggregates();
        report.wallSeconds = obs::wallSeconds() - request->admitAt;

        const double busy =
            counterValue("exec.pool.busy_seconds") - request->busy0;
        const double jobSeconds =
            counterValue("exec.pool.job_seconds") - request->job0;
        const double capacity =
            static_cast<double>(pool.workers()) * jobSeconds;
        report.poolUtilization =
            capacity > 0.0
                ? (busy < capacity ? busy / capacity : 1.0)
                : 1.0;

        batch::publishCampaignStats(report);
    }

    const double now = obs::wallSeconds();
    const double serviceStart = request->firstDispatchAt >= 0.0
                                    ? request->firstDispatchAt
                                    : analyzeStart;
    result.status = result.report.degraded ? "degraded" : "ok";
    result.queueWaitSeconds = serviceStart - request->admitAt;
    result.serviceSeconds = now - serviceStart;
    recordRequestSpan(request->id, "request.service", serviceStart,
                      now, request->id, request->tenant);
    ++ambient_.scalar("sched.requests_completed",
                      "requests finalized and replied");

    std::size_t quarantined = 0;
    for (const Shard &shard : request->shards)
        if (shard.state == Shard::State::Quarantined)
            ++quarantined;
    Json fields = Json::object();
    fields.set("request", request->id);
    fields.set("status", result.status);
    fields.set("queue_wait_seconds", result.queueWaitSeconds);
    fields.set("service_seconds", result.serviceSeconds);
    fields.set("shards", request->shards.size());
    fields.set("quarantined", quarantined);
    request->recordEvent("request_done", std::move(fields));
    return result;
}

std::vector<RequestResult>
Scheduler::step(int timeoutMs)
{
    std::vector<RequestResult> finished;
    if (active_.empty())
        return finished;
    const double now = obs::wallSeconds();

    // Leased items whose producer finalized last round resolve first,
    // so any fallback shards they create dispatch this round.
    resolveLeases();

    std::size_t outstanding = 0;
    bool backingOff = false;
    for (const auto &request : active_)
        for (const Shard &shard : request->shards) {
            if (shard.state == Shard::State::Pending ||
                shard.state == Shard::State::Running)
                ++outstanding;
            if (shard.state == Shard::State::Pending &&
                shard.eligibleAt > now)
                backingOff = true;
        }

    fleet_.ensureWorkers(outstanding);
    dispatchEligible(now);
    routeFleetEvents();

    if (fleet_.busyCount() > 0) {
        const std::vector<serve::Fleet::Event> events =
            fleet_.poll(timeoutMs);
        routeFleetEvents();
        for (const serve::Fleet::Event &event : events)
            handleEvent(event);
    } else if (backingOff) {
        // Everything pending is waiting out its backoff; sleep
        // briefly so the loop doesn't spin.
        ::usleep(2000);
    }

    // Finalize every request whose shards are all terminal and whose
    // leases (if any) have resolved.
    for (std::size_t i = 0; i < active_.size();) {
        const bool done =
            std::none_of(
                active_[i]->shards.begin(), active_[i]->shards.end(),
                [](const Shard &shard) {
                    return shard.state == Shard::State::Pending ||
                           shard.state == Shard::State::Running;
                }) &&
            std::none_of(active_[i]->items.begin(),
                         active_[i]->items.end(),
                         [](const std::unique_ptr<Item> &item) {
                             return item->leased;
                         });
        if (!done) {
            ++i;
            continue;
        }
        std::unique_ptr<Request> request = std::move(active_[i]);
        active_.erase(active_.begin() + i);
        finished.push_back(finalize(std::move(request)));
    }
    return finished;
}

std::vector<RequestResult>
Scheduler::runToCompletion()
{
    std::vector<RequestResult> results;
    while (busy()) {
        std::vector<RequestResult> finished = step(50);
        for (RequestResult &result : finished)
            results.push_back(std::move(result));
    }
    return results;
}

} // namespace msim::sched
