/**
 * @file
 * Crash-isolated supervised campaign runner.
 *
 * The Supervisor shards every benchmark needing ground-truth
 * (re)generation into fixed-size frame ranges and farms the shards
 * out to forked worker processes over checksummed pipe frames
 * (serve/protocol.hh). Each worker runs its shard in full process
 * isolation — its own address space, its own per-shard checkpoint
 * journal — so a simulator crash, a hang, or a corrupted reply can
 * never take the campaign down:
 *
 *   failure          detection                      recovery
 *   worker death     EOF on the reply pipe,         resume the shard
 *   (SIGKILL/SEGV/   waitpid status                 from its journal
 *   nonzero exit)                                   on a fresh worker
 *   worker hang      per-shard wall-clock deadline  SIGKILL + same
 *   corrupt reply    frame checksum / parse fail    SIGKILL + same
 *
 * Retries back off exponentially with deterministic jitter and are
 * capped per shard; a shard that exhausts the cap is quarantined —
 * the campaign completes degraded, the owning benchmark is dropped
 * from the result rows, and the report lists the shard under
 * `quarantined_shards`. Every supervision event (worker_spawn,
 * worker_exit, shard_retry, shard_quarantine) is recorded in the
 * megsim-run-v1 ledger when one is attached.
 *
 * A crash-free supervised run is bit-identical per benchmark to the
 * in-process batch::Campaign at ANY worker count: frames simulate
 * cold, shard rows are reassembled in frame order, and the analysis
 * runs through the same batch::analyzeBenchmark.
 *
 * Since the scheduler split, the Supervisor is a facade: it owns a
 * serve::Fleet of the requested size and drives a single-request,
 * FIFO, max-inflight-1 sched::Scheduler over it — the same engine the
 * multi-request service uses, configured down to the classic solo
 * semantics. The supervision behaviour documented above (detection,
 * recovery, backoff, quarantine, ledger events) now lives in those
 * two layers; this class keeps the stable entry point.
 */

#ifndef MSIM_SERVE_SUPERVISOR_HH
#define MSIM_SERVE_SUPERVISOR_HH

#include <cstddef>
#include <cstdint>

#include "batch/campaign.hh"
#include "obs/ledger.hh"

namespace msim::serve
{

struct SupervisorConfig
{
    /** Worker processes to fork. */
    std::size_t workers = 2;
    /** Frames per shard (smaller = finer-grained recovery). */
    std::size_t shardFrames = 32;
    /** Retries per shard before quarantine. */
    std::size_t retryCap = 3;
    /** Exponential backoff: base, doubling per failure, capped. */
    std::size_t backoffBaseMs = 25;
    std::size_t backoffCapMs = 1000;
    /**
     * Per-shard wall deadline in ms; 0 derives one from the frame
     * watchdog budget (MEGSIM_FRAME_BUDGET_MS) or falls back to a
     * generous default.
     */
    std::size_t shardDeadlineMs = 0;
    /** Seeds the deterministic backoff jitter. */
    std::uint64_t seed = 1;

    /**
     * Defaults plus MEGSIM_SHARD_FRAMES / MEGSIM_SHARD_RETRIES /
     * MEGSIM_SHARD_DEADLINE_MS from the environment.
     */
    static SupervisorConfig fromEnv();
};

class Supervisor
{
  public:
    /**
     * @p ledger (optional) receives the supervision events; the
     * campaign-level events stay the caller's job.
     */
    Supervisor(batch::CampaignConfig config, SupervisorConfig sup,
               obs::RunLedger *ledger = nullptr);
    ~Supervisor();

    /**
     * Run the suite under supervision. Returns the completed report —
     * possibly degraded (report.degraded, report.quarantined) — or
     * the first structured error (unknown alias, failed install).
     */
    resilience::Expected<batch::CampaignReport> run();

  private:
    batch::CampaignConfig config_;
    SupervisorConfig sup_;
    obs::RunLedger *ledger_;
};

} // namespace msim::serve

#endif // MSIM_SERVE_SUPERVISOR_HH
