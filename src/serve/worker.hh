/**
 * @file
 * The supervised campaign worker: the code that runs inside each
 * process the serve::Supervisor forks. A worker owns nothing but its
 * two pipe ends — it receives ShardSpec requests, simulates the
 * shard's frame range serially against its own per-shard checkpoint
 * journal (so a killed worker's successor resumes instead of
 * restarting), and ships the completed rows back as one checksummed
 * reply frame. All crash-recovery policy (retry, backoff, quarantine)
 * lives in the supervisor; the worker's only resilience duty is to
 * journal every completed frame before acknowledging anything.
 */

#ifndef MSIM_SERVE_WORKER_HH
#define MSIM_SERVE_WORKER_HH

#include "batch/campaign.hh"

namespace msim::serve
{

/**
 * Serve shard requests from @p reqFd, replying on @p repFd, until the
 * request pipe reaches EOF or a shutdown message arrives. Runs in the
 * forked child; the caller should `_exit()` with the return value so
 * no parent atexit handlers (or sanitizer leak reports for the
 * inherited heap) fire in the child.
 */
int workerMain(int reqFd, int repFd,
               const batch::CampaignConfig &config);

} // namespace msim::serve

#endif // MSIM_SERVE_WORKER_HH
