#include "serve/service.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <map>
#include <memory>

#include "exec/pool.hh"
#include "obs/stats.hh"
#include "sched/scheduler.hh"
#include "serve/fleet.hh"
#include "serve/protocol.hh"
#include "sim/logging.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

/** A request must arrive promptly once its connection is accepted. */
constexpr double kRequestTimeoutMs = 10000.0;

Expected<int>
bindListen(const std::string &path)
{
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path))
        return errorf(Errc::BadFormat,
                      "serve: unusable socket path '%s'",
                      path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errorf(Errc::Io, "serve: socket failed: %s",
                      std::strerror(errno));
    ::unlink(path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(fd);
        return errorf(Errc::Io, "serve: bind '%s' failed: %s",
                      path.c_str(), std::strerror(errno));
    }
    // The backlog holds clients between accept rounds; admission
    // control (not the backlog) bounds the actual run queue.
    if (::listen(fd, 16) != 0) {
        ::close(fd);
        return errorf(Errc::Io, "serve: listen failed: %s",
                      std::strerror(errno));
    }
    // Nonblocking, so draining the backlog never stalls the
    // scheduler loop.
    ::fcntl(fd, F_SETFL,
            ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    return fd;
}

/** Send a terse error/refusal reply; best-effort, then close. */
void
replyAndClose(int fd, const char *status, const std::string &message)
{
    Json reply = Json::object();
    reply.set("type", "campaign_result");
    reply.set("status", status);
    reply.set("message", message);
    (void)writeMessage(fd, reply);
    ::close(fd);
}

/** One admitted request's client connection and isolation state. */
struct PendingRequest
{
    int fd = -1;
    std::unique_ptr<obs::StatsRegistry> registry;
    std::unique_ptr<obs::RunLedger> ledger;
};

} // namespace

int
runService(const ServiceConfig &config)
{
    std::signal(SIGPIPE, SIG_IGN);
    Expected<int> listenFd = bindListen(config.socketPath);
    if (!listenFd.ok()) {
        sim::warn("%s", listenFd.error().message.c_str());
        return 1;
    }

    const std::size_t workers =
        std::max<std::size_t>(config.sup.workers, 1);
    Fleet fleet(config.base, workers);
    sched::SchedulerConfig schedConfig;
    schedConfig.policy = config.policy;
    schedConfig.maxInflight =
        std::max<std::size_t>(config.maxInflight, 1);
    schedConfig.shard = config.sup;
    sched::Scheduler scheduler(config.base, schedConfig, fleet);

    sim::inform("serve: listening on %s (workers %zu, policy %s, "
                "max inflight %zu)",
                config.socketPath.c_str(), workers,
                sched::policyName(config.policy),
                schedConfig.maxInflight);

    std::map<std::size_t, PendingRequest> pending;
    std::size_t admitted = 0;
    std::size_t served = 0;

    auto draining = [&]() {
        return config.maxRequests > 0 &&
               admitted >= config.maxRequests;
    };

    auto handleClient = [&](int client) {
        Expected<Json> request =
            readMessage(client, kRequestTimeoutMs);
        if (!request.ok()) {
            sim::warn("serve: dropping request: %s",
                      request.error().message.c_str());
            replyAndClose(client, "error",
                          request.error().message);
            return;
        }
        if (draining()) {
            // The admission budget is spent; backlogged clients get
            // a clean refusal instead of a hung socket.
            replyAndClose(client, "error", "service shutting down");
            return;
        }

        PendingRequest p;
        p.registry = std::make_unique<obs::StatsRegistry>();
        p.ledger = std::make_unique<obs::RunLedger>();
        {
            Json fields = Json::object();
            fields.set("tool", "serve");
            fields.set("threads", exec::Pool::global().workers());
            fields.set("workers", workers);
            p.ledger->event("run_start", std::move(fields));
        }

        sched::RequestSpec spec;
        if (const Json *benches = request->find("benches");
            benches && benches->isArray())
            for (const Json &alias : benches->items())
                spec.benches.push_back(alias.asString());
        else
            spec.benches = config.base.benches;
        if (const Json *tenant = request->find("tenant");
            tenant && tenant->isString())
            spec.tenant = tenant->asString();
        if (const Json *weight = request->find("weight");
            weight && weight->isNumber())
            spec.weight = weight->asNumber();
        spec.ledger = p.ledger.get();
        spec.registry = p.registry.get();

        Expected<std::size_t> id = scheduler.admit(spec);
        if (!id.ok()) {
            if (id.error().code == Errc::Busy) {
                // Backpressure, not failure: the client retries.
                replyAndClose(client, "rejected",
                              id.error().message);
                return;
            }
            ++admitted; // a served (if failed) request
            Json fields = Json::object();
            fields.set("wall_seconds", 0.0);
            fields.set("status", "failed");
            p.ledger->event("run_end", std::move(fields));
            Json reply = Json::object();
            reply.set("type", "campaign_result");
            reply.set("status", "error");
            reply.set("message", id.error().message);
            reply.set("ledger", p.ledger->serialize());
            (void)writeMessage(client, reply);
            ::close(client);
            ++served;
            sim::inform("serve: request %zu done (error)", served);
            return;
        }
        ++admitted;
        p.fd = client;
        pending.emplace(*id, std::move(p));
    };

    while (!(draining() && pending.empty() && !scheduler.busy())) {
        // Admit whatever the backlog holds, then run one scheduling
        // round. When idle, park in poll() on the listen socket.
        struct pollfd pfd = {*listenFd, POLLIN, 0};
        const int timeout = scheduler.busy() ? 0 : 200;
        const int ready = ::poll(&pfd, 1, timeout);
        if (ready < 0 && errno != EINTR) {
            sim::warn("serve: poll failed: %s",
                      std::strerror(errno));
            break;
        }
        if (ready > 0 && (pfd.revents & POLLIN))
            for (;;) {
                const int client =
                    ::accept(*listenFd, nullptr, nullptr);
                if (client < 0)
                    break;
                handleClient(client);
            }

        for (sched::RequestResult &result : scheduler.step(50)) {
            auto it = pending.find(result.id);
            if (it == pending.end())
                continue;
            PendingRequest &p = it->second;
            {
                Json fields = Json::object();
                fields.set("wall_seconds",
                           result.report.wallSeconds);
                fields.set("status", result.status);
                p.ledger->event("run_end", std::move(fields));
            }
            Json reply = Json::object();
            reply.set("type", "campaign_result");
            reply.set("status", result.status);
            reply.set("report", result.report.toJson());
            reply.set("ledger", p.ledger->serialize());
            if (auto sent = writeMessage(p.fd, reply); !sent.ok())
                sim::warn("serve: reply failed: %s",
                          sent.error().message.c_str());
            ::close(p.fd);
            pending.erase(it);
            ++served;
            sim::inform("serve: request %zu done (%s)", served,
                        result.status.c_str());
        }
    }

    // Final sweep: every client still in the backlog gets a clean
    // "shutting down" refusal before the socket disappears.
    for (;;) {
        const int client = ::accept(*listenFd, nullptr, nullptr);
        if (client < 0)
            break;
        Expected<Json> request = readMessage(client, 1000.0);
        if (request.ok())
            replyAndClose(client, "error", "service shutting down");
        else
            ::close(client);
    }
    fleet.shutdown();
    ::close(*listenFd);
    ::unlink(config.socketPath.c_str());
    return 0;
}

Expected<Json>
submit(const std::string &socketPath, const Json &request)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errorf(Errc::Io, "submit: socket failed: %s",
                      std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return errorf(Errc::Io, "submit: connect '%s' failed: %s",
                      socketPath.c_str(), std::strerror(err));
    }
    if (auto sent = writeMessage(fd, request); !sent.ok()) {
        ::close(fd);
        return sent.error();
    }
    Expected<Json> reply = readMessage(fd, -1.0);
    ::close(fd);
    return reply;
}

} // namespace msim::serve
