#include "serve/service.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "exec/pool.hh"
#include "obs/stats.hh"
#include "serve/protocol.hh"
#include "sim/logging.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

/** A request must arrive promptly once its connection is accepted. */
constexpr double kRequestTimeoutMs = 10000.0;

Expected<int>
bindListen(const std::string &path)
{
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path))
        return errorf(Errc::BadFormat,
                      "serve: unusable socket path '%s'",
                      path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errorf(Errc::Io, "serve: socket failed: %s",
                      std::strerror(errno));
    ::unlink(path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(fd);
        return errorf(Errc::Io, "serve: bind '%s' failed: %s",
                      path.c_str(), std::strerror(errno));
    }
    // The backlog IS the request queue: clients block in connect()
    // until the server accepts them, strictly in arrival order.
    if (::listen(fd, 16) != 0) {
        ::close(fd);
        return errorf(Errc::Io, "serve: listen failed: %s",
                      std::strerror(errno));
    }
    return fd;
}

/** Run one request against the shared cache store. */
Json
serveRequest(const ServiceConfig &config, const Json &request)
{
    batch::CampaignConfig run = config.base;
    if (const Json *benches = request.find("benches");
        benches && benches->isArray()) {
        run.benches.clear();
        for (const Json &alias : benches->items())
            run.benches.push_back(alias.asString());
    }
    SupervisorConfig sup = config.sup;
    if (const Json *workers = request.find("workers");
        workers && workers->isNumber())
        sup.workers =
            static_cast<std::size_t>(workers->asNumber());

    // Per-request isolation: counters and ledger events land in this
    // request's registry/ledger, never a neighbour's. The cache store
    // (run.cacheDir) stays shared on purpose — a bench regenerated
    // for one request is a cache hit for the next.
    obs::StatsRegistry requestRegistry;
    obs::ProcessRegistryOverride isolate(requestRegistry);
    obs::RunLedger ledger;
    {
        Json fields = Json::object();
        fields.set("tool", "serve");
        fields.set("threads", exec::Pool::global().workers());
        fields.set("workers", sup.workers);
        ledger.event("run_start", std::move(fields));
    }

    Expected<batch::CampaignReport> result =
        sup.workers > 0
            ? Supervisor(run, sup, &ledger).run()
            : batch::Campaign(run).run();

    Json reply = Json::object();
    reply.set("type", "campaign_result");
    if (!result.ok()) {
        Json fields = Json::object();
        fields.set("wall_seconds", 0.0);
        fields.set("status", "failed");
        ledger.event("run_end", std::move(fields));
        reply.set("status", "error");
        reply.set("message", result.error().message);
        reply.set("ledger", ledger.serialize());
        return reply;
    }
    const char *status = result->degraded ? "degraded" : "ok";
    {
        Json fields = Json::object();
        fields.set("wall_seconds", result->wallSeconds);
        fields.set("status", status);
        ledger.event("run_end", std::move(fields));
    }
    reply.set("status", status);
    reply.set("report", result->toJson());
    reply.set("ledger", ledger.serialize());
    return reply;
}

} // namespace

int
runService(const ServiceConfig &config)
{
    std::signal(SIGPIPE, SIG_IGN);
    Expected<int> listenFd = bindListen(config.socketPath);
    if (!listenFd.ok()) {
        sim::warn("%s", listenFd.error().message.c_str());
        return 1;
    }
    sim::inform("serve: listening on %s (workers %zu)",
              config.socketPath.c_str(), config.sup.workers);

    std::size_t served = 0;
    while (config.maxRequests == 0 || served < config.maxRequests) {
        const int client = ::accept(*listenFd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            sim::warn("serve: accept failed: %s",
                      std::strerror(errno));
            break;
        }
        Expected<Json> request =
            readMessage(client, kRequestTimeoutMs);
        if (!request.ok()) {
            sim::warn("serve: dropping request: %s",
                      request.error().message.c_str());
            Json reply = Json::object();
            reply.set("type", "campaign_result");
            reply.set("status", "error");
            reply.set("message", request.error().message);
            (void)writeMessage(client, reply);
            ::close(client);
            continue;
        }
        const Json reply = serveRequest(config, *request);
        if (auto sent = writeMessage(client, reply); !sent.ok())
            sim::warn("serve: reply failed: %s",
                      sent.error().message.c_str());
        ::close(client);
        ++served;
        const Json *status = reply.find("status");
        sim::inform("serve: request %zu done (%s)", served,
                  status ? status->asString().c_str() : "?");
    }
    ::close(*listenFd);
    ::unlink(config.socketPath.c_str());
    return 0;
}

Expected<Json>
submit(const std::string &socketPath, const Json &request)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errorf(Errc::Io, "submit: socket failed: %s",
                      std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return errorf(Errc::Io, "submit: connect '%s' failed: %s",
                      socketPath.c_str(), std::strerror(err));
    }
    if (auto sent = writeMessage(fd, request); !sent.ok()) {
        ::close(fd);
        return sent.error();
    }
    Expected<Json> reply = readMessage(fd, -1.0);
    ::close(fd);
    return reply;
}

} // namespace msim::serve
