#include "serve/fleet.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/profile.hh"
#include "serve/supervisor.hh"
#include "serve/worker.hh"
#include "sim/logging.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::Expected;
using util::Json;

namespace
{

std::string
waitStatusString(int status)
{
    char buf[32];
    if (WIFEXITED(status))
        std::snprintf(buf, sizeof(buf), "exit %d",
                      WEXITSTATUS(status));
    else if (WIFSIGNALED(status))
        std::snprintf(buf, sizeof(buf), "signal %d",
                      WTERMSIG(status));
    else
        std::snprintf(buf, sizeof(buf), "status %d", status);
    return buf;
}

} // namespace

// Defined here (not supervisor.cc) so consumers linking the transport
// layer alone still resolve it.
SupervisorConfig
SupervisorConfig::fromEnv()
{
    SupervisorConfig config;
    if (const char *env = std::getenv("MEGSIM_SHARD_FRAMES"))
        if (std::atoll(env) > 0)
            config.shardFrames =
                static_cast<std::size_t>(std::atoll(env));
    if (const char *env = std::getenv("MEGSIM_SHARD_RETRIES"))
        if (std::atoll(env) >= 0)
            config.retryCap =
                static_cast<std::size_t>(std::atoll(env));
    if (const char *env = std::getenv("MEGSIM_SHARD_DEADLINE_MS"))
        if (std::atoll(env) > 0)
            config.shardDeadlineMs =
                static_cast<std::size_t>(std::atoll(env));
    return config;
}

Fleet::Fleet(batch::CampaignConfig workerConfig, std::size_t size)
    : config_(std::move(workerConfig)),
      slots_(std::max<std::size_t>(size, 1)),
      ambient_(obs::processRegistry())
{}

Fleet::~Fleet()
{
    shutdown();
}

std::size_t
Fleet::busyCount() const
{
    std::size_t busy = 0;
    for (const Slot &slot : slots_)
        if (slot.alive && slot.busy)
            ++busy;
    return busy;
}

bool
Fleet::hasIdle() const
{
    return std::any_of(slots_.begin(), slots_.end(),
                       [](const Slot &slot) {
                           return slot.alive && !slot.busy;
                       });
}

void
Fleet::spawnSlot(std::size_t slot)
{
    int req[2];
    int rep[2];
    if (::pipe(req) != 0 || ::pipe(rep) != 0)
        sim::fatal("serve: cannot create worker pipes: %s",
                   std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        sim::fatal("serve: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: drop every parent-side descriptor (including the
        // pipes of other workers inherited across the fork — a held
        // write end would mask their EOF-based shutdown), then serve
        // shards until the request pipe closes. _exit keeps parent
        // atexit handlers and sanitizer leak reports out of the
        // child.
        ::close(req[1]);
        ::close(rep[0]);
        for (const Slot &other : slots_) {
            if (other.reqFd >= 0)
                ::close(other.reqFd);
            if (other.repFd >= 0)
                ::close(other.repFd);
        }
        ::_exit(workerMain(req[0], rep[1], config_));
    }
    ::close(req[0]);
    ::close(rep[1]);
    Slot &worker = slots_[slot];
    worker.pid = pid;
    worker.reqFd = req[1];
    worker.repFd = rep[0];
    worker.alive = true;
    worker.busy = false;
    ++ambient_.scalar("serve.workers_spawned",
                      "worker processes forked");
    Json fields = Json::object();
    fields.set("worker", slot);
    fields.set("pid", static_cast<std::size_t>(pid));
    pendingLedger_.emplace_back("worker_spawn", std::move(fields));
}

void
Fleet::reapSlot(std::size_t slot, const char *reason)
{
    Slot &worker = slots_[slot];
    if (!worker.alive)
        return;
    ::close(worker.reqFd);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    ::close(worker.repFd);
    const std::string statusText = waitStatusString(status);
    sim::warn("serve: worker %zu (pid %d) left: %s (%s)", slot,
              static_cast<int>(worker.pid), statusText.c_str(),
              reason);
    ++ambient_.scalar("serve.worker_exits",
                      "worker processes reaped");
    Json fields = Json::object();
    fields.set("worker", slot);
    fields.set("pid", static_cast<std::size_t>(worker.pid));
    fields.set("status", statusText);
    fields.set("reason", reason);
    if (worker.busy)
        fields.set("shard", worker.shard);
    pendingLedger_.emplace_back("worker_exit", std::move(fields));
    worker.alive = false;
    worker.busy = false;
    worker.reqFd = -1;
    worker.repFd = -1;
}

void
Fleet::ensureWorkers(std::size_t outstanding)
{
    const std::size_t want = std::min(slots_.size(), outstanding);
    std::size_t alive = 0;
    for (const Slot &slot : slots_)
        if (slot.alive)
            ++alive;
    for (std::size_t i = 0; i < slots_.size() && alive < want; ++i)
        if (!slots_[i].alive) {
            spawnSlot(i);
            ++alive;
        }
}

bool
Fleet::dispatch(const ShardSpec &spec, double deadlineSeconds,
                std::size_t *slot)
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot &worker = slots_[i];
        if (!worker.alive || worker.busy)
            continue;
        if (!writeMessage(worker.reqFd, shardRequest(spec)).ok()) {
            // The worker died before taking the request; the shard
            // was never attempted, so no retry counts — try the next
            // idle slot.
            reapSlot(i, "crash");
            continue;
        }
        worker.busy = true;
        worker.shard = spec.id;
        worker.deadline = obs::wallSeconds() + deadlineSeconds;
        if (slot)
            *slot = i;
        return true;
    }
    return false;
}

std::vector<Fleet::Event>
Fleet::poll(int timeoutMs)
{
    std::vector<Event> events;
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> map;
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i].alive && slots_[i].busy) {
            fds.push_back({slots_[i].repFd, POLLIN, 0});
            map.push_back(i);
        }
    if (fds.empty())
        return events;
    const int ready = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()),
                             timeoutMs);
    if (ready < 0) {
        if (errno != EINTR)
            sim::warn("serve: fleet poll failed: %s",
                      std::strerror(errno));
        return events;
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
        const std::size_t w = map[i];
        Slot &worker = slots_[w];
        if (!worker.alive || !worker.busy)
            continue;
        if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) {
            // No reply yet — enforce the shard deadline.
            if (obs::wallSeconds() > worker.deadline) {
                Event ev;
                ev.kind = EventKind::Hang;
                ev.slot = w;
                ev.shard = worker.shard;
                ev.reason = "shard deadline exceeded";
                ::kill(worker.pid, SIGKILL);
                reapSlot(w, "hang");
                events.push_back(std::move(ev));
            }
            continue;
        }

        const double left =
            std::max(0.05, worker.deadline - obs::wallSeconds());
        Expected<Json> reply =
            readMessage(worker.repFd, left * 1000.0);
        if (!reply.ok()) {
            Event ev;
            ev.slot = w;
            ev.shard = worker.shard;
            ev.reason = reply.error().message;
            const Errc code = reply.error().code;
            if (code == Errc::Truncated) {
                // The worker died mid-shard.
                ev.kind = EventKind::Crash;
                reapSlot(w, "crash");
            } else if (code == Errc::FrameTimeout) {
                ev.kind = EventKind::Hang;
                ::kill(worker.pid, SIGKILL);
                reapSlot(w, "hang");
            } else {
                // Checksum/format/io damage: the stream is unusable,
                // so the worker is too.
                ev.kind = EventKind::CorruptReply;
                ::kill(worker.pid, SIGKILL);
                reapSlot(w, "corrupt-reply");
            }
            events.push_back(std::move(ev));
            continue;
        }

        worker.busy = false;
        Event ev;
        ev.kind = EventKind::Reply;
        ev.slot = w;
        ev.shard = worker.shard;
        ev.reply = std::move(*reply);
        events.push_back(std::move(ev));
    }
    return events;
}

void
Fleet::shutdown()
{
    for (std::size_t i = 0; i < slots_.size(); ++i)
        reapSlot(i, "shutdown");
}

std::vector<std::pair<std::string, Json>>
Fleet::drainLedgerEvents()
{
    std::vector<std::pair<std::string, Json>> out;
    out.swap(pendingLedger_);
    return out;
}

} // namespace msim::serve
