#include "serve/protocol.hh"

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/profile.hh"
#include "resilience/artifact.hh"
#include "resilience/checksum.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;

namespace
{

void
putU64(char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint64_t
getU64(const char *in)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[i]))
             << (8 * i);
    return v;
}

Expected<void>
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errorf(Errc::Io, "frame write failed: %s",
                          std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
    return {};
}

/**
 * Read exactly @p size bytes, polling against the shared deadline.
 * @p deadline is an obs::wallSeconds() instant, or < 0 for no limit.
 */
Expected<void>
readAll(int fd, char *data, std::size_t size, double deadline)
{
    std::size_t done = 0;
    while (done < size) {
        int timeoutMs = -1;
        if (deadline >= 0.0) {
            const double left = deadline - obs::wallSeconds();
            if (left <= 0.0)
                return errorf(Errc::FrameTimeout,
                              "frame read timed out");
            timeoutMs = static_cast<int>(left * 1000.0) + 1;
        }
        struct pollfd pfd = {fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return errorf(Errc::Io, "frame poll failed: %s",
                          std::strerror(errno));
        }
        if (ready == 0)
            return errorf(Errc::FrameTimeout, "frame read timed out");
        const ssize_t n = ::read(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errorf(Errc::Io, "frame read failed: %s",
                          std::strerror(errno));
        }
        if (n == 0)
            return errorf(Errc::Truncated,
                          "peer closed mid-frame (%zu of %zu bytes)",
                          done, size);
        done += static_cast<std::size_t>(n);
    }
    return {};
}

} // namespace

Expected<void>
writeFrame(int fd, const std::string &payload)
{
    char header[24];
    std::memcpy(header, kFrameMagic, sizeof(kFrameMagic));
    putU64(header + 8, payload.size());
    putU64(header + 16, resilience::fnv1a(payload));
    if (auto ok = writeAll(fd, header, sizeof(header)); !ok.ok())
        return ok;
    return writeAll(fd, payload.data(), payload.size());
}

Expected<std::string>
readFrame(int fd, double timeoutMs)
{
    const double deadline =
        timeoutMs < 0.0 ? -1.0
                        : obs::wallSeconds() + timeoutMs / 1000.0;
    char header[24];
    if (auto ok = readAll(fd, header, sizeof(header), deadline);
        !ok.ok())
        return ok.error();
    if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0)
        return errorf(Errc::BadFormat, "bad frame magic");
    const std::uint64_t length = getU64(header + 8);
    const std::uint64_t checksum = getU64(header + 16);
    if (length > kMaxFramePayload)
        return errorf(Errc::BadFormat,
                      "frame length %llu exceeds the %llu cap",
                      static_cast<unsigned long long>(length),
                      static_cast<unsigned long long>(
                          kMaxFramePayload));
    std::string payload(static_cast<std::size_t>(length), '\0');
    if (auto ok = readAll(fd, payload.data(), payload.size(), deadline);
        !ok.ok())
        return ok.error();
    if (resilience::fnv1a(payload) != checksum)
        return errorf(Errc::BadChecksum,
                      "frame checksum mismatch (%zu-byte payload)",
                      payload.size());
    return payload;
}

Expected<void>
writeMessage(int fd, const util::Json &message)
{
    return writeFrame(fd, message.dump(0));
}

SpillConfig
SpillConfig::fromEnv()
{
    SpillConfig config;
    if (const char *env = std::getenv("MEGSIM_SHARD_REPLY_SPILL"))
        if (std::atoll(env) > 0)
            config.thresholdBytes =
                static_cast<std::uint64_t>(std::atoll(env));
    if (const char *env = std::getenv("MEGSIM_SHARD_SPILL_DIR")) {
        config.dir = env;
    } else {
        std::error_code ec;
        const std::filesystem::path tmp =
            std::filesystem::temp_directory_path(ec);
        config.dir = ec ? "." : tmp.string();
    }
    return config;
}

Expected<void>
writeMessage(int fd, const util::Json &message,
             const SpillConfig &spill)
{
    const std::string payload = message.dump(0);
    if (spill.thresholdBytes == 0 ||
        payload.size() <= spill.thresholdBytes)
        return writeFrame(fd, payload);

    static std::atomic<std::uint64_t> spillSeq{0};
    const std::string path =
        (std::filesystem::path(spill.dir) /
         ("megsim-spill-" + std::to_string(::getpid()) + "-" +
          std::to_string(spillSeq++) + ".json"))
            .string();
    if (auto saved = resilience::atomicWriteFile(path, payload);
        !saved.ok())
        // Spill unavailable (directory gone, disk full): the pipe
        // still works, so fall back rather than fail the reply.
        return writeFrame(fd, payload);

    char checksum[17];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(
                      resilience::fnv1a(payload)));
    util::Json ref = util::Json::object();
    ref.set("type", "spill_ref");
    ref.set("path", path);
    ref.set("bytes", payload.size());
    ref.set("checksum", checksum);
    return writeFrame(fd, ref.dump(0));
}

namespace
{

/** Resolve a spill_ref frame: read, verify, parse, delete. */
Expected<util::Json>
readSpilledMessage(const util::Json &ref)
{
    const util::Json *path = ref.find("path");
    const util::Json *checksum = ref.find("checksum");
    if (!path || !path->isString() || !checksum ||
        !checksum->isString())
        return errorf(Errc::BadFormat,
                      "spill ref: missing path/checksum");
    Expected<std::string> payload =
        resilience::readFileToString(path->asString());
    // The file is single-use: remove it whether or not it verifies,
    // so a corrupt spill never leaks onto disk across retries.
    std::error_code ec;
    std::filesystem::remove(path->asString(), ec);
    if (!payload.ok())
        // A vanished spill file means the writer died between the
        // spill and the frame — same recovery path as a crash.
        return errorf(Errc::Truncated, "spill file '%s': %s",
                      path->asString().c_str(),
                      payload.error().message.c_str());
    const std::uint64_t want = std::strtoull(
        checksum->asString().c_str(), nullptr, 16);
    if (resilience::fnv1a(*payload) != want)
        return errorf(Errc::BadChecksum,
                      "spill file '%s' checksum mismatch "
                      "(%zu-byte payload)",
                      path->asString().c_str(), payload->size());
    Expected<util::Json> parsed = util::Json::parse(*payload);
    if (!parsed.ok())
        return errorf(Errc::BadFormat, "spill payload: %s",
                      parsed.error().message.c_str());
    return parsed;
}

} // namespace

Expected<util::Json>
readMessage(int fd, double timeoutMs)
{
    Expected<std::string> payload = readFrame(fd, timeoutMs);
    if (!payload.ok())
        return payload.error();
    Expected<util::Json> parsed = util::Json::parse(*payload);
    if (!parsed.ok())
        return errorf(Errc::BadFormat, "frame payload: %s",
                      parsed.error().message.c_str());
    if (const util::Json *type = parsed->find("type");
        type && type->isString() &&
        type->asString() == "spill_ref")
        return readSpilledMessage(*parsed);
    return parsed;
}

util::Json
shardRequest(const ShardSpec &spec)
{
    util::Json m = util::Json::object();
    m.set("type", "shard");
    m.set("shard", spec.id);
    m.set("bench", spec.bench);
    m.set("begin_frame", spec.beginFrame);
    m.set("end_frame", spec.endFrame);
    m.set("attempt", spec.attempt);
    return m;
}

Expected<ShardSpec>
parseShardRequest(const util::Json &m)
{
    ShardSpec spec;
    const util::Json *bench = m.find("bench");
    if (!bench || !bench->isString())
        return errorf(Errc::BadFormat,
                      "shard request: missing 'bench'");
    spec.bench = bench->asString();
    struct {
        const char *key;
        std::size_t *out;
    } counts[] = {
        {"shard", &spec.id},
        {"begin_frame", &spec.beginFrame},
        {"end_frame", &spec.endFrame},
        {"attempt", &spec.attempt},
    };
    for (const auto &field : counts) {
        const util::Json *v = m.find(field.key);
        if (!v || !v->isNumber())
            return errorf(Errc::BadFormat,
                          "shard request: missing number '%s'",
                          field.key);
        *field.out = static_cast<std::size_t>(v->asNumber());
    }
    if (spec.endFrame <= spec.beginFrame)
        return errorf(Errc::BadFormat,
                      "shard request: empty frame range [%zu, %zu)",
                      spec.beginFrame, spec.endFrame);
    return spec;
}

std::string
shardStem(const std::string &benchStem, std::size_t beginFrame,
          std::size_t endFrame)
{
    return benchStem + ".shard" + std::to_string(beginFrame) + "-" +
           std::to_string(endFrame);
}

} // namespace msim::serve
