#include "serve/supervisor.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "core/megsim.hh"
#include "exec/pool.hh"
#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "resilience/watchdog.hh"
#include "serve/protocol.hh"
#include "serve/worker.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/workloads.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

double
counterValue(const char *name)
{
    const obs::Stat *stat = obs::processRegistry().find(name);
    return stat ? stat->value() : 0.0;
}

obs::Scalar &
serveCounter(const char *name, const char *desc)
{
    return obs::processRegistry().scalar(std::string("serve.") + name,
                                         desc);
}

std::string
waitStatusString(int status)
{
    char buf[32];
    if (WIFEXITED(status))
        std::snprintf(buf, sizeof(buf), "exit %d",
                      WEXITSTATUS(status));
    else if (WIFSIGNALED(status))
        std::snprintf(buf, sizeof(buf), "signal %d",
                      WTERMSIG(status));
    else
        std::snprintf(buf, sizeof(buf), "status %d", status);
    return buf;
}

/** Parse one [[...], ...] rows array back into vectors of doubles. */
Expected<std::vector<std::vector<double>>>
rowsFromJson(const Json *rows, const char *what)
{
    if (!rows || !rows->isArray())
        return errorf(Errc::BadFormat,
                      "shard reply: missing '%s' rows", what);
    std::vector<std::vector<double>> out;
    out.reserve(rows->size());
    for (const Json &row : rows->items()) {
        if (!row.isArray())
            return errorf(Errc::BadFormat,
                          "shard reply: '%s' row is not an array",
                          what);
        std::vector<double> values;
        values.reserve(row.size());
        for (const Json &v : row.items()) {
            if (!v.isNumber())
                return errorf(
                    Errc::BadFormat,
                    "shard reply: non-numeric '%s' cell", what);
            values.push_back(v.asNumber());
        }
        out.push_back(std::move(values));
    }
    return out;
}

} // namespace

SupervisorConfig
SupervisorConfig::fromEnv()
{
    SupervisorConfig config;
    if (const char *env = std::getenv("MEGSIM_SHARD_FRAMES"))
        if (std::atoll(env) > 0)
            config.shardFrames =
                static_cast<std::size_t>(std::atoll(env));
    if (const char *env = std::getenv("MEGSIM_SHARD_RETRIES"))
        if (std::atoll(env) >= 0)
            config.retryCap =
                static_cast<std::size_t>(std::atoll(env));
    if (const char *env = std::getenv("MEGSIM_SHARD_DEADLINE_MS"))
        if (std::atoll(env) > 0)
            config.shardDeadlineMs =
                static_cast<std::size_t>(std::atoll(env));
    return config;
}

/** One benchmark moving through the supervised campaign. */
struct Supervisor::Item
{
    std::string alias;
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    std::string cacheStatus = "built";
    std::size_t resumedFrames = 0;
    bool needsRegen = false;
    bool quarantined = false;
};

struct Supervisor::Shard
{
    enum class State { Pending, Running, Done, Quarantined, Cancelled };

    std::size_t id = 0;
    std::size_t item = 0; // index into items_
    std::size_t beginFrame = 0;
    std::size_t endFrame = 0;
    std::size_t attempts = 0; // failures so far; also the next
                              // attempt number sent to workers
    double eligibleAt = 0.0;  // earliest re-dispatch instant
    State state = State::Pending;
    std::size_t resumed = 0;
    std::string lastReason;
    std::vector<std::vector<double>> statsRows;
    std::vector<std::vector<double>> activityRows;
};

struct Supervisor::Worker
{
    pid_t pid = -1;
    int reqFd = -1; // parent writes requests here
    int repFd = -1; // parent reads replies here
    bool alive = false;
    bool busy = false;
    std::size_t shard = 0;
    double deadline = 0.0;
};

Supervisor::Supervisor(batch::CampaignConfig config,
                       SupervisorConfig sup, obs::RunLedger *ledger)
    : config_(std::move(config)), sup_(sup), ledger_(ledger)
{
    if (config_.benches.empty())
        config_.benches = workloads::benchmarkNames();
    if (sup_.workers == 0)
        sup_.workers = 1;
}

Supervisor::~Supervisor() = default;

void
Supervisor::recordEvent(const char *type, Json fields)
{
    if (ledger_)
        ledger_->event(type, std::move(fields));
}

double
Supervisor::shardDeadlineSeconds(const Shard &shard) const
{
    if (sup_.shardDeadlineMs > 0)
        return static_cast<double>(sup_.shardDeadlineMs) / 1000.0;
    const resilience::WatchdogConfig watchdog =
        resilience::WatchdogConfig::fromEnv();
    if (watchdog.wallBudgetSeconds > 0.0) {
        // Per-frame budget times the shard size, with slack for the
        // worker's one-time scene composition.
        const double frames = static_cast<double>(
            shard.endFrame - shard.beginFrame);
        return watchdog.wallBudgetSeconds * frames * 4.0 + 10.0;
    }
    return 120.0;
}

void
Supervisor::spawnWorker(std::size_t slot)
{
    int req[2];
    int rep[2];
    if (::pipe(req) != 0 || ::pipe(rep) != 0)
        sim::fatal("serve: cannot create worker pipes: %s",
                   std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        sim::fatal("serve: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: drop every parent-side descriptor (including the
        // pipes of other workers inherited across the fork — a held
        // write end would mask their EOF-based shutdown), then serve
        // shards until the request pipe closes. _exit keeps parent
        // atexit handlers and sanitizer leak reports out of the
        // child.
        ::close(req[1]);
        ::close(rep[0]);
        for (const Worker &other : workers_) {
            if (other.reqFd >= 0)
                ::close(other.reqFd);
            if (other.repFd >= 0)
                ::close(other.repFd);
        }
        ::_exit(workerMain(req[0], rep[1], config_));
    }
    ::close(req[0]);
    ::close(rep[1]);
    Worker &worker = workers_[slot];
    worker.pid = pid;
    worker.reqFd = req[1];
    worker.repFd = rep[0];
    worker.alive = true;
    worker.busy = false;
    ++serveCounter("workers_spawned", "worker processes forked");
    Json fields = Json::object();
    fields.set("worker", slot);
    fields.set("pid", static_cast<std::size_t>(pid));
    recordEvent("worker_spawn", std::move(fields));
}

void
Supervisor::reapWorker(std::size_t slot, const char *reason)
{
    Worker &worker = workers_[slot];
    if (!worker.alive)
        return;
    ::close(worker.reqFd);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    ::close(worker.repFd);
    const std::string statusText = waitStatusString(status);
    sim::warn("serve: worker %zu (pid %d) left: %s (%s)", slot,
              static_cast<int>(worker.pid), statusText.c_str(),
              reason);
    ++serveCounter("worker_exits", "worker processes reaped");
    Json fields = Json::object();
    fields.set("worker", slot);
    fields.set("pid", static_cast<std::size_t>(worker.pid));
    fields.set("status", statusText);
    fields.set("reason", reason);
    if (worker.busy)
        fields.set("shard", worker.shard);
    recordEvent("worker_exit", std::move(fields));
    worker.alive = false;
    worker.busy = false;
    worker.reqFd = -1;
    worker.repFd = -1;
}

void
Supervisor::failShard(Shard &shard, const std::string &reason)
{
    shard.state = Shard::State::Pending;
    shard.lastReason = reason;
    ++shard.attempts;
    const std::string &alias = items_[shard.item]->alias;
    if (shard.attempts > sup_.retryCap) {
        shard.state = Shard::State::Quarantined;
        items_[shard.item]->quarantined = true;
        // Abandon the bench's remaining work — without this shard it
        // can never produce a result row.
        for (Shard &other : shards_)
            if (other.item == shard.item &&
                other.state == Shard::State::Pending)
                other.state = Shard::State::Cancelled;
        sim::warn("serve: quarantining shard %zu (%s [%zu, %zu)) "
                  "after %zu attempts: %s",
                  shard.id, alias.c_str(), shard.beginFrame,
                  shard.endFrame, shard.attempts, reason.c_str());
        ++serveCounter("shards_quarantined",
                       "shards abandoned after the retry cap");
        Json fields = Json::object();
        fields.set("shard", shard.id);
        fields.set("bench", alias);
        fields.set("attempts", shard.attempts);
        fields.set("reason", reason);
        recordEvent("shard_quarantine", std::move(fields));
        return;
    }
    // Exponential backoff with deterministic jitter: the schedule is
    // a pure function of (seed, shard, attempt), so recovery timing
    // is reproducible under MEGSIM_FAULTS.
    std::size_t backoffMs = sup_.backoffBaseMs
                            << std::min<std::size_t>(
                                   shard.attempts - 1, 16);
    backoffMs = std::min(backoffMs, sup_.backoffCapMs);
    if (sup_.backoffBaseMs > 0)
        backoffMs += sim::hashMix(sup_.seed, shard.id,
                                  shard.attempts) %
                     sup_.backoffBaseMs;
    shard.eligibleAt =
        obs::wallSeconds() + static_cast<double>(backoffMs) / 1000.0;
    ++serveCounter("shard_retries", "shard attempts rescheduled");
    Json fields = Json::object();
    fields.set("shard", shard.id);
    fields.set("bench", alias);
    fields.set("attempt", shard.attempts);
    fields.set("reason", reason);
    fields.set("backoff_ms", backoffMs);
    recordEvent("shard_retry", std::move(fields));
}

Expected<batch::CampaignReport>
Supervisor::run()
{
    const double t0 = obs::wallSeconds();
    std::signal(SIGPIPE, SIG_IGN);
    exec::Pool &pool = exec::Pool::global();
    const double busy0 = counterValue("exec.pool.busy_seconds");
    const double job0 = counterValue("exec.pool.job_seconds");
    obs::AttribRoot attribRoot;
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "campaign-serve");

    // 1. Load every scene up front, exactly like batch::Campaign.
    items_.clear();
    {
        obs::AttribScope loadScope(obs::HostDomain::Load);
        for (const std::string &alias : config_.benches) {
            auto built = workloads::tryBuildBenchmark(
                alias, config_.scale, config_.frameLimit);
            if (!built.ok())
                return built.error();
            auto item = std::make_unique<Item>();
            item->alias = alias;
            item->scene = std::move(*built);
            item->data = std::make_unique<megsim::BenchmarkData>(
                item->scene, gpusim::GpuConfig::evaluationScaled(),
                config_.cacheDir);
            items_.push_back(std::move(item));
        }
    }

    // 2. Probe caches; shard the benchmarks needing regeneration into
    // frame ranges (bench-major, suite order — shard ids are stable
    // for a given config, which is what the fault grammar's shard=K
    // targeting relies on).
    shards_.clear();
    for (std::size_t i = 0; i < items_.size(); ++i) {
        Item &item = *items_[i];
        switch (item.data->probeCaches()) {
          case megsim::CacheProbe::Loaded:
            item.cacheStatus = "fresh";
            continue;
          case megsim::CacheProbe::Invalid:
            item.cacheStatus = "rebuilt";
            break;
          case megsim::CacheProbe::Missing:
            item.cacheStatus = "built";
            break;
        }
        item.needsRegen = true;
        const std::size_t frames = item.scene.numFrames();
        for (std::size_t begin = 0; begin < frames;
             begin += sup_.shardFrames) {
            Shard shard;
            shard.id = shards_.size();
            shard.item = i;
            shard.beginFrame = begin;
            shard.endFrame =
                std::min(frames, begin + sup_.shardFrames);
            shards_.push_back(std::move(shard));
        }
    }

    // 3. Supervision loop: fork the pool, dispatch shards, recover
    // from crashes/hangs/corruption, back off and quarantine.
    if (!shards_.empty()) {
        workers_.assign(
            std::min(sup_.workers, shards_.size()), Worker{});
        for (std::size_t w = 0; w < workers_.size(); ++w)
            spawnWorker(w);

        auto unfinished = [&]() {
            return std::any_of(
                shards_.begin(), shards_.end(), [](const Shard &s) {
                    return s.state == Shard::State::Pending ||
                           s.state == Shard::State::Running;
                });
        };

        while (unfinished()) {
            const double now = obs::wallSeconds();

            // Respawn dead slots while work remains.
            for (std::size_t w = 0; w < workers_.size(); ++w)
                if (!workers_[w].alive)
                    spawnWorker(w);

            // Dispatch eligible pending shards to idle workers.
            for (std::size_t w = 0; w < workers_.size(); ++w) {
                Worker &worker = workers_[w];
                if (!worker.alive || worker.busy)
                    continue;
                Shard *next = nullptr;
                for (Shard &shard : shards_)
                    if (shard.state == Shard::State::Pending &&
                        shard.eligibleAt <= now) {
                        next = &shard;
                        break;
                    }
                if (!next)
                    break;
                ShardSpec spec;
                spec.id = next->id;
                spec.bench = items_[next->item]->alias;
                spec.beginFrame = next->beginFrame;
                spec.endFrame = next->endFrame;
                spec.attempt = next->attempts;
                if (!writeMessage(worker.reqFd, shardRequest(spec))
                         .ok()) {
                    // The worker died before taking the request; the
                    // shard was never attempted, so no retry counts.
                    reapWorker(w, "crash");
                    continue;
                }
                next->state = Shard::State::Running;
                worker.busy = true;
                worker.shard = next->id;
                worker.deadline =
                    now + shardDeadlineSeconds(*next);
            }

            // Wait for replies, bounded so deadlines and backoff
            // expiries are honored promptly.
            std::vector<struct pollfd> fds;
            std::vector<std::size_t> slots;
            for (std::size_t w = 0; w < workers_.size(); ++w)
                if (workers_[w].alive && workers_[w].busy) {
                    fds.push_back({workers_[w].repFd, POLLIN, 0});
                    slots.push_back(w);
                }
            if (fds.empty()) {
                // Everything pending is backing off; sleep briefly.
                ::usleep(2000);
                continue;
            }
            const int ready =
                ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       50);
            if (ready < 0 && errno != EINTR)
                return errorf(Errc::Io, "serve: poll failed: %s",
                              std::strerror(errno));

            for (std::size_t i = 0; i < fds.size(); ++i) {
                const std::size_t w = slots[i];
                Worker &worker = workers_[w];
                if (!worker.alive || !worker.busy)
                    continue;
                Shard &shard = shards_[worker.shard];
                if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) {
                    // No reply yet — enforce the shard deadline.
                    if (obs::wallSeconds() > worker.deadline) {
                        ::kill(worker.pid, SIGKILL);
                        reapWorker(w, "hang");
                        failShard(shard, "shard deadline exceeded");
                    }
                    continue;
                }

                const double left = std::max(
                    0.05,
                    worker.deadline - obs::wallSeconds());
                Expected<Json> reply =
                    readMessage(worker.repFd, left * 1000.0);
                if (!reply.ok()) {
                    const Errc code = reply.error().code;
                    if (code == Errc::Truncated) {
                        // The worker died mid-shard.
                        reapWorker(w, "crash");
                    } else if (code == Errc::FrameTimeout) {
                        ::kill(worker.pid, SIGKILL);
                        reapWorker(w, "hang");
                    } else {
                        // Checksum/format/io damage: the stream is
                        // unusable, so the worker is too.
                        ::kill(worker.pid, SIGKILL);
                        reapWorker(w, "corrupt-reply");
                    }
                    failShard(shard, reply.error().message);
                    continue;
                }

                worker.busy = false;
                const Json *status = reply->find("status");
                if (!status || status->asString() != "ok") {
                    const Json *message = reply->find("message");
                    failShard(shard, message
                                         ? message->asString()
                                         : "worker error");
                    continue;
                }
                auto stats = rowsFromJson(reply->find("stats"),
                                          "stats");
                auto acts = rowsFromJson(reply->find("activity"),
                                         "activity");
                if (!stats.ok() || !acts.ok() ||
                    stats->size() !=
                        shard.endFrame - shard.beginFrame ||
                    acts->size() != stats->size()) {
                    failShard(shard, "malformed shard reply");
                    continue;
                }
                if (const Json *resumed = reply->find("resumed"))
                    shard.resumed = static_cast<std::size_t>(
                        resumed->asNumber());
                shard.statsRows = std::move(*stats);
                shard.activityRows = std::move(*acts);
                shard.state = Shard::State::Done;
                ++serveCounter("shards_completed",
                               "shards completed and recorded");
                // The shard journal served its purpose; the rows now
                // live with the supervisor.
                const std::string stem = shardStem(
                    items_[shard.item]->data->checkpointStem(),
                    shard.beginFrame, shard.endFrame);
                std::error_code ec;
                std::filesystem::remove(stem + ".ckpt.manifest", ec);
                std::filesystem::remove(stem + ".ckpt.stats.jnl",
                                        ec);
                std::filesystem::remove(stem + ".ckpt.activity.jnl",
                                        ec);
            }
        }

        // 4. Orderly shutdown: closing the request pipes is the
        // workers' EOF signal; they exit 0 on their own.
        for (std::size_t w = 0; w < workers_.size(); ++w)
            reapWorker(w, "shutdown");
        workers_.clear();
    }

    // 5. Reassemble each regenerated benchmark's ground truth from
    // its shard rows (frame order = shard order within the bench) and
    // install it — same cache artifacts as the in-process pass.
    for (std::size_t i = 0; i < items_.size(); ++i) {
        Item &item = *items_[i];
        if (!item.needsRegen || item.quarantined)
            continue;
        const std::size_t vs = item.scene.numVertexShaders();
        const std::size_t fs = item.scene.numFragmentShaders();
        std::vector<gpusim::FrameStats> stats;
        std::vector<gpusim::FrameActivity> acts;
        stats.reserve(item.scene.numFrames());
        acts.reserve(item.scene.numFrames());
        for (const Shard &shard : shards_) {
            if (shard.item != i)
                continue;
            item.resumedFrames += shard.resumed;
            for (const std::vector<double> &row : shard.statsRows)
                stats.push_back(
                    gpusim::FrameStats::fromCsvRow(row));
            for (const std::vector<double> &row :
                 shard.activityRows)
                acts.push_back(
                    megsim::activityFromRow(row, vs, fs));
        }
        auto installed = item.data->installGroundTruth(
            std::move(stats), std::move(acts));
        if (!installed.ok())
            sim::warn("serve: cache store of '%s' failed: %s",
                      item.alias.c_str(),
                      installed.error().message.c_str());
    }

    // 6. Analyze in suite order through the shared pipeline —
    // identical inputs, identical rows to the in-process campaign.
    batch::CampaignReport report;
    for (auto &item : items_) {
        if (item->quarantined)
            continue;
        batch::BenchmarkReport row = batch::analyzeBenchmark(
            item->alias, *item->data, config_.megsim);
        row.resumedFrames = item->resumedFrames;
        row.cacheStatus = item->cacheStatus;
        report.benchmarks.push_back(std::move(row));
    }
    for (const Shard &shard : shards_) {
        if (shard.state != Shard::State::Quarantined)
            continue;
        batch::QuarantinedShard q;
        q.shard = shard.id;
        q.bench = items_[shard.item]->alias;
        q.beginFrame = shard.beginFrame;
        q.endFrame = shard.endFrame;
        q.attempts = shard.attempts;
        q.reason = shard.lastReason;
        report.quarantined.push_back(std::move(q));
    }
    report.degraded = !report.quarantined.empty();
    report.threads = pool.workers();
    report.computeAggregates();
    report.wallSeconds = obs::wallSeconds() - t0;

    const double busy = counterValue("exec.pool.busy_seconds") - busy0;
    const double jobSeconds =
        counterValue("exec.pool.job_seconds") - job0;
    const double capacity =
        static_cast<double>(pool.workers()) * jobSeconds;
    report.poolUtilization =
        capacity > 0.0
            ? (busy < capacity ? busy / capacity : 1.0)
            : 1.0;

    batch::publishCampaignStats(report);
    return report;
}

} // namespace msim::serve
