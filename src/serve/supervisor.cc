#include "serve/supervisor.hh"

#include <algorithm>
#include <csignal>
#include <utility>

#include "obs/attrib.hh"
#include "obs/profile.hh"
#include "sched/scheduler.hh"
#include "serve/fleet.hh"
#include "workloads/workloads.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;

Supervisor::Supervisor(batch::CampaignConfig config,
                       SupervisorConfig sup, obs::RunLedger *ledger)
    : config_(std::move(config)), sup_(sup), ledger_(ledger)
{
    if (config_.benches.empty())
        config_.benches = workloads::benchmarkNames();
    if (sup_.workers == 0)
        sup_.workers = 1;
}

Supervisor::~Supervisor() = default;

Expected<batch::CampaignReport>
Supervisor::run()
{
    std::signal(SIGPIPE, SIG_IGN);
    obs::AttribRoot attribRoot;
    obs::PhaseProfiler::Scoped scope(obs::PhaseProfiler::global(),
                                     "campaign-serve");

    // A solo supervised run is the degenerate scheduler case: one
    // request, strict FIFO, queue depth 1.
    Fleet fleet(config_, std::max<std::size_t>(sup_.workers, 1));
    sched::SchedulerConfig schedConfig;
    schedConfig.policy = sched::Policy::Fifo;
    schedConfig.maxInflight = 1;
    schedConfig.shard = sup_;
    sched::Scheduler scheduler(config_, schedConfig, fleet);

    sched::RequestSpec spec;
    spec.benches = config_.benches;
    spec.ledger = ledger_;
    Expected<std::size_t> admitted = scheduler.admit(spec);
    if (!admitted.ok())
        return admitted.error();

    std::vector<sched::RequestResult> results =
        scheduler.runToCompletion();
    // Closing the request pipes is the workers' EOF shutdown signal;
    // their exit events still belong in this run's ledger.
    fleet.shutdown();
    if (ledger_)
        for (auto &[type, fields] : fleet.drainLedgerEvents())
            ledger_->event(type, std::move(fields));

    if (results.empty())
        return errorf(Errc::Exhausted,
                      "supervised run produced no result");
    return std::move(results.front().report);
}

} // namespace msim::serve
