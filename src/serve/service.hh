/**
 * @file
 * Campaign request service: a unix-domain socket accepting queued
 * campaign requests (`megsim-cli serve --socket` / `megsim-cli
 * submit`). Requests are one JSON frame each —
 *
 *   {"type": "campaign", "benches": ["hcr", ...], "workers": N}
 *
 * — and are served strictly in arrival order against ONE shared
 * cache store (the listen backlog is the queue). Each request runs
 * with its own stats registry (obs::ProcessRegistryOverride) and its
 * own megsim-run-v1 ledger, so queued campaigns cannot bleed
 * counters or events into each other while still sharing every
 * verified ground-truth cache. The reply frame carries the full
 * report, the serialized ledger, and a status of "ok", "degraded"
 * (quarantined shards) or "error".
 */

#ifndef MSIM_SERVE_SERVICE_HH
#define MSIM_SERVE_SERVICE_HH

#include <cstddef>
#include <string>

#include "batch/campaign.hh"
#include "serve/supervisor.hh"
#include "util/json.hh"

namespace msim::serve
{

struct ServiceConfig
{
    std::string socketPath;
    /** Stop after serving this many requests; 0 = serve forever. */
    std::size_t maxRequests = 0;
    /** Base campaign settings; a request's fields override these. */
    batch::CampaignConfig base;
    /** Supervision settings; sup.workers 0 = in-process campaigns. */
    SupervisorConfig sup;
};

/**
 * Bind, listen and serve until maxRequests (or forever). Returns 0 on
 * a clean shutdown, 1 on a socket-level failure. The socket file is
 * unlinked on exit.
 */
int runService(const ServiceConfig &config);

/**
 * Client side: connect to @p socketPath, send @p request as one
 * frame, and block for the reply frame.
 */
resilience::Expected<util::Json>
submit(const std::string &socketPath, const util::Json &request);

} // namespace msim::serve

#endif // MSIM_SERVE_SERVICE_HH
