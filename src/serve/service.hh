/**
 * @file
 * Campaign request service: a unix-domain socket admitting queued
 * campaign requests (`megsim-cli serve --socket` / `megsim-cli
 * submit`). Requests are one JSON frame each —
 *
 *   {"type": "campaign", "benches": ["hcr", ...],
 *    "tenant": "team-a", "weight": 2.0}
 *
 * — and are admitted into a sched::Scheduler over ONE shared worker
 * fleet and ONE shared cache store, up to maxInflight at a time, so
 * shards from different requests interleave on the same workers under
 * the configured policy instead of serving strictly in arrival order.
 * Each request runs with its own stats registry
 * (obs::ProcessRegistryOverride) and its own megsim-run-v1 ledger, so
 * concurrent campaigns cannot bleed counters or events into each
 * other while still sharing every verified ground-truth cache. The
 * reply frame carries the full report, the serialized ledger, and a
 * status of "ok", "degraded" (quarantined shards) or "error".
 *
 * Backpressure: a request arriving with maxInflight requests already
 * in flight is refused with status "rejected" (submit exits with the
 * distinct queue-full code) instead of queueing unboundedly. A
 * request arriving while the service drains after --max-requests gets
 * a clean "service shutting down" error reply — never a hung socket.
 */

#ifndef MSIM_SERVE_SERVICE_HH
#define MSIM_SERVE_SERVICE_HH

#include <cstddef>
#include <string>

#include "batch/campaign.hh"
#include "sched/policy.hh"
#include "serve/supervisor.hh"
#include "util/json.hh"

namespace msim::serve
{

struct ServiceConfig
{
    std::string socketPath;
    /** Stop after admitting this many requests; 0 = serve forever. */
    std::size_t maxRequests = 0;
    /** Base campaign settings; a request's fields override these. */
    batch::CampaignConfig base;
    /** Supervision settings; sup.workers sizes the shared fleet
     *  (0 is clamped to 1 — the fleet is always supervised). */
    SupervisorConfig sup;
    /** How the scheduler picks among in-flight requests. */
    sched::Policy policy = sched::Policy::FairShare;
    /** Admission cap: further requests are rejected (queue full). */
    std::size_t maxInflight = 8;
};

/**
 * Bind, listen and serve until maxRequests (or forever). Returns 0 on
 * a clean shutdown, 1 on a socket-level failure. The socket file is
 * unlinked on exit, after every backlogged client has been answered.
 */
int runService(const ServiceConfig &config);

/**
 * Client side: connect to @p socketPath, send @p request as one
 * frame, and block for the reply frame.
 */
resilience::Expected<util::Json>
submit(const std::string &socketPath, const util::Json &request);

} // namespace msim::serve

#endif // MSIM_SERVE_SERVICE_HH
