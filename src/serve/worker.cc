#include "serve/worker.hh"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/megsim.hh"
#include "gpusim/scene_binding.hh"
#include "gpusim/timing_simulator.hh"
#include "resilience/checkpoint.hh"
#include "resilience/fault.hh"
#include "resilience/watchdog.hh"
#include "serve/protocol.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/workloads.hh"

namespace msim::serve
{

using resilience::Errc;
using resilience::errorf;
using resilience::Expected;
using util::Json;

namespace
{

/**
 * Per-benchmark state a worker keeps across shards: the composed
 * scene, the BenchmarkData keying the shard journals, and one
 * TimingSimulator reused frame to frame (frames simulate cold, so
 * reuse does not change the rows).
 */
struct BenchState
{
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    std::unique_ptr<gpusim::SceneBinding> binding;
    std::unique_ptr<gpusim::TimingSimulator> sim;
};

Expected<BenchState *>
benchState(std::map<std::string, std::unique_ptr<BenchState>> &cache,
           const std::string &alias,
           const batch::CampaignConfig &config)
{
    auto it = cache.find(alias);
    if (it != cache.end())
        return it->second.get();
    auto built = workloads::tryBuildBenchmark(alias, config.scale,
                                              config.frameLimit);
    if (!built.ok())
        return built.error();
    auto state = std::make_unique<BenchState>();
    state->scene = std::move(*built);
    state->data = std::make_unique<megsim::BenchmarkData>(
        state->scene, gpusim::GpuConfig::evaluationScaled(),
        config.cacheDir);
    state->binding =
        std::make_unique<gpusim::SceneBinding>(state->scene);
    state->sim = std::make_unique<gpusim::TimingSimulator>(
        state->data->config(), *state->binding);
    BenchState *out = state.get();
    cache.emplace(alias, std::move(state));
    return out;
}

Json
rowsToJson(const std::vector<std::vector<double>> &rows)
{
    Json out = Json::array();
    for (const std::vector<double> &row : rows) {
        Json r = Json::array();
        for (double v : row)
            r.push(v);
        out.push(std::move(r));
    }
    return out;
}

/**
 * Simulate the shard, journaling each frame. Returns the full shard's
 * stats/activity rows (resumed + fresh) through the out-params, and
 * the count of journal-recovered frames.
 */
Expected<std::size_t>
runShard(BenchState &bench, const ShardSpec &spec,
         const resilience::WatchdogConfig &watchdog,
         std::vector<std::vector<double>> &statsRows,
         std::vector<std::vector<double>> &activityRows)
{
    const gfx::SceneTrace &scene = bench.scene;
    if (spec.endFrame > scene.numFrames())
        return errorf(Errc::BadFormat,
                      "shard %zu range [%zu, %zu) outside the "
                      "%zu-frame scene",
                      spec.id, spec.beginFrame, spec.endFrame,
                      scene.numFrames());

    const std::size_t frames = spec.endFrame - spec.beginFrame;
    const std::size_t activityCols = 4 + scene.numVertexShaders() +
                                     scene.numFragmentShaders();
    // The cache directory may not exist yet on a fresh store — the
    // in-process pass creates it lazily, but the shard journal needs
    // it NOW or crash recovery silently degrades to restart-always.
    {
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(bench.data->checkpointStem())
                .parent_path(),
            ec);
    }
    resilience::Checkpoint ckpt(
        shardStem(bench.data->checkpointStem(), spec.beginFrame,
                  spec.endFrame),
        sim::hashMix(bench.data->cacheKey(), spec.beginFrame,
                     spec.endFrame),
        frames, gpusim::FrameStats::csvHeader().size(), activityCols);
    const std::size_t resumed = ckpt.resume();
    statsRows = ckpt.statsRows();
    activityRows = ckpt.activityRows();

    resilience::FaultInjector &faults =
        resilience::FaultInjector::global();
    // Roll the worker-fault dice once per shard attempt. The dice are
    // a pure hash of (seed, shard, attempt), so a respawned worker
    // re-rolls the same outcome — the recovery path is deterministic.
    const bool killAfterCommit = faults.killWorker(spec.id,
                                                   spec.attempt);
    if (faults.hangWorker(spec.id, spec.attempt)) {
        sim::warn("fault worker.hang: shard %zu attempt %zu stalls",
                  spec.id, spec.attempt);
        for (;;)
            ::sleep(3600); // until the supervisor's deadline SIGKILL
    }

    // Optional per-shard think time modeling trace-ingest I/O: real
    // graphics workloads replay API traces from disk, so shard wall
    // time is wait-dominated, not CPU-dominated. bench/serve sets
    // this to make the fleet's wait-overlap measurable on any core
    // count; it is 0 (free) everywhere else.
    {
        static const long thinkMs = [] {
            const char *env = std::getenv("MEGSIM_SHARD_THINK_MS");
            return env ? std::atol(env) : 0L;
        }();
        if (thinkMs > 0 && resumed < frames)
            ::usleep(static_cast<useconds_t>(thinkMs) * 1000);
    }

    for (std::size_t i = resumed; i < frames; ++i) {
        const std::size_t f = spec.beginFrame + i;
        if (faults.hangFrame(f))
            return errorf(Errc::FrameTimeout,
                          "frame %zu hung (injected)", f);
        gpusim::FrameActivity activity;
        const gpusim::FrameStats stats =
            bench.sim->simulate(scene.frames[f], &activity);
        if (watchdog.cycleBudget &&
            stats.cycles > watchdog.cycleBudget)
            return errorf(
                Errc::FrameTimeout,
                "frame %zu blew the cycle budget (%llu > %llu)", f,
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(
                    watchdog.cycleBudget));
        if (watchdog.wallBudgetSeconds > 0.0 &&
            bench.sim->lastFrameWallSeconds() >
                watchdog.wallBudgetSeconds)
            return errorf(
                Errc::FrameTimeout,
                "frame %zu blew the wall budget (%.3fs > %.3fs)", f,
                bench.sim->lastFrameWallSeconds(),
                watchdog.wallBudgetSeconds);
        statsRows.push_back(stats.toCsvRow());
        activityRows.push_back(megsim::activityToRow(activity));
        ckpt.append(statsRows.back(), activityRows.back());
        if (killAfterCommit && i == resumed) {
            // Die AFTER the first fresh frame is journaled: the next
            // attempt must resume it, which is exactly what the
            // supervision tests assert.
            sim::warn("fault worker.kill: shard %zu attempt %zu dies",
                      spec.id, spec.attempt);
            std::raise(SIGKILL);
        }
    }
    return resumed;
}

} // namespace

int
workerMain(int reqFd, int repFd, const batch::CampaignConfig &config)
{
    std::signal(SIGPIPE, SIG_IGN);
    const resilience::WatchdogConfig watchdog =
        resilience::WatchdogConfig::fromEnv();
    // Replies carry whole shards of rows; above the spill threshold
    // they go to disk and only a spill_ref crosses the pipe.
    const SpillConfig spill = SpillConfig::fromEnv();
    std::map<std::string, std::unique_ptr<BenchState>> benches;

    for (;;) {
        Expected<Json> request = readMessage(reqFd, -1.0);
        if (!request.ok()) {
            // EOF on the request pipe is the shutdown signal.
            if (request.error().code == Errc::Truncated)
                return 0;
            sim::warn("worker: bad request: %s",
                      request.error().message.c_str());
            return 1;
        }
        const Json *type = request->find("type");
        if (type && type->asString() == "shutdown")
            return 0;

        Expected<ShardSpec> spec = parseShardRequest(*request);
        Json reply = Json::object();
        reply.set("type", "shard_result");
        if (!spec.ok()) {
            reply.set("shard", static_cast<std::size_t>(0));
            reply.set("status", "error");
            reply.set("message", spec.error().message);
            if (!writeMessage(repFd, reply, spill).ok())
                return 1;
            continue;
        }

        reply.set("shard", spec->id);
        Expected<BenchState *> bench =
            benchState(benches, spec->bench, config);
        if (!bench.ok()) {
            reply.set("status", "error");
            reply.set("message", bench.error().message);
            if (!writeMessage(repFd, reply, spill).ok())
                return 1;
            continue;
        }

        std::vector<std::vector<double>> statsRows;
        std::vector<std::vector<double>> activityRows;
        Expected<std::size_t> resumed = runShard(
            **bench, *spec, watchdog, statsRows, activityRows);
        if (!resumed.ok()) {
            reply.set("status", "error");
            reply.set("message", resumed.error().message);
        } else {
            reply.set("status", "ok");
            reply.set("resumed", *resumed);
            reply.set("stats", rowsToJson(statsRows));
            reply.set("activity", rowsToJson(activityRows));
        }
        if (!writeMessage(repFd, reply, spill).ok())
            return 1;
    }
}

} // namespace msim::serve
