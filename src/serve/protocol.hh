/**
 * @file
 * Wire protocol between the campaign supervisor and its forked
 * workers (and between `megsim-cli submit` and the serve socket).
 *
 * Every message is one length-prefixed frame:
 *
 *   8 bytes  magic "MSIMFRM1"
 *   8 bytes  payload length, little-endian u64
 *   8 bytes  FNV-1a 64 checksum of the payload, little-endian u64
 *   N bytes  payload (one compact util::Json object)
 *
 * The checksum lets the supervisor tell a crashed worker (EOF →
 * Truncated) from a corrupted reply (BadChecksum) — the two take
 * different recovery paths. readFrame() polls the descriptor against
 * a wall-clock deadline so a hung worker surfaces as FrameTimeout
 * instead of blocking the supervisor forever; writes retry on EINTR
 * and partial transfers, and a closed peer surfaces as Errc::Io
 * (SIGPIPE must be ignored by the caller, which the supervisor and
 * service do once at startup).
 *
 * Oversized replies spill to disk instead of the pipe: when a
 * SpillConfig threshold is set (MEGSIM_SHARD_REPLY_SPILL bytes), a
 * payload above it is written to a single-use spill file and the
 * frame on the wire is a small `spill_ref` carrying the file's path,
 * size and FNV-1a checksum. readMessage() follows the reference
 * transparently, verifies the checksum and deletes the file; a
 * missing file surfaces as Truncated (crash recovery) and a checksum
 * mismatch as BadChecksum (corrupt-reply recovery), so spilled and
 * piped replies take exactly the same failure paths.
 */

#ifndef MSIM_SERVE_PROTOCOL_HH
#define MSIM_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "resilience/expected.hh"
#include "util/json.hh"

namespace msim::serve
{

/** Frame magic; a mismatch means the stream is garbage (BadFormat). */
inline constexpr char kFrameMagic[8] = {'M', 'S', 'I', 'M',
                                        'F', 'R', 'M', '1'};

/** Refuse absurd frame lengths before allocating (corrupt header). */
inline constexpr std::uint64_t kMaxFramePayload = 1ULL << 30;

/**
 * Write one frame. Retries on EINTR and short writes; a closed or
 * broken peer yields Errc::Io.
 */
resilience::Expected<void> writeFrame(int fd,
                                      const std::string &payload);

/**
 * Read one frame, polling against @p timeoutMs (< 0 blocks forever).
 * EOF mid-frame (or before one) is Truncated, a checksum mismatch is
 * BadChecksum, a bad magic or oversized length is BadFormat, and an
 * expired deadline is FrameTimeout.
 */
resilience::Expected<std::string> readFrame(int fd, double timeoutMs);

/** writeFrame() of @p message serialized compactly. */
resilience::Expected<void> writeMessage(int fd,
                                        const util::Json &message);

/**
 * Reply-spill policy: payloads larger than thresholdBytes bypass the
 * pipe through a checksummed single-use file under `dir`. The zero
 * default never spills, so request frames and small replies are
 * byte-identical with or without a policy in force.
 */
struct SpillConfig
{
    std::uint64_t thresholdBytes = 0; // 0 = never spill
    std::string dir;                  // where spill files land

    /**
     * MEGSIM_SHARD_REPLY_SPILL (bytes; unset/0 = off) and
     * MEGSIM_SHARD_SPILL_DIR (default: the system temp directory).
     */
    static SpillConfig fromEnv();
};

/**
 * writeMessage() under a spill policy: a payload above the threshold
 * is written to a spill file and only a `spill_ref` frame crosses the
 * pipe. If the spill write itself fails the payload falls back to the
 * pipe — spilling is an optimization, never a new failure mode.
 */
resilience::Expected<void> writeMessage(int fd,
                                        const util::Json &message,
                                        const SpillConfig &spill);

/** readFrame() + JSON parse (a parse failure is BadFormat). */
resilience::Expected<util::Json> readMessage(int fd,
                                             double timeoutMs);

/**
 * One unit of supervised campaign work: the frame range
 * [beginFrame, endFrame) of one benchmark. `attempt` counts prior
 * failures of this shard — workers feed it to the worker.* fault
 * dice, so a respawned worker deterministically re-rolls the same
 * outcome for the same attempt.
 */
struct ShardSpec
{
    std::size_t id = 0;
    std::string bench;
    std::size_t beginFrame = 0;
    std::size_t endFrame = 0;
    std::size_t attempt = 0;
};

/** The supervisor→worker request for one shard. */
util::Json shardRequest(const ShardSpec &spec);

/** Parse a shard request; BadFormat on a missing/mistyped field. */
resilience::Expected<ShardSpec> parseShardRequest(const util::Json &m);

/**
 * Checkpoint stem of one shard's journal: derived from the owning
 * benchmark's cache stem so shard journals live next to the cache
 * artifacts and never collide with the in-process pass's checkpoint.
 */
std::string shardStem(const std::string &benchStem,
                      std::size_t beginFrame, std::size_t endFrame);

} // namespace msim::serve

#endif // MSIM_SERVE_PROTOCOL_HH
