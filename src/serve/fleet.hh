/**
 * @file
 * The shared worker fleet: forked shard-worker processes as a leasable
 * pool.
 *
 * A Fleet owns the process mechanics the Supervisor used to carry
 * inline — fork/pipe plumbing, crash/hang/corruption detection, reaping
 * — and nothing else. It has no idea what a campaign or a request is:
 * callers (the sched::Scheduler, or the Supervisor facade through it)
 * lease idle slots one shard at a time via dispatch() and collect
 * typed Events from poll(). That split is what lets shards from
 * *different* requests interleave on one pool of processes: the fleet
 * tracks only (slot, in-flight shard id, deadline), and the scheduler
 * maps shard ids back to their owning requests.
 *
 * Failure taxonomy (identical to the pre-split supervisor):
 *
 *   detection                        event
 *   EOF on the reply pipe            Crash        (worker died)
 *   per-shard deadline expired       Hang         (SIGKILL + reap)
 *   checksum/format/io damage        CorruptReply (SIGKILL + reap)
 *   well-formed reply frame          Reply
 *
 * Workers are spawned lazily by ensureWorkers() and respawned there
 * after a reap, so a fleet shrinks to nothing when idle-with-no-work
 * and heals while work remains. Spawn/exit ledger events accumulate
 * inside the fleet (it serves many requests, so it cannot own ONE
 * ledger) and are drained by the scheduler, which routes them to the
 * affected request's ledger. serve.* fleet counters land in the stats
 * registry that was ambient at construction — never in a per-request
 * override.
 */

#ifndef MSIM_SERVE_FLEET_HH
#define MSIM_SERVE_FLEET_HH

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "batch/campaign.hh"
#include "obs/stats.hh"
#include "serve/protocol.hh"
#include "util/json.hh"

namespace msim::serve
{

class Fleet
{
  public:
    enum class EventKind { Reply, Crash, Hang, CorruptReply };

    /** One completed lease: the shard's outcome on its slot. */
    struct Event
    {
        EventKind kind = EventKind::Reply;
        std::size_t slot = 0;
        std::size_t shard = 0;
        util::Json reply;   // Reply only
        std::string reason; // failure detail for the retry ledger
    };

    /**
     * @p workerConfig is the config every forked worker runs shards
     * under (cache dir, scale, frame limit — shared across requests);
     * @p size caps the live worker processes.
     */
    Fleet(batch::CampaignConfig workerConfig, std::size_t size);
    ~Fleet();
    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    std::size_t size() const { return slots_.size(); }
    std::size_t busyCount() const;
    /** An alive, idle slot exists — dispatch() would not queue. */
    bool hasIdle() const;

    /**
     * Spawn (or respawn after a reap) workers until
     * min(size, @p outstanding) are alive — a fleet never holds more
     * processes than it has shards to feed.
     */
    void ensureWorkers(std::size_t outstanding);

    /**
     * Lease an idle slot for @p spec with a wall deadline of
     * @p deadlineSeconds from now. A worker that dies taking the
     * request is reaped ("crash" — the shard was never attempted) and
     * the next idle slot is tried. Returns false when no idle slot
     * accepted the shard; @p slot (optional) receives the slot index.
     */
    bool dispatch(const ShardSpec &spec, double deadlineSeconds,
                  std::size_t *slot = nullptr);

    /**
     * Wait up to @p timeoutMs for replies on busy slots, enforce
     * shard deadlines, and return every completed lease as an Event.
     * Idle-fleet calls return immediately with no events.
     */
    std::vector<Event> poll(int timeoutMs);

    /** Reap every worker ("shutdown"); EOF on the request pipe is the
     *  workers' signal to exit 0 on their own. */
    void shutdown();

    /**
     * Hand over the (type, fields) worker_spawn / worker_exit ledger
     * events accumulated since the last drain, in occurrence order.
     * The caller routes them to the right request ledger(s).
     */
    std::vector<std::pair<std::string, util::Json>>
    drainLedgerEvents();

  private:
    struct Slot
    {
        pid_t pid = -1;
        int reqFd = -1; // parent writes requests here
        int repFd = -1; // parent reads replies here
        bool alive = false;
        bool busy = false;
        std::size_t shard = 0;
        double deadline = 0.0;
    };

    void spawnSlot(std::size_t slot);
    void reapSlot(std::size_t slot, const char *reason);

    batch::CampaignConfig config_;
    std::vector<Slot> slots_;
    std::vector<std::pair<std::string, util::Json>> pendingLedger_;
    obs::StatsRegistry &ambient_;
};

} // namespace msim::serve

#endif // MSIM_SERVE_FLEET_HH
