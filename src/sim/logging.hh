/**
 * @file
 * Minimal printf-style logging: inform/warn/fatal plus a once-only
 * variant used for configuration banners (e.g. resolved cache/output
 * directories). Verbosity is controlled with MEGSIM_LOG
 * (quiet|info|debug, default info).
 */

#ifndef MSIM_SIM_LOGGING_HH
#define MSIM_SIM_LOGGING_HH

#include <string>

namespace msim::sim
{

enum class LogLevel { Debug, Info, Warn, Fatal };

/** True when messages at @p level are currently emitted. */
bool logEnabled(LogLevel level);

void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Log the message the first time @p key is seen, then stay silent. */
void informOnce(const std::string &key, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace msim::sim

#endif // MSIM_SIM_LOGGING_HH
