/**
 * @file
 * Fundamental simulation scalar types shared across the library.
 */

#ifndef MSIM_SIM_TYPES_HH
#define MSIM_SIM_TYPES_HH

#include <cstdint>

namespace msim::sim
{

/** Simulated time, in GPU core cycles. */
using Tick = std::uint64_t;

/** A simulated physical address. */
using Addr = std::uint64_t;

} // namespace msim::sim

#endif // MSIM_SIM_TYPES_HH
