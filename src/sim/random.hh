/**
 * @file
 * Seeded, reproducible random number generation (SplitMix64 seeding a
 * xoshiro256** core). Every stochastic decision in the library goes
 * through an explicitly seeded Rng so that workload composition,
 * k-means initialization and sampling baselines are deterministic.
 */

#ifndef MSIM_SIM_RANDOM_HH
#define MSIM_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace msim::sim
{

/** SplitMix64 step; also useful standalone as a hash mixer. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless mix of several values into one seed. */
constexpr std::uint64_t
hashMix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
        std::uint64_t c = 0xbf58476d1ce4e5b9ULL)
{
    std::uint64_t s = a;
    std::uint64_t h = splitmix64(s);
    s ^= b + 0x165667b19e3779f9ULL + (h << 6) + (h >> 2);
    h ^= splitmix64(s);
    s ^= c + 0x27d4eb2f165667c5ULL + (h << 6) + (h >> 2);
    return splitmix64(s);
}

/** xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t sm = seed;
        for (auto &word : s_)
            word = splitmix64(sm);
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound = 0 yields 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection-free multiply-shift is fine for simulation use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    range(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal via Box-Muller. */
    double
    gaussian()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(6.283185307179586 * u2);
        have_spare_ = true;
        return mag * std::cos(6.283185307179586 * u2);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    double spare_ = 0.0;
    bool have_spare_ = false;
};

} // namespace msim::sim

#endif // MSIM_SIM_RANDOM_HH
