#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

namespace msim::sim
{

namespace
{

LogLevel
threshold()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("MEGSIM_LOG");
        if (!env)
            return LogLevel::Info;
        if (!std::strcmp(env, "quiet"))
            return LogLevel::Warn;
        if (!std::strcmp(env, "debug"))
            return LogLevel::Debug;
        return LogLevel::Info;
    }();
    return level;
}

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
    }
    return "?";
}

void
vlog(LogLevel level, const char *fmt, std::va_list args)
{
    if (!logEnabled(level))
        return;
    std::fprintf(stderr, "megsim: %s: ", prefix(level));
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(threshold());
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Info, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
informOnce(const std::string &key, const char *fmt, ...)
{
    static std::set<std::string> seen;
    if (!seen.insert(key).second)
        return;
    std::va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Info, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "megsim: fatal: ");
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    std::abort();
}

} // namespace msim::sim
