/**
 * @file
 * Workload intermediate representation: shader programs (instruction
 * mixes incl. weighted texture ops), textures, meshes, draw calls,
 * per-frame traces and whole-sequence SceneTraces. This is the
 * architecture-independent input both simulators consume.
 */

#ifndef MSIM_GFX_TRACE_HH
#define MSIM_GFX_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/geom.hh"

namespace msim::gfx
{

enum class ShaderKind { Vertex, Fragment };

/** Texture filtering mode; weights per the paper (Sec. III-B). */
enum class TextureFilter { Linear, Bilinear, Trilinear };

double textureFilterWeight(TextureFilter filter); // 2 / 4 / 8

struct ShaderProgram
{
    std::uint32_t id = 0;       // index into SceneTrace::shaders
    ShaderKind kind = ShaderKind::Vertex;
    std::uint32_t aluInstructions = 8;
    std::uint32_t textureSamples = 0;
    TextureFilter filter = TextureFilter::Bilinear;

    /** Executed instructions per invocation. */
    std::uint64_t
    instructionCount() const
    {
        return aluInstructions + textureSamples;
    }

    /**
     * The per-invocation weight used for the characteristic vectors:
     * ALU ops count 1, texture ops count their filter weight.
     */
    double
    characteristicCost() const
    {
        return static_cast<double>(aluInstructions) +
               static_cast<double>(textureSamples) *
                   textureFilterWeight(filter);
    }
};

struct Texture
{
    std::uint32_t id = 0;
    std::uint32_t width = 128;
    std::uint32_t height = 128;
    std::uint32_t bytesPerTexel = 4;

    std::uint64_t
    sizeBytes() const
    {
        return static_cast<std::uint64_t>(width) * height *
               bytesPerTexel;
    }
};

/** Unit-space triangle-list mesh ([-0.5, 0.5]² footprint). */
struct Mesh
{
    std::uint32_t id = 0;
    std::vector<util::Vec3f> positions;
    std::vector<util::Vec2f> uvs;
    std::vector<std::uint32_t> indices; // 3 per triangle

    std::size_t triangleCount() const { return indices.size() / 3; }
};

struct DrawCall
{
    std::uint32_t meshId = 0;
    std::uint32_t vsId = 0;     // global shader id (kind Vertex)
    std::uint32_t fsId = 0;     // global shader id (kind Fragment)
    std::int32_t textureId = -1;
    bool transparent = false;
    // Placement in normalized screen space.
    float x = 0.5f;
    float y = 0.5f;
    float depth = 0.5f;         // [0,1); smaller = closer
    float scale = 1.0f;
    float rotation = 0.0f;      // radians
};

struct FrameTrace
{
    std::uint32_t index = 0;
    std::vector<DrawCall> draws;
};

struct SceneTrace
{
    std::string name;
    std::vector<ShaderProgram> shaders; // vertex first, then fragment
    std::vector<Texture> textures;
    std::vector<Mesh> meshes;
    std::vector<FrameTrace> frames;

    std::size_t numFrames() const { return frames.size(); }
    std::size_t numVertexShaders() const;
    std::size_t numFragmentShaders() const;

    /** Global ids of shaders of @p kind, in column order. */
    std::vector<std::uint32_t> shaderIdsOf(ShaderKind kind) const;

    /** Empty string when consistent; otherwise a diagnosis. */
    std::string validate() const;

    /** Structural FNV hash (keys the on-disk frame-stats cache). */
    std::uint64_t contentHash() const;
};

} // namespace msim::gfx

#endif // MSIM_GFX_TRACE_HH
