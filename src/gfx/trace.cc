#include "gfx/trace.hh"

#include <cstdio>

namespace msim::gfx
{

double
textureFilterWeight(TextureFilter filter)
{
    switch (filter) {
      case TextureFilter::Linear: return 2.0;
      case TextureFilter::Bilinear: return 4.0;
      case TextureFilter::Trilinear: return 8.0;
    }
    return 1.0;
}

std::size_t
SceneTrace::numVertexShaders() const
{
    std::size_t n = 0;
    for (const ShaderProgram &s : shaders)
        n += s.kind == ShaderKind::Vertex;
    return n;
}

std::size_t
SceneTrace::numFragmentShaders() const
{
    std::size_t n = 0;
    for (const ShaderProgram &s : shaders)
        n += s.kind == ShaderKind::Fragment;
    return n;
}

std::vector<std::uint32_t>
SceneTrace::shaderIdsOf(ShaderKind kind) const
{
    std::vector<std::uint32_t> ids;
    for (const ShaderProgram &s : shaders)
        if (s.kind == kind)
            ids.push_back(s.id);
    return ids;
}

std::string
SceneTrace::validate() const
{
    char buf[128];
    for (std::size_t i = 0; i < shaders.size(); ++i) {
        if (shaders[i].id != i) {
            std::snprintf(buf, sizeof(buf),
                          "shader %zu has id %u", i, shaders[i].id);
            return buf;
        }
    }
    for (std::size_t f = 0; f < frames.size(); ++f) {
        for (const DrawCall &d : frames[f].draws) {
            if (d.meshId >= meshes.size())
                return "draw references missing mesh";
            if (d.vsId >= shaders.size() ||
                shaders[d.vsId].kind != ShaderKind::Vertex)
                return "draw vsId is not a vertex shader";
            if (d.fsId >= shaders.size() ||
                shaders[d.fsId].kind != ShaderKind::Fragment)
                return "draw fsId is not a fragment shader";
            if (d.textureId >= 0 &&
                static_cast<std::size_t>(d.textureId) >=
                    textures.size())
                return "draw references missing texture";
        }
    }
    for (const Mesh &m : meshes) {
        if (m.positions.size() != m.uvs.size())
            return "mesh position/uv count mismatch";
        for (std::uint32_t idx : m.indices)
            if (idx >= m.positions.size())
                return "mesh index out of range";
    }
    return "";
}

namespace
{

struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }

    void mixF(float f) { mix(static_cast<std::uint64_t>(f * 4096.0f)); }
};

} // namespace

std::uint64_t
SceneTrace::contentHash() const
{
    Fnv fnv;
    fnv.mix(frames.size());
    for (const ShaderProgram &s : shaders) {
        fnv.mix(static_cast<std::uint64_t>(s.kind));
        fnv.mix(s.aluInstructions);
        fnv.mix(s.textureSamples);
        fnv.mix(static_cast<std::uint64_t>(s.filter));
    }
    for (const Mesh &m : meshes) {
        fnv.mix(m.positions.size());
        fnv.mix(m.indices.size());
    }
    for (const Texture &t : textures)
        fnv.mix(t.sizeBytes());
    for (const FrameTrace &f : frames) {
        fnv.mix(f.draws.size());
        for (const DrawCall &d : f.draws) {
            fnv.mix(d.meshId);
            fnv.mix(d.vsId);
            fnv.mix(d.fsId);
            fnv.mix(static_cast<std::uint64_t>(d.textureId + 1));
            fnv.mix(d.transparent);
            fnv.mixF(d.x);
            fnv.mixF(d.y);
            fnv.mixF(d.depth);
            fnv.mixF(d.scale);
            fnv.mixF(d.rotation);
        }
    }
    return fnv.h;
}

} // namespace msim::gfx
