/**
 * @file
 * megsim-cli: command-line access to the observability layer.
 *
 *   megsim-cli stats [--bench ALIAS] [--frame N] [--filter GLOB]
 *       Simulate one frame and dump the hierarchical stats registry
 *       (the exact counters FrameStats and the estimator read).
 *
 *   megsim-cli trace [--bench ALIAS] [--frames A:B] [--out PATH]
 *                    [--csv PATH]
 *       Simulate a frame range with tracing enabled and export the
 *       events as Chrome trace_event JSON (chrome://tracing /
 *       Perfetto) and/or CSV.
 *
 *   megsim-cli resume [--bench ALIAS] [--cache-dir DIR]
 *       Run (or resume) the checkpointed ground-truth pass for a
 *       benchmark. A run killed mid-pass picks up from the last
 *       checkpointed frame; a complete cache returns immediately.
 *
 *   megsim-cli verify-cache [--bench ALIAS] [--cache-dir DIR]
 *                           [--purge]
 *       Integrity-check the benchmark's cache artifacts (header,
 *       version, fingerprint, checksum). --purge deletes corrupt
 *       files so the next run regenerates them.
 *
 *   megsim-cli campaign [--benches A,B,C] [--out campaign.json]
 *                       [--check thresholds.json] [--cache-dir DIR]
 *                       [--ledger PATH] [--workers N] [--fast-mem]
 *                       [--suite-cluster]
 *       Run the full MEGsim pipeline for the whole benchmark suite
 *       through one shared worker pool and write the machine-readable
 *       accuracy report CI gates on. --check compares the report
 *       against a thresholds file and fails on any regression. Every
 *       successful campaign also writes a megsim-run-v1 JSONL run
 *       ledger next to the report (<report>.run.jsonl, or --ledger).
 *       --workers N (default 0 = in-process) regenerates ground truth
 *       under the crash-isolated supervisor: N forked worker
 *       processes, per-shard retry/backoff, poison-shard quarantine.
 *       A degraded (quarantined) campaign exits 8; the worker count
 *       is recorded in the ledger's run_start manifest.
 *       --fast-mem (or MEGSIM_FAST_MEM=1) replaces the exact texture
 *       walk with the calibrated sampled cache model: the report's
 *       rows carry mem_mode "fast" plus a per-benchmark exact_vs_fast
 *       error column measured by double-running audit frames, which
 *       --check gates via max_exact_vs_fast_percent. Fast results
 *       bypass the disk cache and are incompatible with --workers
 *       (the shard protocol transports cached rows, not audits).
 *       --suite-cluster (or MEGSIM_SUITE_CLUSTER=1) pools every
 *       benchmark's normalized features into ONE space, clusters
 *       suite-wide and shares representatives across benchmarks: the
 *       report becomes megsim-campaign-v3, rows gain borrowed_reps,
 *       the suite block gains shared_representatives /
 *       per_bench_representatives / suite_reduction_factor, and
 *       --check gates fold-back errors via the thresholds `suite`
 *       block. Works with --workers (analysis runs in the parent).
 *
 *   megsim-cli serve --socket PATH [--max-requests N] [--workers N]
 *                    [--benches A,B,C] [--cache-dir DIR]
 *       Listen on a unix-domain socket and serve queued campaign
 *       requests in arrival order against one shared cache store,
 *       each with its own stats registry and run ledger.
 *
 *   megsim-cli submit --socket PATH [--benches A,B,C] [--workers N]
 *                     [--out REPORT.json] [--ledger PATH]
 *       Send one campaign request to a running `serve` and print the
 *       returned report; exits 8 if the served campaign degraded.
 *
 *   megsim-cli campaign --diff A.json B.json
 *       Compare two campaign reports modulo the documented host-side
 *       fields (wall clocks, pool utilization, thread count, cache
 *       provenance). Prints every difference; exits 6 on mismatch.
 *       A per-bench (v2) vs suite-cluster (v3) pair refuses with a
 *       "schema mismatch" message naming both versions and exits 2
 *       (usage), distinct from the exit-6 content mismatch.
 *
 *   megsim-cli perf [--frames N] [--out BENCH_gpusim.json]
 *                   [--benches A,B,C] [--compare BASELINE.json]
 *                   [--band PCT] [--strict] [--fast-mem]
 *       Run the hot-path microbench (pure timing-simulator
 *       throughput, no cache/pool) and emit the versioned
 *       BENCH_gpusim.json perf report plus its run ledger. --compare
 *       prints warn-only deviations beyond the +-PCT band (default
 *       25) against a committed baseline — wall clocks are
 *       machine-dependent, so by default deviations never fail the
 *       run. With --strict a regression beyond the band exits 10,
 *       an improvement beyond the band prints the cp command that
 *       refreshes the committed baseline (and still exits 0), and
 *       reports from different mem modes refuse to gate (exit 2):
 *       a fast-mem point is a separate trajectory, not a speedup of
 *       the exact one. --fast-mem runs the simulators with the
 *       calibrated sampled cache model.
 *
 *   megsim-cli perf --history DIR
 *       Fold every *.jsonl run ledger under DIR into a trajectory
 *       table (tool, mode, threads, status, wall seconds, final
 *       metrics). The mode column (exact / fast / suite-cluster)
 *       keeps incomparable trajectories visually separate.
 *
 *   megsim-cli ledger --validate PATH
 *       Strictly round-trip a run ledger through the util/json parser
 *       and the megsim-run-v1 schema; exits 7 on any unknown event,
 *       unknown field or missing required field.
 *
 * Common options: --scale S (workload complexity), --baseline (use
 * the full Table I GPU instead of the scaled evaluation profile),
 * --threads N (worker-pool size; overrides MEGSIM_THREADS, 1 = exact
 * serial execution), --attrib (host-cost attribution; prints where
 * the host seconds went and records it in the ledger), --timeline
 * PATH (per-worker host timeline, written as Chrome trace_event JSON
 * for Perfetto; MEGSIM_TIMELINE=PATH is the env equivalent).
 *
 * Exit codes are distinct per failure class so CI can gate on them:
 * 0 success, 1 runtime/simulation failure, 2 usage, 3 load failure
 * (unknown alias, missing/unreadable input file), 4 cache
 * verification failure, 5 threshold breach, 6 report diff mismatch,
 * 7 invalid run ledger, 8 degraded campaign (quarantined shards),
 * 9 serve queue full, 10 strict perf regression (--strict with a
 * deviation below the band). Failures print the offending path or
 * alias.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "batch/campaign.hh"
#include "core/megsim.hh"
#include "perf/perf.hh"
#include "exec/pool.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/timing_simulator.hh"
#include "mem/fastmem.hh"
#include "obs/attrib.hh"
#include "obs/ledger.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "obs/trace_export.hh"
#include "resilience/artifact.hh"
#include "sched/policy.hh"
#include "sched/scheduler.hh"
#include "serve/service.hh"
#include "serve/supervisor.hh"
#include "util/json.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace msim;

// Distinct per failure class so CI can gate on the code alone.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoadFailure = 3;
constexpr int kExitCacheFailure = 4;
constexpr int kExitThresholdBreach = 5;
constexpr int kExitDiffMismatch = 6;
constexpr int kExitLedgerInvalid = 7;
constexpr int kExitDegraded = 8;
constexpr int kExitQueueFull = 9;
constexpr int kExitPerfRegression = 10;

struct Options
{
    std::string command;
    std::string bench = "bbr1";
    std::string benches; // campaign: comma-separated aliases
    std::string filter = "*";
    std::string out = "trace.json";
    std::string csv;
    std::string cacheDir;
    std::string check; // campaign: thresholds file
    std::string report = "campaign.json";
    std::string compare; // perf: baseline report for warn-only diff
    std::string diffA, diffB; // campaign: reports to compare
    std::string ledger;   // run-ledger path ("" = next to report)
    std::string timeline; // Chrome timeline path ("" = MEGSIM_TIMELINE)
    std::string history;  // perf: directory of run ledgers
    std::string validate; // ledger: file to schema-check
    std::string socket;   // serve/submit: unix socket path
    std::string policy;   // serve: scheduling policy name
    std::string tenant;   // submit: fair-share tenant label
    double weight = 1.0;  // submit: fair-share weight
    double band = 25.0;  // perf: comparison band (percent)
    std::size_t maxInflight = 0; // serve: 0 = env / built-in default
    std::size_t workers = 0; // supervised workers (0 = in-process)
    std::size_t maxRequests = 0; // serve: 0 = serve forever
    std::size_t frameBegin = 0;
    std::size_t frameEnd = 1;
    double scale = 1.0;
    std::size_t threads = 0; // 0 = keep MEGSIM_THREADS / hw default
    bool baseline = false;
    bool fastMem = false; // calibrated fast-mem model (campaign/perf)
    bool suiteCluster = false; // campaign: cross-bench clustering
    bool strict = false;  // perf/serve compare: gate instead of warn
    bool purge = false;
    bool outSet = false;
    bool attrib = false; // host-cost attribution report
    bool workersSet = false; // submit: forward --workers only if given
    bool weightSet = false;  // submit: forward --weight only if given
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s stats [--bench ALIAS] [--frame N] [--filter GLOB]\n"
        "       %s trace [--bench ALIAS] [--frames A:B] [--out PATH]"
        " [--csv PATH]\n"
        "       %s resume [--bench ALIAS] [--cache-dir DIR]\n"
        "       %s verify-cache [--bench ALIAS] [--cache-dir DIR]"
        " [--purge]\n"
        "       %s campaign [--benches A,B,C] [--out REPORT.json]"
        " [--check THRESHOLDS.json] [--cache-dir DIR]"
        " [--ledger PATH] [--workers N] [--fast-mem]"
        " [--suite-cluster]\n"
        "       %s campaign --diff A.json B.json\n"
        "       %s serve --socket PATH [--max-requests N]"
        " [--workers N] [--policy fifo|fair|srs]"
        " [--max-inflight N] [--benches A,B,C] [--cache-dir DIR]\n"
        "       %s submit --socket PATH [--benches A,B,C]"
        " [--tenant NAME] [--weight W]"
        " [--out REPORT.json] [--ledger PATH]\n"
        "       %s perf [--frames N] [--out BENCH_gpusim.json]"
        " [--benches A,B,C] [--compare BASELINE.json] [--band PCT]"
        " [--strict] [--fast-mem]\n"
        "       %s perf --history DIR\n"
        "       %s ledger --validate PATH\n"
        "options: --scale S, --baseline, --threads N, --attrib,"
        " --timeline PATH\n"
        "benches:",
        argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
        argv0, argv0, argv0);
    for (const std::string &alias : workloads::benchmarkNames())
        std::fprintf(stderr, " %s", alias.c_str());
    std::fprintf(stderr, "\n");
    return kExitUsage;
}

bool
parseRange(const char *text, std::size_t &begin, std::size_t &end)
{
    const char *colon = std::strchr(text, ':');
    if (!colon) {
        begin = static_cast<std::size_t>(std::atoll(text));
        end = begin + 1;
        return true;
    }
    begin = static_cast<std::size_t>(std::atoll(text));
    end = static_cast<std::size_t>(std::atoll(colon + 1));
    return end > begin;
}

bool
parse(int argc, char **argv, Options &opt)
{
    if (argc < 2)
        return false;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--bench") {
            const char *v = next();
            if (!v)
                return false;
            opt.bench = v;
        } else if (arg == "--frame" || arg == "--frames") {
            const char *v = next();
            if (!v || !parseRange(v, opt.frameBegin, opt.frameEnd))
                return false;
        } else if (arg == "--filter") {
            const char *v = next();
            if (!v)
                return false;
            opt.filter = v;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            opt.out = v;
            opt.report = v;
            opt.outSet = true;
        } else if (arg == "--benches") {
            const char *v = next();
            if (!v)
                return false;
            opt.benches = v;
        } else if (arg == "--check") {
            const char *v = next();
            if (!v)
                return false;
            opt.check = v;
        } else if (arg == "--compare") {
            const char *v = next();
            if (!v)
                return false;
            opt.compare = v;
        } else if (arg == "--diff") {
            const char *a = next();
            const char *b = next();
            if (!a || !b)
                return false;
            opt.diffA = a;
            opt.diffB = b;
        } else if (arg == "--ledger") {
            const char *v = next();
            if (!v)
                return false;
            opt.ledger = v;
        } else if (arg == "--timeline") {
            const char *v = next();
            if (!v)
                return false;
            opt.timeline = v;
        } else if (arg == "--history") {
            const char *v = next();
            if (!v)
                return false;
            opt.history = v;
        } else if (arg == "--validate") {
            const char *v = next();
            if (!v)
                return false;
            opt.validate = v;
        } else if (arg == "--attrib") {
            opt.attrib = true;
        } else if (arg == "--band") {
            const char *v = next();
            if (!v || std::atof(v) <= 0.0)
                return false;
            opt.band = std::atof(v);
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return false;
            opt.csv = v;
        } else if (arg == "--scale") {
            const char *v = next();
            if (!v)
                return false;
            opt.scale = std::atof(v);
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v || std::atoll(v) < 1)
                return false;
            opt.threads = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--workers") {
            const char *v = next();
            if (!v || std::atoll(v) < 0)
                return false;
            opt.workers = static_cast<std::size_t>(std::atoll(v));
            opt.workersSet = true;
        } else if (arg == "--socket") {
            const char *v = next();
            if (!v)
                return false;
            opt.socket = v;
        } else if (arg == "--max-requests") {
            const char *v = next();
            if (!v || std::atoll(v) < 0)
                return false;
            opt.maxRequests =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v)
                return false;
            opt.policy = v;
        } else if (arg == "--max-inflight") {
            const char *v = next();
            if (!v || std::atoll(v) < 1)
                return false;
            opt.maxInflight =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--tenant") {
            const char *v = next();
            if (!v)
                return false;
            opt.tenant = v;
        } else if (arg == "--weight") {
            const char *v = next();
            if (!v || std::atof(v) <= 0.0)
                return false;
            opt.weight = std::atof(v);
            opt.weightSet = true;
        } else if (arg == "--cache-dir") {
            const char *v = next();
            if (!v)
                return false;
            opt.cacheDir = v;
        } else if (arg == "--baseline") {
            opt.baseline = true;
        } else if (arg == "--fast-mem") {
            opt.fastMem = true;
        } else if (arg == "--suite-cluster") {
            opt.suiteCluster = true;
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--purge") {
            opt.purge = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return opt.command == "stats" || opt.command == "trace" ||
           opt.command == "resume" || opt.command == "verify-cache" ||
           opt.command == "campaign" || opt.command == "perf" ||
           opt.command == "ledger" || opt.command == "serve" ||
           opt.command == "submit";
}

std::string
resolveCacheDir(const Options &opt)
{
    if (!opt.cacheDir.empty())
        return opt.cacheDir;
    if (const char *env = std::getenv("MEGSIM_CACHE_DIR"))
        return env;
    return "out/cache";
}

/** Build the scene + BenchmarkData pair shared by resume/verify. */
bool
openBenchmarkData(const Options &opt, gfx::SceneTrace &scene,
                  std::unique_ptr<megsim::BenchmarkData> &data)
{
    std::size_t frame_limit = 0;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        frame_limit = static_cast<std::size_t>(std::atoll(env));
    auto built =
        workloads::tryBuildBenchmark(opt.bench, opt.scale, frame_limit);
    if (!built.ok()) {
        std::fprintf(stderr, "cannot load benchmark '%s': %s\n",
                     opt.bench.c_str(),
                     built.error().message.c_str());
        return false;
    }
    scene = std::move(*built);
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();
    data = std::make_unique<megsim::BenchmarkData>(scene, config,
                                                   resolveCacheDir(opt));
    return true;
}

int
runResume(const Options &opt)
{
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    if (!openBenchmarkData(opt, scene, data))
        return kExitLoadFailure;

    const std::vector<gpusim::FrameStats> &stats = data->frameStats();
    double cycles = 0.0;
    for (const gpusim::FrameStats &s : stats)
        cycles += static_cast<double>(s.cycles);
    std::printf("# %s: %zu frames, %.0f total cycles, %zu threads\n",
                opt.bench.c_str(), stats.size(), cycles,
                exec::Pool::global().workers());
    obs::processRegistry().dump(std::cout, "resilience.*");
    obs::processRegistry().dump(std::cout, "exec.pool.*");
    return kExitOk;
}

int
runVerifyCache(const Options &opt)
{
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    if (!openBenchmarkData(opt, scene, data))
        return kExitLoadFailure;

    bool corrupt = false;
    for (const char *kind : {"activity", "stats"}) {
        const std::string path = data->cachePath(kind);
        auto loaded =
            resilience::readCsvArtifact(path, data->cacheKey(), kind);
        if (loaded.ok()) {
            std::printf("%-8s OK        %zu rows  %s\n", kind,
                        loaded->rows.size(), path.c_str());
            continue;
        }
        if (loaded.error().code == resilience::Errc::NotFound) {
            std::printf("%-8s missing   %s\n", kind, path.c_str());
            continue;
        }
        corrupt = true;
        std::printf("%-8s CORRUPT   %s: %s\n", kind, path.c_str(),
                    loaded.error().message.c_str());
        if (opt.purge) {
            std::error_code ec;
            std::filesystem::remove(path, ec);
            std::printf("%-8s purged    %s\n", kind, path.c_str());
        }
    }
    return corrupt ? kExitCacheFailure : kExitOk;
}

std::vector<std::string>
splitCsvList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t comma = text.find(',', begin);
        const std::string piece =
            text.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        if (!piece.empty())
            out.push_back(piece);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

/** <report>.json -> <report>.run.jsonl (next to the report). */
std::string
defaultLedgerPath(const std::string &report)
{
    std::string stem = report;
    const std::string suffix = ".json";
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        stem.resize(stem.size() - suffix.size());
    return stem + ".run.jsonl";
}

/** The MEGSIM_* environment subset that shapes a run's numbers. */
util::Json
envManifest()
{
    static const char *const kVars[] = {
        "MEGSIM_THREADS",   "MEGSIM_FRAME_LIMIT", "MEGSIM_SCALE",
        "MEGSIM_CACHE_DIR", "MEGSIM_CHECKPOINT",  "MEGSIM_TRACE",
        "MEGSIM_TIMELINE",  "MEGSIM_ATTRIB",
        "MEGSIM_SCHED_POLICY",     "MEGSIM_SCHED_MAX_INFLIGHT",
        "MEGSIM_SHARD_REPLY_SPILL", "MEGSIM_SHARD_SPILL_DIR",
        "MEGSIM_FAST_MEM",       "MEGSIM_FAST_MEM_CALIB",
        "MEGSIM_FAST_MEM_PROBE", "MEGSIM_FAST_MEM_AUDIT",
        "MEGSIM_SUITE_CLUSTER",
    };
    util::Json env = util::Json::object();
    for (const char *var : kVars)
        if (const char *value = std::getenv(var))
            env.set(var, value);
    return env;
}

/**
 * The shared run_start manifest for campaign and perf ledgers.
 * @p workers is the supervised worker-process count (0 = in-process).
 */
void
ledgerRunStart(obs::RunLedger &ledger, const char *tool,
               std::size_t threads, std::size_t frameLimit,
               double scale, bool baseline,
               const std::vector<std::string> &benches,
               std::size_t workers = 0,
               const mem::FastMemConfig &fastMem = {},
               bool suiteCluster = false)
{
    gpusim::GpuConfig config =
        baseline ? gpusim::GpuConfig::baseline()
                 : gpusim::GpuConfig::evaluationScaled();
    config.fastMem = fastMem;
    char fingerprint[20];
    std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                  static_cast<unsigned long long>(
                      config.fingerprint()));

    util::Json fields = util::Json::object();
    fields.set("tool", tool);
    fields.set("threads", threads);
    fields.set("workers", workers);
    fields.set("frame_limit", frameLimit);
    fields.set("scale", scale);
    fields.set("gpu_profile", baseline ? "baseline" : "evaluation");
    util::Json aliases = util::Json::array();
    for (const std::string &alias : benches)
        aliases.push(alias);
    fields.set("benches", std::move(aliases));
    fields.set("fingerprint", fingerprint);
    fields.set("env", envManifest());
    fields.set("mem_mode", fastMem.enabled ? "fast" : "exact");
    // The trajectory mode `perf --history` groups rows by: exact,
    // fast and suite-cluster points are separate trajectories.
    std::string mode = fastMem.enabled ? "fast" : "exact";
    if (suiteCluster)
        mode = fastMem.enabled ? "suite-cluster-fast"
                               : "suite-cluster";
    fields.set("mode", mode);
    ledger.event("run_start", std::move(fields));
}

/** One `phase` event per PhaseProfiler::global() phase. */
void
ledgerPhases(obs::RunLedger &ledger)
{
    for (const obs::PhaseProfiler::Phase &p :
         obs::PhaseProfiler::global().phases()) {
        util::Json fields = util::Json::object();
        fields.set("name", p.name);
        fields.set("seconds", p.seconds);
        fields.set("entries", p.entries);
        ledger.event("phase", std::move(fields));
    }
}

/** The `attrib` event from the merged obs.host.* counters. */
void
ledgerAttrib(obs::RunLedger &ledger, double wallSeconds)
{
    const obs::HostAttribSnapshot snap = obs::readHostAttrib();
    util::Json domains = util::Json::object();
    for (std::size_t d = 0; d < obs::kHostDomainCount; ++d)
        domains.set(
            obs::hostDomainName(static_cast<obs::HostDomain>(d)),
            snap.seconds[d]);
    util::Json fields = util::Json::object();
    fields.set("domains", std::move(domains));
    fields.set("coverage", snap.coverage());
    fields.set("wall_seconds", wallSeconds);
    ledger.event("attrib", std::move(fields));
}

/** Fixed-width attribution table for --attrib. */
void
printAttrib()
{
    const obs::HostAttribSnapshot snap = obs::readHostAttrib();
    const double total = snap.totalSeconds();
    if (total <= 0.0) {
        std::printf("host attribution: nothing attributed\n");
        return;
    }
    std::printf("host attribution (%.3f s attributed, named "
                "coverage %.1f%%):\n",
                total, snap.coverage() * 100.0);
    for (std::size_t d = 0; d < obs::kHostDomainCount; ++d) {
        if (snap.seconds[d] == 0.0 && snap.entries[d] == 0)
            continue;
        std::printf("  %-10s %10.3f s %5.1f%% %12llu entries\n",
                    obs::hostDomainName(
                        static_cast<obs::HostDomain>(d)),
                    snap.seconds[d],
                    snap.seconds[d] / total * 100.0,
                    static_cast<unsigned long long>(
                        snap.entries[d]));
    }
}

/** Resolve --timeline / MEGSIM_TIMELINE and write the Chrome JSON. */
void
writeTimelineIfEnabled(const Options &opt)
{
    if (!obs::timelineEnabled())
        return;
    const std::string path = !opt.timeline.empty()
                                 ? opt.timeline
                                 : obs::timelinePath();
    obs::writeTimelineChrome(path, obs::TimelineRecorder::global(),
                             exec::Pool::global().workers());
    std::printf("timeline: %s (%zu spans, %zu worker tracks)\n",
                path.c_str(), obs::TimelineRecorder::global().size(),
                exec::Pool::global().workers());
}

int
runCampaignDiff(const Options &opt)
{
    auto a = batch::CampaignReport::load(opt.diffA);
    if (!a.ok()) {
        std::fprintf(stderr, "cannot load report '%s': %s\n",
                     opt.diffA.c_str(), a.error().message.c_str());
        return kExitLoadFailure;
    }
    auto b = batch::CampaignReport::load(opt.diffB);
    if (!b.ok()) {
        std::fprintf(stderr, "cannot load report '%s': %s\n",
                     opt.diffB.c_str(), b.error().message.c_str());
        return kExitLoadFailure;
    }
    // A per-bench (v2) report and a suite-cluster (v3) report measure
    // different things — refusing the comparison is a usage error,
    // deliberately distinct from the exit-6 content mismatch.
    if (a->suiteCluster != b->suiteCluster) {
        std::fprintf(stderr,
                     "campaign --diff: schema mismatch: '%s' is %s "
                     "but '%s' is %s — per-bench and suite-cluster "
                     "reports are different trajectories and cannot "
                     "be compared\n",
                     opt.diffA.c_str(), a->schemaVersion.c_str(),
                     opt.diffB.c_str(), b->schemaVersion.c_str());
        return kExitUsage;
    }
    const std::vector<std::string> diffs = batch::diffReports(*a, *b);
    if (diffs.empty()) {
        std::printf("reports match (modulo host-side fields): %s "
                    "== %s\n",
                    opt.diffA.c_str(), opt.diffB.c_str());
        return kExitOk;
    }
    std::fprintf(stderr, "reports differ (%zu fields):\n",
                 diffs.size());
    for (const std::string &diff : diffs)
        std::fprintf(stderr, "  %s\n", diff.c_str());
    return kExitDiffMismatch;
}

/** The human-readable campaign table (campaign and submit). */
void
printCampaignReport(const batch::CampaignReport &report)
{
    std::printf("# campaign: %zu benchmarks, %zu threads, "
                "mem %s, mean reduction %.1fx, suite reduction "
                "%.1fx, pool utilization %.0f%%\n",
                report.benchmarks.size(), report.threads,
                report.memMode.c_str(), report.meanReduction,
                report.suiteReduction,
                report.poolUtilization * 100.0);
    std::printf("%-10s %8s %4s %6s %10s %8s %8s %8s %8s  %s\n",
                "benchmark", "frames", "k", "reps", "reduction",
                "cycles%", "dram%", "l2%", "tile%", "cache");
    for (const batch::BenchmarkReport &b : report.benchmarks)
        std::printf("%-10s %8zu %4zu %6zu %9.1fx %8.3f %8.3f %8.3f "
                    "%8.3f  %s\n",
                    b.alias.c_str(), b.frames, b.chosenK,
                    b.representatives, b.reduction, b.errorPercent[0],
                    b.errorPercent[1], b.errorPercent[2],
                    b.errorPercent[3], b.cacheStatus.c_str());
    if (report.suiteCluster) {
        std::printf("# suite-cluster: %zu shared representatives vs "
                    "%zu per-bench (%.2fx fewer timing frames)\n",
                    report.sharedRepresentatives,
                    report.perBenchRepresentatives,
                    report.suiteReductionFactor);
        for (const batch::BenchmarkReport &b : report.benchmarks)
            if (b.borrowedReps > 0)
                std::printf("# %-10s borrows %zu of %zu "
                            "representatives from other benchmarks\n",
                            b.alias.c_str(), b.borrowedReps,
                            b.representatives);
    }
    for (const batch::BenchmarkReport &b : report.benchmarks)
        if (b.hasExactVsFast)
            std::printf("# %-10s exact_vs_fast: cycles %.4f%% dram "
                        "%.4f%% l2 %.4f%% tile %.4f%% (%zu audited "
                        "frames)\n",
                        b.alias.c_str(), b.exactVsFast[0],
                        b.exactVsFast[1], b.exactVsFast[2],
                        b.exactVsFast[3], b.auditedFrames);
    for (const batch::QuarantinedShard &q : report.quarantined)
        std::fprintf(stderr,
                     "quarantined: shard %zu %s [%zu,%zu) after %zu "
                     "attempts: %s\n",
                     q.shard, q.bench.c_str(), q.beginFrame,
                     q.endFrame, q.attempts, q.reason.c_str());
    if (report.degraded)
        std::fprintf(stderr,
                     "campaign DEGRADED: %zu shard(s) quarantined\n",
                     report.quarantined.size());
}

int
runCampaign(const Options &opt)
{
    if (!opt.diffA.empty())
        return runCampaignDiff(opt);
    batch::CampaignConfig config = batch::CampaignConfig::fromEnv();
    config.benches = splitCsvList(opt.benches);
    if (!opt.cacheDir.empty())
        config.cacheDir = opt.cacheDir;
    if (opt.scale != 1.0)
        config.scale = opt.scale;
    // Fast-mem is chosen HERE, not in CampaignConfig::fromEnv(), so
    // supervised serve workers and env-driven cron runs stay exact
    // unless this process was asked explicitly.
    config.fastMem = mem::FastMemConfig::fromEnv();
    if (opt.fastMem)
        config.fastMem.enabled = true;
    if (config.fastMem.enabled && opt.workers > 0) {
        std::fprintf(stderr,
                     "campaign: --fast-mem is incompatible with "
                     "--workers (the shard protocol transports "
                     "cached rows, not audit frames)\n");
        return kExitUsage;
    }
    // Suite clustering is likewise chosen here (not in fromEnv()):
    // --suite-cluster or MEGSIM_SUITE_CLUSTER=1.
    config.suiteCluster = opt.suiteCluster;
    if (const char *env = std::getenv("MEGSIM_SUITE_CLUSTER"))
        if (*env != '\0' && std::string(env) != "0")
            config.suiteCluster = true;

    // Load the thresholds BEFORE the (expensive) campaign, so a typoed
    // path fails in seconds, not hours.
    batch::Thresholds limits;
    if (!opt.check.empty()) {
        auto loaded = batch::Thresholds::load(opt.check);
        if (!loaded.ok()) {
            std::fprintf(stderr,
                         "cannot load thresholds '%s': %s\n",
                         opt.check.c_str(),
                         loaded.error().message.c_str());
            return kExitLoadFailure;
        }
        limits = *loaded;
    }

    // The ledger opens BEFORE the run: a supervised campaign streams
    // its worker_spawn/worker_exit/shard_retry/shard_quarantine events
    // live, so run_start must already be on record.
    obs::RunLedger ledger;
    const std::vector<std::string> aliases =
        config.benches.empty() ? workloads::benchmarkNames()
                               : config.benches;
    ledgerRunStart(ledger, "campaign", exec::Pool::global().workers(),
                   config.frameLimit, config.scale, false, aliases,
                   opt.workers, config.fastMem,
                   config.suiteCluster);

    auto result = [&]() {
        if (opt.workers > 0) {
            serve::SupervisorConfig sup =
                serve::SupervisorConfig::fromEnv();
            sup.workers = opt.workers;
            return serve::Supervisor(config, sup, &ledger).run();
        }
        return batch::Campaign(config).run();
    }();
    if (!result.ok()) {
        const bool load =
            result.error().code == resilience::Errc::UnknownAlias;
        std::fprintf(stderr, "campaign failed: %s\n",
                     result.error().message.c_str());
        return load ? kExitLoadFailure : kExitRuntime;
    }

    if (auto saved = result->save(opt.report); !saved.ok()) {
        std::fprintf(stderr, "cannot write report '%s': %s\n",
                     opt.report.c_str(),
                     saved.error().message.c_str());
        return kExitRuntime;
    }

    printCampaignReport(*result);
    std::printf("report: %s\n", opt.report.c_str());
    obs::processRegistry().dump(std::cout, "campaign.suite.*");

    std::vector<std::string> violations;
    if (!opt.check.empty())
        violations = batch::checkThresholds(*result, limits);

    // The rest of the ledger: per-benchmark cache provenance and
    // result rows, the wall-clock phase split, attribution (when on)
    // and the suite metrics — assembled post-hoc from the report and
    // the merged registries, written next to the report.
    for (const batch::BenchmarkReport &b : result->benchmarks) {
        util::Json fields = util::Json::object();
        fields.set("bench", b.alias);
        fields.set("status", b.cacheStatus);
        fields.set("resumed_frames", b.resumedFrames);
        ledger.event("cache", std::move(fields));
    }
    ledgerPhases(ledger);
    for (const batch::BenchmarkReport &b : result->benchmarks) {
        util::Json fields = util::Json::object();
        fields.set("alias", b.alias);
        fields.set("frames", b.frames);
        fields.set("chosen_k", b.chosenK);
        fields.set("representatives", b.representatives);
        fields.set("reduction", b.reduction);
        fields.set("wall_seconds", b.wallSeconds);
        fields.set("cache_status", b.cacheStatus);
        util::Json error = util::Json::object();
        for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
            error.set(batch::kMetricKeys[m], b.errorPercent[m]);
        fields.set("error", std::move(error));
        fields.set("mem_mode", b.memMode);
        if (b.hasExactVsFast) {
            util::Json audit = util::Json::object();
            for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
                audit.set(batch::kMetricKeys[m], b.exactVsFast[m]);
            fields.set("exact_vs_fast", std::move(audit));
            fields.set("audited_frames", b.auditedFrames);
        }
        ledger.event("bench", std::move(fields));
    }
    if (obs::hostAttribEnabled())
        ledgerAttrib(ledger, result->wallSeconds);
    {
        util::Json values = util::Json::object();
        values.set("mean_reduction", result->meanReduction);
        values.set("suite_reduction", result->suiteReduction);
        values.set("total_frames", result->totalFrames);
        values.set("total_representatives",
                   result->totalRepresentatives);
        values.set("pool_utilization", result->poolUtilization);
        if (result->suiteCluster) {
            values.set("shared_representatives",
                       static_cast<double>(
                           result->sharedRepresentatives));
            values.set("per_bench_representatives",
                       static_cast<double>(
                           result->perBenchRepresentatives));
            values.set("suite_reduction_factor",
                       result->suiteReductionFactor);
        }
        util::Json fields = util::Json::object();
        fields.set("values", std::move(values));
        ledger.event("metrics", std::move(fields));
    }
    {
        util::Json fields = util::Json::object();
        fields.set("wall_seconds", result->wallSeconds);
        fields.set("status", result->degraded ? "degraded"
                             : violations.empty()
                                 ? "ok"
                                 : "threshold-breach");
        ledger.event("run_end", std::move(fields));
    }
    const std::string ledgerPath =
        !opt.ledger.empty() ? opt.ledger
                            : defaultLedgerPath(opt.report);
    if (auto saved = ledger.save(ledgerPath); !saved.ok())
        std::fprintf(stderr, "cannot write ledger '%s': %s\n",
                     ledgerPath.c_str(),
                     saved.error().message.c_str());
    else
        std::printf("ledger: %s (%zu events)\n", ledgerPath.c_str(),
                    ledger.size());

    writeTimelineIfEnabled(opt);
    if (obs::hostAttribEnabled())
        printAttrib();

    if (!violations.empty()) {
        std::fprintf(stderr, "threshold check FAILED against %s:\n",
                     opt.check.c_str());
        for (const std::string &violation : violations)
            std::fprintf(stderr, "  %s\n", violation.c_str());
        // Degraded wins: a quarantined shard means the report itself
        // is incomplete, which subsumes any threshold reading.
        return result->degraded ? kExitDegraded
                                : kExitThresholdBreach;
    }
    if (!opt.check.empty())
        std::printf("threshold check passed against %s\n",
                    opt.check.c_str());
    return result->degraded ? kExitDegraded : kExitOk;
}

int
runServe(const Options &opt)
{
    if (opt.socket.empty()) {
        std::fprintf(stderr, "serve: --socket PATH is required\n");
        return kExitUsage;
    }
    serve::ServiceConfig config;
    config.socketPath = opt.socket;
    config.maxRequests = opt.maxRequests;
    config.base = batch::CampaignConfig::fromEnv();
    config.base.benches = splitCsvList(opt.benches);
    if (!opt.cacheDir.empty())
        config.base.cacheDir = opt.cacheDir;
    if (opt.scale != 1.0)
        config.base.scale = opt.scale;
    config.sup = serve::SupervisorConfig::fromEnv();
    config.sup.workers = opt.workers;
    // Env first (MEGSIM_SCHED_*), explicit flags override.
    const sched::SchedulerConfig sched = sched::SchedulerConfig::fromEnv();
    config.policy = sched.policy;
    config.maxInflight = sched.maxInflight;
    if (!opt.policy.empty()) {
        auto parsed = sched::parsePolicy(opt.policy);
        if (!parsed.ok()) {
            std::fprintf(stderr, "serve: %s\n",
                         parsed.error().message.c_str());
            return kExitUsage;
        }
        config.policy = *parsed;
    }
    if (opt.maxInflight > 0)
        config.maxInflight = opt.maxInflight;
    const int rc =
        serve::runService(config) == 0 ? kExitOk : kExitRuntime;
    // MEGSIM_TIMELINE: the request.wait/request.service lanes are the
    // per-request view of the whole serving session.
    writeTimelineIfEnabled(opt);
    return rc;
}

int
runSubmit(const Options &opt)
{
    if (opt.socket.empty()) {
        std::fprintf(stderr, "submit: --socket PATH is required\n");
        return kExitUsage;
    }
    util::Json request = util::Json::object();
    request.set("type", "campaign");
    if (!opt.benches.empty()) {
        util::Json aliases = util::Json::array();
        for (const std::string &alias : splitCsvList(opt.benches))
            aliases.push(alias);
        request.set("benches", std::move(aliases));
    }
    // Only forward --workers when given: the server's own default
    // governs otherwise.
    if (opt.workersSet)
        request.set("workers", opt.workers);
    if (!opt.tenant.empty())
        request.set("tenant", opt.tenant);
    if (opt.weightSet)
        request.set("weight", opt.weight);

    auto reply = serve::submit(opt.socket, request);
    if (!reply.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     reply.error().message.c_str());
        return kExitRuntime;
    }
    const util::Json *status = reply->find("status");
    const std::string state =
        status ? status->asString() : std::string("?");
    if (state == "rejected") {
        // Backpressure: the scheduler queue is full. Distinct exit
        // code so callers can retry instead of treating it as failure.
        const util::Json *message = reply->find("message");
        std::fprintf(stderr, "submit rejected: %s\n",
                     message ? message->asString().c_str()
                             : "queue full");
        return kExitQueueFull;
    }
    if (state == "error") {
        const util::Json *message = reply->find("message");
        std::fprintf(stderr, "served campaign failed: %s\n",
                     message ? message->asString().c_str()
                             : "(no message)");
        return kExitRuntime;
    }

    const util::Json *reportJson = reply->find("report");
    if (!reportJson) {
        std::fprintf(stderr, "submit: reply carries no report\n");
        return kExitRuntime;
    }
    auto report = batch::CampaignReport::fromJson(*reportJson);
    if (!report.ok()) {
        std::fprintf(stderr, "submit: malformed report: %s\n",
                     report.error().message.c_str());
        return kExitRuntime;
    }
    printCampaignReport(*report);
    if (opt.outSet) {
        if (auto saved = report->save(opt.report); !saved.ok()) {
            std::fprintf(stderr, "cannot write report '%s': %s\n",
                         opt.report.c_str(),
                         saved.error().message.c_str());
            return kExitRuntime;
        }
        std::printf("report: %s\n", opt.report.c_str());
    }
    if (!opt.ledger.empty()) {
        const util::Json *ledgerText = reply->find("ledger");
        if (ledgerText && ledgerText->isString()) {
            if (std::FILE *f =
                    std::fopen(opt.ledger.c_str(), "w")) {
                const std::string &text = ledgerText->asString();
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
                std::printf("ledger: %s\n", opt.ledger.c_str());
            } else {
                std::fprintf(stderr, "cannot write ledger '%s'\n",
                             opt.ledger.c_str());
            }
        }
    }
    return state == "degraded" ? kExitDegraded : kExitOk;
}

int
runHistory(const Options &opt)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(opt.history, ec))
        if (entry.path().extension() == ".jsonl")
            paths.push_back(entry.path().string());
    if (ec) {
        std::fprintf(stderr, "cannot read directory '%s': %s\n",
                     opt.history.c_str(), ec.message().c_str());
        return kExitLoadFailure;
    }
    std::sort(paths.begin(), paths.end());

    std::size_t loaded = 0;
    // The mode column keeps exact / fast-mem / suite-cluster
    // trajectory rows visually separate — they are never comparable.
    std::printf("%-28s %-9s %-18s %4s %-16s %8s  %s\n", "ledger",
                "tool", "mode", "thr", "status", "wall_s", "metrics");
    for (const std::string &path : paths) {
        auto events = obs::RunLedger::load(path);
        if (!events.ok()) {
            std::fprintf(stderr, "skipping '%s': %s\n", path.c_str(),
                         events.error().message.c_str());
            continue;
        }
        const obs::LedgerSummary row =
            obs::summarizeLedger(path, *events);
        std::printf("%-28s %-9s %-18s %4zu %-16s %8.3f ",
                    std::filesystem::path(row.path)
                        .filename()
                        .string()
                        .c_str(),
                    row.tool.c_str(), row.mode.c_str(), row.threads,
                    row.status.empty() ? "(no run_end)"
                                       : row.status.c_str(),
                    row.wallSeconds);
        for (const auto &[name, value] : row.metrics)
            std::printf(" %s=%.4g", name.c_str(), value);
        std::printf("\n");
        ++loaded;
    }
    if (loaded == 0) {
        std::fprintf(stderr, "no valid run ledgers under '%s'\n",
                     opt.history.c_str());
        return kExitLoadFailure;
    }
    return kExitOk;
}

int
runLedgerValidate(const Options &opt)
{
    if (opt.validate.empty()) {
        std::fprintf(stderr,
                     "ledger: --validate PATH is required\n");
        return kExitUsage;
    }
    auto events = obs::RunLedger::load(opt.validate);
    if (!events.ok()) {
        const resilience::Errc code = events.error().code;
        std::fprintf(stderr, "ledger '%s' invalid: %s\n",
                     opt.validate.c_str(),
                     events.error().message.c_str());
        // Unreadable file = load failure; readable-but-wrong = 7.
        return code == resilience::Errc::NotFound ||
                       code == resilience::Errc::Io
                   ? kExitLoadFailure
                   : kExitLedgerInvalid;
    }
    std::printf("ledger ok: %s (%zu events)\n", opt.validate.c_str(),
                events->size());
    return kExitOk;
}

int
runPerf(const Options &opt)
{
    if (!opt.history.empty())
        return runHistory(opt);

    perf::PerfOptions options;
    options.benches = splitCsvList(opt.benches);
    options.frames = opt.frameBegin; // --frames N = frames per bench
    options.scale = opt.scale;
    options.baseline = opt.baseline;
    options.fastMem = mem::FastMemConfig::fromEnv();
    if (opt.fastMem)
        options.fastMem.enabled = true;

    // Load the baseline up front so a typoed path fails fast.
    perf::PerfReport baselineReport;
    bool haveBaseline = false;
    if (!opt.compare.empty()) {
        auto loaded = perf::PerfReport::load(opt.compare);
        if (!loaded.ok()) {
            std::fprintf(stderr, "cannot load baseline '%s': %s\n",
                         opt.compare.c_str(),
                         loaded.error().message.c_str());
            return kExitLoadFailure;
        }
        baselineReport = *loaded;
        haveBaseline = true;
    }

    auto report = perf::runHotpath(options);
    if (!report.ok()) {
        const bool load =
            report.error().code == resilience::Errc::UnknownAlias;
        std::fprintf(stderr, "perf failed: %s\n",
                     report.error().message.c_str());
        return load ? kExitLoadFailure : kExitRuntime;
    }

    std::printf("# perf: %zu benchmarks, frame limit %zu, "
                "%.1f frames/sec, %.1f Mcycles/sec\n",
                report->benches.size(), report->frameLimit,
                report->framesPerSec, report->mcyclesPerSec);
    std::printf("%-10s %8s %10s %12s %14s\n", "benchmark", "frames",
                "wall_s", "frames/s", "Mcycles/s");
    for (const perf::BenchPerf &b : report->benches)
        std::printf("%-10s %8zu %10.3f %12.1f %14.1f\n",
                    b.alias.c_str(), b.frames, b.wallSeconds,
                    b.framesPerSec, b.mcyclesPerSec);
    for (const perf::PhaseSplit &p : report->phases)
        std::printf("  phase %-10s %10.3f s\n", p.name.c_str(),
                    p.seconds);

    const std::string out =
        opt.outSet ? opt.out : std::string("BENCH_gpusim.json");
    if (auto saved = report->save(out); !saved.ok()) {
        std::fprintf(stderr, "cannot write report '%s': %s\n",
                     out.c_str(), saved.error().message.c_str());
        return kExitRuntime;
    }
    std::printf("report: %s\n", out.c_str());

    // The perf run ledger, next to BENCH_gpusim.json. The harness is
    // deliberately poolless, so the manifest records one thread.
    obs::RunLedger ledger;
    std::vector<std::string> aliases;
    for (const perf::BenchPerf &b : report->benches)
        aliases.push_back(b.alias);
    ledgerRunStart(ledger, "perf", 1, report->frameLimit,
                   report->scale, report->baseline, aliases, 0,
                   options.fastMem);
    for (const perf::PhaseSplit &p : report->phases) {
        util::Json fields = util::Json::object();
        fields.set("name", p.name);
        fields.set("seconds", p.seconds);
        ledger.event("phase", std::move(fields));
    }
    for (const perf::BenchPerf &b : report->benches) {
        util::Json fields = util::Json::object();
        fields.set("alias", b.alias);
        fields.set("frames", b.frames);
        fields.set("wall_seconds", b.wallSeconds);
        ledger.event("bench", std::move(fields));
    }
    if (obs::hostAttribEnabled())
        ledgerAttrib(ledger, report->totalWallSeconds);
    {
        util::Json values = util::Json::object();
        values.set("frames_per_sec", report->framesPerSec);
        values.set("mcycles_per_sec", report->mcyclesPerSec);
        values.set("total_frames", report->totalFrames);
        values.set("total_cycles",
                   static_cast<double>(report->totalCycles));
        util::Json fields = util::Json::object();
        fields.set("values", std::move(values));
        ledger.event("metrics", std::move(fields));
    }
    {
        util::Json fields = util::Json::object();
        fields.set("wall_seconds", report->totalWallSeconds);
        fields.set("status", "ok");
        ledger.event("run_end", std::move(fields));
    }
    const std::string ledgerPath =
        !opt.ledger.empty() ? opt.ledger : defaultLedgerPath(out);
    if (auto saved = ledger.save(ledgerPath); !saved.ok())
        std::fprintf(stderr, "cannot write ledger '%s': %s\n",
                     ledgerPath.c_str(),
                     saved.error().message.c_str());
    else
        std::printf("ledger: %s (%zu events)\n", ledgerPath.c_str(),
                    ledger.size());

    writeTimelineIfEnabled(opt);
    if (obs::hostAttribEnabled())
        printAttrib();

    if (haveBaseline) {
        if (opt.strict && report->memMode != baselineReport.memMode) {
            // A fast-mem point is a separate trajectory; gating it
            // against an exact baseline would "pass" on model error.
            std::fprintf(stderr,
                         "perf --strict: current mem_mode '%s' does "
                         "not match baseline '%s' (%s)\n",
                         report->memMode.c_str(),
                         baselineReport.memMode.c_str(),
                         opt.compare.c_str());
            return kExitUsage;
        }
        const std::vector<perf::PerfDelta> deltas =
            perf::comparePerfDeltas(*report, baselineReport,
                                    opt.band);
        bool regression = false;
        bool improvement = false;
        for (const perf::PerfDelta &d : deltas) {
            std::fprintf(stderr,
                         "perf %s: %s: %.1f frames/sec vs baseline "
                         "%.1f (%+.1f%%, band +-%.0f%%)\n",
                         opt.strict ? "delta" : "warning",
                         d.what.c_str(), d.current, d.baseline,
                         d.deltaPercent, opt.band);
            (d.deltaPercent < 0.0 ? regression : improvement) = true;
        }
        if (deltas.empty())
            std::printf("within +-%.0f%% of baseline %s\n", opt.band,
                        opt.compare.c_str());
        if (opt.strict && regression) {
            std::fprintf(stderr,
                         "perf --strict: regression beyond the "
                         "+-%.0f%% band vs %s\n",
                         opt.band, opt.compare.c_str());
            return kExitPerfRegression;
        }
        if (opt.strict && improvement)
            // Faster than the committed trajectory: not a failure,
            // but the baseline is stale — tell CI readers how to
            // record the new operating point.
            std::printf("perf improved beyond the band; refresh the "
                        "committed baseline:\n  cp %s %s\n",
                        out.c_str(), opt.compare.c_str());
        // Without --strict this stays warn-only by design: wall
        // clocks differ across machines.
    }
    return kExitOk;
}

int
runStats(const Options &opt)
{
    auto built = workloads::tryBuildBenchmark(opt.bench, opt.scale,
                                              opt.frameBegin + 1);
    if (!built.ok()) {
        std::fprintf(stderr, "cannot load benchmark '%s': %s\n",
                     opt.bench.c_str(),
                     built.error().message.c_str());
        return kExitLoadFailure;
    }
    const gfx::SceneTrace scene = std::move(*built);
    if (opt.frameBegin >= scene.numFrames()) {
        std::fprintf(stderr, "frame %zu outside the %zu-frame scene\n",
                     opt.frameBegin, scene.numFrames());
        return kExitLoadFailure;
    }
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();
    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding);
    const gpusim::FrameStats stats =
        timing.simulate(scene.frames[opt.frameBegin]);

    std::printf("# %s frame %zu: %llu cycles, ipc %.2f\n",
                opt.bench.c_str(), opt.frameBegin,
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    timing.stats().dump(std::cout, opt.filter);
    return 0;
}

int
runTrace(const Options &opt)
{
    auto built = workloads::tryBuildBenchmark(opt.bench, opt.scale,
                                              opt.frameEnd);
    if (!built.ok()) {
        std::fprintf(stderr, "cannot load benchmark '%s': %s\n",
                     opt.bench.c_str(),
                     built.error().message.c_str());
        return kExitLoadFailure;
    }
    const gfx::SceneTrace scene = std::move(*built);
    if (opt.frameBegin >= scene.numFrames()) {
        std::fprintf(stderr, "frame %zu outside the %zu-frame scene\n",
                     opt.frameBegin, scene.numFrames());
        return kExitLoadFailure;
    }
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();

    obs::ObsConfig obsConfig = obs::ObsConfig::fromEnv();
    obsConfig.traceEnabled = true;

    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding, obsConfig);
    for (std::size_t f = opt.frameBegin;
         f < opt.frameEnd && f < scene.numFrames(); ++f)
        timing.simulate(scene.frames[f]);

    const obs::TraceBuffer &buf = timing.trace();
    if (buf.droppedCount() > 0)
        std::fprintf(stderr,
                     "note: ring dropped %llu oldest events; raise "
                     "MEGSIM_TRACE_CAPACITY to keep them\n",
                     static_cast<unsigned long long>(
                         buf.droppedCount()));

    obs::writeChromeTrace(opt.out, buf, config.frequencyMhz);
    std::printf("wrote %zu events to %s\n", buf.size(),
                opt.out.c_str());
    if (!opt.csv.empty()) {
        obs::writeTraceCsv(opt.csv, buf);
        std::printf("wrote CSV to %s\n", opt.csv.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return usage(argv[0]);
    if (opt.threads)
        exec::Pool::setConfiguredThreads(opt.threads);
    // Single-threaded setup: the telemetry flags must be decided
    // before the pool spins up and the run starts timing.
    if (opt.attrib)
        obs::setHostAttribEnabled(true);
    if (!opt.timeline.empty())
        obs::setTimelineEnabled(true);
    if (opt.command == "stats")
        return runStats(opt);
    if (opt.command == "trace")
        return runTrace(opt);
    if (opt.command == "resume")
        return runResume(opt);
    if (opt.command == "campaign")
        return runCampaign(opt);
    if (opt.command == "serve")
        return runServe(opt);
    if (opt.command == "submit")
        return runSubmit(opt);
    if (opt.command == "perf")
        return runPerf(opt);
    if (opt.command == "ledger")
        return runLedgerValidate(opt);
    return runVerifyCache(opt);
}
