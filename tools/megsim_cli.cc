/**
 * @file
 * megsim-cli: command-line access to the observability layer.
 *
 *   megsim-cli stats [--bench ALIAS] [--frame N] [--filter GLOB]
 *       Simulate one frame and dump the hierarchical stats registry
 *       (the exact counters FrameStats and the estimator read).
 *
 *   megsim-cli trace [--bench ALIAS] [--frames A:B] [--out PATH]
 *                    [--csv PATH]
 *       Simulate a frame range with tracing enabled and export the
 *       events as Chrome trace_event JSON (chrome://tracing /
 *       Perfetto) and/or CSV.
 *
 *   megsim-cli resume [--bench ALIAS] [--cache-dir DIR]
 *       Run (or resume) the checkpointed ground-truth pass for a
 *       benchmark. A run killed mid-pass picks up from the last
 *       checkpointed frame; a complete cache returns immediately.
 *
 *   megsim-cli verify-cache [--bench ALIAS] [--cache-dir DIR]
 *                           [--purge]
 *       Integrity-check the benchmark's cache artifacts (header,
 *       version, fingerprint, checksum). --purge deletes corrupt
 *       files so the next run regenerates them.
 *
 *   megsim-cli campaign [--benches A,B,C] [--out campaign.json]
 *                       [--check thresholds.json] [--cache-dir DIR]
 *       Run the full MEGsim pipeline for the whole benchmark suite
 *       through one shared worker pool and write the machine-readable
 *       accuracy report CI gates on. --check compares the report
 *       against a thresholds file and fails on any regression.
 *
 *   megsim-cli perf [--frames N] [--out BENCH_gpusim.json]
 *                   [--benches A,B,C] [--compare BASELINE.json]
 *                   [--band PCT]
 *       Run the hot-path microbench (pure timing-simulator
 *       throughput, no cache/pool) and emit the versioned
 *       BENCH_gpusim.json perf report. --compare prints warn-only
 *       deviations beyond the +-PCT band (default 25) against a
 *       committed baseline — wall clocks are machine-dependent, so
 *       deviations never fail the run.
 *
 * Common options: --scale S (workload complexity), --baseline (use
 * the full Table I GPU instead of the scaled evaluation profile),
 * --threads N (worker-pool size; overrides MEGSIM_THREADS, 1 = exact
 * serial execution).
 *
 * Exit codes are distinct per failure class so CI can gate on them:
 * 0 success, 1 runtime/simulation failure, 2 usage, 3 load failure
 * (unknown alias, missing/unreadable input file), 4 cache
 * verification failure, 5 threshold breach. Failures print the
 * offending path or alias.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "batch/campaign.hh"
#include "core/megsim.hh"
#include "perf/perf.hh"
#include "exec/pool.hh"
#include "gpusim/timing_simulator.hh"
#include "obs/stats.hh"
#include "obs/trace_export.hh"
#include "resilience/artifact.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace msim;

// Distinct per failure class so CI can gate on the code alone.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoadFailure = 3;
constexpr int kExitCacheFailure = 4;
constexpr int kExitThresholdBreach = 5;

struct Options
{
    std::string command;
    std::string bench = "bbr1";
    std::string benches; // campaign: comma-separated aliases
    std::string filter = "*";
    std::string out = "trace.json";
    std::string csv;
    std::string cacheDir;
    std::string check; // campaign: thresholds file
    std::string report = "campaign.json";
    std::string compare; // perf: baseline report for warn-only diff
    double band = 25.0;  // perf: comparison band (percent)
    std::size_t frameBegin = 0;
    std::size_t frameEnd = 1;
    double scale = 1.0;
    std::size_t threads = 0; // 0 = keep MEGSIM_THREADS / hw default
    bool baseline = false;
    bool purge = false;
    bool outSet = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s stats [--bench ALIAS] [--frame N] [--filter GLOB]\n"
        "       %s trace [--bench ALIAS] [--frames A:B] [--out PATH]"
        " [--csv PATH]\n"
        "       %s resume [--bench ALIAS] [--cache-dir DIR]\n"
        "       %s verify-cache [--bench ALIAS] [--cache-dir DIR]"
        " [--purge]\n"
        "       %s campaign [--benches A,B,C] [--out REPORT.json]"
        " [--check THRESHOLDS.json] [--cache-dir DIR]\n"
        "       %s perf [--frames N] [--out BENCH_gpusim.json]"
        " [--benches A,B,C] [--compare BASELINE.json] [--band PCT]\n"
        "options: --scale S, --baseline, --threads N\n"
        "benches:",
        argv0, argv0, argv0, argv0, argv0, argv0);
    for (const std::string &alias : workloads::benchmarkNames())
        std::fprintf(stderr, " %s", alias.c_str());
    std::fprintf(stderr, "\n");
    return kExitUsage;
}

bool
parseRange(const char *text, std::size_t &begin, std::size_t &end)
{
    const char *colon = std::strchr(text, ':');
    if (!colon) {
        begin = static_cast<std::size_t>(std::atoll(text));
        end = begin + 1;
        return true;
    }
    begin = static_cast<std::size_t>(std::atoll(text));
    end = static_cast<std::size_t>(std::atoll(colon + 1));
    return end > begin;
}

bool
parse(int argc, char **argv, Options &opt)
{
    if (argc < 2)
        return false;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--bench") {
            const char *v = next();
            if (!v)
                return false;
            opt.bench = v;
        } else if (arg == "--frame" || arg == "--frames") {
            const char *v = next();
            if (!v || !parseRange(v, opt.frameBegin, opt.frameEnd))
                return false;
        } else if (arg == "--filter") {
            const char *v = next();
            if (!v)
                return false;
            opt.filter = v;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            opt.out = v;
            opt.report = v;
            opt.outSet = true;
        } else if (arg == "--benches") {
            const char *v = next();
            if (!v)
                return false;
            opt.benches = v;
        } else if (arg == "--check") {
            const char *v = next();
            if (!v)
                return false;
            opt.check = v;
        } else if (arg == "--compare") {
            const char *v = next();
            if (!v)
                return false;
            opt.compare = v;
        } else if (arg == "--band") {
            const char *v = next();
            if (!v || std::atof(v) <= 0.0)
                return false;
            opt.band = std::atof(v);
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return false;
            opt.csv = v;
        } else if (arg == "--scale") {
            const char *v = next();
            if (!v)
                return false;
            opt.scale = std::atof(v);
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v || std::atoll(v) < 1)
                return false;
            opt.threads = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--cache-dir") {
            const char *v = next();
            if (!v)
                return false;
            opt.cacheDir = v;
        } else if (arg == "--baseline") {
            opt.baseline = true;
        } else if (arg == "--purge") {
            opt.purge = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return opt.command == "stats" || opt.command == "trace" ||
           opt.command == "resume" || opt.command == "verify-cache" ||
           opt.command == "campaign" || opt.command == "perf";
}

std::string
resolveCacheDir(const Options &opt)
{
    if (!opt.cacheDir.empty())
        return opt.cacheDir;
    if (const char *env = std::getenv("MEGSIM_CACHE_DIR"))
        return env;
    return "out/cache";
}

/** Build the scene + BenchmarkData pair shared by resume/verify. */
bool
openBenchmarkData(const Options &opt, gfx::SceneTrace &scene,
                  std::unique_ptr<megsim::BenchmarkData> &data)
{
    std::size_t frame_limit = 0;
    if (const char *env = std::getenv("MEGSIM_FRAME_LIMIT"))
        frame_limit = static_cast<std::size_t>(std::atoll(env));
    auto built =
        workloads::tryBuildBenchmark(opt.bench, opt.scale, frame_limit);
    if (!built.ok()) {
        std::fprintf(stderr, "cannot load benchmark '%s': %s\n",
                     opt.bench.c_str(),
                     built.error().message.c_str());
        return false;
    }
    scene = std::move(*built);
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();
    data = std::make_unique<megsim::BenchmarkData>(scene, config,
                                                   resolveCacheDir(opt));
    return true;
}

int
runResume(const Options &opt)
{
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    if (!openBenchmarkData(opt, scene, data))
        return kExitLoadFailure;

    const std::vector<gpusim::FrameStats> &stats = data->frameStats();
    double cycles = 0.0;
    for (const gpusim::FrameStats &s : stats)
        cycles += static_cast<double>(s.cycles);
    std::printf("# %s: %zu frames, %.0f total cycles, %zu threads\n",
                opt.bench.c_str(), stats.size(), cycles,
                exec::Pool::global().workers());
    obs::processRegistry().dump(std::cout, "resilience.*");
    obs::processRegistry().dump(std::cout, "exec.pool.*");
    return kExitOk;
}

int
runVerifyCache(const Options &opt)
{
    gfx::SceneTrace scene;
    std::unique_ptr<megsim::BenchmarkData> data;
    if (!openBenchmarkData(opt, scene, data))
        return kExitLoadFailure;

    bool corrupt = false;
    for (const char *kind : {"activity", "stats"}) {
        const std::string path = data->cachePath(kind);
        auto loaded =
            resilience::readCsvArtifact(path, data->cacheKey(), kind);
        if (loaded.ok()) {
            std::printf("%-8s OK        %zu rows  %s\n", kind,
                        loaded->rows.size(), path.c_str());
            continue;
        }
        if (loaded.error().code == resilience::Errc::NotFound) {
            std::printf("%-8s missing   %s\n", kind, path.c_str());
            continue;
        }
        corrupt = true;
        std::printf("%-8s CORRUPT   %s: %s\n", kind, path.c_str(),
                    loaded.error().message.c_str());
        if (opt.purge) {
            std::error_code ec;
            std::filesystem::remove(path, ec);
            std::printf("%-8s purged    %s\n", kind, path.c_str());
        }
    }
    return corrupt ? kExitCacheFailure : kExitOk;
}

std::vector<std::string>
splitCsvList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t comma = text.find(',', begin);
        const std::string piece =
            text.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        if (!piece.empty())
            out.push_back(piece);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

int
runCampaign(const Options &opt)
{
    batch::CampaignConfig config = batch::CampaignConfig::fromEnv();
    config.benches = splitCsvList(opt.benches);
    if (!opt.cacheDir.empty())
        config.cacheDir = opt.cacheDir;
    if (opt.scale != 1.0)
        config.scale = opt.scale;

    // Load the thresholds BEFORE the (expensive) campaign, so a typoed
    // path fails in seconds, not hours.
    batch::Thresholds limits;
    if (!opt.check.empty()) {
        auto loaded = batch::Thresholds::load(opt.check);
        if (!loaded.ok()) {
            std::fprintf(stderr,
                         "cannot load thresholds '%s': %s\n",
                         opt.check.c_str(),
                         loaded.error().message.c_str());
            return kExitLoadFailure;
        }
        limits = *loaded;
    }

    batch::Campaign campaign(config);
    auto result = campaign.run();
    if (!result.ok()) {
        const bool load =
            result.error().code == resilience::Errc::UnknownAlias;
        std::fprintf(stderr, "campaign failed: %s\n",
                     result.error().message.c_str());
        return load ? kExitLoadFailure : kExitRuntime;
    }

    if (auto saved = result->save(opt.report); !saved.ok()) {
        std::fprintf(stderr, "cannot write report '%s': %s\n",
                     opt.report.c_str(),
                     saved.error().message.c_str());
        return kExitRuntime;
    }

    std::printf("# campaign: %zu benchmarks, %zu threads, "
                "mean reduction %.1fx, suite reduction %.1fx, "
                "pool utilization %.0f%%\n",
                result->benchmarks.size(), result->threads,
                result->meanReduction, result->suiteReduction,
                result->poolUtilization * 100.0);
    std::printf("%-10s %8s %4s %6s %10s %8s %8s %8s %8s  %s\n",
                "benchmark", "frames", "k", "reps", "reduction",
                "cycles%", "dram%", "l2%", "tile%", "cache");
    for (const batch::BenchmarkReport &b : result->benchmarks)
        std::printf("%-10s %8zu %4zu %6zu %9.1fx %8.3f %8.3f %8.3f "
                    "%8.3f  %s\n",
                    b.alias.c_str(), b.frames, b.chosenK,
                    b.representatives, b.reduction, b.errorPercent[0],
                    b.errorPercent[1], b.errorPercent[2],
                    b.errorPercent[3], b.cacheStatus.c_str());
    std::printf("report: %s\n", opt.report.c_str());
    obs::processRegistry().dump(std::cout, "campaign.suite.*");

    if (!opt.check.empty()) {
        const std::vector<std::string> violations =
            batch::checkThresholds(*result, limits);
        if (!violations.empty()) {
            std::fprintf(stderr,
                         "threshold check FAILED against %s:\n",
                         opt.check.c_str());
            for (const std::string &violation : violations)
                std::fprintf(stderr, "  %s\n", violation.c_str());
            return kExitThresholdBreach;
        }
        std::printf("threshold check passed against %s\n",
                    opt.check.c_str());
    }
    return kExitOk;
}

int
runPerf(const Options &opt)
{
    perf::PerfOptions options;
    options.benches = splitCsvList(opt.benches);
    options.frames = opt.frameBegin; // --frames N = frames per bench
    options.scale = opt.scale;
    options.baseline = opt.baseline;

    // Load the baseline up front so a typoed path fails fast.
    perf::PerfReport baselineReport;
    bool haveBaseline = false;
    if (!opt.compare.empty()) {
        auto loaded = perf::PerfReport::load(opt.compare);
        if (!loaded.ok()) {
            std::fprintf(stderr, "cannot load baseline '%s': %s\n",
                         opt.compare.c_str(),
                         loaded.error().message.c_str());
            return kExitLoadFailure;
        }
        baselineReport = *loaded;
        haveBaseline = true;
    }

    auto report = perf::runHotpath(options);
    if (!report.ok()) {
        const bool load =
            report.error().code == resilience::Errc::UnknownAlias;
        std::fprintf(stderr, "perf failed: %s\n",
                     report.error().message.c_str());
        return load ? kExitLoadFailure : kExitRuntime;
    }

    std::printf("# perf: %zu benchmarks, frame limit %zu, "
                "%.1f frames/sec, %.1f Mcycles/sec\n",
                report->benches.size(), report->frameLimit,
                report->framesPerSec, report->mcyclesPerSec);
    std::printf("%-10s %8s %10s %12s %14s\n", "benchmark", "frames",
                "wall_s", "frames/s", "Mcycles/s");
    for (const perf::BenchPerf &b : report->benches)
        std::printf("%-10s %8zu %10.3f %12.1f %14.1f\n",
                    b.alias.c_str(), b.frames, b.wallSeconds,
                    b.framesPerSec, b.mcyclesPerSec);
    for (const perf::PhaseSplit &p : report->phases)
        std::printf("  phase %-10s %10.3f s\n", p.name.c_str(),
                    p.seconds);

    const std::string out =
        opt.outSet ? opt.out : std::string("BENCH_gpusim.json");
    if (auto saved = report->save(out); !saved.ok()) {
        std::fprintf(stderr, "cannot write report '%s': %s\n",
                     out.c_str(), saved.error().message.c_str());
        return kExitRuntime;
    }
    std::printf("report: %s\n", out.c_str());

    if (haveBaseline) {
        const std::vector<std::string> warnings =
            perf::compareReports(*report, baselineReport, opt.band);
        // Warn-only by design: wall clocks differ across machines.
        for (const std::string &w : warnings)
            std::fprintf(stderr, "perf warning: %s\n", w.c_str());
        if (warnings.empty())
            std::printf("within +-%.0f%% of baseline %s\n", opt.band,
                        opt.compare.c_str());
    }
    return kExitOk;
}

int
runStats(const Options &opt)
{
    auto built = workloads::tryBuildBenchmark(opt.bench, opt.scale,
                                              opt.frameBegin + 1);
    if (!built.ok()) {
        std::fprintf(stderr, "cannot load benchmark '%s': %s\n",
                     opt.bench.c_str(),
                     built.error().message.c_str());
        return kExitLoadFailure;
    }
    const gfx::SceneTrace scene = std::move(*built);
    if (opt.frameBegin >= scene.numFrames()) {
        std::fprintf(stderr, "frame %zu outside the %zu-frame scene\n",
                     opt.frameBegin, scene.numFrames());
        return kExitLoadFailure;
    }
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();
    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding);
    const gpusim::FrameStats stats =
        timing.simulate(scene.frames[opt.frameBegin]);

    std::printf("# %s frame %zu: %llu cycles, ipc %.2f\n",
                opt.bench.c_str(), opt.frameBegin,
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    timing.stats().dump(std::cout, opt.filter);
    return 0;
}

int
runTrace(const Options &opt)
{
    auto built = workloads::tryBuildBenchmark(opt.bench, opt.scale,
                                              opt.frameEnd);
    if (!built.ok()) {
        std::fprintf(stderr, "cannot load benchmark '%s': %s\n",
                     opt.bench.c_str(),
                     built.error().message.c_str());
        return kExitLoadFailure;
    }
    const gfx::SceneTrace scene = std::move(*built);
    if (opt.frameBegin >= scene.numFrames()) {
        std::fprintf(stderr, "frame %zu outside the %zu-frame scene\n",
                     opt.frameBegin, scene.numFrames());
        return kExitLoadFailure;
    }
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();

    obs::ObsConfig obsConfig = obs::ObsConfig::fromEnv();
    obsConfig.traceEnabled = true;

    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding, obsConfig);
    for (std::size_t f = opt.frameBegin;
         f < opt.frameEnd && f < scene.numFrames(); ++f)
        timing.simulate(scene.frames[f]);

    const obs::TraceBuffer &buf = timing.trace();
    if (buf.droppedCount() > 0)
        std::fprintf(stderr,
                     "note: ring dropped %llu oldest events; raise "
                     "MEGSIM_TRACE_CAPACITY to keep them\n",
                     static_cast<unsigned long long>(
                         buf.droppedCount()));

    obs::writeChromeTrace(opt.out, buf, config.frequencyMhz);
    std::printf("wrote %zu events to %s\n", buf.size(),
                opt.out.c_str());
    if (!opt.csv.empty()) {
        obs::writeTraceCsv(opt.csv, buf);
        std::printf("wrote CSV to %s\n", opt.csv.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return usage(argv[0]);
    if (opt.threads)
        exec::Pool::setConfiguredThreads(opt.threads);
    if (opt.command == "stats")
        return runStats(opt);
    if (opt.command == "trace")
        return runTrace(opt);
    if (opt.command == "resume")
        return runResume(opt);
    if (opt.command == "campaign")
        return runCampaign(opt);
    if (opt.command == "perf")
        return runPerf(opt);
    return runVerifyCache(opt);
}
