/**
 * @file
 * megsim-cli: command-line access to the observability layer.
 *
 *   megsim-cli stats [--bench ALIAS] [--frame N] [--filter GLOB]
 *       Simulate one frame and dump the hierarchical stats registry
 *       (the exact counters FrameStats and the estimator read).
 *
 *   megsim-cli trace [--bench ALIAS] [--frames A:B] [--out PATH]
 *                    [--csv PATH]
 *       Simulate a frame range with tracing enabled and export the
 *       events as Chrome trace_event JSON (chrome://tracing /
 *       Perfetto) and/or CSV.
 *
 * Common options: --scale S (workload complexity), --baseline (use
 * the full Table I GPU instead of the scaled evaluation profile).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "gpusim/timing_simulator.hh"
#include "obs/trace_export.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace msim;

struct Options
{
    std::string command;
    std::string bench = "bbr1";
    std::string filter = "*";
    std::string out = "trace.json";
    std::string csv;
    std::size_t frameBegin = 0;
    std::size_t frameEnd = 1;
    double scale = 1.0;
    bool baseline = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s stats [--bench ALIAS] [--frame N] [--filter GLOB]\n"
        "       %s trace [--bench ALIAS] [--frames A:B] [--out PATH]"
        " [--csv PATH]\n"
        "options: --scale S, --baseline\n"
        "benches:",
        argv0, argv0);
    for (const std::string &alias : workloads::benchmarkNames())
        std::fprintf(stderr, " %s", alias.c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

bool
parseRange(const char *text, std::size_t &begin, std::size_t &end)
{
    const char *colon = std::strchr(text, ':');
    if (!colon) {
        begin = static_cast<std::size_t>(std::atoll(text));
        end = begin + 1;
        return true;
    }
    begin = static_cast<std::size_t>(std::atoll(text));
    end = static_cast<std::size_t>(std::atoll(colon + 1));
    return end > begin;
}

bool
parse(int argc, char **argv, Options &opt)
{
    if (argc < 2)
        return false;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--bench") {
            const char *v = next();
            if (!v)
                return false;
            opt.bench = v;
        } else if (arg == "--frame" || arg == "--frames") {
            const char *v = next();
            if (!v || !parseRange(v, opt.frameBegin, opt.frameEnd))
                return false;
        } else if (arg == "--filter") {
            const char *v = next();
            if (!v)
                return false;
            opt.filter = v;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            opt.out = v;
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return false;
            opt.csv = v;
        } else if (arg == "--scale") {
            const char *v = next();
            if (!v)
                return false;
            opt.scale = std::atof(v);
        } else if (arg == "--baseline") {
            opt.baseline = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return opt.command == "stats" || opt.command == "trace";
}

int
runStats(const Options &opt)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark(
        opt.bench, opt.scale, opt.frameBegin + 1);
    if (opt.frameBegin >= scene.numFrames()) {
        std::fprintf(stderr, "frame %zu outside the %zu-frame scene\n",
                     opt.frameBegin, scene.numFrames());
        return 1;
    }
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();
    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding);
    const gpusim::FrameStats stats =
        timing.simulate(scene.frames[opt.frameBegin]);

    std::printf("# %s frame %zu: %llu cycles, ipc %.2f\n",
                opt.bench.c_str(), opt.frameBegin,
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    timing.stats().dump(std::cout, opt.filter);
    return 0;
}

int
runTrace(const Options &opt)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark(
        opt.bench, opt.scale, opt.frameEnd);
    if (opt.frameBegin >= scene.numFrames()) {
        std::fprintf(stderr, "frame %zu outside the %zu-frame scene\n",
                     opt.frameBegin, scene.numFrames());
        return 1;
    }
    const gpusim::GpuConfig config =
        opt.baseline ? gpusim::GpuConfig::baseline()
                     : gpusim::GpuConfig::evaluationScaled();

    obs::ObsConfig obsConfig = obs::ObsConfig::fromEnv();
    obsConfig.traceEnabled = true;

    gpusim::SceneBinding binding(scene);
    gpusim::TimingSimulator timing(config, binding, obsConfig);
    for (std::size_t f = opt.frameBegin;
         f < opt.frameEnd && f < scene.numFrames(); ++f)
        timing.simulate(scene.frames[f]);

    const obs::TraceBuffer &buf = timing.trace();
    if (buf.droppedCount() > 0)
        std::fprintf(stderr,
                     "note: ring dropped %llu oldest events; raise "
                     "MEGSIM_TRACE_CAPACITY to keep them\n",
                     static_cast<unsigned long long>(
                         buf.droppedCount()));

    obs::writeChromeTrace(opt.out, buf, config.frequencyMhz);
    std::printf("wrote %zu events to %s\n", buf.size(),
                opt.out.c_str());
    if (!opt.csv.empty()) {
        obs::writeTraceCsv(opt.csv, buf);
        std::printf("wrote CSV to %s\n", opt.csv.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return usage(argv[0]);
    return opt.command == "stats" ? runStats(opt) : runTrace(opt);
}
