#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "batch/campaign.hh"
#include "obs/ledger.hh"
#include "resilience/fault.hh"
#include "serve/protocol.hh"
#include "serve/supervisor.hh"

using namespace msim;
using resilience::Errc;
using resilience::FaultInjector;

namespace
{

/** Fresh scratch dir per test; worker faults disarmed on both ends. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjector::setGlobalSpec("");
        dir_ = std::filesystem::temp_directory_path() /
               ("megsim_serve_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        FaultInjector::setGlobalSpec("");
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

/** RAII pipe pair for the protocol tests. */
struct Pipe
{
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    void closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

batch::CampaignConfig
campaignConfig(const std::string &cacheDir,
               const std::vector<std::string> &benches,
               std::size_t frames)
{
    batch::CampaignConfig config;
    config.benches = benches;
    config.cacheDir = cacheDir;
    config.frameLimit = frames;
    config.megsim.selector.kmeans.seed = 0x4d4547;
    return config;
}

/** Fast supervision settings: near-zero backoff, fine shards. */
serve::SupervisorConfig
supConfig(std::size_t workers)
{
    serve::SupervisorConfig sup;
    sup.workers = workers;
    sup.shardFrames = 4;
    sup.retryCap = 3;
    sup.backoffBaseMs = 1;
    sup.backoffCapMs = 4;
    return sup;
}

} // namespace

TEST_F(ServeTest, FramesRoundTripThroughAPipe)
{
    Pipe pipe;
    util::Json msg = util::Json::object();
    msg.set("type", "shard");
    msg.set("shard", static_cast<std::size_t>(7));
    msg.set("bench", "hcr");
    ASSERT_TRUE(serve::writeMessage(pipe.fds[1], msg).ok());

    auto read = serve::readMessage(pipe.fds[0], 1000.0);
    ASSERT_TRUE(read.ok()) << read.error().message;
    EXPECT_EQ(read->dump(), msg.dump());

    // Two frames queue back to back without bleeding into each other.
    ASSERT_TRUE(serve::writeMessage(pipe.fds[1], msg).ok());
    ASSERT_TRUE(serve::writeMessage(pipe.fds[1], msg).ok());
    EXPECT_TRUE(serve::readMessage(pipe.fds[0], 1000.0).ok());
    EXPECT_TRUE(serve::readMessage(pipe.fds[0], 1000.0).ok());
}

TEST_F(ServeTest, CorruptPayloadIsBadChecksumNotGarbage)
{
    Pipe pipe;
    util::Json msg = util::Json::object();
    msg.set("type", "shard");
    ASSERT_TRUE(serve::writeMessage(pipe.fds[1], msg).ok());

    // Flip one payload byte on the wire: header (24 bytes) intact,
    // checksum now wrong.
    std::string raw(64, '\0');
    const ssize_t got = ::read(pipe.fds[0], raw.data(), raw.size());
    ASSERT_GT(got, 24);
    raw.resize(static_cast<std::size_t>(got));
    raw[30] ^= 0x20;
    Pipe corrupted;
    ASSERT_EQ(::write(corrupted.fds[1], raw.data(), raw.size()),
              static_cast<ssize_t>(raw.size()));

    auto read = serve::readMessage(corrupted.fds[0], 1000.0);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, Errc::BadChecksum);
}

TEST_F(ServeTest, PeerDeathAndSilenceAreDistinctErrors)
{
    // EOF (peer closed) → Truncated: the supervisor's "crash" path.
    {
        Pipe pipe;
        pipe.closeWrite();
        auto read = serve::readFrame(pipe.fds[0], 1000.0);
        ASSERT_FALSE(read.ok());
        EXPECT_EQ(read.error().code, Errc::Truncated);
    }
    // Open but silent → FrameTimeout: the supervisor's "hang" path.
    {
        Pipe pipe;
        auto read = serve::readFrame(pipe.fds[0], 50.0);
        ASSERT_FALSE(read.ok());
        EXPECT_EQ(read.error().code, Errc::FrameTimeout);
    }
}

TEST_F(ServeTest, ShardRequestsRoundTripAndValidate)
{
    serve::ShardSpec spec;
    spec.id = 3;
    spec.bench = "jjo";
    spec.beginFrame = 8;
    spec.endFrame = 12;
    spec.attempt = 2;
    auto parsed = serve::parseShardRequest(serve::shardRequest(spec));
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed->id, 3u);
    EXPECT_EQ(parsed->bench, "jjo");
    EXPECT_EQ(parsed->beginFrame, 8u);
    EXPECT_EQ(parsed->endFrame, 12u);
    EXPECT_EQ(parsed->attempt, 2u);

    // An empty range is malformed, not a zero-work success.
    spec.endFrame = spec.beginFrame;
    EXPECT_FALSE(
        serve::parseShardRequest(serve::shardRequest(spec)).ok());
}

TEST_F(ServeTest, WorkerFaultDiceAreDeterministicPerShardAttempt)
{
    FaultInjector::setGlobalSpec("worker.kill:shard=2,times=1");
    FaultInjector &faults = FaultInjector::global();
    // Fires on shard 2's first attempt only — and re-rolls the SAME
    // outcome on every query, as a respawned worker would.
    EXPECT_TRUE(faults.killWorker(2, 0));
    EXPECT_TRUE(faults.killWorker(2, 0));
    EXPECT_FALSE(faults.killWorker(2, 1));
    EXPECT_FALSE(faults.killWorker(1, 0));
    EXPECT_FALSE(faults.hangWorker(2, 0)); // different class, no clause

    FaultInjector::setGlobalSpec("worker.hang:shard=1");
    EXPECT_TRUE(FaultInjector::global().hangWorker(1, 0));
    EXPECT_TRUE(FaultInjector::global().hangWorker(1, 5));
    EXPECT_FALSE(FaultInjector::global().hangWorker(0, 0));
}

TEST_F(ServeTest, OversizedRepliesSpillToDiskAndRoundTrip)
{
    serve::SpillConfig spill;
    spill.thresholdBytes = 16;
    spill.dir = path("spill");
    std::filesystem::create_directories(spill.dir);
    auto spillCount = [&] {
        std::size_t n = 0;
        for ([[maybe_unused]] const auto &entry :
             std::filesystem::directory_iterator(spill.dir))
            ++n;
        return n;
    };

    // An artificially large reply crosses the pipe as a spill_ref but
    // reads back byte-identical; the single-use file is gone after.
    util::Json big = util::Json::object();
    big.set("type", "shard_done");
    big.set("blob", std::string(4096, 'x'));
    {
        Pipe pipe;
        ASSERT_TRUE(
            serve::writeMessage(pipe.fds[1], big, spill).ok());
        EXPECT_EQ(spillCount(), 1u);
        auto read = serve::readMessage(pipe.fds[0], 1000.0);
        ASSERT_TRUE(read.ok()) << read.error().message;
        EXPECT_EQ(read->dump(), big.dump());
        EXPECT_EQ(spillCount(), 0u);
    }

    // Payloads at or under the threshold never touch the disk.
    {
        Pipe pipe;
        util::Json small = util::Json::object();
        small.set("a", 1);
        ASSERT_TRUE(
            serve::writeMessage(pipe.fds[1], small, spill).ok());
        EXPECT_EQ(spillCount(), 0u);
        EXPECT_TRUE(serve::readMessage(pipe.fds[0], 1000.0).ok());
    }

    // A corrupted spill file is BadChecksum — and still removed, so a
    // bad reply never leaks onto disk across retries.
    {
        Pipe pipe;
        ASSERT_TRUE(
            serve::writeMessage(pipe.fds[1], big, spill).ok());
        ASSERT_EQ(spillCount(), 1u);
        for (const auto &entry :
             std::filesystem::directory_iterator(spill.dir)) {
            std::ofstream out(entry.path(), std::ios::app);
            out << "tail";
        }
        auto read = serve::readMessage(pipe.fds[0], 1000.0);
        ASSERT_FALSE(read.ok());
        EXPECT_EQ(read.error().code, Errc::BadChecksum);
        EXPECT_EQ(spillCount(), 0u);
    }

    // A vanished spill file is Truncated: the writer died between the
    // spill and the frame, same recovery path as a worker crash.
    {
        Pipe pipe;
        ASSERT_TRUE(
            serve::writeMessage(pipe.fds[1], big, spill).ok());
        for (const auto &entry :
             std::filesystem::directory_iterator(spill.dir))
            std::filesystem::remove(entry.path());
        auto read = serve::readMessage(pipe.fds[0], 1000.0);
        ASSERT_FALSE(read.ok());
        EXPECT_EQ(read.error().code, Errc::Truncated);
    }

    // An unreachable spill directory falls back to the pipe: spilling
    // is an optimization, never a new failure mode.
    {
        Pipe pipe;
        serve::SpillConfig gone;
        gone.thresholdBytes = 16;
        gone.dir = path("no-such-dir/nested");
        ASSERT_TRUE(
            serve::writeMessage(pipe.fds[1], big, gone).ok());
        auto read = serve::readMessage(pipe.fds[0], 1000.0);
        ASSERT_TRUE(read.ok()) << read.error().message;
        EXPECT_EQ(read->dump(), big.dump());
    }
}

TEST_F(ServeTest, SupervisedRunsMatchInProcessWithSpillInForce)
{
    // Every shard reply is far larger than 64 bytes, so the whole
    // supervised run round-trips through spill files; results must
    // still be bit-identical to the in-process pass.
    const std::vector<std::string> benches = {"hcr"};
    constexpr std::size_t kFrames = 8;

    std::filesystem::create_directories(path("ref"));
    batch::Campaign ref(
        campaignConfig(path("ref"), benches, kFrames));
    auto expected = ref.run();
    ASSERT_TRUE(expected.ok()) << expected.error().message;

    std::filesystem::create_directories(path("spill"));
    ::setenv("MEGSIM_SHARD_REPLY_SPILL", "64", 1);
    ::setenv("MEGSIM_SHARD_SPILL_DIR", path("spill").c_str(), 1);
    std::filesystem::create_directories(path("cache"));
    serve::Supervisor supervisor(
        campaignConfig(path("cache"), benches, kFrames),
        supConfig(2));
    auto report = supervisor.run();
    ::unsetenv("MEGSIM_SHARD_REPLY_SPILL");
    ::unsetenv("MEGSIM_SHARD_SPILL_DIR");
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_FALSE(report->degraded);

    const std::vector<std::string> diffs =
        batch::diffReports(*expected, *report);
    EXPECT_TRUE(diffs.empty()) << diffs.front();

    // Single-use spill files never accumulate.
    EXPECT_TRUE(std::filesystem::is_empty(path("spill")));
}

TEST_F(ServeTest, SupervisedRunsMatchInProcessAtEveryWorkerCount)
{
    const std::vector<std::string> benches = {"hcr", "jjo"};
    constexpr std::size_t kFrames = 12;

    // In-process reference, no faults.
    std::filesystem::create_directories(path("ref"));
    batch::Campaign ref(
        campaignConfig(path("ref"), benches, kFrames));
    auto expected = ref.run();
    ASSERT_TRUE(expected.ok()) << expected.error().message;

    for (std::size_t workers : {1u, 2u, 4u}) {
        // Kill the first attempt of two different shards: every run
        // exercises crash detection, journal resume and re-dispatch.
        FaultInjector::setGlobalSpec(
            "worker.kill:shard=1,times=1;worker.kill:shard=2,times=1");
        const std::string cache =
            path("w" + std::to_string(workers));
        std::filesystem::create_directories(cache);
        serve::Supervisor supervisor(
            campaignConfig(cache, benches, kFrames),
            supConfig(workers));
        auto report = supervisor.run();
        FaultInjector::setGlobalSpec("");
        ASSERT_TRUE(report.ok()) << report.error().message;
        EXPECT_FALSE(report->degraded);

        const std::vector<std::string> diffs =
            batch::diffReports(*expected, *report);
        EXPECT_TRUE(diffs.empty())
            << workers << " workers: " << diffs.front();
    }
}

TEST_F(ServeTest, PoisonShardIsQuarantinedAndTheRestCompletes)
{
    const std::vector<std::string> benches = {"hcr", "jjo"};
    constexpr std::size_t kFrames = 6;

    // Shard 0 (hcr's only shard at shardFrames=6) dies on EVERY
    // attempt: the retry cap must trip, not spin forever.
    FaultInjector::setGlobalSpec("worker.kill:shard=0");
    serve::SupervisorConfig sup = supConfig(2);
    sup.shardFrames = kFrames;
    sup.retryCap = 1;
    obs::RunLedger ledger;
    serve::Supervisor supervisor(
        campaignConfig(path("cache"), benches, kFrames), sup,
        &ledger);
    auto report = supervisor.run();
    FaultInjector::setGlobalSpec("");
    ASSERT_TRUE(report.ok()) << report.error().message;

    EXPECT_TRUE(report->degraded);
    ASSERT_EQ(report->quarantined.size(), 1u);
    EXPECT_EQ(report->quarantined[0].bench, "hcr");
    EXPECT_EQ(report->quarantined[0].beginFrame, 0u);
    EXPECT_EQ(report->quarantined[0].endFrame, kFrames);
    EXPECT_EQ(report->quarantined[0].attempts, sup.retryCap + 1);
    EXPECT_FALSE(report->quarantined[0].reason.empty());

    // The poisoned benchmark has no result row; the healthy one does.
    ASSERT_EQ(report->benchmarks.size(), 1u);
    EXPECT_EQ(report->benchmarks[0].alias, "jjo");

    // The ledger carries the full supervision story.
    std::size_t retries = 0, quarantines = 0, spawns = 0;
    for (const util::Json &ev : ledger.events()) {
        const std::string type = ev.find("event")->asString();
        retries += type == "shard_retry";
        quarantines += type == "shard_quarantine";
        spawns += type == "worker_spawn";
        ASSERT_TRUE(obs::RunLedger::validateEvent(ev).ok());
    }
    EXPECT_EQ(retries, sup.retryCap);
    EXPECT_EQ(quarantines, 1u);
    EXPECT_GE(spawns, 2u);

    // The degraded report round-trips bit-for-bit.
    auto back = batch::CampaignReport::fromJson(report->toJson());
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back->toJson().dump(), report->toJson().dump());
    EXPECT_TRUE(batch::diffReports(*report, *back).empty());
}
