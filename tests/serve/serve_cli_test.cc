/**
 * @file
 * End-to-end tests for the supervised campaign CLI surface:
 * `campaign --workers N`, the degraded exit code 8, and the
 * `serve --socket` / `submit` request queue. The harness passes the
 * built megsim-cli path as argv[1] (see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace
{

std::string cliPath;

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::filesystem::path
tempDir()
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "megsim_serve_cli_test";
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * Run the CLI with @p env prepended (fault spec, cache dir) under a
 * bounded frame limit; returns the exit code.
 */
int
runCli(const std::string &env, const std::string &args,
       const std::filesystem::path &log)
{
    const std::string cmd = "MEGSIM_FRAME_LIMIT=6 " + env + " " +
                            cliPath + " " + args + " > " +
                            log.string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/**
 * A cold per-test cache directory. Wiped on every call: a cache left
 * over from a previous run would make the supervisor see every
 * benchmark as fresh, skip shard work entirely, and never trip the
 * injected worker faults these tests depend on.
 */
std::string
cacheEnv(const std::string &name)
{
    const std::filesystem::path dir = tempDir() / name;
    std::filesystem::remove_all(dir);
    return "MEGSIM_CACHE_DIR=" + dir.string();
}

} // namespace

TEST(ServeCli, SupervisedCampaignSurvivesKillsAndDiffsClean)
{
    ASSERT_FALSE(cliPath.empty()) << "pass megsim-cli path as argv[1]";
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path supervised = dir / "supervised.json";
    const std::filesystem::path inprocess = dir / "inprocess.json";
    const std::filesystem::path ledger = dir / "supervised.run.jsonl";
    const std::filesystem::path log = dir / "supervised.log";

    // Two worker crashes injected; the supervisor must recover and
    // still exit 0 with the same numbers as the in-process run.
    ASSERT_EQ(runCli(cacheEnv("sup_cache") +
                         " MEGSIM_SHARD_FRAMES=4"
                         " MEGSIM_FAULTS='worker.kill:shard=1,times=1"
                         ";worker.kill:shard=2,times=1'",
                     "campaign --benches hcr,jjo --workers 2 --out " +
                         supervised.string() + " --ledger " +
                         ledger.string(),
                     log),
              0)
        << slurp(log);
    ASSERT_EQ(runCli(cacheEnv("inproc_cache"),
                     "campaign --benches hcr,jjo --out " +
                         inprocess.string(),
                     log),
              0)
        << slurp(log);
    EXPECT_EQ(runCli("", "campaign --diff " + supervised.string() +
                             " " + inprocess.string(),
                     log),
              0)
        << slurp(log);

    // The ledger validates strictly and tells the supervision story.
    EXPECT_EQ(runCli("", "ledger --validate " + ledger.string(), log),
              0)
        << slurp(log);
    const std::string text = slurp(ledger);
    EXPECT_NE(text.find("\"event\":\"worker_spawn\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"worker_exit\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"shard_retry\""),
              std::string::npos);
    EXPECT_NE(text.find("\"workers\":2"), std::string::npos);
}

TEST(ServeCli, SuiteClusterSurvivesWorkerKillsAtEveryFleetSize)
{
    // Suite-cluster analysis runs in the parent over worker-rebuilt
    // caches, so `--suite-cluster --workers N` must be bit-identical
    // to the in-process suite run at every fleet size, including
    // under injected worker crashes.
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path inprocess = dir / "suite-inproc.json";
    const std::filesystem::path log = dir / "suite.log";

    ASSERT_EQ(runCli(cacheEnv("suite_inproc_cache"),
                     "campaign --benches hcr,jjo --suite-cluster"
                     " --out " + inprocess.string(),
                     log),
              0)
        << slurp(log);

    for (const int workers : {1, 2, 4}) {
        const std::string tag = std::to_string(workers);
        const std::filesystem::path out =
            dir / ("suite-w" + tag + ".json");
        ASSERT_EQ(
            runCli(cacheEnv("suite_w" + tag + "_cache") +
                       " MEGSIM_SHARD_FRAMES=4"
                       " MEGSIM_FAULTS=worker.kill:shard=1,times=1",
                   "campaign --benches hcr,jjo --suite-cluster"
                   " --workers " + tag + " --out " + out.string(),
                   log),
            0)
            << workers << " workers: " << slurp(log);
        EXPECT_EQ(runCli("", "campaign --diff " + inprocess.string() +
                                 " " + out.string(),
                         log),
                  0)
            << workers << " workers: " << slurp(log);
    }
}

TEST(ServeCli, PoisonShardDegradesTheCampaignWithExitEight)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path report = dir / "degraded.json";
    const std::filesystem::path log = dir / "degraded.log";

    const int rc = runCli(
        cacheEnv("poison_cache") +
            " MEGSIM_SHARD_FRAMES=6 MEGSIM_SHARD_RETRIES=1"
            " MEGSIM_FAULTS=worker.kill:shard=0",
        "campaign --benches hcr,jjo --workers 2 --out " +
            report.string(),
        log);
    EXPECT_EQ(rc, 8) << slurp(log);
    EXPECT_NE(slurp(log).find("quarantined"), std::string::npos);

    const std::string text = slurp(report);
    EXPECT_NE(text.find("\"degraded\": true"), std::string::npos);
    EXPECT_NE(text.find("\"quarantined_shards\""), std::string::npos);
    EXPECT_NE(text.find("\"bench\": \"hcr\""), std::string::npos);
    // The healthy benchmark still has its row.
    EXPECT_NE(text.find("\"alias\": \"jjo\""), std::string::npos);
}

TEST(ServeCli, ServeAnswersQueuedSubmitsOverOneSharedCache)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path socket = dir / "serve.sock";
    const std::filesystem::path serveLog = dir / "serve.log";
    const std::filesystem::path log = dir / "submit.log";
    std::filesystem::remove(socket);

    // Background server: supervised workers, exits after 2 requests.
    const std::string serveCmd =
        "MEGSIM_FRAME_LIMIT=6 " + cacheEnv("serve_cache") + " " +
        cliPath + " serve --socket " + socket.string() +
        " --max-requests 2 --workers 2 > " + serveLog.string() +
        " 2>&1 &";
    ASSERT_EQ(std::system(serveCmd.c_str()), 0);
    for (int i = 0; i < 100 && !std::filesystem::exists(socket); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(std::filesystem::exists(socket)) << slurp(serveLog);

    const std::filesystem::path first = dir / "first.json";
    const std::filesystem::path firstLedger =
        dir / "first.run.jsonl";
    EXPECT_EQ(runCli("", "submit --socket " + socket.string() +
                             " --benches hcr --out " + first.string() +
                             " --ledger " + firstLedger.string(),
                     log),
              0)
        << slurp(log) << slurp(serveLog);
    EXPECT_NE(slurp(first).find("\"alias\": \"hcr\""),
              std::string::npos);
    EXPECT_EQ(runCli("",
                     "ledger --validate " + firstLedger.string(), log),
              0)
        << slurp(log);

    // Second request shares the cache: hcr is now a verified hit.
    EXPECT_EQ(runCli("", "submit --socket " + socket.string() +
                             " --benches hcr,jjo",
                     log),
              0)
        << slurp(log) << slurp(serveLog);
    EXPECT_NE(slurp(log).find("fresh"), std::string::npos)
        << slurp(log);

    // The server saw both requests and tore the socket down.
    for (int i = 0; i < 100 && std::filesystem::exists(socket); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(std::filesystem::exists(socket)) << slurp(serveLog);
    const std::string served = slurp(serveLog);
    EXPECT_NE(served.find("request 2 done"), std::string::npos);
}

int
main(int argc, char **argv)
{
    if (argc > 1 && argv[1][0] != '-') {
        cliPath = argv[1];
        // Hide the extra argument from gtest's flag parser.
        for (int i = 1; i + 1 < argc; ++i)
            argv[i] = argv[i + 1];
        --argc;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
