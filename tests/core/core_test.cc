#include <gtest/gtest.h>

#include <cstdio>
#include <cmath>
#include <filesystem>

#include "core/megsim.hh"
#include "sim/random.hh"
#include "workloads/workloads.hh"

using namespace msim;
using namespace msim::megsim;

namespace
{

/**
 * A feature matrix with @p k well-separated synthetic clusters: each
 * frame of cluster c sits near (c * 100, c * 100, ...) with small
 * deterministic jitter.
 */
FeatureMatrix
separableMatrix(std::size_t k, std::size_t perCluster, std::size_t dims)
{
    FeatureMatrix m(k * perCluster, dims - 1, 0);
    sim::Rng rng(42);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t i = 0; i < perCluster; ++i)
            for (std::size_t d = 0; d < dims; ++d)
                m.at(c * perCluster + i, d) =
                    static_cast<double>(c) * 100.0 +
                    rng.uniform() * 2.0 - 1.0;
    return m;
}

} // namespace

TEST(Features, BuildScalesInvocationsByCharacteristicCost)
{
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 3);
    gpusim::SceneBinding binding(scene);
    gpusim::FunctionalSimulator functional(
        gpusim::GpuConfig::evaluationScaled(), binding);
    std::vector<gpusim::FrameActivity> activities;
    for (const gfx::FrameTrace &frame : scene.frames)
        activities.push_back(functional.simulate(frame));

    const FeatureMatrix m = buildFeatureMatrix(activities, scene);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.vsDims(), scene.numVertexShaders());
    EXPECT_EQ(m.fsDims(), scene.numFragmentShaders());
    EXPECT_EQ(m.cols(), m.vsDims() + m.fsDims() + 1);
    // Last column is the raw primitive count.
    EXPECT_DOUBLE_EQ(m.at(0, m.cols() - 1),
                     static_cast<double>(activities[0].primitives));
    // Feature columns are cost-scaled invocation counts, so each
    // column with invocations is >= the raw count (cost >= 1).
    double total = 0.0;
    for (std::size_t d = 0; d < m.cols(); ++d)
        total += m.at(0, d);
    EXPECT_GT(total, 0.0);
}

TEST(Features, GroupSumNormalizationHitsTargetWeights)
{
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 4);
    gpusim::SceneBinding binding(scene);
    gpusim::FunctionalSimulator functional(
        gpusim::GpuConfig::evaluationScaled(), binding);
    std::vector<gpusim::FrameActivity> activities;
    for (const gfx::FrameTrace &frame : scene.frames)
        activities.push_back(functional.simulate(frame));

    FeatureMatrix m = buildFeatureMatrix(activities, scene);
    const GroupWeights weights;
    normalize(m, NormalizationScheme::GroupSumWeights, weights);

    // Mean per-frame group sums must equal the Fig. 4 weights.
    double vsSum = 0.0, fsSum = 0.0, primSum = 0.0;
    for (std::size_t f = 0; f < m.rows(); ++f) {
        for (std::size_t d = 0; d < m.vsDims(); ++d)
            vsSum += m.at(f, d);
        for (std::size_t d = 0; d < m.fsDims(); ++d)
            fsSum += m.at(f, m.vsDims() + d);
        primSum += m.at(f, m.cols() - 1);
    }
    const double n = static_cast<double>(m.rows());
    EXPECT_NEAR(vsSum / n, weights.vs, 1e-9);
    EXPECT_NEAR(fsSum / n, weights.fs, 1e-9);
    EXPECT_NEAR(primSum / n, weights.prim, 1e-9);
}

TEST(Features, RandomProjectionPreservesSeparation)
{
    const FeatureMatrix m = separableMatrix(3, 10, 40);
    const FeatureMatrix p = randomProject(m, 8);
    ASSERT_EQ(p.rows(), m.rows());
    ASSERT_EQ(p.cols(), 8u);

    // Same-cluster distances stay well below cross-cluster ones.
    const SimilarityMatrix sim(p);
    double within = 0.0, across = 0.0;
    within = sim.at(0, 5);
    across = sim.at(0, 15);
    EXPECT_LT(within, across);
}

TEST(Features, ProjectionIsIdentityWhenAlreadySmall)
{
    const FeatureMatrix m = separableMatrix(2, 4, 6);
    const FeatureMatrix p = randomProject(m, 24);
    ASSERT_EQ(p.cols(), m.cols());
    EXPECT_DOUBLE_EQ(p.at(3, 2), m.at(3, 2));
}

TEST(Cluster, KMeansRecoversSeparableClusters)
{
    const FeatureMatrix m = separableMatrix(4, 16, 12);
    const KMeansResult result = kmeans(m, 4);
    ASSERT_EQ(result.k, 4u);
    ASSERT_EQ(result.labels.size(), m.rows());

    // Every synthetic cluster maps to exactly one k-means label.
    for (std::size_t c = 0; c < 4; ++c) {
        const std::uint32_t label = result.labels[c * 16];
        for (std::size_t i = 1; i < 16; ++i)
            EXPECT_EQ(result.labels[c * 16 + i], label)
                << "cluster " << c << " split";
    }
    for (std::size_t size : result.sizes)
        EXPECT_EQ(size, 16u);
    EXPECT_LT(result.inertia, m.rows() * 12.0)
        << "tight clusters -> small inertia";
}

TEST(Cluster, SelectionPrefersTheNaturalK)
{
    const FeatureMatrix m = separableMatrix(5, 12, 10);
    SelectorConfig config;
    config.maxClusters = 16;
    const SelectionResult selection = selectClustering(m, config);
    ASSERT_FALSE(selection.trace.empty());
    EXPECT_EQ(selection.chosen().k, 5u);
}

TEST(Cluster, RepresentativeWeightsCoverEveryFrame)
{
    const FeatureMatrix m = separableMatrix(3, 8, 6);
    const KMeansResult clustering = kmeans(m, 3);
    const RepresentativeSet reps = representativeSet(m, clustering);
    ASSERT_EQ(reps.size(), 3u);
    double totalWeight = 0.0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        EXPECT_LT(reps.frames[i], m.rows());
        totalWeight += reps.weights[i];
    }
    EXPECT_DOUBLE_EQ(totalWeight, static_cast<double>(m.rows()));
}

TEST(Similarity, MatrixIsSymmetricWithZeroDiagonal)
{
    const FeatureMatrix m = separableMatrix(2, 6, 5);
    const SimilarityMatrix sim(m);
    ASSERT_EQ(sim.frames(), m.rows());
    for (std::size_t a = 0; a < sim.frames(); ++a) {
        EXPECT_DOUBLE_EQ(sim.at(a, a), 0.0);
        for (std::size_t b = 0; b < sim.frames(); ++b)
            EXPECT_DOUBLE_EQ(sim.at(a, b), sim.at(b, a));
    }
    EXPECT_GT(sim.maxDistance(), 0.0);
    EXPECT_GT(sim.meanDistance(), 0.0);
    EXPECT_LE(sim.meanDistance(), sim.maxDistance());
}

TEST(Correlation, LinearTargetYieldsHighCoefficients)
{
    // Metric = 3*fs0 + fs1: the FS group fully explains the target,
    // the VS column is independent noise.
    const std::size_t n = 64;
    FeatureMatrix m(n, 1, 2);
    std::vector<double> metric(n);
    sim::Rng rng(7);
    for (std::size_t f = 0; f < n; ++f) {
        m.at(f, 0) = rng.uniform() * 10.0;
        m.at(f, 1) = rng.uniform() * 10.0;
        m.at(f, 2) = rng.uniform() * 10.0;
        metric[f] = 3.0 * m.at(f, 1) + m.at(f, 2);
    }
    // Make the PRIM column the metric itself for a perfect Pearson.
    for (std::size_t f = 0; f < n; ++f)
        m.at(f, 3) = metric[f];

    const CorrelationStudy study = correlationStudy(m, metric);
    EXPECT_GE(study.vscv, 0.0);
    EXPECT_LT(study.vscv, 0.5) << "noise column must not correlate";
    EXPECT_GT(study.fscv, 0.99);
    EXPECT_NEAR(study.prim, 1.0, 1e-6);
}

TEST(Pipeline, EndToEndReductionAndEstimation)
{
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 48);
    BenchmarkData data(scene, gpusim::GpuConfig::evaluationScaled(),
                       "");
    MegsimConfig config;
    config.selector.maxClusters = 12;
    MegsimPipeline pipeline(data, config);

    const MegsimRun run = pipeline.run();
    EXPECT_EQ(run.numFrames, 48u);
    EXPECT_GE(run.numRepresentatives(), 1u);
    EXPECT_LT(run.numRepresentatives(), 48u)
        << "must simulate fewer frames than the full run";
    EXPECT_GT(run.reductionFactor(), 1.0);

    const double err =
        pipeline.errorPercent(run, gpusim::Metric::Cycles);
    EXPECT_GE(err, 0.0);
    EXPECT_LT(err, 25.0) << "estimate should be in the ballpark";
}

TEST(Pipeline, CacheRoundTripsGroundTruth)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "megsim_core_cache";
    std::filesystem::remove_all(dir);

    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 6);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    BenchmarkData first(scene, config, dir.string());
    const std::vector<gpusim::FrameStats> truth = first.frameStats();
    ASSERT_EQ(truth.size(), 6u);

    BenchmarkData second(scene, config, dir.string());
    const std::vector<gpusim::FrameStats> cached = second.frameStats();
    ASSERT_EQ(cached.size(), truth.size());
    for (std::size_t f = 0; f < truth.size(); ++f) {
        EXPECT_EQ(cached[f].cycles, truth[f].cycles) << "frame " << f;
        EXPECT_EQ(cached[f].dramBytes, truth[f].dramBytes);
    }
    std::filesystem::remove_all(dir);
}

TEST(Sampling, FindsASampleSizeMatchingTheTargetError)
{
    // A noisy series: random sampling needs a reasonable fraction of
    // the frames to hit a tight error bound.
    std::vector<double> values(512);
    sim::Rng rng(11);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = 100.0 + rng.uniform() * 50.0;

    RandomSamplingConfig config;
    config.trials = 200;
    const std::size_t m = findMatchingSampleCount(values, 1.0, config);
    EXPECT_GE(m, 1u);
    EXPECT_LE(m, values.size());

    const std::size_t loose =
        findMatchingSampleCount(values, 10.0, config);
    EXPECT_LE(loose, m) << "looser bound needs no more samples";
}

TEST(Suite, PoolFeaturesPadsAndTracksProvenance)
{
    // Bench 0: 3 frames, 2 VS, 1 FS (4 cols). Bench 1: 2 frames,
    // 1 VS, 3 FS (5 cols). The pool pads both to 2 VS + 3 FS + PRIM.
    FeatureMatrix a(3, 2, 1);
    for (std::size_t f = 0; f < a.rows(); ++f)
        for (std::size_t d = 0; d < a.cols(); ++d)
            a.at(f, d) = 10.0 * static_cast<double>(f + 1) +
                         static_cast<double>(d);
    FeatureMatrix b(2, 1, 3);
    for (std::size_t f = 0; f < b.rows(); ++f)
        for (std::size_t d = 0; d < b.cols(); ++d)
            b.at(f, d) = 100.0 * static_cast<double>(f + 1) +
                         static_cast<double>(d);

    const PooledFeatures pooled = poolFeatures({&a, &b});
    ASSERT_EQ(pooled.features.rows(), 5u);
    EXPECT_EQ(pooled.features.vsDims(), 2u);
    EXPECT_EQ(pooled.features.fsDims(), 3u);
    ASSERT_EQ(pooled.features.cols(), 6u);
    ASSERT_EQ(pooled.numBenches(), 2u);
    EXPECT_EQ(pooled.firstRow, (std::vector<std::size_t>{0, 3}));
    EXPECT_EQ(pooled.frames, (std::vector<std::size_t>{3, 2}));
    EXPECT_EQ(pooled.bench,
              (std::vector<std::size_t>{0, 0, 0, 1, 1}));
    EXPECT_EQ(pooled.frame,
              (std::vector<std::size_t>{0, 1, 2, 0, 1}));

    // Bench 0 rows: VS cols verbatim, its one FS col first in the FS
    // group, FS padding zero, PRIM moved to the (shared) last column.
    for (std::size_t f = 0; f < 3; ++f) {
        EXPECT_DOUBLE_EQ(pooled.features.at(f, 0), a.at(f, 0));
        EXPECT_DOUBLE_EQ(pooled.features.at(f, 1), a.at(f, 1));
        EXPECT_DOUBLE_EQ(pooled.features.at(f, 2), a.at(f, 2));
        EXPECT_DOUBLE_EQ(pooled.features.at(f, 3), 0.0);
        EXPECT_DOUBLE_EQ(pooled.features.at(f, 4), 0.0);
        EXPECT_DOUBLE_EQ(pooled.features.at(f, 5), a.at(f, 3));
    }
    // Bench 1 rows: one VS col plus a zero pad, all three FS cols.
    for (std::size_t f = 0; f < 2; ++f) {
        EXPECT_DOUBLE_EQ(pooled.features.at(3 + f, 0), b.at(f, 0));
        EXPECT_DOUBLE_EQ(pooled.features.at(3 + f, 1), 0.0);
        EXPECT_DOUBLE_EQ(pooled.features.at(3 + f, 2), b.at(f, 1));
        EXPECT_DOUBLE_EQ(pooled.features.at(3 + f, 3), b.at(f, 2));
        EXPECT_DOUBLE_EQ(pooled.features.at(3 + f, 4), b.at(f, 3));
        EXPECT_DOUBLE_EQ(pooled.features.at(3 + f, 5), b.at(f, 4));
    }
}

TEST(Suite, GoldenTwoBenchFoldBackWeightsAndError)
{
    // Two 3-frame benchmarks pooled into 6 rows with a single active
    // feature column, clustered by a HAND-BUILT k-means result so
    // every representative and fold-back weight is checkable by hand.
    FeatureMatrix a(3, 1, 1);
    FeatureMatrix b(3, 1, 1);
    const double aVals[3] = {1.0, 2.0, 10.0};
    const double bVals[3] = {2.9, 10.5, 12.0};
    for (std::size_t f = 0; f < 3; ++f) {
        a.at(f, 0) = aVals[f];
        b.at(f, 0) = bVals[f];
    }
    const PooledFeatures pooled = poolFeatures({&a, &b});
    ASSERT_EQ(pooled.features.rows(), 6u);

    // Cluster 0 holds {1.0, 2.0, 2.9}, cluster 2 holds {10.0, 10.5,
    // 12.0}; cluster 1 is deliberately empty and must be skipped.
    KMeansResult clustering;
    clustering.k = 3;
    clustering.dims = pooled.features.cols();
    clustering.labels = {0, 0, 2, 0, 2, 2};
    clustering.sizes = {3, 0, 3};
    clustering.centroids.assign(3 * clustering.dims, 0.0);
    clustering.centroids[0 * clustering.dims] = 3.0;  // row 3 closest
    clustering.centroids[2 * clustering.dims] = 10.4; // row 4 closest

    const SuiteClustering suite =
        suiteFromClustering(pooled, pooled.features, clustering);
    ASSERT_EQ(suite.representatives.size(), 2u)
        << "the empty cluster must not elect a representative";

    // Representative 0: pooled row 3 = bench 1 frame 0, weight 3.
    EXPECT_EQ(suite.representatives[0].cluster, 0u);
    EXPECT_EQ(suite.representatives[0].bench, 1u);
    EXPECT_EQ(suite.representatives[0].frame, 0u);
    EXPECT_DOUBLE_EQ(suite.representatives[0].weight, 3.0);
    // Representative 1: pooled row 4 = bench 1 frame 1, weight 3.
    EXPECT_EQ(suite.representatives[1].cluster, 2u);
    EXPECT_EQ(suite.representatives[1].bench, 1u);
    EXPECT_EQ(suite.representatives[1].frame, 1u);
    EXPECT_DOUBLE_EQ(suite.representatives[1].weight, 3.0);

    // Fold-back weights: bench 0 has 2 frames in cluster 0 and 1 in
    // cluster 2; bench 1 the mirror image. Rows sum to the bench's
    // frame count, columns to the representative's weight.
    ASSERT_EQ(suite.memberCounts.size(), 2u);
    EXPECT_EQ(suite.memberCounts[0],
              (std::vector<double>{2.0, 1.0}));
    EXPECT_EQ(suite.memberCounts[1],
              (std::vector<double>{1.0, 2.0}));

    // Hand-computed fold-back error. Bench 0 truth {100, 110, 200}
    // (total 410), bench 1 truth {95, 210, 205}. Representative
    // timing values are bench 1 frames 0 and 1: {95, 210}.
    const std::vector<double> repValues = {95.0, 210.0};
    // Bench 0 estimate: 2*95 + 1*210 = 400 -> |400-410|/410 %.
    EXPECT_DOUBLE_EQ(
        foldBackErrorPercent(suite.memberCounts[0], repValues, 410.0),
        10.0 / 410.0 * 100.0);
    // Bench 1 estimate: 1*95 + 2*210 = 515 -> |515-510|/510 %.
    EXPECT_DOUBLE_EQ(
        foldBackErrorPercent(suite.memberCounts[1], repValues, 510.0),
        5.0 / 510.0 * 100.0);
    // An all-zero truth series folds to zero error by definition.
    EXPECT_DOUBLE_EQ(
        foldBackErrorPercent(suite.memberCounts[0], repValues, 0.0),
        0.0);
}

TEST(Suite, ClusterSuitePipelineElectsProvenancedRepresentatives)
{
    // End-to-end over the real pipeline stages (normalize, pool,
    // project, BIC-select): every representative must carry valid
    // provenance and the fold-back weights must partition each
    // benchmark's frames.
    std::vector<FeatureMatrix> normalized;
    std::vector<const FeatureMatrix *> ptrs;
    for (const char *alias : {"hcr", "jjo"}) {
        const gfx::SceneTrace scene =
            workloads::buildBenchmark(alias, 1.0, 8);
        gpusim::SceneBinding binding(scene);
        gpusim::FunctionalSimulator functional(
            gpusim::GpuConfig::evaluationScaled(), binding);
        std::vector<gpusim::FrameActivity> activities;
        for (const gfx::FrameTrace &frame : scene.frames)
            activities.push_back(functional.simulate(frame));
        FeatureMatrix m = buildFeatureMatrix(activities, scene);
        normalize(m, NormalizationScheme::GroupSumWeights,
                  GroupWeights{});
        normalized.push_back(std::move(m));
    }
    for (const FeatureMatrix &m : normalized)
        ptrs.push_back(&m);

    const PooledFeatures pooled = poolFeatures(ptrs);
    ASSERT_EQ(pooled.features.rows(), 16u);
    const SuiteClustering suite =
        clusterSuite(pooled, MegsimConfig{});
    ASSERT_GE(suite.representatives.size(), 1u);
    ASSERT_LT(suite.representatives.size(), 16u);

    double totalWeight = 0.0;
    for (const SuiteRepresentative &rep : suite.representatives) {
        ASSERT_LT(rep.bench, 2u);
        ASSERT_LT(rep.frame, pooled.frames[rep.bench]);
        totalWeight += rep.weight;
    }
    EXPECT_DOUBLE_EQ(totalWeight, 16.0);
    for (std::size_t b = 0; b < 2; ++b) {
        double benchFrames = 0.0;
        for (double count : suite.memberCounts[b])
            benchFrames += count;
        EXPECT_DOUBLE_EQ(benchFrames, 8.0) << "bench " << b;
    }
}

TEST(Data, CachePathSurvivesLongSceneNames)
{
    // The cache path used to be composed into a fixed 160-byte
    // buffer; a long scene name silently truncated the key suffix.
    gfx::SceneTrace scene = workloads::buildBenchmark("hcr", 1.0, 2);
    scene.name = std::string(200, 'x');
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();
    BenchmarkData data(scene, config, "out/cache");

    const std::string stats = data.cachePath("stats");
    const std::string activity = data.cachePath("activity");
    EXPECT_NE(stats, activity);
    EXPECT_NE(stats.find(scene.name), std::string::npos);
    EXPECT_EQ(stats.substr(stats.size() - 10), "_stats.csv");

    // The 16-hex fingerprint key sits intact before the kind suffix.
    char keyHex[24];
    std::snprintf(keyHex, sizeof(keyHex), "%016llx",
                  static_cast<unsigned long long>(data.cacheKey()));
    EXPECT_NE(stats.find(std::string("_") + keyHex + "_stats.csv"),
              std::string::npos);
}
