/**
 * @file
 * End-to-end test for `megsim-cli campaign`. The harness passes the
 * built binary's path as argv[1] (see tests/CMakeLists.txt). Covers
 * the report artifact, the --check gate, the run ledger, report
 * diffing, and the CLI's distinct exit codes: 0 ok, 3 load failure,
 * 4 cache verification failure, 5 threshold breach, 6 report diff
 * mismatch, 7 invalid ledger.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

std::string cliPath;

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::filesystem::path
tempDir()
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "megsim_campaign_cli_test";
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * Run the CLI with @p args under a bounded frame limit and a cache
 * dir inside the scratch dir; returns the CLI's exit code. @p extraEnv
 * is prepended as additional VAR=VALUE assignments.
 */
int
runCli(const std::string &args, const std::filesystem::path &log,
       const std::string &extraEnv = "")
{
    const std::string cmd =
        extraEnv + (extraEnv.empty() ? "" : " ") +
        "MEGSIM_FRAME_LIMIT=6 MEGSIM_CACHE_DIR=" +
        (tempDir() / "cache").string() + " " + cliPath + " " + args +
        " > " + log.string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

TEST(CampaignCli, WritesVersionedReportAndExitsZero)
{
    ASSERT_FALSE(cliPath.empty()) << "pass megsim-cli path as argv[1]";
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path json = dir / "campaign.json";
    const std::filesystem::path log = dir / "run.log";

    const int rc = runCli(
        "campaign --benches hcr,jjo --out " + json.string(), log);
    ASSERT_EQ(rc, 0) << slurp(log);

    const std::string text = slurp(json);
    ASSERT_FALSE(text.empty());
    EXPECT_NE(text.find("\"schema\": \"megsim-campaign-v2\""),
              std::string::npos);
    EXPECT_NE(text.find("\"alias\": \"hcr\""), std::string::npos);
    EXPECT_NE(text.find("\"alias\": \"jjo\""), std::string::npos);
    EXPECT_NE(text.find("\"pool_utilization\""), std::string::npos);
    EXPECT_NE(slurp(log).find("report: "), std::string::npos);
}

TEST(CampaignCli, CheckGatePassesPermissiveThresholds)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path limits = dir / "permissive.json";
    std::ofstream(limits)
        << "{\"schema\": \"megsim-thresholds-v1\",\n"
           " \"max_error_percent\": {\"cycles\": 100.0}}\n";

    const std::filesystem::path log = dir / "pass.log";
    const int rc = runCli("campaign --benches hcr --out " +
                              (dir / "p.json").string() + " --check " +
                              limits.string(),
                          log);
    EXPECT_EQ(rc, 0) << slurp(log);
    EXPECT_NE(slurp(log).find("threshold check passed"),
              std::string::npos);
}

TEST(CampaignCli, ThresholdBreachExitsFive)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path limits = dir / "strict.json";
    std::ofstream(limits)
        << "{\"schema\": \"megsim-thresholds-v1\",\n"
           " \"min_reduction\": 1000000.0}\n";

    const std::filesystem::path log = dir / "breach.log";
    const int rc = runCli("campaign --benches hcr --out " +
                              (dir / "b.json").string() + " --check " +
                              limits.string(),
                          log);
    EXPECT_EQ(rc, 5) << slurp(log);
    EXPECT_NE(slurp(log).find("threshold check FAILED"),
              std::string::npos);
}

TEST(CampaignCli, UnknownBenchmarkExitsThree)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path log = dir / "unknown.log";
    const int rc = runCli("campaign --benches nosuchbench", log);
    EXPECT_EQ(rc, 3) << slurp(log);
}

TEST(CampaignCli, MissingThresholdsFileExitsThreeBeforeRunning)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path log = dir / "badcheck.log";
    const int rc = runCli(
        "campaign --benches hcr --check /nonexistent/limits.json",
        log);
    EXPECT_EQ(rc, 3) << slurp(log);
    // The failing path is named, and the campaign never started.
    EXPECT_NE(slurp(log).find("/nonexistent/limits.json"),
              std::string::npos);
}

TEST(CampaignCli, CorruptCacheFailsVerifyWithExitFour)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path cache = dir / "cache";
    const std::filesystem::path log = dir / "verify.log";

    // Populate the cache, then damage every stats artifact in it.
    ASSERT_EQ(runCli("campaign --benches hcr --out " +
                         (dir / "v.json").string(),
                     log),
              0)
        << slurp(log);
    ASSERT_TRUE(std::filesystem::exists(cache));
    bool corrupted = false;
    for (const auto &entry :
         std::filesystem::directory_iterator(cache)) {
        const std::string name = entry.path().filename().string();
        if (name.find("stats") == std::string::npos ||
            name.find(".csv") == std::string::npos)
            continue;
        std::fstream f(entry.path(), std::ios::in | std::ios::out);
        f.seekp(0);
        f << "CORRUPTED";
        corrupted = true;
    }
    ASSERT_TRUE(corrupted) << "no stats cache artifacts found";

    const int rc = runCli("verify-cache --bench hcr --cache-dir " +
                              cache.string(),
                          log);
    EXPECT_EQ(rc, 4) << slurp(log);
    EXPECT_NE(slurp(log).find("CORRUPT"), std::string::npos);
}

TEST(CampaignCli, WritesValidRunLedgerNextToReport)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path json = dir / "ledgered.json";
    const std::filesystem::path ledger = dir / "ledgered.run.jsonl";
    const std::filesystem::path log = dir / "ledger.log";

    ASSERT_EQ(runCli("campaign --benches hcr --out " + json.string(),
                     log),
              0)
        << slurp(log);
    ASSERT_TRUE(std::filesystem::exists(ledger))
        << "default ledger path derives from --out";
    const std::string text = slurp(ledger);
    EXPECT_NE(text.find("\"schema\":\"megsim-run-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"run_start\""), std::string::npos);
    EXPECT_NE(text.find("\"event\":\"run_end\""), std::string::npos);

    // The strict validator accepts what the campaign just wrote.
    EXPECT_EQ(runCli("ledger --validate " + ledger.string(), log), 0)
        << slurp(log);
    EXPECT_NE(slurp(log).find("ledger ok"), std::string::npos);
}

TEST(CampaignCli, CorruptLedgerFailsValidationWithExitSeven)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path ledger = dir / "corrupt.run.jsonl";
    const std::filesystem::path log = dir / "corrupt.log";

    ASSERT_EQ(runCli("campaign --benches hcr --out " +
                         (dir / "corrupt.json").string() +
                         " --ledger " + ledger.string(),
                     log),
              0)
        << slurp(log);
    // Smuggle an undeclared field into an otherwise valid stream.
    std::ofstream(ledger, std::ios::app)
        << "{\"schema\":\"megsim-run-v1\",\"seq\":99,"
           "\"event\":\"cache\",\"t\":0.0,\"bench\":\"hcr\","
           "\"status\":\"hot\",\"resumed_frames\":0,"
           "\"drive_by\":1}\n";

    EXPECT_EQ(runCli("ledger --validate " + ledger.string(), log), 7)
        << slurp(log);
    EXPECT_NE(slurp(log).find("drive_by"), std::string::npos);
}

TEST(CampaignCli, DiffToleratesThreadCountAndHostClock)
{
    // The acceptance criterion for the telemetry PR: simulated output
    // is bit-identical across MEGSIM_THREADS, so reports from runs at
    // different thread counts diff clean modulo the documented
    // host-side fields (wall seconds, pool utilization, threads,
    // cache status).
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path a = dir / "t1.json";
    const std::filesystem::path b = dir / "t4.json";
    const std::filesystem::path log = dir / "diff.log";

    ASSERT_EQ(runCli("campaign --benches hcr,jjo --threads 1 --out " +
                         a.string(),
                     log),
              0)
        << slurp(log);
    ASSERT_EQ(runCli("campaign --benches hcr,jjo --threads 4 --out " +
                         b.string(),
                     log),
              0)
        << slurp(log);

    const int rc = runCli(
        "campaign --diff " + a.string() + " " + b.string(), log);
    EXPECT_EQ(rc, 0) << slurp(log);
    EXPECT_NE(slurp(log).find("reports match"), std::string::npos);
}

TEST(CampaignCli, DiffOfDifferentReportsExitsSix)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path a = dir / "set_a.json";
    const std::filesystem::path b = dir / "set_b.json";
    const std::filesystem::path log = dir / "diff6.log";

    ASSERT_EQ(runCli("campaign --benches hcr --out " + a.string(),
                     log),
              0)
        << slurp(log);
    ASSERT_EQ(runCli("campaign --benches hcr,jjo --out " + b.string(),
                     log),
              0)
        << slurp(log);

    const int rc = runCli(
        "campaign --diff " + a.string() + " " + b.string(), log);
    EXPECT_EQ(rc, 6) << slurp(log);
}

int
main(int argc, char **argv)
{
    if (argc > 1 && argv[1][0] != '-') {
        cliPath = argv[1];
        // Hide the extra argument from gtest's flag parser.
        for (int i = 1; i + 1 < argc; ++i)
            argv[i] = argv[i + 1];
        --argc;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

TEST(CampaignCli, FastMemReportsFastModeWithAuditColumn)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path json = dir / "fast.json";
    const std::filesystem::path log = dir / "fast.log";

    // Audit every frame and calibrate on a short prefix so the tiny
    // 6-frame run both models walks and measures its error.
    const int rc = runCli("campaign --benches hcr --fast-mem --out " +
                              json.string() +
                              " --ledger " + (dir / "f.jsonl").string(),
                          log, "MEGSIM_FAST_MEM_AUDIT=1"
                               " MEGSIM_FAST_MEM_CALIB=64"
                               " MEGSIM_FAST_MEM_PROBE=16");
    ASSERT_EQ(rc, 0) << slurp(log);

    const std::string text = slurp(json);
    EXPECT_NE(text.find("\"mem_mode\": \"fast\""), std::string::npos);
    EXPECT_NE(text.find("\"exact_vs_fast\""), std::string::npos);
    EXPECT_NE(text.find("\"audited_frames\""), std::string::npos);
    EXPECT_NE(slurp(log).find("exact_vs_fast"), std::string::npos);

    // The ledger stays schema-valid with the new bench fields.
    const std::filesystem::path vlog = dir / "validate.log";
    EXPECT_EQ(runCli("ledger --validate " + (dir / "f.jsonl").string(),
                     vlog),
              0)
        << slurp(vlog);
}

TEST(CampaignCli, FastMemRefusesSupervisedWorkers)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path log = dir / "refuse.log";
    const int rc = runCli("campaign --benches hcr --fast-mem"
                          " --workers 2 --out " +
                              (dir / "r.json").string(),
                          log);
    EXPECT_EQ(rc, 2) << slurp(log);
    EXPECT_NE(slurp(log).find("incompatible with --workers"),
              std::string::npos);
}

TEST(CampaignCli, ExactVsFastBreachExitsFive)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path limits = dir / "audit-limits.json";
    // An impossible model-accuracy demand: any measured error breaches.
    std::ofstream(limits)
        << "{\"schema\": \"megsim-thresholds-v1\",\n"
           " \"max_exact_vs_fast_percent\": {\"cycles\": 0.0}}\n";

    const std::filesystem::path log = dir / "breach.log";
    const int rc = runCli("campaign --benches hcr --fast-mem --out " +
                              (dir / "b.json").string() + " --check " +
                              limits.string(),
                          log, "MEGSIM_FAST_MEM_AUDIT=1"
                               " MEGSIM_FAST_MEM_CALIB=64"
                               " MEGSIM_FAST_MEM_PROBE=16");
    EXPECT_EQ(rc, 5) << slurp(log);
    EXPECT_NE(slurp(log).find("exact-vs-fast"), std::string::npos);
}

TEST(CampaignCli, StrictPerfRegressionExitsTen)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path base = dir / "perf-base.json";
    const std::filesystem::path out = dir / "perf-out.json";

    // Real run first, then gate a doctored baseline against it.
    const std::filesystem::path log = dir / "perf.log";
    ASSERT_EQ(runCli("perf --benches hcr --frames 2 --out " +
                         base.string(),
                     log),
              0)
        << slurp(log);

    // Inflate the baseline's throughput 100x: the fresh run must look
    // like a >band regression and --strict must exit 10.
    std::string text = slurp(base);
    for (const char *field :
         {"\"frames_per_sec\": ", "\"mcycles_per_sec\": "}) {
        for (std::size_t pos = text.find(field);
             pos != std::string::npos;
             pos = text.find(field, pos + 1)) {
            text.insert(pos + std::strlen(field), "99999");
        }
    }
    std::ofstream(base, std::ios::trunc) << text;

    const std::filesystem::path slog = dir / "strict.log";
    EXPECT_EQ(runCli("perf --benches hcr --frames 2 --out " +
                         out.string() + " --compare " + base.string() +
                         " --strict",
                     slog),
              10)
        << slurp(slog);
    EXPECT_NE(slurp(slog).find("regression beyond"),
              std::string::npos);

    // Warn-only without --strict: same comparison, exit 0.
    const std::filesystem::path wlog = dir / "warn.log";
    EXPECT_EQ(runCli("perf --benches hcr --frames 2 --out " +
                         out.string() + " --compare " + base.string(),
                     wlog),
              0)
        << slurp(wlog);

    // An improvement beyond the band (baseline deflated instead)
    // passes strict but prints the baseline-refresh instruction. The
    // loader recomputes the suite rate from per-bench wall_seconds,
    // so those get inflated alongside deflating the stored rates.
    std::string deflated = slurp(out);
    auto replaceValues = [&deflated](const char *field,
                                     const char *value) {
        for (std::size_t pos = deflated.find(field);
             pos != std::string::npos;
             pos = deflated.find(field, pos + 1)) {
            const std::size_t begin = pos + std::strlen(field);
            std::size_t end = begin;
            while (end < deflated.size() && deflated[end] != ',' &&
                   deflated[end] != '\n')
                ++end;
            deflated.replace(begin, end - begin, value);
        }
    };
    replaceValues("\"frames_per_sec\": ", "0.001");
    replaceValues("\"mcycles_per_sec\": ", "0.001");
    replaceValues("\"wall_seconds\": ", "99999.0");
    std::ofstream(base, std::ios::trunc) << deflated;
    const std::filesystem::path ilog = dir / "improve.log";
    EXPECT_EQ(runCli("perf --benches hcr --frames 2 --out " +
                         out.string() + " --compare " + base.string() +
                         " --strict",
                     ilog),
              0)
        << slurp(ilog);
    EXPECT_NE(slurp(ilog).find("refresh the committed baseline"),
              std::string::npos);
}

TEST(CampaignCli, SuiteClusterWritesV3ReportAndValidLedger)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path json = dir / "suite.json";
    const std::filesystem::path ledger = dir / "suite.run.jsonl";
    const std::filesystem::path log = dir / "suite.log";

    const int rc = runCli("campaign --benches hcr,jjo --suite-cluster"
                          " --out " + json.string() +
                          " --ledger " + ledger.string(),
                          log);
    ASSERT_EQ(rc, 0) << slurp(log);

    const std::string text = slurp(json);
    EXPECT_NE(text.find("\"schema\": \"megsim-campaign-v3\""),
              std::string::npos);
    EXPECT_NE(text.find("\"suite_cluster\": true"), std::string::npos);
    EXPECT_NE(text.find("\"borrowed_reps\""), std::string::npos);
    EXPECT_NE(text.find("\"shared_representatives\""),
              std::string::npos);
    EXPECT_NE(text.find("\"per_bench_representatives\""),
              std::string::npos);
    EXPECT_NE(text.find("\"suite_reduction_factor\""),
              std::string::npos);
    EXPECT_NE(slurp(log).find("suite-cluster:"), std::string::npos);

    // The strict ledger schema accepts the new trajectory-mode field.
    EXPECT_EQ(runCli("ledger --validate " + ledger.string(), log), 0)
        << slurp(log);
    EXPECT_NE(slurp(ledger).find("\"mode\":\"suite-cluster\""),
              std::string::npos);

    // perf --history folds the run_start mode into its mode column.
    const std::filesystem::path hlog = dir / "history.log";
    EXPECT_EQ(runCli("perf --history " + dir.string(), hlog), 0)
        << slurp(hlog);
    EXPECT_NE(slurp(hlog).find("mode"), std::string::npos);
    EXPECT_NE(slurp(hlog).find("suite-cluster"), std::string::npos);

    // The MEGSIM_SUITE_CLUSTER env var is the flag's cron-job twin.
    const std::filesystem::path envJson = dir / "suite-env.json";
    ASSERT_EQ(runCli("campaign --benches hcr,jjo --out " +
                         envJson.string(),
                     log, "MEGSIM_SUITE_CLUSTER=1"),
              0)
        << slurp(log);
    EXPECT_NE(slurp(envJson).find("\"schema\": \"megsim-campaign-v3\""),
              std::string::npos);
}

TEST(CampaignCli, DiffRefusesMixedSchemasWithExitTwo)
{
    // A per-bench (v2) and a suite-cluster (v3) report are different
    // trajectories: --diff must refuse with a schema-mismatch usage
    // error, NOT report a content mismatch (exit 6).
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path perBench = dir / "pb.json";
    const std::filesystem::path suite = dir / "sc.json";
    const std::filesystem::path log = dir / "mixed.log";

    ASSERT_EQ(runCli("campaign --benches hcr --out " +
                         perBench.string(),
                     log),
              0)
        << slurp(log);
    ASSERT_EQ(runCli("campaign --benches hcr --suite-cluster --out " +
                         suite.string(),
                     log),
              0)
        << slurp(log);

    const int rc = runCli("campaign --diff " + perBench.string() +
                              " " + suite.string(),
                          log);
    EXPECT_EQ(rc, 2) << slurp(log);
    const std::string text = slurp(log);
    EXPECT_NE(text.find("schema mismatch"), std::string::npos);
    EXPECT_NE(text.find("megsim-campaign-v2"), std::string::npos);
    EXPECT_NE(text.find("megsim-campaign-v3"), std::string::npos);
}

TEST(CampaignCli, StrictRefusesCrossModeComparison)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path base = dir / "exact-base.json";
    const std::filesystem::path log = dir / "mode.log";
    ASSERT_EQ(runCli("perf --benches hcr --frames 2 --out " +
                         base.string(),
                     log),
              0)
        << slurp(log);

    const std::filesystem::path slog = dir / "cross.log";
    EXPECT_EQ(runCli("perf --benches hcr --frames 2 --fast-mem"
                     " --out " +
                         (dir / "fast-out.json").string() +
                         " --compare " + base.string() + " --strict",
                     slog),
              2)
        << slurp(slog);
    EXPECT_NE(slurp(slog).find("mem_mode"), std::string::npos);
}
