/**
 * @file
 * Tests for the batch campaign runner: report schema round-trips,
 * threshold gating, bit-identical equivalence with sequential
 * single-benchmark runs at several thread counts, async regeneration
 * of corrupted caches, and SIGKILL-resume of a mid-flight campaign.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "batch/campaign.hh"
#include "batch/report.hh"
#include "core/megsim.hh"
#include "exec/pool.hh"
#include "resilience/fault.hh"
#include "util/json.hh"
#include "workloads/workloads.hh"

using namespace msim;

namespace
{

/** Scratch dir per test; threads and faults restored on both ends. */
class BatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resilience::FaultInjector::setGlobalSpec("");
        saved_ = exec::Pool::configuredThreads();
        dir_ = std::filesystem::temp_directory_path() /
               ("megsim_batch_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        resilience::FaultInjector::setGlobalSpec("");
        exec::Pool::setConfiguredThreads(saved_);
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
    std::size_t saved_ = 1;
};

/** The three-benchmark sub-suite the equivalence tests use. */
const std::vector<std::string> kSuite = {"hcr", "jjo", "spd"};
constexpr std::size_t kFrames = 12;

batch::CampaignConfig
testConfig(const std::string &cacheDir,
           const std::vector<std::string> &benches = kSuite)
{
    batch::CampaignConfig config;
    config.benches = benches;
    config.cacheDir = cacheDir;
    config.frameLimit = kFrames;
    config.megsim.selector.kmeans.seed = 0x4d4547;
    return config;
}

/**
 * What a single-benchmark driver computes: load one benchmark, run
 * the pipeline at the top level, read off the row the campaign
 * report would carry.
 */
batch::BenchmarkReport
sequentialRow(const std::string &alias)
{
    const gfx::SceneTrace scene =
        workloads::buildBenchmark(alias, 1.0, kFrames);
    megsim::BenchmarkData data(
        scene, gpusim::GpuConfig::evaluationScaled(), "");
    megsim::MegsimConfig mc;
    mc.selector.kmeans.seed = 0x4d4547;
    megsim::MegsimPipeline pipeline(data, mc);
    const megsim::MegsimRun run = pipeline.run();

    batch::BenchmarkReport row;
    row.alias = alias;
    row.frames = run.numFrames;
    row.chosenK = run.selection.chosen().k;
    row.representatives = run.numRepresentatives();
    row.reduction = run.reductionFactor();
    for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
        row.errorPercent[m] =
            pipeline.errorPercent(run, batch::kMetrics[m]);
    return row;
}

void
expectSameNumbers(const batch::BenchmarkReport &a,
                  const batch::BenchmarkReport &b,
                  const std::string &context)
{
    EXPECT_EQ(a.alias, b.alias) << context;
    EXPECT_EQ(a.frames, b.frames) << context;
    EXPECT_EQ(a.chosenK, b.chosenK) << context;
    EXPECT_EQ(a.representatives, b.representatives) << context;
    EXPECT_EQ(a.reduction, b.reduction) << context;
    for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
        EXPECT_EQ(a.errorPercent[m], b.errorPercent[m])
            << context << " metric " << batch::kMetricKeys[m];
}

/**
 * The campaign report with every timing-dependent field zeroed: wall
 * clocks and pool utilization legitimately vary run to run (and the
 * thread count is the variable under test), so the canonical form
 * keeps only the deterministic payload the golden comparison guards.
 */
std::string
canonicalReport(batch::CampaignReport report)
{
    report.threads = 0;
    report.wallSeconds = 0.0;
    report.poolUtilization = 0.0;
    for (batch::BenchmarkReport &b : report.benchmarks)
        b.wallSeconds = 0.0;
    return report.toJson().dump() + "\n";
}

} // namespace

TEST_F(BatchTest, ReportJsonRoundTripsBitForBit)
{
    batch::CampaignReport report;
    report.threads = 7;
    for (std::size_t i = 0; i < 3; ++i) {
        batch::BenchmarkReport b;
        b.alias = "b" + std::to_string(i);
        b.frames = 240 + i;
        b.resumedFrames = i;
        b.chosenK = 5 + i;
        b.representatives = 6 + i;
        b.reduction = 240.0 / (6.0 + static_cast<double>(i));
        for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
            b.errorPercent[m] =
                1.0 / 3.0 + static_cast<double>(i * m) * 1e-17;
        b.wallSeconds = 0.1234567890123456789 * (1.0 + i);
        b.cacheStatus = i == 0 ? "fresh" : "rebuilt";
        report.benchmarks.push_back(b);
    }
    report.computeAggregates();
    report.wallSeconds = 12.75;
    report.poolUtilization = 2.0 / 3.0;

    ASSERT_TRUE(report.save(path("r.json")).ok());
    auto loaded = batch::CampaignReport::load(path("r.json"));
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;

    EXPECT_EQ(loaded->threads, report.threads);
    EXPECT_EQ(loaded->wallSeconds, report.wallSeconds);
    EXPECT_EQ(loaded->poolUtilization, report.poolUtilization);
    EXPECT_EQ(loaded->totalFrames, report.totalFrames);
    EXPECT_EQ(loaded->totalRepresentatives,
              report.totalRepresentatives);
    EXPECT_EQ(loaded->meanReduction, report.meanReduction);
    EXPECT_EQ(loaded->suiteReduction, report.suiteReduction);
    for (std::size_t m = 0; m < batch::kNumMetrics; ++m) {
        EXPECT_EQ(loaded->meanErrorPercent[m],
                  report.meanErrorPercent[m]);
        EXPECT_EQ(loaded->maxErrorPercent[m],
                  report.maxErrorPercent[m]);
    }
    ASSERT_EQ(loaded->benchmarks.size(), report.benchmarks.size());
    for (std::size_t i = 0; i < report.benchmarks.size(); ++i) {
        expectSameNumbers(loaded->benchmarks[i], report.benchmarks[i],
                          "row " + std::to_string(i));
        EXPECT_EQ(loaded->benchmarks[i].resumedFrames,
                  report.benchmarks[i].resumedFrames);
        EXPECT_EQ(loaded->benchmarks[i].wallSeconds,
                  report.benchmarks[i].wallSeconds);
        EXPECT_EQ(loaded->benchmarks[i].cacheStatus,
                  report.benchmarks[i].cacheStatus);
    }

    // A report written by a future incompatible schema must refuse to
    // parse rather than silently mis-gate.
    std::ofstream(path("bogus.json"))
        << "{\"schema\": \"megsim-campaign-v999\"}";
    auto bogus = batch::CampaignReport::load(path("bogus.json"));
    ASSERT_FALSE(bogus.ok());
    EXPECT_EQ(bogus.error().code, resilience::Errc::BadVersion);
}

TEST_F(BatchTest, JsonParserRejectsMalformedInput)
{
    EXPECT_TRUE(util::Json::parse("{\"a\": [1, 2.5, null]}").ok());
    EXPECT_FALSE(util::Json::parse("{\"a\": }").ok());
    EXPECT_FALSE(util::Json::parse("{\"a\": 1} trailing").ok());
    EXPECT_FALSE(util::Json::parse("{\"a\": \"\\q\"}").ok());
    EXPECT_FALSE(util::Json::parse("").ok());
}

TEST_F(BatchTest, ThresholdCheckFlagsEveryBreachedLimit)
{
    batch::CampaignReport report;
    batch::BenchmarkReport b;
    b.alias = "hcr";
    b.frames = 100;
    b.chosenK = 10;
    b.representatives = 10;
    b.reduction = 10.0;
    b.errorPercent[0] = 2.5; // cycles
    report.benchmarks.push_back(b);
    report.computeAggregates();

    batch::Thresholds permissive;
    EXPECT_TRUE(batch::checkThresholds(report, permissive).empty());

    batch::Thresholds strict;
    strict.maxErrorPercent[0] = 1.0;
    strict.minReduction = 20.0;
    strict.minMeanReduction = 20.0;
    const std::vector<std::string> violations =
        batch::checkThresholds(report, strict);
    ASSERT_EQ(violations.size(), 3u);
    EXPECT_NE(violations[0].find("hcr"), std::string::npos);
    EXPECT_NE(violations[0].find("cycles"), std::string::npos);

    // Thresholds refuse a mismatched schema too.
    std::ofstream(path("t.json")) << "{\"schema\": \"nope\"}";
    auto bad = batch::Thresholds::load(path("t.json"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, resilience::Errc::BadVersion);
}

TEST_F(BatchTest, CampaignMatchesSequentialRunsAtEveryThreadCount)
{
    exec::Pool::setConfiguredThreads(1);
    std::vector<batch::BenchmarkReport> reference;
    for (const std::string &alias : kSuite)
        reference.push_back(sequentialRow(alias));

    for (std::size_t threads : {std::size_t(1), std::size_t(2),
                                std::size_t(8)}) {
        exec::Pool::setConfiguredThreads(threads);
        const std::string cache =
            path("cache_t" + std::to_string(threads));
        std::filesystem::create_directories(cache);
        batch::Campaign campaign(testConfig(cache));
        auto report = campaign.run();
        ASSERT_TRUE(report.ok()) << report.error().message;
        ASSERT_EQ(report->benchmarks.size(), kSuite.size());
        EXPECT_EQ(report->threads, threads);
        for (std::size_t i = 0; i < kSuite.size(); ++i)
            expectSameNumbers(report->benchmarks[i], reference[i],
                              std::to_string(threads) + " threads");
    }
}

TEST_F(BatchTest, CorruptedCacheRegeneratesToTheSameReport)
{
    exec::Pool::setConfiguredThreads(4);
    const std::string cache = path("cache");
    std::filesystem::create_directories(cache);

    batch::Campaign first(testConfig(cache));
    auto before = first.run();
    ASSERT_TRUE(before.ok()) << before.error().message;
    for (const batch::BenchmarkReport &b : before->benchmarks)
        EXPECT_EQ(b.cacheStatus, "built") << b.alias;

    // Flip bytes in jjo's stats cache: the checksum check must
    // classify it Invalid and the campaign must rebuild it on pool
    // workers while hcr and spd analyze from their fresh caches.
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("jjo", 1.0, kFrames);
    megsim::BenchmarkData probe(
        scene, gpusim::GpuConfig::evaluationScaled(), cache);
    const std::string victim = probe.cachePath("stats");
    ASSERT_TRUE(std::filesystem::exists(victim));
    {
        std::fstream f(victim, std::ios::in | std::ios::out);
        f.seekp(40);
        f << "XXXXXXXX";
    }

    batch::Campaign second(testConfig(cache));
    auto after = second.run();
    ASSERT_TRUE(after.ok()) << after.error().message;
    ASSERT_EQ(after->benchmarks.size(), kSuite.size());
    EXPECT_EQ(after->benchmarks[0].cacheStatus, "fresh");
    EXPECT_EQ(after->benchmarks[1].cacheStatus, "rebuilt");
    EXPECT_EQ(after->benchmarks[2].cacheStatus, "fresh");
    for (std::size_t i = 0; i < kSuite.size(); ++i)
        expectSameNumbers(after->benchmarks[i],
                          before->benchmarks[i], "after corruption");
}

TEST_F(BatchTest, SigkilledCampaignResumesFromTheJournal)
{
    const std::vector<std::string> benches = {"hcr", "jjo"};
    const std::string cache = path("cache");
    std::filesystem::create_directories(cache);

    // Uninterrupted reference in a separate cache dir.
    exec::Pool::setConfiguredThreads(2);
    batch::Campaign ref(testConfig(path("ref_cache"), benches));
    std::filesystem::create_directories(path("ref_cache"));
    auto expected = ref.run();
    ASSERT_TRUE(expected.ok()) << expected.error().message;

    // Child: die by SIGKILL right after hcr's frame 2 is journaled.
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        exec::Pool::setConfiguredThreads(2);
        resilience::FaultInjector::setGlobalSpec("run.kill:frame=2");
        batch::Campaign doomed(testConfig(cache, benches));
        (void)doomed.run();
        _exit(42); // unreachable: the fault fires first
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Resume: hcr picks up its three journaled frames, everything
    // else regenerates, and the report matches the clean run.
    exec::Pool::setConfiguredThreads(2);
    batch::Campaign survivor(testConfig(cache, benches));
    auto resumed = survivor.run();
    ASSERT_TRUE(resumed.ok()) << resumed.error().message;
    ASSERT_EQ(resumed->benchmarks.size(), benches.size());
    EXPECT_EQ(resumed->benchmarks[0].resumedFrames, 3u);
    for (std::size_t i = 0; i < benches.size(); ++i)
        expectSameNumbers(resumed->benchmarks[i],
                          expected->benchmarks[i], "resumed");
}

TEST_F(BatchTest, CampaignSurvivesKillInTheCacheStoreWindow)
{
    // Regression for the discard-ordering fix at campaign level: a
    // kill landing between a benchmark's cache store and its journal
    // discard must not leak work — the rerun completes and reproduces
    // the clean run's numbers exactly.
    const std::vector<std::string> benches = {"hcr", "jjo"};
    const std::string cache = path("cache");
    std::filesystem::create_directories(cache);

    exec::Pool::setConfiguredThreads(2);
    batch::Campaign ref(testConfig(path("ref_cache"), benches));
    std::filesystem::create_directories(path("ref_cache"));
    auto expected = ref.run();
    ASSERT_TRUE(expected.ok()) << expected.error().message;

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        exec::Pool::setConfiguredThreads(2);
        resilience::FaultInjector::setGlobalSpec(
            "run.kill:site=cache.store");
        batch::Campaign doomed(testConfig(cache, benches));
        (void)doomed.run();
        _exit(42); // unreachable: the first cache store kills us
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    exec::Pool::setConfiguredThreads(2);
    batch::Campaign survivor(testConfig(cache, benches));
    auto resumed = survivor.run();
    ASSERT_TRUE(resumed.ok()) << resumed.error().message;
    ASSERT_EQ(resumed->benchmarks.size(), benches.size());
    for (std::size_t i = 0; i < benches.size(); ++i)
        expectSameNumbers(resumed->benchmarks[i],
                          expected->benchmarks[i], "store-window");
}

#ifndef MEGSIM_BATCH_GOLDEN_DIR
#error "MEGSIM_BATCH_GOLDEN_DIR must point at tests/batch/golden"
#endif

TEST_F(BatchTest, CanonicalReportMatchesGoldenAtEveryThreadCount)
{
    // Golden stats-invariance gate for the hot-path optimization work:
    // the canonical campaign report (timing fields zeroed) is committed
    // under tests/batch/golden and every run must reproduce it
    // byte-for-byte at 1, 2 and 8 threads. Regenerate only after an
    // intentional model change, with MEGSIM_REGEN_GOLDEN=1.
    const std::string golden =
        std::string(MEGSIM_BATCH_GOLDEN_DIR) + "/campaign_hcr_jjo_spd.json";

    auto runAt = [&](std::size_t threads) {
        exec::Pool::setConfiguredThreads(threads);
        const std::string cache =
            path("golden_cache_t" + std::to_string(threads));
        std::filesystem::create_directories(cache);
        batch::Campaign campaign(testConfig(cache));
        auto report = campaign.run();
        EXPECT_TRUE(report.ok()) << report.error().message;
        return report.ok() ? canonicalReport(*report) : std::string();
    };

    const char *regen = std::getenv("MEGSIM_REGEN_GOLDEN");
    if (regen && regen[0] == '1') {
        std::ofstream(golden, std::ios::binary | std::ios::trunc)
            << runAt(1);
        return;
    }

    std::ifstream in(golden, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    ASSERT_FALSE(expected.empty())
        << golden << " missing — run with MEGSIM_REGEN_GOLDEN=1 first";

    for (std::size_t threads :
         {std::size_t(1), std::size_t(2), std::size_t(8)})
        EXPECT_EQ(runAt(threads), expected)
            << "campaign report diverged at " << threads << " threads";
}

TEST_F(BatchTest, FastMemColumnsRoundTripAndV1ReportsLoadAsExact)
{
    batch::CampaignReport report;
    report.memMode = "fast";
    batch::BenchmarkReport b;
    b.alias = "hcr";
    b.frames = 48;
    b.chosenK = 9;
    b.representatives = 9;
    b.reduction = 5.3;
    b.wallSeconds = 1.0;
    b.cacheStatus = "built";
    b.memMode = "fast";
    b.hasExactVsFast = true;
    b.auditedFrames = 6;
    for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
        b.exactVsFast[m] = 1.5 * static_cast<double>(m + 1);
    report.benchmarks.push_back(b);
    report.computeAggregates();
    ASSERT_TRUE(report.save(path("fast.json")).ok());

    auto loaded = batch::CampaignReport::load(path("fast.json"));
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded->memMode, "fast");
    ASSERT_EQ(loaded->benchmarks.size(), 1u);
    const batch::BenchmarkReport &row = loaded->benchmarks[0];
    EXPECT_EQ(row.memMode, "fast");
    ASSERT_TRUE(row.hasExactVsFast);
    EXPECT_EQ(row.auditedFrames, 6u);
    for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
        EXPECT_EQ(row.exactVsFast[m], b.exactVsFast[m]);

    // A v1 report (pre-fast-mem schema tag, no mem_mode, no audit
    // column) must load with every new field at its exact default —
    // committed baselines keep gating without regeneration.
    std::string text = util::Json(report.toJson()).dump();
    const std::string v2tag = batch::CampaignReport::kSchema;
    const std::size_t at = text.find(v2tag);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, v2tag.size(), batch::CampaignReport::kSchemaV1);
    // Strip the v2-only keys the way a v1 writer never emits them.
    auto strip = [&](const std::string &needle) {
        for (std::size_t pos = text.find(needle);
             pos != std::string::npos; pos = text.find(needle)) {
            const std::size_t end = text.find("\n", pos);
            ASSERT_NE(end, std::string::npos);
            std::size_t begin = text.rfind("\n", pos);
            ASSERT_NE(begin, std::string::npos);
            text.erase(begin, end - begin);
        }
    };
    strip("\"mem_mode\"");
    std::ofstream(path("v1.json")) << text;

    auto legacy = batch::CampaignReport::load(path("v1.json"));
    ASSERT_TRUE(legacy.ok()) << legacy.error().message;
    EXPECT_EQ(legacy->memMode, "exact");
    ASSERT_EQ(legacy->benchmarks.size(), 1u);
    EXPECT_EQ(legacy->benchmarks[0].memMode, "exact");
    // exact_vs_fast survived the strip (only mem_mode was removed),
    // proving a v1 *schema tag* alone never rejects.
    EXPECT_TRUE(legacy->benchmarks[0].hasExactVsFast);
}

TEST_F(BatchTest, ExactVsFastThresholdGatesOnlyAuditedRows)
{
    batch::CampaignReport report;
    batch::BenchmarkReport audited;
    audited.alias = "hcr";
    audited.frames = 48;
    audited.chosenK = 9;
    audited.representatives = 9;
    audited.reduction = 5.0;
    audited.hasExactVsFast = true;
    audited.exactVsFast[0] = 7.5; // cycles model error
    report.benchmarks.push_back(audited);

    batch::BenchmarkReport exact;
    exact.alias = "jjo";
    exact.frames = 48;
    exact.chosenK = 3;
    exact.representatives = 3;
    exact.reduction = 16.0;
    exact.errorPercent[0] = 50.0; // would breach if it were audited
    report.benchmarks.push_back(exact);
    report.computeAggregates();

    batch::Thresholds limits;
    limits.maxExactVsFastPercent[0] = 5.0;
    const std::vector<std::string> violations =
        batch::checkThresholds(report, limits);
    ASSERT_EQ(violations.size(), 1u)
        << "rows without an audit column must not gate";
    EXPECT_NE(violations[0].find("hcr"), std::string::npos);
    EXPECT_NE(violations[0].find("exact-vs-fast"), std::string::npos);

    limits.maxExactVsFastPercent[0] = 10.0;
    EXPECT_TRUE(batch::checkThresholds(report, limits).empty());
}

TEST_F(BatchTest, SuiteClusterReportIsDeterministicAcrossThreads)
{
    // The suite-cluster trajectory must be thread-count invariant
    // exactly like the per-bench one: the canonical v3 report is
    // byte-identical at 1, 2 and 8 threads, and the measured
    // reduction bookkeeping is internally consistent.
    std::string first;
    for (std::size_t threads :
         {std::size_t(1), std::size_t(2), std::size_t(8)}) {
        exec::Pool::setConfiguredThreads(threads);
        const std::string cache =
            path("suite_cache_t" + std::to_string(threads));
        std::filesystem::create_directories(cache);
        batch::CampaignConfig config = testConfig(cache);
        config.suiteCluster = true;
        batch::Campaign campaign(config);
        auto report = campaign.run();
        ASSERT_TRUE(report.ok()) << report.error().message;

        EXPECT_TRUE(report->suiteCluster);
        ASSERT_GE(report->sharedRepresentatives, 1u);
        ASSERT_GE(report->perBenchRepresentatives,
                  report->sharedRepresentatives)
            << "pooling must not need more timing frames than "
               "independent per-bench clustering at this scope";
        EXPECT_DOUBLE_EQ(
            report->suiteReductionFactor,
            static_cast<double>(report->perBenchRepresentatives) /
                static_cast<double>(report->sharedRepresentatives));
        ASSERT_EQ(report->benchmarks.size(), kSuite.size());
        for (const batch::BenchmarkReport &row : report->benchmarks) {
            EXPECT_EQ(row.frames, kFrames);
            ASSERT_GE(row.representatives, 1u);
            EXPECT_LE(row.borrowedReps, row.representatives);
            EXPECT_LE(row.representatives,
                      report->sharedRepresentatives);
        }

        const std::string canon = canonicalReport(*report);
        EXPECT_NE(canon.find("megsim-campaign-v3"),
                  std::string::npos);
        EXPECT_NE(canon.find("borrowed_reps"), std::string::npos);
        if (first.empty())
            first = canon;
        else
            EXPECT_EQ(canon, first)
                << "suite report diverged at " << threads
                << " threads";
    }
}

TEST_F(BatchTest, SuiteReportRoundTripsBitForBitAndDiffsSuiteFields)
{
    batch::CampaignReport report;
    report.suiteCluster = true;
    report.sharedRepresentatives = 4;
    report.perBenchRepresentatives = 22;
    report.suiteReductionFactor = 5.5;
    for (std::size_t i = 0; i < 2; ++i) {
        batch::BenchmarkReport b;
        b.alias = "b" + std::to_string(i);
        b.frames = 12;
        b.chosenK = 4;
        b.representatives = 4 - i;
        b.borrowedReps = 3 - i;
        b.reduction = 12.0 / static_cast<double>(4 - i);
        for (std::size_t m = 0; m < batch::kNumMetrics; ++m)
            b.errorPercent[m] = 0.1 * static_cast<double>(m + i);
        report.benchmarks.push_back(b);
    }
    report.computeAggregates();

    ASSERT_TRUE(report.save(path("suite.json")).ok());
    auto loaded = batch::CampaignReport::load(path("suite.json"));
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_TRUE(loaded->suiteCluster);
    EXPECT_EQ(loaded->sharedRepresentatives, 4u);
    EXPECT_EQ(loaded->perBenchRepresentatives, 22u);
    EXPECT_EQ(loaded->suiteReductionFactor, 5.5);
    EXPECT_EQ(loaded->benchmarks[0].borrowedReps, 3u);
    EXPECT_EQ(loaded->benchmarks[1].borrowedReps, 2u);
    // Bit-for-bit: re-serializing the loaded report reproduces the
    // original v3 document exactly.
    EXPECT_EQ(loaded->toJson().dump(), report.toJson().dump());

    // Same numbers, different trajectory: the suite_cluster flag
    // itself is a diff, reported before any row comparison.
    batch::CampaignReport perBench = report;
    perBench.suiteCluster = false;
    const std::vector<std::string> modeDiff =
        batch::diffReports(report, perBench);
    ASSERT_FALSE(modeDiff.empty());
    EXPECT_NE(modeDiff[0].find("suite_cluster"), std::string::npos);

    // Between two suite reports, borrowed_reps and the suite scalars
    // participate in the diff.
    batch::CampaignReport other = report;
    other.benchmarks[0].borrowedReps = 1;
    other.suiteReductionFactor = 4.0;
    const std::vector<std::string> diffs =
        batch::diffReports(report, other);
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_NE(diffs[0].find("borrowed_reps"), std::string::npos);
    EXPECT_NE(diffs[1].find("suite_reduction_factor"),
              std::string::npos);
}

TEST_F(BatchTest, SuiteThresholdsReplacePerBenchLimitsForV3Reports)
{
    batch::CampaignReport report;
    report.suiteCluster = true;
    report.sharedRepresentatives = 4;
    report.perBenchRepresentatives = 8;
    report.suiteReductionFactor = 2.0;
    batch::BenchmarkReport b;
    b.alias = "hcr";
    b.frames = 12;
    b.chosenK = 4;
    b.representatives = 4;
    b.reduction = 3.0;
    b.errorPercent[0] = 2.5; // cycles, via fold-back weights
    report.benchmarks.push_back(b);
    report.computeAggregates();

    // Per-bench error limits do NOT gate a v3 report: fold-back
    // error has its own calibrated budget in the `suite` block.
    batch::Thresholds limits;
    limits.maxErrorPercent[0] = 1.0;
    EXPECT_TRUE(batch::checkThresholds(report, limits).empty());

    // The suite limits do gate, and so does the reduction floor.
    limits.suiteMaxErrorPercent[0] = 1.0;
    limits.suiteMinGain = 3.0;
    const std::vector<std::string> violations =
        batch::checkThresholds(report, limits);
    ASSERT_EQ(violations.size(), 2u);
    EXPECT_NE(violations[0].find("cycles"), std::string::npos);
    EXPECT_NE(violations[1].find("suite reduction factor"),
              std::string::npos);

    // The nested `suite` block parses from the thresholds file.
    std::ofstream(path("t.json"))
        << "{\"schema\": \"megsim-thresholds-v1\",\n"
           " \"max_error_percent\": {\"cycles\": 1.0},\n"
           " \"suite\": {\n"
           "   \"max_error_percent\": {\"cycles\": 3.5},\n"
           "   \"min_gain\": 1.3}}\n";
    auto parsed = batch::Thresholds::load(path("t.json"));
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed->maxErrorPercent[0], 1.0);
    EXPECT_EQ(parsed->suiteMaxErrorPercent[0], 3.5);
    EXPECT_EQ(parsed->suiteMinGain, 1.3);
    EXPECT_TRUE(batch::checkThresholds(report, *parsed).empty())
        << "2.5% fold-back error and 2.0x gain pass the parsed "
           "suite limits";
}

TEST_F(BatchTest, DiffFlagsMemModeAndAuditDeviations)
{
    batch::CampaignReport a;
    batch::BenchmarkReport row;
    row.alias = "hcr";
    row.frames = 48;
    row.chosenK = 9;
    row.representatives = 9;
    row.reduction = 5.0;
    a.benchmarks.push_back(row);
    a.computeAggregates();

    batch::CampaignReport b = a;
    EXPECT_TRUE(batch::diffReports(a, b).empty());

    // Mode mismatch is a real diff (an exact report is not a fast
    // report even when the numbers agree).
    b.benchmarks[0].memMode = "fast";
    const std::vector<std::string> modeDiff = batch::diffReports(a, b);
    ASSERT_EQ(modeDiff.size(), 1u);
    EXPECT_NE(modeDiff[0].find("mem_mode"), std::string::npos);
    b.benchmarks[0].memMode = "exact";

    // The audit column compares only when both sides carry it, so a
    // fast report diffs clean against its v1-loaded twin ...
    a.benchmarks[0].hasExactVsFast = true;
    a.benchmarks[0].exactVsFast[0] = 3.0;
    EXPECT_TRUE(batch::diffReports(a, b).empty());

    // ... and flags real deviations when both are audited.
    b.benchmarks[0].hasExactVsFast = true;
    b.benchmarks[0].exactVsFast[0] = 4.0;
    const std::vector<std::string> auditDiff =
        batch::diffReports(a, b);
    ASSERT_EQ(auditDiff.size(), 1u);
    EXPECT_NE(auditDiff[0].find("exact_vs_fast.cycles"),
              std::string::npos);
}
